"""HeteroSwitch reproduction library.

A from-scratch, NumPy-only reproduction of "HeteroSwitch: Characterizing and
Taming System-Induced Data Heterogeneity in Federated Learning" (MLSys 2024):

* :mod:`repro.nn`      — autograd / neural-network substrate and model zoo.
* :mod:`repro.isp`     — six-stage software ISP pipeline and ISP transforms.
* :mod:`repro.devices` — simulated smartphone sensors + ISP configurations.
* :mod:`repro.data`    — synthetic datasets and FL client partitioning.
* :mod:`repro.fl`      — federated-learning framework and baseline strategies.
* :mod:`repro.core`    — the HeteroSwitch method (bias measurement, switching,
  random ISP transforms, SWAD).
* :mod:`repro.runtime` — declarative RunSpec API, component registries and the
  composable experiment Runner.
* :mod:`repro.store`   — persistent run store: crash-safe checkpoints and
  bit-identical resume.
* :mod:`repro.obs`     — observability: tracing, metrics and per-kernel
  profiling that never perturb results.
* :mod:`repro.eval`    — experiment runners that regenerate every table/figure.
"""

__version__ = "1.2.0"

__all__ = ["__version__"]
