"""Shared filesystem primitives.

:func:`atomic_write` is the single implementation of the crash-safe write
pattern used by model serialization, checkpoints and store manifests: write
to a temporary sibling, move it into place with :func:`os.replace` only on
success, and clean the temporary up on failure — so readers (and resumed
runs) observe either the previous complete file or the new one, never a
truncated intermediate.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator, Optional

__all__ = ["atomic_write"]


@contextmanager
def atomic_write(path, mode: str = "wb",
                 encoding: Optional[str] = None) -> Iterator:
    """Context manager yielding a file handle whose contents replace ``path``
    atomically on clean exit (and are discarded on exception)."""
    path = os.fspath(path)
    tmp_path = f"{path}.tmp.{os.getpid()}"
    try:
        with open(tmp_path, mode, encoding=encoding) as handle:
            yield handle
        os.replace(tmp_path, path)
    finally:
        if os.path.exists(tmp_path):
            os.unlink(tmp_path)
