"""Metrics registry: counters, gauges and histograms with labeled series.

A :class:`MetricsRegistry` hands out instruments keyed by ``(name, labels)``
— asking twice for the same key returns the same instrument, so callers can
write ``registry.counter("clients_trained", device=...).inc()`` in a hot
loop without bookkeeping.  Instruments are plain Python objects (no locks:
FL telemetry is single-writer per registry) and the whole registry renders
to a JSON-compatible snapshot for export.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]

_LabelKey = Tuple[Tuple[str, Any], ...]


class Counter:
    """Monotonically increasing count (``inc``) or sum (``add``)."""

    __slots__ = ("name", "labels", "value")

    kind = "counter"

    def __init__(self, name: str, labels: Dict[str, Any]):
        self.name = name
        self.labels = labels
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter increment must be >= 0, got {amount}")
        self.value += amount

    def add(self, amount: float) -> None:
        if amount < 0:
            raise ValueError(f"counter increment must be >= 0, got {amount}")
        self.value += amount

    def summary(self) -> Dict[str, Any]:
        return {"value": self.value}


class Gauge:
    """Last-write-wins scalar (queue depth, clock reading, ...)."""

    __slots__ = ("name", "labels", "value")

    kind = "gauge"

    def __init__(self, name: str, labels: Dict[str, Any]):
        self.name = name
        self.labels = labels
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def summary(self) -> Dict[str, Any]:
        return {"value": self.value}


class Histogram:
    """Streaming summary of observed values (count/sum/min/max/mean).

    O(1) state per series — enough for per-phase latency summaries without
    bucket configuration; full distributions belong in the trace, not here.
    """

    __slots__ = ("name", "labels", "count", "total", "min", "max")

    kind = "histogram"

    def __init__(self, name: str, labels: Dict[str, Any]):
        self.name = name
        self.labels = labels
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def summary(self) -> Dict[str, Any]:
        if not self.count:
            return {"count": 0, "sum": 0.0}
        return {"count": self.count, "sum": self.total,
                "min": self.min, "max": self.max, "mean": self.mean}


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricsRegistry:
    """Process-local registry of labeled instrument series."""

    def __init__(self) -> None:
        self._series: Dict[Tuple[str, str, _LabelKey], Any] = {}

    def _get(self, kind: str, name: str, labels: Dict[str, Any]):
        key = (kind, name, tuple(sorted(labels.items())))
        instrument = self._series.get(key)
        if instrument is None:
            instrument = self._series[key] = _KINDS[kind](name, dict(labels))
        elif instrument.kind != kind:  # pragma: no cover - keyed by kind
            raise TypeError(f"metric {name!r} already registered as {instrument.kind}")
        return instrument

    def counter(self, name: str, **labels: Any) -> Counter:
        return self._get("counter", name, labels)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return self._get("gauge", name, labels)

    def histogram(self, name: str, **labels: Any) -> Histogram:
        return self._get("histogram", name, labels)

    def series(self, name: str) -> List[Any]:
        """All instruments registered under ``name``, in registration order.

        Registration order (not sorted) on purpose: consumers rebuilding
        legacy outputs from the registry need to fold floats in the same
        order the legacy dict-of-accumulators did.  :meth:`snapshot` sorts.
        """
        return [inst for (_, key_name, _), inst in self._series.items()
                if key_name == name]

    def __len__(self) -> int:
        return len(self._series)

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold ``other``'s series into this registry (worker -> run merge)."""
        for (kind, name, _), inst in sorted(other._series.items(),
                                            key=lambda kv: kv[0]):
            mine = self._get(kind, name, inst.labels)
            if kind == "counter":
                mine.value += inst.value
            elif kind == "gauge":
                mine.value = inst.value
            else:
                mine.count += inst.count
                mine.total += inst.total
                mine.min = min(mine.min, inst.min)
                mine.max = max(mine.max, inst.max)

    def snapshot(self) -> List[Dict[str, Any]]:
        """JSON-compatible dump of every series, deterministically ordered."""
        out = []
        for (kind, name, _), inst in sorted(self._series.items(),
                                            key=lambda kv: kv[0]):
            out.append({"name": name, "kind": kind,
                        "labels": {str(k): v for k, v in inst.labels.items()},
                        **inst.summary()})
        return out
