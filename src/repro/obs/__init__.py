"""`repro.obs` — unified tracing, metrics and per-kernel profiling.

Three cooperating layers, all observational (they never perturb training
results or fingerprints):

- :class:`Tracer` / :class:`SpanRecord` (``obs.trace``): nested spans over
  wall clock and — in async runs — the simulated virtual clock, in a
  bounded ring buffer.
- :class:`MetricsRegistry` (``obs.metrics``): labeled counter/gauge/
  histogram series backing `SwitchTelemetry`/`AsyncTelemetry`.
- :data:`PROFILER` (``obs.profiling``): per-kernel timers in the engine
  hot paths, off by default, enabled via ``FLConfig.profile``.

Exporters (``obs.export``) render a run's trace as Chrome ``trace_event``
JSON (Perfetto-loadable), a JSONL event log, and a per-phase summary —
stored as result-neutral artifacts in the run's store entry.
"""

from .export import (
    chrome_trace,
    export_run_obs,
    summarize_trace,
    write_chrome_trace,
    write_events_jsonl,
    write_obs_summary,
)
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .profiling import PROFILER, KernelProfiler, profile_kernels
from .trace import SpanRecord, Tracer, merge_client_spans

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "KernelProfiler",
    "MetricsRegistry",
    "PROFILER",
    "SpanRecord",
    "Tracer",
    "chrome_trace",
    "export_run_obs",
    "merge_client_spans",
    "profile_kernels",
    "summarize_trace",
    "write_chrome_trace",
    "write_events_jsonl",
    "write_obs_summary",
]
