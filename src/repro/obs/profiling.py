"""Per-kernel profiling hooks for the training engine hot paths.

The engine kernels (`nn/functional.py`, `nn/optim.py`) guard every call
with ``if PROFILER.enabled:`` — a single attribute read on a module-level
singleton, so the disabled overhead is one branch per kernel call (<5% of
round time; gated in ``tests/obs/test_profiling.py``).

Accumulators are *thread-local*: each executor worker thread sums
``name -> [calls, seconds]`` privately and :meth:`KernelProfiler.drain`
returns-and-clears only the calling thread's totals — so concurrent
clients on the thread executor never mix numbers.  ``enabled`` itself is
process-global behind a nesting counter (:meth:`activate` /
:meth:`deactivate`), so overlapping clients keep profiling on until the
last one finishes; any race on the flag can only gain or lose *timing*
samples, never perturb training results.

Worker processes (process/shm executors) inherit a disabled profiler at
fork and activate it per client inside ``run_client``; the drained totals
travel back as packed scalars on the existing result path.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Dict, Iterator, Tuple

__all__ = ["KernelProfiler", "PROFILER", "profile_kernels"]


class _KernelTimer:
    """Times one kernel call; created only when profiling is enabled."""

    __slots__ = ("profiler", "name", "_t0")

    def __init__(self, profiler: "KernelProfiler", name: str):
        self.profiler = profiler
        self.name = name

    def __enter__(self) -> "_KernelTimer":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.profiler.add(self.name, time.perf_counter() - self._t0)


class KernelProfiler:
    """Process-global kernel timer with thread-local accumulators."""

    def __init__(self) -> None:
        # Plain attribute on purpose: the disabled fast path in every kernel
        # is a single ``if PROFILER.enabled:`` read, no descriptor/lock.
        self.enabled = False
        self._lock = threading.Lock()
        self._active = 0
        self._local = threading.local()

    def _acc(self) -> Dict[str, list]:
        acc = getattr(self._local, "acc", None)
        if acc is None:
            acc = self._local.acc = {}
        return acc

    def time(self, name: str) -> _KernelTimer:
        """Context manager timing one call of kernel ``name``."""
        return _KernelTimer(self, name)

    def add(self, name: str, seconds: float) -> None:
        acc = self._acc()
        entry = acc.get(name)
        if entry is None:
            acc[name] = [1, seconds]
        else:
            entry[0] += 1
            entry[1] += seconds

    def drain(self) -> Dict[str, Tuple[int, float]]:
        """Return-and-clear the calling thread's ``name -> (calls, seconds)``."""
        acc = getattr(self._local, "acc", None)
        if not acc:
            return {}
        out = {name: (int(calls), float(seconds))
               for name, (calls, seconds) in acc.items()}
        acc.clear()
        return out

    def activate(self) -> None:
        """Enable kernel timers; nests (see :meth:`deactivate`)."""
        with self._lock:
            self._active += 1
            self.enabled = True

    def deactivate(self) -> None:
        """Drop one activation; timers turn off when the last one exits."""
        with self._lock:
            self._active = max(0, self._active - 1)
            if self._active == 0:
                self.enabled = False


PROFILER = KernelProfiler()


@contextmanager
def profile_kernels() -> Iterator[KernelProfiler]:
    """Enable kernel profiling for a block; yields the shared profiler."""
    PROFILER.activate()
    try:
        yield PROFILER
    finally:
        PROFILER.deactivate()
