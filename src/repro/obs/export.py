"""Trace exporters: Chrome ``trace_event`` JSON, JSONL event log, summary.

All files are written through :func:`repro.io.atomic_write` and are
*result-neutral artifacts*: they live next to a run's ``result.json`` in
the store entry but never enter the spec hash or the run fingerprint, so
a traced run stays bit-identical (and resumable against) an untraced one.

``trace.json`` follows the Chrome ``trace_event`` format (complete "X"
events in microseconds) and loads directly in Perfetto / ``chrome://tracing``.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, Iterable, List, Optional

from ..io import atomic_write
from .trace import SpanRecord, Tracer

__all__ = ["chrome_trace", "export_run_obs", "summarize_trace",
           "write_chrome_trace", "write_events_jsonl", "write_obs_summary"]

TRACE_FILE = "trace.json"
EVENTS_FILE = "events.jsonl"
SUMMARY_FILE = "obs_summary.json"

# Span name -> phase bucket for the per-phase breakdown.  "clients" covers
# the whole fan-out/aggregate-stream window on the server track; the
# per-client "client_update" spans inside it are reported separately so
# server wall clock is never double-counted.
_PHASE_BY_SPAN = {
    "capture": "capture",
    "clients": "client_train",
    "flush_batch": "client_train",
    "aggregate": "aggregate",
    "evaluate": "eval",
}

_KERNEL_PREFIX = "kernel/"


def _tid_index(order: List[str], tid: str) -> int:
    try:
        return order.index(tid)
    except ValueError:
        order.append(tid)
        return len(order) - 1


def chrome_trace(records: Iterable[SpanRecord],
                 metadata: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
    """Render span records as a Chrome ``trace_event`` document."""
    # "main" first so the server track sits on top in the viewer.
    tid_order: List[str] = ["main"]
    events: List[Dict[str, Any]] = []
    for record in records:
        tid = _tid_index(tid_order, record.tid)
        args: Dict[str, Any] = dict(record.attrs)
        if record.parent is not None:
            args["parent"] = record.parent
        if record.vstart is not None:
            args["virtual_start_s"] = record.vstart
            if record.vduration is not None:
                args["virtual_duration_s"] = record.vduration
        event: Dict[str, Any] = {
            "name": record.name,
            "cat": "kernel" if record.name.startswith(_KERNEL_PREFIX) else "run",
            "ph": "i" if record.kind == "instant" else "X",
            "ts": round(record.start * 1e6, 3),
            "pid": 1,
            "tid": tid,
            "args": args,
        }
        if record.kind == "instant":
            event["s"] = "t"
        else:
            event["dur"] = round(record.duration * 1e6, 3)
        events.append(event)
    for tid, name in enumerate(tid_order):
        events.append({"name": "thread_name", "ph": "M", "pid": 1, "tid": tid,
                       "args": {"name": name}})
    events.append({"name": "process_name", "ph": "M", "pid": 1, "tid": 0,
                   "args": {"name": "repro"}})
    document: Dict[str, Any] = {"traceEvents": events, "displayTimeUnit": "ms"}
    if metadata:
        document["metadata"] = metadata
    return document


def summarize_trace(tracer: Tracer) -> Dict[str, Any]:
    """Aggregate a trace into per-phase seconds, kernel totals and metrics."""
    phases: Dict[str, Dict[str, Any]] = {}
    kernels: Dict[str, Dict[str, Any]] = {}
    client_updates = {"count": 0, "seconds": 0.0}
    spans = instants = 0
    wall_end = 0.0
    for record in tracer.records:
        if record.kind == "instant":
            instants += 1
            continue
        spans += 1
        wall_end = max(wall_end, record.start + record.duration)
        if record.name.startswith(_KERNEL_PREFIX):
            entry = kernels.setdefault(record.name[len(_KERNEL_PREFIX):],
                                       {"calls": 0, "seconds": 0.0})
            entry["calls"] += int(record.attrs.get("calls", 1))
            entry["seconds"] += record.duration
            continue
        if record.name == "client_update":
            client_updates["count"] += 1
            client_updates["seconds"] += record.duration
            continue
        phase = _PHASE_BY_SPAN.get(record.name)
        if phase is not None:
            entry = phases.setdefault(phase, {"seconds": 0.0, "count": 0})
            entry["seconds"] += record.duration
            entry["count"] += 1
    return {
        "wall_seconds": wall_end,
        "phases": phases,
        "kernels": kernels,
        "client_updates": client_updates,
        "spans": spans,
        "instants": instants,
        "metrics": tracer.metrics.snapshot(),
    }


def write_chrome_trace(path, tracer: Tracer,
                       metadata: Optional[Dict[str, Any]] = None) -> None:
    document = chrome_trace(tracer.records, metadata=metadata)
    with atomic_write(path, mode="w", encoding="utf-8") as handle:
        json.dump(document, handle)
        handle.write("\n")


def write_events_jsonl(path, tracer: Tracer) -> None:
    """One JSON object per line, spans and instants in completion order."""
    with atomic_write(path, mode="w", encoding="utf-8") as handle:
        for record in tracer.records:
            handle.write(json.dumps(record.to_dict(), sort_keys=True) + "\n")


def write_obs_summary(path, tracer: Tracer,
                      extra: Optional[Dict[str, Any]] = None) -> None:
    summary = summarize_trace(tracer)
    if extra:
        summary.update(extra)
    with atomic_write(path, mode="w", encoding="utf-8") as handle:
        json.dump(summary, handle, indent=2, sort_keys=True)
        handle.write("\n")


def export_run_obs(directory, tracer: Tracer,
                   metadata: Optional[Dict[str, Any]] = None) -> Dict[str, str]:
    """Write all three obs artifacts into ``directory``; returns their paths."""
    paths = {
        "trace": os.path.join(os.fspath(directory), TRACE_FILE),
        "events": os.path.join(os.fspath(directory), EVENTS_FILE),
        "summary": os.path.join(os.fspath(directory), SUMMARY_FILE),
    }
    write_chrome_trace(paths["trace"], tracer, metadata=metadata)
    write_events_jsonl(paths["events"], tracer)
    write_obs_summary(paths["summary"], tracer, extra=metadata)
    return paths
