"""Tracing layer: nested spans over wall clock and (async) virtual clock.

A :class:`Tracer` records :class:`SpanRecord` entries into a bounded ring
buffer (``collections.deque(maxlen=...)``) so it is cheap enough to leave
on for long runs — old spans fall off the front instead of growing memory.
Each thread keeps its own current-span stack, so spans opened concurrently
(thread executor) nest correctly without locking; the deque append itself
is atomic under the GIL.

Two clocks can be recorded per span: wall time (``time.perf_counter``
offsets from the tracer's epoch) always, and — when a virtual clock has
been registered via :meth:`Tracer.set_virtual_clock` — the simulated-time
interval of the async event loop as ``vstart``/``vduration``.

Worker processes do not hold a tracer; they ship compact per-client
payloads back through the executor result path (``result.metadata["obs"]``)
which :func:`merge_client_spans` folds into the run-level trace as
synthetic client/kernel spans.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, List, Optional

from .metrics import MetricsRegistry

__all__ = ["SpanRecord", "Tracer", "merge_client_spans"]

DEFAULT_RING_SIZE = 65536


@dataclass
class SpanRecord:
    """One completed span or instant, in seconds relative to the tracer epoch."""

    name: str
    start: float
    duration: float
    tid: str = "main"
    parent: Optional[str] = None
    kind: str = "span"  # "span" | "instant"
    vstart: Optional[float] = None
    vduration: Optional[float] = None
    attrs: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {"name": self.name, "start": self.start,
                                "duration": self.duration, "tid": self.tid,
                                "kind": self.kind}
        if self.parent is not None:
            data["parent"] = self.parent
        if self.vstart is not None:
            data["vstart"] = self.vstart
            data["vduration"] = self.vduration
        if self.attrs:
            data["attrs"] = self.attrs
        return data


class _Span:
    """Context manager for one live span; exposes ``.start`` while open."""

    __slots__ = ("tracer", "name", "attrs", "parent", "start", "vstart")

    def __init__(self, tracer: "Tracer", name: str, attrs: Dict[str, Any]):
        self.tracer = tracer
        self.name = name
        self.attrs = attrs

    def __enter__(self) -> "_Span":
        stack = self.tracer._stack()
        self.parent = stack[-1] if stack else None
        self.start = self.tracer.now()
        self.vstart = self.tracer._virtual_now()
        stack.append(self.name)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        stack = self.tracer._stack()
        if stack and stack[-1] == self.name:
            stack.pop()
        end = self.tracer.now()
        vend = self.tracer._virtual_now()
        vduration = (vend - self.vstart
                     if self.vstart is not None and vend is not None else None)
        self.tracer.records.append(SpanRecord(
            name=self.name, start=self.start, duration=end - self.start,
            tid=_thread_tid(), parent=self.parent,
            vstart=self.vstart, vduration=vduration, attrs=self.attrs))


def _thread_tid() -> str:
    thread = threading.current_thread()
    if thread is threading.main_thread():
        return "main"
    return thread.name


class Tracer:
    """Run-level trace collector: spans, instants and attached metrics."""

    def __init__(self, maxlen: int = DEFAULT_RING_SIZE):
        self._epoch = time.perf_counter()
        self.records: Deque[SpanRecord] = deque(maxlen=maxlen)
        self.metrics = MetricsRegistry()
        self._local = threading.local()
        self._virtual_clock: Optional[Callable[[], float]] = None

    def now(self) -> float:
        """Wall-clock seconds since this tracer was created."""
        return time.perf_counter() - self._epoch

    def set_virtual_clock(self, clock: Optional[Callable[[], float]]) -> None:
        """Register a simulated-time source (async event loop clock).

        Once set, every span/instant also records its virtual interval.
        """
        self._virtual_clock = clock

    def _virtual_now(self) -> Optional[float]:
        clock = self._virtual_clock
        return float(clock()) if clock is not None else None

    def _stack(self) -> List[str]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    @property
    def current_span(self) -> Optional[str]:
        """Name of the innermost open span on the calling thread."""
        stack = self._stack()
        return stack[-1] if stack else None

    def span(self, name: str, **attrs: Any) -> _Span:
        """Open a nested span; use as ``with tracer.span("round", index=3):``."""
        return _Span(self, name, attrs)

    def instant(self, name: str, **attrs: Any) -> None:
        """Record a zero-duration marker (event, gap annotation, ...)."""
        now = self.now()
        vnow = self._virtual_now()
        stack = self._stack()
        self.records.append(SpanRecord(
            name=name, start=now, duration=0.0, tid=_thread_tid(),
            parent=stack[-1] if stack else None, kind="instant",
            vstart=vnow, vduration=0.0 if vnow is not None else None,
            attrs=attrs))

    def add_span(self, name: str, start: float, duration: float, *,
                 tid: str = "main", parent: Optional[str] = None,
                 vstart: Optional[float] = None,
                 vduration: Optional[float] = None, **attrs: Any) -> None:
        """Append a synthetic span (e.g. reconstructed from a worker payload)."""
        self.records.append(SpanRecord(
            name=name, start=start, duration=duration, tid=tid, parent=parent,
            vstart=vstart, vduration=vduration, attrs=attrs))

    def to_dicts(self) -> List[Dict[str, Any]]:
        return [record.to_dict() for record in self.records]


def merge_client_spans(tracer: Tracer, start: float, results,
                       device_by_id: Optional[Dict[int, str]] = None) -> None:
    """Fold executor-shipped obs payloads into the run trace.

    ``results`` are client results whose ``metadata`` may carry an ``"obs"``
    payload packed by :func:`repro.fl.execution.run_client` — ``{"duration":
    seconds, "kernels": {name: [calls, seconds]}}``.  Each becomes a
    ``client_update`` span on its own ``client-<id>`` track, anchored at
    ``start`` (workers have no shared epoch, so only durations are
    meaningful), with per-kernel child spans laid end to end.  The payload
    is *popped* from the metadata so downstream consumers (telemetry,
    checkpoints) see exactly what an untraced run would.
    """
    devices = device_by_id or {}
    for result in results:
        obs = result.metadata.pop("obs", None)
        if obs is None:
            continue
        cid = int(result.client_id)
        device = devices.get(cid, "")
        tid = f"client-{cid}"
        duration = float(obs.get("duration", 0.0))
        tracer.add_span("client_update", start, duration, tid=tid,
                        parent="clients", client_id=cid, device=device)
        offset = start
        for name in sorted(obs.get("kernels", ())):
            calls, seconds = obs["kernels"][name]
            tracer.add_span(f"kernel/{name}", offset, float(seconds), tid=tid,
                            parent="client_update", calls=int(calls))
            offset += float(seconds)
        tracer.metrics.counter("clients_trained", device=device).inc()
        tracer.metrics.histogram("client_update_seconds",
                                 device=device).observe(duration)
