"""Persistent on-disk cache of captured device datasets.

Building the Fig. 3-style stage-ablation sweeps pushes the same scene pools
through the ISP once per device x ISP variant x seed; the captures themselves
never change between runs of the same configuration.  A :class:`CaptureCache`
persists every per-device capture as one ``.npz`` file (the crash-safe
checkpoint codec of :mod:`repro.store.checkpoint`, written atomically via
:func:`repro.io.atomic_write`), keyed by a sha256 digest of everything that
determines the capture bit-for-bit:

* the scene pool (generator seed, samples per class, number of classes,
  scene resolution),
* the device profile (sensor resolution, colour response matrix, exposure,
  noise parameters, vignetting, Bayer pattern, black level) and its ISP
  configuration (or the override in effect),
* the capture configuration (training image size, RAW flag, sensor-noise
  seed),
* the cache format version.

Changing *any* of those fields changes the key, so stale entries are never
returned — invalidation is structural, not time-based.  A cache hit loads the
stored arrays bitwise-identically; a miss builds the capture and persists it.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import TYPE_CHECKING, Any, Callable, Dict

import numpy as np

from ..store.checkpoint import CheckpointError, read_checkpoint, write_checkpoint
from .dataset import ArrayDataset

if TYPE_CHECKING:  # pragma: no cover - type-only imports (no runtime cycle)
    from ..devices.profiles import DeviceProfile
    from .capture import CaptureConfig

__all__ = ["CAPTURE_CACHE_VERSION", "CaptureCache", "device_fingerprint"]

# Bump whenever the capture pipeline's numerics change incompatibly: the
# version participates in the key, so old entries simply stop matching.
CAPTURE_CACHE_VERSION = 1


def device_fingerprint(device: "DeviceProfile") -> Dict[str, Any]:
    """JSON-safe description of everything a device contributes to a capture."""
    sensor = device.sensor
    return {
        "name": device.name,
        "vendor": device.vendor,
        "tier": device.tier,
        "sensor": {
            "resolution": list(sensor.resolution),
            "color_response": np.asarray(sensor.color_response).tolist(),
            "exposure": sensor.exposure,
            "read_noise": sensor.read_noise,
            "shot_noise_scale": sensor.shot_noise_scale,
            "vignetting": sensor.vignetting,
            "bayer_pattern": sensor.bayer_pattern,
            "black_level": sensor.black_level,
        },
        "isp": {"name": device.isp.name, **device.isp.as_dict()},
    }


class CaptureCache:
    """Directory of captured datasets keyed by capture-configuration digest.

    Layout: ``<root>/<key[:32]>.npz`` — one entry per (scene pool, device,
    capture config).  Entries are written atomically; unreadable or
    version-incompatible files are treated as misses and rebuilt.
    """

    def __init__(self, root) -> None:
        self.root = Path(root)
        self.hits = 0
        self.misses = 0

    # -- keys ------------------------------------------------------------- #
    @staticmethod
    def capture_key(scene_seed: int, samples_per_class: int, num_classes: int,
                    scene_size: int, device: "DeviceProfile",
                    config: "CaptureConfig") -> str:
        """sha256 digest of every field that determines a capture bit-for-bit."""
        isp_override = config.isp_override
        payload = {
            "cache_version": CAPTURE_CACHE_VERSION,
            "scene_pool": {
                "seed": scene_seed,
                "samples_per_class": samples_per_class,
                "num_classes": num_classes,
                "scene_size": scene_size,
            },
            "device": device_fingerprint(device),
            "capture": {
                "image_size": config.image_size,
                "raw": config.raw,
                "seed": config.seed,
                "isp_override": (
                    None if isp_override is None
                    else {"name": isp_override.name, **isp_override.as_dict()}
                ),
            },
        }
        blob = json.dumps(payload, sort_keys=True).encode("utf-8")
        return hashlib.sha256(blob).hexdigest()

    def path_for(self, key: str) -> Path:
        return self.root / f"{key[:32]}.npz"

    # -- storage ---------------------------------------------------------- #
    def load(self, key: str) -> "ArrayDataset | None":
        """Load the dataset stored under ``key``, or ``None`` on a miss.

        Corrupt or incompatible entries count as misses; the subsequent
        :meth:`store` atomically replaces them.
        """
        path = self.path_for(key)
        if not path.exists():
            return None
        try:
            tree, meta = read_checkpoint(path)
        except (CheckpointError, OSError, ValueError):
            return None
        if meta.get("capture_key") != key:
            return None
        metadata = tree.get("metadata")
        return ArrayDataset(tree["features"], tree["labels"],
                            metadata=dict(metadata) if metadata is not None else None)

    def store(self, key: str, dataset: ArrayDataset) -> None:
        """Persist ``dataset`` under ``key`` (atomic write)."""
        self.root.mkdir(parents=True, exist_ok=True)
        tree = {
            "features": dataset.features,
            "labels": dataset.labels,
            "metadata": dict(dataset.metadata) if dataset.metadata is not None else None,
        }
        write_checkpoint(self.path_for(key), tree, extra_meta={"capture_key": key})

    def get_or_build(self, key: str, builder: Callable[[], ArrayDataset]) -> ArrayDataset:
        """Return the cached dataset for ``key``, building and storing on miss."""
        cached = self.load(key)
        if cached is not None:
            self.hits += 1
            return cached
        self.misses += 1
        dataset = builder()
        self.store(key, dataset)
        return dataset

    # -- introspection ----------------------------------------------------- #
    @property
    def stats(self) -> Dict[str, int]:
        return {"hits": self.hits, "misses": self.misses, "entries": len(self.entries())}

    def entries(self) -> list[Path]:
        if not self.root.is_dir():
            return []
        return sorted(self.root.glob("*.npz"))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CaptureCache({str(self.root)!r}, hits={self.hits}, misses={self.misses})"
