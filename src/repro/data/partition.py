"""Client partitioning utilities for the FL simulations.

The paper's FL experiments assign each simulated client a device type — the
composition either mirrors the market shares of Table 1 (fairness experiments)
or is uniform / leave-one-out (domain-generalization experiments) — and gives
each client a shard of that device's data.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np

from .dataset import ArrayDataset

__all__ = ["ClientSpec", "assign_device_types", "shard_dataset", "build_client_specs"]


@dataclass
class ClientSpec:
    """One FL client: its id, device type, and local dataset."""

    client_id: int
    device: str
    dataset: ArrayDataset

    def __post_init__(self) -> None:
        if self.client_id < 0:
            raise ValueError("client_id must be non-negative")
        if len(self.dataset) == 0:
            raise ValueError("client dataset must be non-empty")


def assign_device_types(
    num_clients: int,
    shares: Mapping[str, float],
    seed: int = 0,
    exclude: Optional[Sequence[str]] = None,
) -> List[str]:
    """Assign a device type to every client.

    Device counts follow ``shares`` (e.g. the Table 1 market shares) using
    largest-remainder rounding so every listed device appears when the client
    population is large enough, then the assignment order is shuffled.
    """
    if num_clients <= 0:
        raise ValueError("num_clients must be positive")
    exclude_set = set(exclude or [])
    filtered = {name: share for name, share in shares.items() if name not in exclude_set}
    if not filtered:
        raise ValueError("no devices left after exclusion")
    total = sum(filtered.values())
    if total <= 0:
        raise ValueError("shares must sum to a positive value")
    normalized = {name: share / total for name, share in filtered.items()}

    # Largest-remainder apportionment.
    exact = {name: share * num_clients for name, share in normalized.items()}
    counts = {name: int(np.floor(value)) for name, value in exact.items()}
    remainder = num_clients - sum(counts.values())
    by_fraction = sorted(exact, key=lambda name: exact[name] - counts[name], reverse=True)
    for name in by_fraction[:remainder]:
        counts[name] += 1

    assignment: List[str] = []
    for name, count in counts.items():
        assignment.extend([name] * count)
    rng = np.random.default_rng(seed)
    rng.shuffle(assignment)
    return assignment


def shard_dataset(dataset: ArrayDataset, num_shards: int, seed: int = 0) -> List[ArrayDataset]:
    """Split a dataset into ``num_shards`` near-equal random shards."""
    if num_shards <= 0:
        raise ValueError("num_shards must be positive")
    n = len(dataset)
    if num_shards > n:
        raise ValueError(f"cannot split {n} samples into {num_shards} non-empty shards")
    rng = np.random.default_rng(seed)
    order = rng.permutation(n)
    shards = np.array_split(order, num_shards)
    return [dataset.subset(indices) for indices in shards]


def build_client_specs(
    device_datasets: Mapping[str, ArrayDataset],
    num_clients: int,
    shares: Optional[Mapping[str, float]] = None,
    seed: int = 0,
    exclude: Optional[Sequence[str]] = None,
) -> List[ClientSpec]:
    """Create the client population for an FL run.

    Parameters
    ----------
    device_datasets:
        Per-device training datasets (e.g. from
        :func:`repro.data.capture.build_device_datasets`).
    num_clients:
        Total number of simulated clients ``N``.
    shares:
        Device-type participation shares; defaults to uniform over the devices
        present in ``device_datasets``.
    exclude:
        Device types to leave out entirely (the Fig. 5 leave-one-device-out
        protocol).

    Every client of a given device type receives a distinct shard of that
    device's dataset; if there are more clients of a type than samples allow,
    shards cycle (clients may share samples, which mirrors the paper's setting
    where a device type's data pool is finite).
    """
    if shares is None:
        shares = {name: 1.0 for name in device_datasets}
    assignment = assign_device_types(num_clients, shares, seed=seed, exclude=exclude)

    # Group clients per device so each device's data is sharded once.
    per_device_clients: Dict[str, List[int]] = {}
    for client_id, device in enumerate(assignment):
        per_device_clients.setdefault(device, []).append(client_id)

    specs: List[ClientSpec] = [None] * num_clients  # type: ignore[list-item]
    for device, client_ids in per_device_clients.items():
        if device not in device_datasets:
            raise KeyError(f"no dataset available for device '{device}'")
        dataset = device_datasets[device]
        max_shards = min(len(client_ids), len(dataset))
        # zlib.crc32 gives a stable per-device offset (Python's hash() is salted
        # per process, which would make the sharding non-reproducible).
        shards = shard_dataset(dataset, max_shards,
                               seed=seed + zlib.crc32(device.encode()) % 10_000)
        for position, client_id in enumerate(client_ids):
            shard = shards[position % len(shards)]
            specs[client_id] = ClientSpec(client_id=client_id, device=device, dataset=shard)
    return list(specs)
