"""Synthetic ECG dataset with heterogeneous sensor types (Section 6.6).

The paper's non-vision experiment uses an ECG dataset recorded simultaneously
by four distinct sensor types, each introducing its own noise signature
(Vollmer et al., 2022), and trains a simple DNN to estimate heart rate.  The
dataset is not available offline, so this module synthesizes ECG windows with
known ground-truth heart rate and applies four parametric sensor corruption
models — the same experimental structure: identical underlying physiology,
sensor-specific measurement artefacts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np
from scipy import ndimage

from .dataset import ArrayDataset

__all__ = ["ECGSensorType", "ECG_SENSOR_TYPES", "synthesize_ecg_window", "build_ecg_datasets"]


@dataclass(frozen=True)
class ECGSensorType:
    """A parametric ECG sensor corruption model.

    Attributes
    ----------
    name:
        Sensor identifier.
    gain:
        Multiplicative amplitude calibration of the electrode.
    baseline_wander:
        Amplitude of the low-frequency baseline drift the sensor admits.
    noise_sigma:
        Standard deviation of additive white measurement noise.
    powerline:
        Amplitude of 50 Hz power-line interference leakage.
    smoothing:
        Gaussian smoothing bandwidth of the sensor's analogue front-end
        (larger = more sluggish response, blunter QRS peaks).
    """

    name: str
    gain: float = 1.0
    baseline_wander: float = 0.0
    noise_sigma: float = 0.02
    powerline: float = 0.0
    smoothing: float = 0.0

    def apply(self, signal: np.ndarray, rng: np.random.Generator,
              sample_rate: float = 125.0) -> np.ndarray:
        """Corrupt a clean ECG signal with this sensor's artefacts."""
        signal = np.asarray(signal, dtype=np.float64) * self.gain
        n = signal.shape[-1]
        t = np.arange(n) / sample_rate
        if self.smoothing > 0:
            signal = ndimage.gaussian_filter1d(signal, sigma=self.smoothing, axis=-1, mode="nearest")
        if self.baseline_wander > 0:
            drift_freq = rng.uniform(0.1, 0.4)
            drift_phase = rng.uniform(0, 2 * np.pi)
            signal = signal + self.baseline_wander * np.sin(2 * np.pi * drift_freq * t + drift_phase)
        if self.powerline > 0:
            phase = rng.uniform(0, 2 * np.pi)
            signal = signal + self.powerline * np.sin(2 * np.pi * 50.0 * t + phase)
        if self.noise_sigma > 0:
            signal = signal + rng.normal(0, self.noise_sigma, size=signal.shape)
        return signal


# Four sensor archetypes mirroring the multi-device recording setup of the
# source dataset: a clinical-grade reference, a chest strap, a wrist wearable
# and a handheld consumer device.
ECG_SENSOR_TYPES: Tuple[ECGSensorType, ...] = (
    ECGSensorType(name="clinical", gain=1.0, baseline_wander=0.02, noise_sigma=0.01,
                  powerline=0.00, smoothing=0.0),
    ECGSensorType(name="chest_strap", gain=0.9, baseline_wander=0.10, noise_sigma=0.03,
                  powerline=0.02, smoothing=0.5),
    ECGSensorType(name="wrist_wearable", gain=0.6, baseline_wander=0.25, noise_sigma=0.08,
                  powerline=0.01, smoothing=1.5),
    ECGSensorType(name="handheld", gain=1.3, baseline_wander=0.05, noise_sigma=0.05,
                  powerline=0.10, smoothing=0.2),
)


def synthesize_ecg_window(
    heart_rate_bpm: float,
    window_size: int = 128,
    sample_rate: float = 125.0,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Generate a clean synthetic ECG window at a given heart rate.

    The waveform is a sum of Gaussian bumps for the P, QRS and T waves placed
    at each beat, which is sufficient structure for a regressor to recover the
    beat frequency.
    """
    if not 30.0 <= heart_rate_bpm <= 220.0:
        raise ValueError(f"heart rate must be in [30, 220] bpm, got {heart_rate_bpm}")
    rng = rng or np.random.default_rng()
    t = np.arange(window_size) / sample_rate
    beat_period = 60.0 / heart_rate_bpm
    phase_offset = rng.uniform(0, beat_period)
    signal = np.zeros(window_size)
    beat_time = -phase_offset
    # Component (offset within beat, width, amplitude): P, QRS, T.
    components = ((0.10, 0.020, 0.15), (0.22, 0.008, 1.00), (0.40, 0.035, 0.30))
    while beat_time < t[-1] + beat_period:
        for offset, width, amplitude in components:
            center = beat_time + offset * beat_period
            signal += amplitude * np.exp(-((t - center) ** 2) / (2 * width ** 2))
        beat_time += beat_period
    return signal


def build_ecg_datasets(
    samples_per_sensor_train: int = 60,
    samples_per_sensor_test: int = 30,
    window_size: int = 128,
    heart_rate_range: Tuple[float, float] = (50.0, 150.0),
    seed: int = 0,
) -> Tuple[Dict[str, ArrayDataset], Dict[str, ArrayDataset], List[ECGSensorType]]:
    """Build per-sensor-type train/test datasets for heart-rate regression.

    Labels are heart rates divided by the physiological maximum (220 bpm), so
    they live in (0, 1] *and* relative errors computed on the normalized labels
    equal relative errors in beats-per-minute (the scaling cancels), matching
    how the paper reports heart-rate deviation.
    """
    low, high = heart_rate_range
    if not 30.0 <= low < high <= 220.0:
        raise ValueError("heart_rate_range must satisfy 30 <= low < high <= 220")
    max_rate = 220.0

    def make_split(sensor: ECGSensorType, count: int, split_seed: int) -> ArrayDataset:
        rng = np.random.default_rng(split_seed)
        rates = rng.uniform(low, high, size=count)
        windows = np.empty((count, window_size), dtype=np.float64)
        for i, rate in enumerate(rates):
            clean = synthesize_ecg_window(rate, window_size=window_size, rng=rng)
            windows[i] = sensor.apply(clean, rng)
        labels = rates / max_rate
        return ArrayDataset(windows, labels.reshape(-1, 1),
                            metadata={"sensor": sensor.name, "heart_rate_range": heart_rate_range,
                                      "label_scale": max_rate})

    train: Dict[str, ArrayDataset] = {}
    test: Dict[str, ArrayDataset] = {}
    for index, sensor in enumerate(ECG_SENSOR_TYPES):
        train[sensor.name] = make_split(sensor, samples_per_sensor_train, seed + 100 + index)
        test[sensor.name] = make_split(sensor, samples_per_sensor_test, seed + 900 + index)
    return train, test, list(ECG_SENSOR_TYPES)
