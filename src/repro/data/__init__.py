"""Datasets and data-handling utilities for the HeteroSwitch reproduction.

Every dataset the paper evaluates on is rebuilt here as a synthetic analogue
(see DESIGN.md "Substitutions"): the 12-class device-capture dataset, the
synthetic-heterogeneity CIFAR experiment, the FLAIR-like multi-label dataset
and the multi-sensor ECG dataset, plus FL client partitioning and batching.
"""

from .capture import (
    CaptureConfig,
    DeviceDatasetBundle,
    build_device_datasets,
    capture_with_device,
    capture_with_device_scalar,
    derive_capture_seeds,
)
from .capture_cache import CaptureCache, device_fingerprint
from .cifar_synthetic import SyntheticCifarConfig, build_synthetic_cifar, generate_base_images
from .dataset import ArrayDataset, DataLoader, hwc_to_nchw, nchw_to_hwc, train_test_split
from .ecg import ECG_SENSOR_TYPES, ECGSensorType, build_ecg_datasets, synthesize_ecg_window
from .flair_synthetic import FlairConfig, build_flair_dataset
from .partition import ClientSpec, assign_device_types, build_client_specs, shard_dataset
from .scenes import SCENE_CLASSES, SceneGenerator, generate_scene_dataset

__all__ = [
    "ArrayDataset",
    "DataLoader",
    "hwc_to_nchw",
    "nchw_to_hwc",
    "train_test_split",
    "SceneGenerator",
    "SCENE_CLASSES",
    "generate_scene_dataset",
    "CaptureConfig",
    "CaptureCache",
    "DeviceDatasetBundle",
    "build_device_datasets",
    "capture_with_device",
    "capture_with_device_scalar",
    "derive_capture_seeds",
    "device_fingerprint",
    "ClientSpec",
    "assign_device_types",
    "build_client_specs",
    "shard_dataset",
    "SyntheticCifarConfig",
    "build_synthetic_cifar",
    "generate_base_images",
    "FlairConfig",
    "build_flair_dataset",
    "ECGSensorType",
    "ECG_SENSOR_TYPES",
    "build_ecg_datasets",
    "synthesize_ecg_window",
]
