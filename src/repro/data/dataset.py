"""Dataset containers and batching utilities for the FL framework.

A :class:`ArrayDataset` holds features and labels as NumPy arrays (images are
stored NCHW, signals as (N, D)); :class:`DataLoader` yields shuffled
mini-batches.  These are deliberately tiny abstractions — the FL layer only
needs deterministic, seedable batching.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Tuple

import numpy as np

__all__ = ["ArrayDataset", "DataLoader", "hwc_to_nchw", "nchw_to_hwc", "train_test_split"]


def hwc_to_nchw(images: np.ndarray) -> np.ndarray:
    """Convert ``(N, H, W, C)`` images to the ``(N, C, H, W)`` layout models use."""
    images = np.asarray(images, dtype=np.float64)
    if images.ndim != 4:
        raise ValueError(f"expected a 4-D (N, H, W, C) array, got shape {images.shape}")
    return np.ascontiguousarray(images.transpose(0, 3, 1, 2))


def nchw_to_hwc(images: np.ndarray) -> np.ndarray:
    """Convert ``(N, C, H, W)`` images back to ``(N, H, W, C)``."""
    images = np.asarray(images, dtype=np.float64)
    if images.ndim != 4:
        raise ValueError(f"expected a 4-D (N, C, H, W) array, got shape {images.shape}")
    return np.ascontiguousarray(images.transpose(0, 2, 3, 1))


@dataclass
class ArrayDataset:
    """A dataset of aligned feature / label arrays.

    ``features`` can be image batches (NCHW) or flat feature vectors; ``labels``
    can be integer class labels, multi-hot label matrices or regression targets.
    ``metadata`` carries optional per-dataset context such as the device name.
    """

    features: np.ndarray
    labels: np.ndarray
    metadata: Optional[dict] = None

    def __post_init__(self) -> None:
        self.features = np.asarray(self.features, dtype=np.float64)
        self.labels = np.asarray(self.labels)
        if len(self.features) != len(self.labels):
            raise ValueError(
                f"features ({len(self.features)}) and labels ({len(self.labels)}) lengths differ"
            )
        if len(self.features) == 0:
            raise ValueError("dataset must contain at least one sample")

    def __len__(self) -> int:
        return len(self.features)

    def subset(self, indices: np.ndarray) -> "ArrayDataset":
        """Return a new dataset restricted to ``indices``.

        ``indices`` may be integer positions or a boolean mask over the whole
        dataset.  Masks are resolved with :func:`np.flatnonzero` — coercing
        them to int would silently select samples 0/1 repeatedly instead of
        the masked rows.
        """
        indices = np.asarray(indices)
        if indices.dtype == bool:
            if indices.shape != (len(self),):
                raise ValueError(
                    f"boolean mask must have shape ({len(self)},), got {indices.shape}"
                )
            indices = np.flatnonzero(indices)
        else:
            indices = indices.astype(int)
        return ArrayDataset(self.features[indices], self.labels[indices], metadata=self.metadata)

    def merge(self, other: "ArrayDataset") -> "ArrayDataset":
        """Concatenate two datasets (metadata of ``self`` wins)."""
        return ArrayDataset(
            np.concatenate([self.features, other.features], axis=0),
            np.concatenate([self.labels, other.labels], axis=0),
            metadata=self.metadata,
        )


class DataLoader:
    """Deterministic, seedable mini-batch iterator over an :class:`ArrayDataset`."""

    def __init__(
        self,
        dataset: ArrayDataset,
        batch_size: int,
        shuffle: bool = True,
        seed: int = 0,
        drop_last: bool = False,
    ) -> None:
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        self.dataset = dataset
        self.batch_size = batch_size
        self.shuffle = shuffle
        self.drop_last = drop_last
        self._rng = np.random.default_rng(seed)

    def __len__(self) -> int:
        n = len(self.dataset)
        if self.drop_last:
            return n // self.batch_size
        return (n + self.batch_size - 1) // self.batch_size

    def __iter__(self) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        n = len(self.dataset)
        end = (n // self.batch_size) * self.batch_size if self.drop_last else n
        features, labels = self.dataset.features, self.dataset.labels
        if not self.shuffle:
            # Sequential batches are contiguous slices (views) — same values
            # as fancy-indexing with arange, without the per-batch copy.  The
            # views are handed out read-only so a consumer that mutates its
            # batch in place fails loudly instead of silently corrupting the
            # dataset for every later iteration.
            for start in range(0, end, self.batch_size):
                stop = min(start + self.batch_size, end)
                feature_view = features[start:stop]
                label_view = labels[start:stop]
                feature_view.flags.writeable = False
                label_view.flags.writeable = False
                yield feature_view, label_view
            return
        indices = self._rng.permutation(n)
        for start in range(0, end, self.batch_size):
            batch_idx = indices[start : start + self.batch_size]
            yield features[batch_idx], labels[batch_idx]


def train_test_split(
    dataset: ArrayDataset,
    test_fraction: float = 0.25,
    seed: int = 0,
    stratify: bool = True,
) -> Tuple[ArrayDataset, ArrayDataset]:
    """Split a dataset into train and test partitions.

    With ``stratify=True`` (and integer labels) every class contributes
    proportionally to the test set, which keeps the small per-device datasets
    balanced.
    """
    if not 0.0 < test_fraction < 1.0:
        raise ValueError("test_fraction must be in (0, 1)")
    rng = np.random.default_rng(seed)
    n = len(dataset)
    labels = dataset.labels
    if stratify and labels.ndim == 1 and np.issubdtype(labels.dtype, np.integer):
        test_indices: list[int] = []
        for cls in np.unique(labels):
            cls_idx = np.flatnonzero(labels == cls)
            cls_idx = rng.permutation(cls_idx)
            count = max(1, int(round(len(cls_idx) * test_fraction)))
            # Never strip a multi-sample class from the train split: an
            # uncapped rounding (e.g. 2 samples at test_fraction 0.75) would
            # otherwise send every sample of a small class to test.
            if len(cls_idx) > 1:
                count = min(count, len(cls_idx) - 1)
            test_indices.extend(cls_idx[:count].tolist())
        test_mask = np.zeros(n, dtype=bool)
        test_mask[np.asarray(test_indices, dtype=int)] = True
    else:
        order = rng.permutation(n)
        count = max(1, int(round(n * test_fraction)))
        test_mask = np.zeros(n, dtype=bool)
        test_mask[order[:count]] = True
    train = dataset.subset(np.flatnonzero(~test_mask))
    test = dataset.subset(np.flatnonzero(test_mask))
    return train, test
