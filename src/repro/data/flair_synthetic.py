"""FLAIR-like multi-label federated dataset with many device types.

Section 6.4 evaluates HeteroSwitch on FLAIR (Song et al., 2022), a real FL
image dataset with multi-label annotations collected from more than one
thousand device types.  FLAIR is not available offline; this module builds a
synthetic analogue that preserves the properties Table 6 measures:

* multi-label targets (averaged precision is the metric),
* a long-tailed population of device types, each applying its own photometric
  perturbation to the images it "captured",
* per-client datasets tied to a single device type.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from ..devices.synthetic import SyntheticDeviceType, long_tailed_population
from .dataset import ArrayDataset, hwc_to_nchw

__all__ = ["FlairConfig", "build_flair_dataset"]


@dataclass(frozen=True)
class FlairConfig:
    """Configuration for the synthetic FLAIR-like dataset."""

    num_labels: int = 8
    num_device_types: int = 20
    samples_per_device_train: int = 30
    samples_per_device_test: int = 15
    image_size: int = 16
    avg_labels_per_image: float = 2.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_labels < 2:
            raise ValueError("num_labels must be >= 2")
        if self.num_device_types < 2:
            raise ValueError("num_device_types must be >= 2")
        if not 1.0 <= self.avg_labels_per_image <= self.num_labels:
            raise ValueError("avg_labels_per_image must be in [1, num_labels]")


def _render_multilabel_image(
    label_vector: np.ndarray,
    image_size: int,
    label_colors: np.ndarray,
    label_positions: np.ndarray,
    rng: np.random.Generator,
) -> np.ndarray:
    """Render an image containing one colored blob per active label."""
    ys, xs = np.mgrid[0:image_size, 0:image_size] / image_size
    image = np.full((image_size, image_size, 3), rng.uniform(0.05, 0.2))
    for label in np.flatnonzero(label_vector):
        cy, cx = label_positions[label] + rng.normal(0, 0.05, size=2)
        sigma = rng.uniform(0.10, 0.18)
        blob = np.exp(-(((ys - cy) ** 2 + (xs - cx) ** 2) / (2 * sigma ** 2)))
        image = image + blob[..., None] * label_colors[label][None, None, :]
    image = image + rng.normal(0, 0.02, size=image.shape)
    return np.clip(image, 0.0, 1.0)


def build_flair_dataset(
    config: FlairConfig = FlairConfig(),
) -> Tuple[Dict[str, ArrayDataset], Dict[str, ArrayDataset], List[SyntheticDeviceType]]:
    """Build per-device-type multi-label train/test datasets.

    Returns
    -------
    train, test:
        Dictionaries keyed by device-type name; labels are multi-hot matrices
        of shape ``(N, num_labels)``.
    devices:
        The synthetic device-type population (long-tailed).
    """
    devices, _ = long_tailed_population(num_types=config.num_device_types, seed=config.seed)
    rng = np.random.default_rng(config.seed)

    label_colors = rng.uniform(0.3, 0.9, size=(config.num_labels, 3))
    label_positions = rng.uniform(0.2, 0.8, size=(config.num_labels, 2))
    label_prob = config.avg_labels_per_image / config.num_labels

    def make_split(device: SyntheticDeviceType, count: int, seed_offset: int) -> ArrayDataset:
        split_rng = np.random.default_rng(config.seed + seed_offset)
        labels = (split_rng.random((count, config.num_labels)) < label_prob).astype(np.float64)
        # Ensure at least one active label per image.
        empty = labels.sum(axis=1) == 0
        if empty.any():
            forced = split_rng.integers(0, config.num_labels, size=int(empty.sum()))
            labels[np.flatnonzero(empty), forced] = 1.0
        images = np.stack(
            [
                _render_multilabel_image(
                    labels[i], config.image_size, label_colors, label_positions, split_rng
                )
                for i in range(count)
            ]
        )
        perturbed = device.apply(images, split_rng)
        return ArrayDataset(
            hwc_to_nchw(perturbed),
            labels,
            metadata={"device": device.name, "kind": "flair-synthetic"},
        )

    train: Dict[str, ArrayDataset] = {}
    test: Dict[str, ArrayDataset] = {}
    for index, device in enumerate(devices):
        train[device.name] = make_split(device, config.samples_per_device_train, 1_000 + index)
        test[device.name] = make_split(device, config.samples_per_device_test, 5_000 + index)
    return train, test, devices
