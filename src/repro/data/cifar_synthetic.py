"""Synthetic CIFAR-100-style dataset with injected device heterogeneity.

Section 6.5 of the paper injects system-induced heterogeneity into CIFAR-100
by creating 10 randomized settings of contrast, brightness, saturation and
hue, and trains a simple CNN in an FL setting over the resulting synthetic
device types.  CIFAR-100 itself is not available offline, so this module
generates procedural low-resolution images with a configurable number of
classes and applies exactly the same perturbation machinery
(:class:`repro.devices.synthetic.SyntheticDeviceType`).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from ..devices.synthetic import SyntheticDeviceType, generate_synthetic_devices
from .dataset import ArrayDataset, hwc_to_nchw

__all__ = ["SyntheticCifarConfig", "generate_base_images", "build_synthetic_cifar"]


@dataclass(frozen=True)
class SyntheticCifarConfig:
    """Configuration for the synthetic CIFAR-like dataset."""

    num_classes: int = 20
    samples_per_class_train: int = 10
    samples_per_class_test: int = 5
    image_size: int = 16
    num_device_types: int = 10
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_classes < 2:
            raise ValueError("num_classes must be >= 2")
        if self.image_size < 8:
            raise ValueError("image_size must be >= 8")
        if self.num_device_types < 1:
            raise ValueError("num_device_types must be >= 1")


def generate_base_images(
    num_samples: int,
    num_classes: int,
    image_size: int,
    seed: int,
) -> Tuple[np.ndarray, np.ndarray]:
    """Generate procedural class-structured base images in HWC [0, 1].

    Each class has a characteristic colour and frequency signature (a mix of
    sinusoidal gratings whose orientation/frequency depend on the class) with
    per-sample phase and noise jitter.
    """
    rng = np.random.default_rng(seed)
    labels = rng.integers(0, num_classes, size=num_samples)
    ys, xs = np.mgrid[0:image_size, 0:image_size] / image_size

    # Deterministic per-class parameters.
    class_rng = np.random.default_rng(seed + 1)
    class_colors = class_rng.uniform(0.2, 0.8, size=(num_classes, 3))
    class_freqs = class_rng.uniform(1.0, 5.0, size=num_classes)
    class_angles = class_rng.uniform(0, np.pi, size=num_classes)

    images = np.empty((num_samples, image_size, image_size, 3), dtype=np.float64)
    for index, label in enumerate(labels):
        freq = class_freqs[label]
        angle = class_angles[label]
        phase = rng.uniform(0, 2 * np.pi)
        direction = xs * np.cos(angle) + ys * np.sin(angle)
        pattern = 0.5 + 0.5 * np.sin(2 * np.pi * freq * direction + phase)
        secondary = 0.5 + 0.5 * np.sin(2 * np.pi * freq * 2 * (xs - ys) + phase)
        base = 0.7 * pattern + 0.3 * secondary
        image = base[..., None] * class_colors[label][None, None, :]
        image = image + rng.normal(0, 0.03, size=image.shape)
        images[index] = np.clip(image, 0.0, 1.0)
    return images, labels.astype(int)


def build_synthetic_cifar(
    config: SyntheticCifarConfig = SyntheticCifarConfig(),
) -> Tuple[Dict[str, ArrayDataset], Dict[str, ArrayDataset], List[SyntheticDeviceType]]:
    """Build per-device-type train/test datasets for the Fig. 8 experiment.

    Returns dictionaries keyed by synthetic device name plus the device list.
    Every device type perturbs the *same* base image pools, so all differences
    between the per-device datasets are system-induced — mirroring how the
    paper modifies CIFAR-100 rather than re-sampling it per device.
    """
    devices = generate_synthetic_devices(count=config.num_device_types, seed=config.seed)

    train_images, train_labels = generate_base_images(
        config.samples_per_class_train * config.num_classes,
        config.num_classes,
        config.image_size,
        seed=config.seed + 11,
    )
    test_images, test_labels = generate_base_images(
        config.samples_per_class_test * config.num_classes,
        config.num_classes,
        config.image_size,
        seed=config.seed + 23,
    )

    train: Dict[str, ArrayDataset] = {}
    test: Dict[str, ArrayDataset] = {}
    for device in devices:
        rng = np.random.default_rng(config.seed + zlib.crc32(device.name.encode()) % 10_000)
        train_perturbed = device.apply(train_images, rng)
        test_perturbed = device.apply(test_images, rng)
        metadata = {"device": device.name, "kind": "synthetic-cifar"}
        train[device.name] = ArrayDataset(hwc_to_nchw(train_perturbed), train_labels, metadata=metadata)
        test[device.name] = ArrayDataset(hwc_to_nchw(test_perturbed), test_labels, metadata=metadata)
    return train, test, devices
