"""Device capture simulation: scene -> sensor RAW -> ISP -> training tensor.

This is the data-generation process of Fig. 1: a monitor displays a scene, a
device's sensor records RAW data, the device's ISP produces the final image,
and the image is resized into the tensor the model trains on.  Capturing the
*same* scenes with *different* device profiles yields the per-device datasets
used throughout Sections 3, 4 and 6.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np

from ..devices.profiles import DEVICE_PROFILES, DeviceProfile
from ..isp.pipeline import ISPConfig, ISPPipeline
from ..isp.raw import raw_to_training_array
from .dataset import ArrayDataset, hwc_to_nchw
from .scenes import generate_scene_dataset

__all__ = ["CaptureConfig", "capture_with_device", "build_device_datasets", "DeviceDatasetBundle"]


def _resize_bilinear(image: np.ndarray, size: int) -> np.ndarray:
    """Resize an HxWxC image to ``size`` x ``size`` (separable linear interpolation)."""
    h, w = image.shape[:2]
    if (h, w) == (size, size):
        return image
    row_pos = np.linspace(0, h - 1, size)
    col_pos = np.linspace(0, w - 1, size)
    row_lo = np.floor(row_pos).astype(int)
    col_lo = np.floor(col_pos).astype(int)
    row_hi = np.minimum(row_lo + 1, h - 1)
    col_hi = np.minimum(col_lo + 1, w - 1)
    row_frac = (row_pos - row_lo)[:, None, None]
    col_frac = (col_pos - col_lo)[None, :, None]
    top = image[row_lo][:, col_lo] * (1 - col_frac) + image[row_lo][:, col_hi] * col_frac
    bottom = image[row_hi][:, col_lo] * (1 - col_frac) + image[row_hi][:, col_hi] * col_frac
    return top * (1 - row_frac) + bottom * row_frac


@dataclass(frozen=True)
class CaptureConfig:
    """Configuration of a capture session.

    Attributes
    ----------
    image_size:
        Side length of the training tensors produced (model input resolution).
    raw:
        If ``True``, skip the ISP and return RAW-derived tensors (Section 3.3).
    isp_override:
        Optional ISP configuration that replaces the device's own ISP, used by
        the Fig. 3 stage-ablation experiment (all devices share one pipeline
        whose stages are then perturbed).
    seed:
        Seed for the sensor noise realisations.
    """

    image_size: int = 32
    raw: bool = False
    isp_override: Optional[ISPConfig] = None
    seed: int = 0


def capture_with_device(
    scenes: np.ndarray,
    labels: np.ndarray,
    device: DeviceProfile,
    config: CaptureConfig = CaptureConfig(),
) -> ArrayDataset:
    """Capture a batch of scenes with one device, returning an NCHW dataset."""
    scenes = np.asarray(scenes, dtype=np.float64)
    labels = np.asarray(labels)
    if scenes.ndim != 4 or scenes.shape[-1] != 3:
        raise ValueError(f"scenes must be (N, H, W, 3), got {scenes.shape}")
    if len(scenes) != len(labels):
        raise ValueError("scenes and labels must be the same length")

    rng = np.random.default_rng(config.seed)
    pipeline = None
    if not config.raw:
        isp_config = config.isp_override or device.isp
        pipeline = ISPPipeline(isp_config)

    images = np.empty((len(scenes), config.image_size, config.image_size, 3), dtype=np.float64)
    for index, scene in enumerate(scenes):
        raw = device.sensor.capture_raw(scene, rng)
        if config.raw:
            processed = raw_to_training_array(raw)
        else:
            processed = pipeline.process(raw)
        images[index] = _resize_bilinear(processed, config.image_size)

    metadata = {
        "device": device.name,
        "vendor": device.vendor,
        "tier": device.tier,
        "raw": config.raw,
        "isp": (config.isp_override or device.isp).name if not config.raw else "raw",
    }
    return ArrayDataset(hwc_to_nchw(images), labels, metadata=metadata)


@dataclass
class DeviceDatasetBundle:
    """Per-device train/test datasets captured from shared scene pools."""

    train: Dict[str, ArrayDataset]
    test: Dict[str, ArrayDataset]
    num_classes: int
    image_size: int

    def devices(self) -> list[str]:
        return list(self.train.keys())


def build_device_datasets(
    samples_per_class_train: int = 8,
    samples_per_class_test: int = 4,
    num_classes: int = 12,
    image_size: int = 32,
    scene_size: int = 64,
    devices: Optional[Sequence[str]] = None,
    raw: bool = False,
    isp_override: Optional[ISPConfig] = None,
    seed: int = 0,
) -> DeviceDatasetBundle:
    """Build the per-device dataset family used by the characterization study.

    The same train-scene pool and the same test-scene pool are captured by every
    device (the paper controls the displayed content and varies only the
    device), so differences between the per-device datasets are purely
    system-induced.
    """
    device_names = list(devices) if devices is not None else list(DEVICE_PROFILES)
    unknown = [d for d in device_names if d not in DEVICE_PROFILES]
    if unknown:
        raise KeyError(f"unknown devices: {unknown}")

    train_scenes, train_labels = generate_scene_dataset(
        samples_per_class_train, num_classes=num_classes, image_size=scene_size, seed=seed
    )
    test_scenes, test_labels = generate_scene_dataset(
        samples_per_class_test, num_classes=num_classes, image_size=scene_size, seed=seed + 10_000
    )

    train: Dict[str, ArrayDataset] = {}
    test: Dict[str, ArrayDataset] = {}
    for offset, name in enumerate(device_names):
        profile = DEVICE_PROFILES[name]
        capture_cfg = CaptureConfig(
            image_size=image_size, raw=raw, isp_override=isp_override, seed=seed + offset
        )
        train[name] = capture_with_device(train_scenes, train_labels, profile, capture_cfg)
        test[name] = capture_with_device(test_scenes, test_labels, profile, capture_cfg)
    return DeviceDatasetBundle(train=train, test=test, num_classes=num_classes, image_size=image_size)
