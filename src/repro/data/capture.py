"""Device capture simulation: scene -> sensor RAW -> ISP -> training tensor.

This is the data-generation process of Fig. 1: a monitor displays a scene, a
device's sensor records RAW data, the device's ISP produces the final image,
and the image is resized into the tensor the model trains on.  Capturing the
*same* scenes with *different* device profiles yields the per-device datasets
used throughout Sections 3, 4 and 6.

The whole path is vectorized over the batch dimension: one capture makes zero
per-scene Python iterations (sensor exposure, noise, Bayer sampling, all six
ISP stages and the final resize are ``(N, ...)`` kernels) while remaining
bit-identical to the scalar reference loop kept in
:func:`capture_with_device_scalar`.  Captured datasets can additionally be
persisted in a :class:`~repro.data.capture_cache.CaptureCache`, so repeated
sweeps over one device fleet rebuild nothing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Sequence

import numpy as np

from ..devices.profiles import DEVICE_PROFILES, DeviceProfile
from ..isp.pipeline import ISPConfig, ISPPipeline
from ..isp.raw import raw_to_training_array, raw_to_training_array_batch
from ..isp.resize import resize_bilinear, resize_bilinear_batch
from .capture_cache import CaptureCache
from .dataset import ArrayDataset, hwc_to_nchw
from .scenes import generate_scene_dataset

__all__ = [
    "CaptureConfig",
    "capture_with_device",
    "capture_with_device_scalar",
    "build_device_datasets",
    "derive_capture_seeds",
    "DeviceDatasetBundle",
]


@dataclass(frozen=True)
class CaptureConfig:
    """Configuration of a capture session.

    Attributes
    ----------
    image_size:
        Side length of the training tensors produced (model input resolution).
    raw:
        If ``True``, skip the ISP and return RAW-derived tensors (Section 3.3).
    isp_override:
        Optional ISP configuration that replaces the device's own ISP, used by
        the Fig. 3 stage-ablation experiment (all devices share one pipeline
        whose stages are then perturbed).
    seed:
        Seed for the sensor noise realisations.
    """

    image_size: int = 32
    raw: bool = False
    isp_override: Optional[ISPConfig] = None
    seed: int = 0


def _validate_capture_inputs(scenes: np.ndarray, labels: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    scenes = np.asarray(scenes, dtype=np.float64)
    labels = np.asarray(labels)
    if scenes.ndim != 4 or scenes.shape[-1] != 3:
        raise ValueError(f"scenes must be (N, H, W, 3), got {scenes.shape}")
    if len(scenes) != len(labels):
        raise ValueError("scenes and labels must be the same length")
    return scenes, labels


def _capture_metadata(device: DeviceProfile, config: CaptureConfig) -> Dict[str, object]:
    return {
        "device": device.name,
        "vendor": device.vendor,
        "tier": device.tier,
        "raw": config.raw,
        "isp": (config.isp_override or device.isp).name if not config.raw else "raw",
    }


def capture_with_device(
    scenes: np.ndarray,
    labels: np.ndarray,
    device: DeviceProfile,
    config: CaptureConfig = CaptureConfig(),
) -> ArrayDataset:
    """Capture a batch of scenes with one device, returning an NCHW dataset.

    The entire scene -> RAW -> ISP -> tensor path runs as batched ``(N, ...)``
    kernels; the result is bit-identical to the per-scene reference loop
    (:func:`capture_with_device_scalar`) including the sensor-noise RNG
    stream.
    """
    scenes, labels = _validate_capture_inputs(scenes, labels)
    rng = np.random.default_rng(config.seed)
    raw_batch = device.sensor.capture_raw_batch(scenes, rng)
    if config.raw:
        processed = raw_to_training_array_batch(raw_batch)
    else:
        pipeline = ISPPipeline(config.isp_override or device.isp)
        processed = pipeline.process_batch(raw_batch)
    images = resize_bilinear_batch(processed, (config.image_size, config.image_size))
    return ArrayDataset(hwc_to_nchw(images), labels,
                        metadata=_capture_metadata(device, config))


def capture_with_device_scalar(
    scenes: np.ndarray,
    labels: np.ndarray,
    device: DeviceProfile,
    config: CaptureConfig = CaptureConfig(),
) -> ArrayDataset:
    """Scene-by-scene reference implementation of :func:`capture_with_device`.

    Kept as the golden baseline for the batched path's bit-identity guarantee
    (and for the capture-throughput benchmark).  Per scene it draws the same
    RNG stream the batched kernel consumes in one block.
    """
    scenes, labels = _validate_capture_inputs(scenes, labels)
    rng = np.random.default_rng(config.seed)
    pipeline = None
    if not config.raw:
        pipeline = ISPPipeline(config.isp_override or device.isp)

    images = np.empty((len(scenes), config.image_size, config.image_size, 3), dtype=np.float64)
    for index, scene in enumerate(scenes):
        raw = device.sensor.capture_raw(scene, rng)
        if config.raw:
            processed = raw_to_training_array(raw)
        else:
            processed = pipeline.process(raw)
        images[index] = resize_bilinear(processed, (config.image_size, config.image_size))
    return ArrayDataset(hwc_to_nchw(images), labels,
                        metadata=_capture_metadata(device, config))


@dataclass
class DeviceDatasetBundle:
    """Per-device train/test datasets captured from shared scene pools."""

    train: Dict[str, ArrayDataset]
    test: Dict[str, ArrayDataset]
    num_classes: int
    image_size: int

    def devices(self) -> list[str]:
        return list(self.train.keys())


def derive_capture_seeds(seed: int, device_offset: int) -> tuple[int, int]:
    """Derive independent (train, test) sensor-noise seeds for one device.

    The train and test pools must see *different* noise realisations: reusing
    one seed replays the train noise stream sample-for-sample onto the test
    captures.  Spawning two children from one ``SeedSequence`` keeps the
    derivation deterministic per ``(seed, device)`` while separating the
    streams.
    """
    train_seq, test_seq = np.random.SeedSequence(seed + device_offset).spawn(2)
    return (int(train_seq.generate_state(1)[0]), int(test_seq.generate_state(1)[0]))


def build_device_datasets(
    samples_per_class_train: int = 8,
    samples_per_class_test: int = 4,
    num_classes: int = 12,
    image_size: int = 32,
    scene_size: int = 64,
    devices: Optional[Sequence[str]] = None,
    raw: bool = False,
    isp_override: Optional[ISPConfig] = None,
    seed: int = 0,
    cache: "CaptureCache | str | None" = None,
) -> DeviceDatasetBundle:
    """Build the per-device dataset family used by the characterization study.

    The same train-scene pool and the same test-scene pool are captured by every
    device (the paper controls the displayed content and varies only the
    device), so differences between the per-device datasets are purely
    system-induced.

    With ``cache`` set (a :class:`~repro.data.capture_cache.CaptureCache` or a
    directory path), every per-device capture is persisted on first build and
    loaded bitwise-identically on subsequent builds; a fully cached bundle
    skips scene generation and the ISP entirely.
    """
    device_names = list(devices) if devices is not None else list(DEVICE_PROFILES)
    unknown = [d for d in device_names if d not in DEVICE_PROFILES]
    if unknown:
        raise KeyError(f"unknown devices: {unknown}")
    if cache is not None and not isinstance(cache, CaptureCache):
        cache = CaptureCache(cache)

    # Single source of truth for each split's scene-pool parameters: the
    # cache key and the generated pool must never be derived independently.
    def pool_params(split: str) -> tuple[int, int]:
        """(samples per class, generator seed) of one split's scene pool."""
        if split == "train":
            return samples_per_class_train, seed
        return samples_per_class_test, seed + 10_000

    # Scene pools are generated lazily: a fully cached build never pays for
    # scene synthesis (that is what makes cache hits near-instant).
    pools: Dict[str, tuple[np.ndarray, np.ndarray]] = {}

    def scene_pool(split: str) -> tuple[np.ndarray, np.ndarray]:
        if split not in pools:
            per_class, pool_seed = pool_params(split)
            pools[split] = generate_scene_dataset(
                per_class, num_classes=num_classes, image_size=scene_size, seed=pool_seed
            )
        return pools[split]

    def capture(split: str, profile: DeviceProfile, capture_cfg: CaptureConfig) -> ArrayDataset:
        per_class, pool_seed = pool_params(split)
        builder: Callable[[], ArrayDataset] = lambda: capture_with_device(
            *scene_pool(split), profile, capture_cfg
        )
        if cache is None:
            return builder()
        key = cache.capture_key(
            scene_seed=pool_seed, samples_per_class=per_class, num_classes=num_classes,
            scene_size=scene_size, device=profile, config=capture_cfg,
        )
        return cache.get_or_build(key, builder)

    train: Dict[str, ArrayDataset] = {}
    test: Dict[str, ArrayDataset] = {}
    for offset, name in enumerate(device_names):
        profile = DEVICE_PROFILES[name]
        train_seed, test_seed = derive_capture_seeds(seed, offset)
        train_cfg = CaptureConfig(image_size=image_size, raw=raw,
                                  isp_override=isp_override, seed=train_seed)
        test_cfg = CaptureConfig(image_size=image_size, raw=raw,
                                 isp_override=isp_override, seed=test_seed)
        train[name] = capture("train", profile, train_cfg)
        test[name] = capture("test", profile, test_cfg)
    return DeviceDatasetBundle(train=train, test=test, num_classes=num_classes, image_size=image_size)
