"""Procedural scene generator standing in for the paper's 12-class image set.

The paper photographs 12 non-overlapping ImageNet classes displayed on a
monitor (Section 3.1): Chihuahua, Altar, Cock, Abaya, Ambulance, Loggerhead,
Timber Wolf, Tiger Beetle, Accordion, French Loaf, Barber Chair and Orangutan.
ImageNet is not available offline, so this module generates procedural scenes
with the same role: 12 visually distinct classes, each with intra-class
variation, rendered as idealized linear-RGB "monitor" images which the device
simulation then captures.

Each class combines a characteristic base colour, spatial pattern (stripes,
checker, rings, blobs, gradients) and texture scale; per-sample jitter varies
position, phase, scale and colour so a classifier must learn the class
structure rather than memorise single images.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

__all__ = ["SCENE_CLASSES", "SceneGenerator", "generate_scene_dataset"]

# The 12 class names from the paper (Section 3.1), kept for readable reports.
SCENE_CLASSES: Tuple[str, ...] = (
    "chihuahua",
    "altar",
    "cock",
    "abaya",
    "ambulance",
    "loggerhead",
    "timber_wolf",
    "tiger_beetle",
    "accordion",
    "french_loaf",
    "barber_chair",
    "orangutan",
)

# Per-class appearance parameters: (base RGB, pattern, spatial frequency).
_CLASS_SPECS: Tuple[Tuple[Tuple[float, float, float], str, float], ...] = (
    ((0.75, 0.55, 0.35), "blobs", 2.0),      # chihuahua: tan blobs
    ((0.60, 0.50, 0.30), "arches", 1.5),     # altar: warm arches
    ((0.80, 0.25, 0.20), "rays", 3.0),       # cock: red radial rays
    ((0.20, 0.20, 0.30), "drape", 2.0),      # abaya: dark vertical drape
    ((0.90, 0.90, 0.90), "stripes", 4.0),    # ambulance: white with stripes
    ((0.30, 0.45, 0.35), "shell", 2.5),      # loggerhead: green-brown rings
    ((0.55, 0.55, 0.60), "fur", 6.0),        # timber wolf: gray high-freq fur
    ((0.25, 0.55, 0.25), "spots", 5.0),      # tiger beetle: iridescent spots
    ((0.50, 0.30, 0.20), "keys", 8.0),       # accordion: keyboard stripes
    ((0.80, 0.65, 0.40), "loaf", 1.2),       # french loaf: warm ellipse
    ((0.60, 0.20, 0.25), "chair", 1.8),      # barber chair: red blocky shape
    ((0.45, 0.30, 0.20), "fur", 3.5),        # orangutan: orange-brown fur
)


@dataclass
class SceneGenerator:
    """Generates labelled procedural scenes.

    Parameters
    ----------
    image_size:
        Output side length (scenes are square, ``image_size`` x ``image_size``).
    num_classes:
        Number of classes to use (at most ``len(SCENE_CLASSES)``).
    seed:
        Base seed; per-sample randomness derives from it deterministically.
    """

    image_size: int = 64
    num_classes: int = 12
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_classes < 2 or self.num_classes > len(SCENE_CLASSES):
            raise ValueError(f"num_classes must be in [2, {len(SCENE_CLASSES)}]")
        if self.image_size < 8:
            raise ValueError("image_size must be at least 8")
        self._rng = np.random.default_rng(self.seed)

    # ------------------------------------------------------------------ #
    def class_name(self, label: int) -> str:
        return SCENE_CLASSES[label]

    def generate(self, label: int, rng: np.random.Generator | None = None) -> np.ndarray:
        """Generate one HxWx3 scene of the given class in linear RGB [0, 1]."""
        if not 0 <= label < self.num_classes:
            raise ValueError(f"label must be in [0, {self.num_classes}), got {label}")
        rng = rng or self._rng
        base_color, pattern, frequency = _CLASS_SPECS[label]
        size = self.image_size

        ys, xs = np.mgrid[0:size, 0:size] / size  # in [0, 1)
        # Per-sample jitter.
        phase = rng.uniform(0, 2 * np.pi)
        shift_y, shift_x = rng.uniform(-0.2, 0.2, size=2)
        freq = frequency * rng.uniform(0.8, 1.25)
        color = np.clip(np.asarray(base_color) + rng.normal(0, 0.05, size=3), 0.05, 0.95)

        yy = ys - 0.5 - shift_y
        xx = xs - 0.5 - shift_x
        radius = np.sqrt(yy ** 2 + xx ** 2)
        angle = np.arctan2(yy, xx)

        if pattern == "stripes":
            field = 0.5 + 0.5 * np.sin(2 * np.pi * freq * xs + phase)
        elif pattern == "drape":
            field = 0.5 + 0.5 * np.sin(2 * np.pi * freq * xs + phase) * np.exp(-2 * ys)
        elif pattern == "rays":
            field = 0.5 + 0.5 * np.sin(freq * 4 * angle + phase)
        elif pattern == "shell":
            field = 0.5 + 0.5 * np.sin(2 * np.pi * freq * radius * 3 + phase)
        elif pattern == "spots":
            field = (np.sin(2 * np.pi * freq * ys + phase) * np.sin(2 * np.pi * freq * xs + phase)) ** 2
        elif pattern == "keys":
            field = ((xs * freq * 2).astype(int) % 2).astype(np.float64)
        elif pattern == "fur":
            noise = rng.normal(0, 1, size=(size, size))
            # Smooth directional noise via a separable box blur for a fur-like texture.
            kernel = np.ones(5) / 5.0
            noise = np.apply_along_axis(lambda row: np.convolve(row, kernel, mode="same"), 1, noise)
            field = 0.5 + 0.5 * np.tanh(noise * freq / 4.0)
        elif pattern == "blobs":
            field = np.zeros((size, size))
            for _ in range(4):
                cy, cx = rng.uniform(0.2, 0.8, size=2)
                sigma = rng.uniform(0.08, 0.2)
                field += np.exp(-(((ys - cy) ** 2 + (xs - cx) ** 2) / (2 * sigma ** 2)))
            field = np.clip(field, 0, 1)
        elif pattern == "arches":
            field = 0.5 + 0.5 * np.sin(2 * np.pi * freq * (radius + 0.3 * np.abs(angle)) + phase)
        elif pattern == "loaf":
            field = np.exp(-(((yy / 0.25) ** 2 + (xx / 0.45) ** 2)))
        elif pattern == "chair":
            field = ((np.abs(yy) < 0.3) & (np.abs(xx) < 0.2)).astype(np.float64)
            field += 0.5 * ((np.abs(yy - 0.25) < 0.08) & (np.abs(xx) < 0.35)).astype(np.float64)
            field = np.clip(field, 0, 1)
        else:  # pragma: no cover - spec table is fixed
            raise ValueError(f"unknown pattern '{pattern}'")

        background = rng.uniform(0.05, 0.25)
        image = background + field[..., None] * (color[None, None, :] - background)
        # Mild illumination gradient for realism.
        gradient = 0.9 + 0.2 * xs[..., None]
        image = image * gradient
        return np.clip(image, 0.0, 1.0)

    def generate_batch(self, labels: np.ndarray, seed: int | None = None) -> np.ndarray:
        """Generate one scene per label; deterministic for a given ``seed``."""
        labels = np.asarray(labels, dtype=int)
        rng = np.random.default_rng(self.seed if seed is None else seed)
        return np.stack([self.generate(int(label), rng) for label in labels])


def generate_scene_dataset(
    samples_per_class: int,
    num_classes: int = 12,
    image_size: int = 64,
    seed: int = 0,
) -> Tuple[np.ndarray, np.ndarray]:
    """Generate a balanced scene dataset.

    Returns
    -------
    scenes:
        Array of shape ``(samples_per_class * num_classes, H, W, 3)``.
    labels:
        Integer labels aligned with ``scenes``.
    """
    if samples_per_class <= 0:
        raise ValueError("samples_per_class must be positive")
    generator = SceneGenerator(image_size=image_size, num_classes=num_classes, seed=seed)
    labels = np.repeat(np.arange(num_classes), samples_per_class)
    rng = np.random.default_rng(seed)
    permutation = rng.permutation(len(labels))
    labels = labels[permutation]
    scenes = generator.generate_batch(labels, seed=seed + 1)
    return scenes, labels
