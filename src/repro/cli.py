"""Command-line interface for the HeteroSwitch reproduction.

Usage (after installation)::

    python -m repro list
    python -m repro run table4 --scale smoke --output results/
    python -m repro run-all --scale smoke --output results/
    python -m repro bench --spec spec.json --output results/
    python -m repro sweep --strategies fedavg heteroswitch --seeds 0 1 2

``list`` prints every experiment id plus the component registries; ``run``
regenerates one table/figure and prints it as markdown (optionally writing a
report directory with CSVs); ``run-all`` iterates over every experiment.
``bench`` executes one declarative :class:`~repro.runtime.RunSpec` (from a
JSON file and/or CLI overrides); ``sweep`` replicates a spec over a strategy
grid and multiple seeds and reports mean ± std summaries.  Both accept
``--executor {serial,thread,process,shm}`` and ``--workers N`` to fan client
training out over a worker pool — results are bit-identical across backends,
only the wall clock changes — plus ``--store DIR``, ``--checkpoint-every N``
and ``--resume`` for durable, crash-safe runs: a killed bench/sweep resumes
from its newest checkpoints with bitwise-identical final results.  ``--trace``
records a run-level trace (``--profile`` adds per-kernel timings) exported
into the run's store entry — results stay bit-identical.  ``runs list`` /
``runs show RUN_ID`` inspect a store; ``trace RUN_ID`` summarizes a stored
run's trace.
"""

from __future__ import annotations

import argparse
import inspect
import json
import sys
import time
from typing import List, Optional, Sequence

from . import __version__
from .devices.latency import LATENCY_REGIMES
from .eval.experiments import EXPERIMENTS, run_experiment
from .eval.reporting import write_report
from .eval.results import ExperimentResult, format_table
from .eval.scale import SCALES
from .nn.engine import COMPUTE_DTYPES
from .runtime import (
    CALLBACK_REGISTRY,
    DATASET_REGISTRY,
    EXECUTOR_REGISTRY,
    MODEL_REGISTRY,
    RUN_KINDS,
    SAMPLER_REGISTRY,
    STRATEGY_REGISTRY,
    Runner,
    RunSpec,
    RunStore,
)
from .store import CheckpointError, RunStoreError

__all__ = ["build_parser", "main"]

# One-line description per experiment id (mirrors DESIGN.md's index).
_DESCRIPTIONS = {
    "fig1": "Fig. 1  — homogeneous vs heterogeneous FL clients",
    "table2": "Table 2 — cross-device model-quality degradation matrix",
    "fig2": "Fig. 2  — cross-device degradation on RAW data",
    "fig3": "Fig. 3  — per-ISP-stage ablation (Table 3 options)",
    "fig4": "Fig. 4  — fairness toward dominant devices",
    "fig5": "Fig. 5  — leave-one-device-out domain generalization",
    "fig7": "Fig. 7  — transform-only vs SWA vs SWAD robustness",
    "table4": "Table 4 — main evaluation (DG worst-case, fairness variance/average)",
    "table5": "Table 5 — FedAvg vs HeteroSwitch across model architectures",
    "table6": "Table 6 — FLAIR-like multi-label evaluation",
    "fig8": "Fig. 8  — synthetic-CIFAR per-device accuracy",
    "ecg": "Sec 6.6 — ECG heart-rate deviation across sensor types",
    "fig9": "Fig. 9  — FL hyperparameter sensitivity",
}

_REGISTRIES = {
    "strategies": STRATEGY_REGISTRY,
    "models": MODEL_REGISTRY,
    "datasets": DATASET_REGISTRY,
    "samplers": SAMPLER_REGISTRY,
    "callbacks": CALLBACK_REGISTRY,
    "executors": EXECUTOR_REGISTRY,
}


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser (exposed separately for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the tables and figures of the HeteroSwitch paper.",
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list available experiments and registries")

    run_parser = subparsers.add_parser("run", help="run one experiment")
    run_parser.add_argument("experiment", choices=sorted(EXPERIMENTS),
                            help="experiment id (table/figure)")
    run_parser.add_argument("--scale", default="smoke", choices=sorted(SCALES),
                            help="scale preset (default: smoke)")
    run_parser.add_argument("--seed", type=int, default=0, help="random seed")
    run_parser.add_argument("--output", default=None,
                            help="directory to write a markdown report and CSV into")

    all_parser = subparsers.add_parser("run-all", help="run every experiment")
    all_parser.add_argument("--scale", default="smoke", choices=sorted(SCALES))
    all_parser.add_argument("--seed", type=int, default=0)
    all_parser.add_argument("--output", default=None,
                            help="directory to write the combined report into")

    bench_parser = subparsers.add_parser(
        "bench", help="execute one declarative RunSpec (JSON file and/or flags)")
    _add_spec_arguments(bench_parser)
    bench_parser.add_argument("--output", default=None,
                              help="directory to write a markdown report and CSV into")

    sweep_parser = subparsers.add_parser(
        "sweep", help="replicate a RunSpec over strategies x seeds")
    _add_spec_arguments(sweep_parser)
    sweep_parser.add_argument("--strategies", nargs="+", default=None,
                              choices=sorted(STRATEGY_REGISTRY),
                              help="strategy grid (default: the spec's strategy)")
    sweep_parser.add_argument("--output", default=None,
                              help="directory to write a markdown report and CSV into")

    runs_parser = subparsers.add_parser(
        "runs", help="inspect the persistent run store")
    runs_sub = runs_parser.add_subparsers(dest="runs_command", required=True)
    runs_list = runs_sub.add_parser("list", help="list runs in the store")
    runs_list.add_argument("--store", default="runs",
                           help="run-store directory (default: runs)")
    runs_show = runs_sub.add_parser("show", help="show one run's manifest and result")
    runs_show.add_argument("run_id", help="run id as printed by 'runs list'")
    runs_show.add_argument("--store", default="runs",
                           help="run-store directory (default: runs)")

    trace_parser = subparsers.add_parser(
        "trace", help="inspect a stored run's trace (phases, kernels, artifacts)")
    trace_parser.add_argument("run_id", help="run id as printed by 'runs list'")
    trace_parser.add_argument("--store", default="runs",
                              help="run-store directory (default: runs)")
    trace_parser.add_argument("--top", type=int, default=10, metavar="K",
                              help="show the K most expensive kernels (default: 10)")

    faults_parser = subparsers.add_parser(
        "faults", help="summarize a stored run's failures, retries and drops")
    faults_parser.add_argument("run_id", help="run id as printed by 'runs list'")
    faults_parser.add_argument("--store", default="runs",
                               help="run-store directory (default: runs)")
    return parser


def _add_spec_arguments(parser: argparse.ArgumentParser) -> None:
    """Flags shared by ``bench`` and ``sweep`` for building/overriding a spec."""
    parser.add_argument("--spec", default=None,
                        help="path to a RunSpec JSON file (default: a fresh spec)")
    parser.add_argument("--kind", default=None, choices=sorted(RUN_KINDS),
                        help="run kind (federated, federated_async, centralized)")
    parser.add_argument("--strategy", default=None, choices=sorted(STRATEGY_REGISTRY))
    parser.add_argument("--dataset", default=None, choices=sorted(DATASET_REGISTRY))
    parser.add_argument("--model", default=None, choices=sorted(MODEL_REGISTRY))
    parser.add_argument("--sampler", default=None, choices=sorted(SAMPLER_REGISTRY))
    parser.add_argument("--scale", default=None, choices=sorted(SCALES))
    parser.add_argument("--seeds", nargs="+", type=int, default=None,
                        help="seeds to replicate over (default: the spec's seeds)")
    parser.add_argument("--rounds", type=int, default=None,
                        help="override the number of communication rounds")
    parser.add_argument("--dtype", default=None, choices=list(COMPUTE_DTYPES),
                        help="compute precision: float64 is the bitwise golden "
                             "path, float32 the faster tolerance-validated path "
                             "(default: the spec's dtype, float64)")
    parser.add_argument("--executor", default=None, choices=sorted(EXECUTOR_REGISTRY),
                        help="client-execution backend (results are bit-identical; "
                             "only wall clock changes)")
    parser.add_argument("--workers", type=int, default=None,
                        help="max parallel client workers (default: one per CPU core)")
    parser.add_argument("--latency-regime", default=None,
                        choices=sorted(LATENCY_REGIMES),
                        help="device latency/churn regime for asynchronous runs "
                             "(kind=federated_async; default: mild)")
    parser.add_argument("--concurrency", type=int, default=None,
                        help="max simultaneously training clients in asynchronous "
                             "runs (default: the config's clients_per_round)")
    parser.add_argument("--capture-cache", default=None, metavar="DIR",
                        help="persistent capture-cache directory: device captures "
                             "are stored on first build and reloaded bitwise-"
                             "identically afterwards (device_capture datasets)")
    parser.add_argument("--store", default=None,
                        help="run-store directory for durable checkpoints/results "
                             "(default: 'runs' when --checkpoint-every/--resume is "
                             "given, otherwise no store)")
    parser.add_argument("--checkpoint-every", type=int, default=None, metavar="N",
                        help="write a crash-safe checkpoint every N rounds "
                             "(0 = final snapshot only)")
    parser.add_argument("--resume", action="store_true",
                        help="skip seeds already completed in the store and "
                             "continue partial seeds from their newest checkpoint")
    parser.add_argument("--trace", action="store_true",
                        help="record a run-level trace (spans for capture, rounds, "
                             "client updates, aggregation, eval) and export it into "
                             "the run's store entry as Chrome trace_event JSON + "
                             "JSONL; results stay bit-identical")
    parser.add_argument("--profile", action="store_true",
                        help="additionally time engine kernels (im2col, linear, "
                             "batch-norm, ...) inside every client update; implies "
                             "--trace")


class SpecError(Exception):
    """A RunSpec could not be assembled from the CLI arguments."""


def _build_runner(args: argparse.Namespace) -> Runner:
    """Runner for bench/sweep, with a store when durability flags ask for one.

    ``--trace``/``--profile`` also imply a store: the exported trace artifacts
    live in the run's store entry.
    """
    store = args.store
    if store is None and (args.checkpoint_every is not None or args.resume
                          or args.trace or args.profile):
        store = "runs"
    try:
        return Runner(store=store, checkpoint_every=args.checkpoint_every)
    except ValueError as exc:
        raise SpecError(str(exc)) from exc


def _build_spec(args: argparse.Namespace) -> RunSpec:
    """Assemble the RunSpec from an optional JSON file plus CLI overrides.

    Raises :class:`SpecError` with a user-facing message (no traceback) when
    the spec file is missing, malformed, or references unknown registry keys.
    """
    try:
        spec = RunSpec.load(args.spec) if args.spec else RunSpec()
    except OSError as exc:
        raise SpecError(f"cannot read spec file: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise SpecError(f"spec file {args.spec} is not valid JSON: {exc}") from exc
    except (KeyError, ValueError) as exc:
        raise SpecError(f"invalid spec {args.spec}: {_message(exc)}") from exc
    try:
        return _apply_spec_overrides(spec, args)
    except (KeyError, ValueError) as exc:
        raise SpecError(f"invalid spec after CLI overrides: {_message(exc)}") from exc


def _apply_spec_overrides(spec: RunSpec, args: argparse.Namespace) -> RunSpec:
    overrides = {}
    for attribute in ("kind", "strategy", "dataset", "model", "sampler", "scale",
                      "seeds", "executor", "concurrency"):
        value = getattr(args, attribute)
        if value is not None:
            overrides[attribute] = value
    if args.latency_regime is not None:
        overrides["latency_kwargs"] = {**spec.latency_kwargs,
                                       "regime": args.latency_regime}
    if args.workers is not None:
        if (args.executor or spec.executor) == "serial":
            raise ValueError(
                "--workers has no effect with the serial executor; "
                "add --executor thread|process|shm (or set executor in the spec)"
            )
        overrides["max_workers"] = args.workers
    config_overrides = dict(spec.config_overrides)
    if args.rounds is not None:
        config_overrides["num_rounds"] = args.rounds
    if args.dtype is not None:
        config_overrides["dtype"] = args.dtype
    if args.profile:
        config_overrides["profile"] = True
    if args.trace or args.profile:
        config_overrides["trace"] = True
    if config_overrides != spec.config_overrides:
        overrides["config_overrides"] = config_overrides
    if args.capture_cache is not None:
        dataset = overrides.get("dataset", spec.dataset)
        builder = DATASET_REGISTRY[dataset]
        if "capture_cache" not in inspect.signature(builder).parameters:
            raise ValueError(
                f"--capture-cache is not supported by dataset '{dataset}'; "
                f"its builder takes no 'capture_cache' argument"
            )
        overrides["dataset_kwargs"] = {**spec.dataset_kwargs,
                                       "capture_cache": args.capture_cache}
    return spec.with_overrides(**overrides) if overrides else spec


def _message(exc: Exception) -> str:
    """KeyError reprs quote their argument; unwrap for clean CLI output."""
    return exc.args[0] if exc.args else str(exc)


def _emit(result: ExperimentResult, output: Optional[str]) -> None:
    print(result.to_markdown())
    if output:
        report = write_report([result], output)
        print(f"Report written to {report}")


def _run_one(experiment_id: str, scale: str, seed: int) -> ExperimentResult:
    start = time.time()
    result = run_experiment(experiment_id, scale=scale, seed=seed)
    elapsed = time.time() - start
    print(result.to_markdown())
    print(f"\n[{experiment_id} completed in {elapsed:.1f}s at scale '{scale}']\n")
    return result


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.command == "list":
        print("experiments:")
        for experiment_id in EXPERIMENTS:
            description = _DESCRIPTIONS.get(experiment_id, "")
            print(f"  {experiment_id:<8s} {description}")
        for kind, registry in _REGISTRIES.items():
            print(f"{kind}: {', '.join(registry.available())}")
        print(f"run kinds: {', '.join(RUN_KINDS)}")
        print(f"latency regimes: {', '.join(LATENCY_REGIMES)}")
        return 0

    if args.command == "run":
        result = _run_one(args.experiment, args.scale, args.seed)
        if args.output:
            report = write_report([result], args.output)
            print(f"Report written to {report}")
        return 0

    if args.command == "run-all":
        results: List[ExperimentResult] = []
        for experiment_id in EXPERIMENTS:
            results.append(_run_one(experiment_id, args.scale, args.seed))
        if args.output:
            report = write_report(results, args.output)
            print(f"Report written to {report}")
        return 0

    if args.command == "bench":
        try:
            spec = _build_spec(args)
            runner = _build_runner(args)
        except SpecError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        start = time.time()
        try:
            result = runner.run(spec, resume=args.resume).to_experiment_result("bench")
        except (ValueError, RunStoreError, CheckpointError) as exc:
            print(f"error: {_message(exc)}", file=sys.stderr)
            return 2
        elapsed = time.time() - start
        _emit(result, args.output)
        if runner.store is not None:
            print(f"\n[run store: {runner.store.root}]")
            _print_trace_paths(runner.store, spec)
        print(f"\n[bench '{spec.label}' completed in {elapsed:.1f}s "
              f"over {len(spec.seeds)} seed(s)]")
        return 0

    if args.command == "sweep":
        try:
            spec = _build_spec(args)
            runner = _build_runner(args)
        except SpecError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        strategies = args.strategies or [spec.strategy]
        rows: List[List[object]] = []
        scalars = {}
        for strategy in strategies:
            try:
                variant = spec.with_overrides(strategy=strategy, name=strategy)
                run_result = runner.run(variant, resume=args.resume)
            except (KeyError, ValueError, RunStoreError, CheckpointError) as exc:
                print(f"error: {_message(exc)}", file=sys.stderr)
                return 2
            for seed, summary in zip(run_result.seeds, run_result.per_seed_summaries()):
                rows.append([strategy, seed, summary["worst_case"],
                             summary["variance"], summary["average"]])
            for key, value in run_result.summary.items():
                if key != "num_seeds":
                    scalars[f"{strategy}_{key}"] = value
        result = ExperimentResult(
            experiment_id="sweep",
            description=f"RunSpec sweep over strategies {list(strategies)} "
                        f"x seeds {list(spec.seeds)}",
            headers=["strategy", "seed", "worst_case", "variance", "average"],
            rows=rows,
            scalars=scalars,
            metadata={"spec": spec.to_dict(), "strategies": list(strategies)},
        )
        _emit(result, args.output)
        if runner.store is not None:
            print(f"\n[run store: {runner.store.root}]")
        return 0

    if args.command == "runs":
        return _runs_command(args)

    if args.command == "trace":
        return _trace_command(args)

    if args.command == "faults":
        return _faults_command(args)

    parser.error(f"unknown command {args.command!r}")  # pragma: no cover
    return 2  # pragma: no cover


def _print_trace_paths(store: RunStore, spec: RunSpec) -> None:
    """After a traced bench, point at the exported artifacts per seed."""
    for seed in spec.seeds:
        entry_path = store.root / store.run_id(spec, seed)
        trace = entry_path / "trace.json"
        if trace.exists():
            print(f"[trace (seed {seed}): {trace} — load in Perfetto / "
                  f"chrome://tracing; 'repro trace {entry_path.name}' for a summary]")


def _print_obs_summary(summary: dict, top: int = 10) -> None:
    """Render an obs_summary.json payload: phases, kernels, client updates."""
    wall = float(summary.get("wall_seconds", 0.0))
    print(f"traced wall clock: {wall:.3f} s")
    phases = summary.get("phases", {})
    if phases:
        rows = [[name, f"{info['seconds']:.3f}",
                 f"{100.0 * info['seconds'] / wall:.1f}%" if wall > 0 else "-",
                 info["count"]]
                for name, info in sorted(phases.items())]
        print(format_table(["phase", "seconds", "share", "spans"], rows))
    updates = summary.get("client_updates", {})
    if updates.get("count"):
        print(f"client updates: {updates['count']} "
              f"(total {updates['seconds']:.3f} s, "
              f"mean {updates['seconds'] / updates['count']:.4f} s)")
    kernels = summary.get("kernels", {})
    if kernels:
        ranked = sorted(kernels.items(), key=lambda kv: -kv[1]["seconds"])[:top]
        rows = [[name, info["calls"], f"{info['seconds']:.3f}",
                 f"{1e3 * info['seconds'] / info['calls']:.3f}"]
                for name, info in ranked]
        print(f"kernels (top {len(ranked)} by total time):")
        print(format_table(["kernel", "calls", "seconds", "ms/call"], rows))


def _trace_command(args: argparse.Namespace) -> int:
    """Implement ``trace RUN_ID``: summarize a stored run's trace artifacts."""
    store = RunStore(args.store)
    try:
        entry = store.get(args.run_id)
    except RunStoreError as exc:
        print(f"error: {_message(exc)}", file=sys.stderr)
        return 2
    if not entry.obs_summary_path.exists():
        print(f"error: run '{args.run_id}' has no trace artifacts; re-run it "
              f"with --trace or --profile", file=sys.stderr)
        return 2
    summary = json.loads(entry.obs_summary_path.read_text(encoding="utf-8"))
    print(f"run: {entry.run_id}")
    _print_obs_summary(summary, top=args.top)
    for label, path in (("chrome trace", entry.trace_path),
                        ("event log", entry.events_path),
                        ("summary", entry.obs_summary_path)):
        if path.exists():
            print(f"{label}: {path}")
    return 0


def _print_fault_summary(faults: dict) -> None:
    """Render a history's ``metadata["faults"]`` block (one run/seed)."""
    kinds = faults.get("failure_kinds", {})
    kind_text = ", ".join(f"{kind}={count}"
                          for kind, count in sorted(kinds.items()))
    print(f"failures: {faults.get('total_failures', 0)}  "
          f"retries: {faults.get('total_retries', 0)}  "
          f"dropped clients: {faults.get('total_dropped', 0)}  "
          f"degraded rounds: {faults.get('degraded_rounds', 0)}")
    if kind_text:
        print(f"failure kinds: {kind_text}")


def _faults_command(args: argparse.Namespace) -> int:
    """Implement ``faults RUN_ID``: per-round fault table for a stored run."""
    store = RunStore(args.store)
    try:
        entry = store.get(args.run_id)
    except RunStoreError as exc:
        print(f"error: {_message(exc)}", file=sys.stderr)
        return 2
    if not entry.has_result():
        print(f"error: run '{args.run_id}' has no result yet", file=sys.stderr)
        return 2
    try:
        result = entry.load_result()
    except RunStoreError as exc:
        print(f"error: {_message(exc)}", file=sys.stderr)
        return 2
    history = result.get("history", {})
    rounds = history.get("rounds", [])
    print(f"run: {entry.run_id}")
    faulty = [r for r in rounds if r.get("num_failures")]
    if not faulty:
        print("no failures recorded (fault-free run, or no fault policy set)")
        return 0
    rows = []
    for record in faulty:
        kinds = ", ".join(f"{kind}={count}" for kind, count
                          in sorted(record.get("failure_kinds", {}).items()))
        dropped = record.get("dropped_clients", [])
        rows.append([record["round_index"], record["num_failures"],
                     record.get("num_retries", 0),
                     ",".join(str(c) for c in dropped) or "-",
                     kinds or "-"])
    print(format_table(["round", "failures", "retries", "dropped", "kinds"],
                       rows))
    faults = history.get("metadata", {}).get("faults")
    if faults:
        _print_fault_summary(faults)
    return 0


def _runs_command(args: argparse.Namespace) -> int:
    """Implement ``runs list`` / ``runs show`` over a :class:`RunStore`."""
    store = RunStore(args.store)
    if args.runs_command == "list":
        entries = store.list_runs()
        if not entries:
            print(f"no runs in store '{args.store}'")
            return 0
        rows: List[List[object]] = []
        for entry in entries:
            try:
                manifest = entry.manifest()
            except RunStoreError as exc:
                print(f"error: {_message(exc)}", file=sys.stderr)
                return 2
            spec = manifest.get("spec", {})
            rows.append([
                entry.run_id,
                manifest.get("status", "?"),
                spec.get("strategy", "?"),
                spec.get("dataset", "?"),
                manifest.get("seed", "?"),
                f"{manifest.get('rounds_completed', '?')}/{manifest.get('num_rounds', '?')}",
                len(entry.checkpoint_files()),
            ])
        print(format_table(
            ["run", "status", "strategy", "dataset", "seed", "rounds", "checkpoints"],
            rows,
        ))
        return 0

    # runs show RUN_ID
    try:
        entry = store.get(args.run_id)
        manifest = entry.manifest()
    except RunStoreError as exc:
        print(f"error: {_message(exc)}", file=sys.stderr)
        return 2
    print(json.dumps(manifest, indent=2, sort_keys=True))
    spec = manifest.get("spec", {})
    dtype = spec.get("config_overrides", {}).get("dtype", "float64")
    print(f"dtype: {dtype}")
    checkpoints = [path.name for path in entry.checkpoint_files()]
    print(f"checkpoints: {', '.join(checkpoints) if checkpoints else '(none)'}")
    if entry.has_result():
        try:
            result = entry.load_result()
        except RunStoreError as exc:
            print(f"error: {_message(exc)}", file=sys.stderr)
            return 2
        print(f"fingerprint: {result['fingerprint']}")
        history = result.get("history", {})
        if history.get("kind") == "federated_async":
            meta = history.get("metadata", {})
            print(f"simulated clock: {meta.get('virtual_hours', 0.0):.3f} h "
                  f"({meta.get('virtual_seconds', 0.0):.1f} s virtual)")
            print(f"commits: {meta.get('num_commits', '?')}  "
                  f"updates: {meta.get('num_updates', '?')}  "
                  f"lost: {meta.get('updates_lost', '?')}")
            print(f"staleness: mean {meta.get('mean_staleness', 0.0):.2f}, "
                  f"max {meta.get('max_staleness', 0)}")
        faults = history.get("metadata", {}).get("faults")
        if faults:
            print("faults:")
            _print_fault_summary(faults)
            print(f"  ('repro faults {entry.run_id}' for the per-round table)")
        print(format_table(["device", "metric"],
                           sorted(result["metrics"].items())))
    if entry.obs_summary_path.exists():
        print("trace:")
        summary = json.loads(entry.obs_summary_path.read_text(encoding="utf-8"))
        _print_obs_summary(summary)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
