"""Command-line interface for the HeteroSwitch reproduction.

Usage (after installation)::

    python -m repro list
    python -m repro run table4 --scale smoke --output results/
    python -m repro run-all --scale smoke --output results/

``list`` prints every experiment id with its description; ``run`` regenerates
one table/figure and prints it as markdown (optionally writing a report
directory with CSVs); ``run-all`` iterates over every experiment.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional, Sequence

from .eval.experiments import EXPERIMENTS, run_experiment
from .eval.reporting import write_report
from .eval.results import ExperimentResult
from .eval.scale import SCALES

__all__ = ["build_parser", "main"]

# One-line description per experiment id (mirrors DESIGN.md's index).
_DESCRIPTIONS = {
    "fig1": "Fig. 1  — homogeneous vs heterogeneous FL clients",
    "table2": "Table 2 — cross-device model-quality degradation matrix",
    "fig2": "Fig. 2  — cross-device degradation on RAW data",
    "fig3": "Fig. 3  — per-ISP-stage ablation (Table 3 options)",
    "fig4": "Fig. 4  — fairness toward dominant devices",
    "fig5": "Fig. 5  — leave-one-device-out domain generalization",
    "fig7": "Fig. 7  — transform-only vs SWA vs SWAD robustness",
    "table4": "Table 4 — main evaluation (DG worst-case, fairness variance/average)",
    "table5": "Table 5 — FedAvg vs HeteroSwitch across model architectures",
    "table6": "Table 6 — FLAIR-like multi-label evaluation",
    "fig8": "Fig. 8  — synthetic-CIFAR per-device accuracy",
    "ecg": "Sec 6.6 — ECG heart-rate deviation across sensor types",
    "fig9": "Fig. 9  — FL hyperparameter sensitivity",
}


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser (exposed separately for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the tables and figures of the HeteroSwitch paper.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list available experiments")

    run_parser = subparsers.add_parser("run", help="run one experiment")
    run_parser.add_argument("experiment", choices=sorted(EXPERIMENTS),
                            help="experiment id (table/figure)")
    run_parser.add_argument("--scale", default="smoke", choices=sorted(SCALES),
                            help="scale preset (default: smoke)")
    run_parser.add_argument("--seed", type=int, default=0, help="random seed")
    run_parser.add_argument("--output", default=None,
                            help="directory to write a markdown report and CSV into")

    all_parser = subparsers.add_parser("run-all", help="run every experiment")
    all_parser.add_argument("--scale", default="smoke", choices=sorted(SCALES))
    all_parser.add_argument("--seed", type=int, default=0)
    all_parser.add_argument("--output", default=None,
                            help="directory to write the combined report into")
    return parser


def _run_one(experiment_id: str, scale: str, seed: int) -> ExperimentResult:
    start = time.time()
    result = run_experiment(experiment_id, scale=scale, seed=seed)
    elapsed = time.time() - start
    print(result.to_markdown())
    print(f"\n[{experiment_id} completed in {elapsed:.1f}s at scale '{scale}']\n")
    return result


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.command == "list":
        for experiment_id in EXPERIMENTS:
            description = _DESCRIPTIONS.get(experiment_id, "")
            print(f"{experiment_id:<8s} {description}")
        return 0

    if args.command == "run":
        result = _run_one(args.experiment, args.scale, args.seed)
        if args.output:
            report = write_report([result], args.output)
            print(f"Report written to {report}")
        return 0

    if args.command == "run-all":
        results: List[ExperimentResult] = []
        for experiment_id in EXPERIMENTS:
            results.append(_run_one(experiment_id, args.scale, args.seed))
        if args.output:
            report = write_report(results, args.output)
            print(f"Report written to {report}")
        return 0

    parser.error(f"unknown command {args.command!r}")  # pragma: no cover
    return 2  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
