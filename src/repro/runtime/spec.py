"""Declarative, serializable description of one experiment run.

A :class:`RunSpec` pins down everything an FL (or centralized) run needs —
strategy, model, dataset/partition, client sampler, config overrides, attached
callbacks and the seeds to replicate over — as plain strings and JSON-safe
values resolved against the component registries.  Specs round-trip through
``to_dict``/``from_dict`` and ``to_json``/``from_json``, so every scenario is
a config file rather than a code fork::

    spec = RunSpec(strategy="heteroswitch", dataset="device_capture",
                   scale="smoke", seeds=[0, 1, 2])
    RunSpec.from_json(spec.to_json()) == spec    # True
"""

from __future__ import annotations

import copy
import dataclasses
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Union

from ..eval.scale import ExperimentScale, get_scale
from ..fl.callbacks import CALLBACK_REGISTRY
from ..fl.config import FLConfig
from ..fl.execution import EXECUTOR_REGISTRY, validate_max_workers
from ..fl.sampling import SAMPLER_REGISTRY
from ..fl.strategies import ASYNC_STRATEGY_NAMES, STRATEGY_REGISTRY
from ..nn.models import MODEL_REGISTRY

__all__ = ["RunSpec", "RUN_KINDS", "spec_scale"]


def spec_scale(scale: "str | ExperimentScale") -> "str | Dict[str, Any]":
    """Express a runner ``scale`` argument in :attr:`RunSpec.scale` form.

    Preset names pass through as strings; custom :class:`ExperimentScale`
    instances become their (JSON-serializable) field dict.
    """
    if isinstance(scale, str):
        return scale
    return dataclasses.asdict(get_scale(scale))

RUN_KINDS = ("federated", "federated_async", "centralized")

# latency_kwargs keys a federated_async spec may carry.  ``regime`` names a
# preset from repro.devices.latency.LATENCY_REGIMES.
_LATENCY_KWARGS_FIELDS = ("regime",)

_FL_CONFIG_FIELDS = {f.name for f in dataclasses.fields(FLConfig)}
_SCALE_FIELDS = {f.name for f in dataclasses.fields(ExperimentScale)}


@dataclass
class RunSpec:
    """One experiment run as data.

    Attributes
    ----------
    name:
        Optional human-readable label (used in reports).
    kind:
        ``"federated"`` (the synchronous FL loop), ``"federated_async"``
        (the event-driven asynchronous loop with a simulated clock), or
        ``"centralized"`` (single-model SGD, e.g. the Fig. 7 SWA/SWAD
        comparison).
    strategy / strategy_kwargs:
        FL strategy registry key and constructor arguments (federated kinds
        only).  Asynchronous strategies (``fedasync``/``fedbuff``) require
        ``kind="federated_async"`` and vice versa.
    model:
        Model registry key; ``None`` defers to the dataset's / scale's default.
    dataset / dataset_kwargs:
        Dataset-builder registry key and arguments (e.g. ``devices=[...]``).
    partition_kwargs:
        Extra arguments for client partitioning (e.g. ``exclude=[...]``).
    sampler / sampler_kwargs:
        Client-sampler registry key and constructor arguments.
    executor / max_workers:
        Client-execution backend (``"serial"``, ``"thread"``, ``"process"``, ``"shm"``)
        and its worker cap (``None`` = one per CPU core).  Every backend
        produces bit-identical results, so this is purely a wall-clock knob
        (federated only).
    scale:
        Scale preset name, or a dict of :class:`ExperimentScale` fields for a
        fully custom scale.
    config_overrides:
        :class:`FLConfig` fields overriding the scale-derived defaults.
    callbacks:
        Mapping of callback registry key to constructor kwargs, attached to
        every seed's run.
    latency_kwargs:
        Asynchronous-only device-latency options; currently ``regime``
        (a :data:`repro.devices.latency.LATENCY_REGIMES` preset name,
        default ``"mild"``).
    concurrency:
        Asynchronous-only cap on simultaneously training clients
        (``None`` = the config's ``clients_per_round``).
    trainer_kwargs:
        Centralized-only options (``averager``, ``transform_degree``,
        ``epochs``...).
    seeds:
        Seeds to replicate the run over (multi-seed sweeps).
    """

    name: Optional[str] = None
    kind: str = "federated"
    strategy: str = "fedavg"
    strategy_kwargs: Dict[str, Any] = field(default_factory=dict)
    model: Optional[str] = None
    dataset: str = "device_capture"
    dataset_kwargs: Dict[str, Any] = field(default_factory=dict)
    partition_kwargs: Dict[str, Any] = field(default_factory=dict)
    sampler: str = "uniform"
    sampler_kwargs: Dict[str, Any] = field(default_factory=dict)
    executor: str = "serial"
    max_workers: Optional[int] = None
    scale: Union[str, Dict[str, Any]] = "smoke"
    config_overrides: Dict[str, Any] = field(default_factory=dict)
    callbacks: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    latency_kwargs: Dict[str, Any] = field(default_factory=dict)
    concurrency: Optional[int] = None
    trainer_kwargs: Dict[str, Any] = field(default_factory=dict)
    seeds: List[int] = field(default_factory=lambda: [0])

    def __post_init__(self) -> None:
        self.validate()

    # -- validation -------------------------------------------------------- #
    def validate(self) -> None:
        """Check every registry key and structural field, with helpful errors."""
        # Local import: the dataset registry lives one layer up to keep this
        # module free of heavyweight data/eval dependencies.
        from .registries import DATASET_REGISTRY

        if self.kind not in RUN_KINDS:
            raise ValueError(f"kind must be one of {RUN_KINDS}, got '{self.kind}'")
        if self.kind in ("federated", "federated_async"):
            _require(STRATEGY_REGISTRY, self.strategy)
            _require(EXECUTOR_REGISTRY, self.executor)
            validate_max_workers(self.max_workers)
            for callback_name in self.callbacks:
                _require(CALLBACK_REGISTRY, callback_name)
            unknown = set(self.config_overrides) - _FL_CONFIG_FIELDS
            if unknown:
                raise ValueError(
                    f"unknown FLConfig override(s) {sorted(unknown)}; "
                    f"valid fields: {sorted(_FL_CONFIG_FIELDS)}"
                )
            if self.trainer_kwargs:
                raise ValueError(
                    "trainer_kwargs only applies to centralized specs; federated "
                    "runs configure training via config_overrides"
                )
        if self.kind == "federated":
            _require(SAMPLER_REGISTRY, self.sampler)
            if self.strategy in ASYNC_STRATEGY_NAMES:
                raise ValueError(
                    f"strategy '{self.strategy}' is asynchronous-only; "
                    f"use kind='federated_async'"
                )
            ignored = [name for name in ("latency_kwargs",) if getattr(self, name)]
            if self.concurrency is not None:
                ignored.append("concurrency")
            if ignored:
                raise ValueError(
                    f"synchronous federated specs do not use {sorted(ignored)}; "
                    f"these fields require kind='federated_async'"
                )
        elif self.kind == "federated_async":
            if self.strategy not in ASYNC_STRATEGY_NAMES:
                raise ValueError(
                    f"kind='federated_async' requires an asynchronous strategy "
                    f"{sorted(ASYNC_STRATEGY_NAMES)}, got '{self.strategy}'"
                )
            # The event loop dispatches to whichever clients are online and
            # idle — there is no per-round cohort to sample.
            if self.sampler != RunSpec.sampler or self.sampler_kwargs:
                raise ValueError(
                    "federated_async specs do not use sampler/sampler_kwargs; "
                    "client scheduling is driven by the latency/availability "
                    "models (latency_kwargs)"
                )
            unknown = set(self.latency_kwargs) - set(_LATENCY_KWARGS_FIELDS)
            if unknown:
                raise ValueError(
                    f"unknown latency_kwargs {sorted(unknown)}; "
                    f"valid keys: {sorted(_LATENCY_KWARGS_FIELDS)}"
                )
            if "regime" in self.latency_kwargs:
                # Local import: the devices package is independent of runtime.
                from ..devices.latency import get_regime

                get_regime(self.latency_kwargs["regime"])
            if self.concurrency is not None and (
                isinstance(self.concurrency, bool)
                or not isinstance(self.concurrency, int)
                or self.concurrency <= 0
            ):
                raise ValueError(
                    f"concurrency must be a positive integer or None, "
                    f"got {self.concurrency!r}"
                )
        else:
            # Centralized runs have no FL loop: reject fields that would be
            # silently ignored instead of letting a wrong run look valid.
            ignored = [name for name in
                       ("strategy_kwargs", "config_overrides", "callbacks",
                        "sampler_kwargs", "partition_kwargs",
                        "latency_kwargs") if getattr(self, name)]
            if self.strategy != RunSpec.strategy:
                ignored.append("strategy")
            if self.sampler != RunSpec.sampler:
                ignored.append("sampler")
            if self.executor != RunSpec.executor:
                ignored.append("executor")
            if self.max_workers is not None:
                ignored.append("max_workers")
            if self.concurrency is not None:
                ignored.append("concurrency")
            if ignored:
                raise ValueError(
                    f"centralized specs do not use {sorted(ignored)}; training is "
                    f"configured via trainer_kwargs (epochs, batch_size, "
                    f"learning_rate, transform_degree, averager)"
                )
        if self.model is not None:
            _require(MODEL_REGISTRY, self.model)
        _require(DATASET_REGISTRY, self.dataset)
        if isinstance(self.scale, dict):
            missing = _SCALE_FIELDS - set(self.scale)
            extra = set(self.scale) - _SCALE_FIELDS
            if missing or extra:
                raise ValueError(
                    f"custom scale dict must supply exactly the ExperimentScale fields; "
                    f"missing {sorted(missing)}, unexpected {sorted(extra)}"
                )
        else:
            get_scale(self.scale)  # raises with the available preset names
        if not self.seeds:
            raise ValueError("seeds must not be empty")
        if not all(isinstance(seed, int) for seed in self.seeds):
            raise ValueError("seeds must be integers")

    def resolve_scale(self) -> ExperimentScale:
        """The concrete :class:`ExperimentScale` this spec runs at."""
        if isinstance(self.scale, dict):
            return ExperimentScale(**self.scale)
        return get_scale(self.scale)

    # -- derivation --------------------------------------------------------- #
    def with_overrides(self, **kwargs) -> "RunSpec":
        """A deep copy with selected fields replaced (specs stay immutable-ish)."""
        return dataclasses.replace(copy.deepcopy(self), **kwargs)

    # -- serialization ------------------------------------------------------ #
    def to_dict(self) -> Dict[str, Any]:
        """Plain-data dict representation (deep-copied, JSON-compatible)."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "RunSpec":
        """Inverse of :meth:`to_dict`; unknown keys raise a listing error."""
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown RunSpec field(s) {sorted(unknown)}; valid fields: {sorted(known)}"
            )
        return cls(**copy.deepcopy(data))

    def to_json(self, indent: int = 2) -> str:
        """JSON rendering of :meth:`to_dict`."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "RunSpec":
        """Parse a spec from its JSON rendering."""
        return cls.from_dict(json.loads(text))

    def save(self, path) -> None:
        """Write the spec as JSON to ``path``."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json() + "\n")

    @classmethod
    def load(cls, path) -> "RunSpec":
        """Read a spec from a JSON file."""
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_json(handle.read())

    # -- display ------------------------------------------------------------ #
    @property
    def label(self) -> str:
        """Short human-readable identifier for tables and reports."""
        if self.name:
            return self.name
        if self.kind == "centralized":
            return f"centralized/{self.dataset}"
        return f"{self.strategy}/{self.dataset}"


def _require(registry, name: str) -> None:
    """Validate a registry key, re-raising the registry's listing error."""
    registry[name]  # KeyError lists available keys
