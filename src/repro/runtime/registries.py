"""Dataset-builder registry and the bundle contract the Runner consumes.

Each entry of :data:`DATASET_REGISTRY` is a builder ``(scale, seed, **kwargs)
-> DataBundle`` producing per-device train/test sets plus the metadata the
:class:`~repro.runtime.runner.Runner` needs to assemble a model factory and a
client population.  The builders wrap the synthetic dataset families of
:mod:`repro.data`, with the same parameter derivations the legacy experiment
runners used — so a spec-driven run reproduces the corresponding table's
numbers exactly.

The strategy / model / sampler / callback registries defined elsewhere are
re-exported here so :mod:`repro.runtime` is a one-stop shop for everything a
:class:`~repro.runtime.spec.RunSpec` can reference.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dataclass_field
from typing import Any, Callable, Dict, List, Optional, Sequence

import numpy as np

from ..core.transforms import default_isp_transform, ecg_transform
from ..data.capture import build_device_datasets
from ..data.cifar_synthetic import SyntheticCifarConfig, build_synthetic_cifar
from ..data.dataset import ArrayDataset, hwc_to_nchw, train_test_split
from ..data.ecg import build_ecg_datasets
from ..data.flair_synthetic import FlairConfig, build_flair_dataset
from ..data.scenes import generate_scene_dataset
from ..devices.profiles import DEVICE_NAMES, market_shares
from ..eval.scale import ExperimentScale
from ..fl.callbacks import CALLBACK_REGISTRY
from ..fl.execution import EXECUTOR_REGISTRY
from ..fl.sampling import SAMPLER_REGISTRY
from ..fl.strategies import STRATEGY_REGISTRY
from ..nn.models import MODEL_REGISTRY
from ..registry import Registry

__all__ = [
    "DataBundle",
    "DATASET_REGISTRY",
    "build_dataset",
    "STRATEGY_REGISTRY",
    "MODEL_REGISTRY",
    "SAMPLER_REGISTRY",
    "CALLBACK_REGISTRY",
    "EXECUTOR_REGISTRY",
]

# The strategies that accept HeteroSwitch's ``transform`` constructor argument;
# dataset bundles may supply a modality-appropriate default for them (the ECG
# datasets need the 1-D Gaussian-filter transform instead of the ISP one).
_TRANSFORM_STRATEGIES = ("heteroswitch", "isp_transform", "isp_swad")


@dataclass
class DataBundle:
    """Everything the Runner needs to know about a built dataset family."""

    train: Dict[str, ArrayDataset]
    test: Dict[str, ArrayDataset]
    task: str
    num_classes: int
    image_size: int
    in_channels: int = 3
    shares: Optional[Dict[str, float]] = None
    default_model: Optional[str] = None
    strategy_defaults: Dict[str, Dict[str, Any]] = dataclass_field(default_factory=dict)
    metadata: Dict[str, Any] = dataclass_field(default_factory=dict)

    def devices(self) -> List[str]:
        return list(self.train.keys())


DATASET_REGISTRY: Registry[DataBundle] = Registry("dataset")


def build_dataset(name: str, scale: ExperimentScale, seed: int, **kwargs) -> DataBundle:
    """Build the named dataset family at the given scale and seed."""
    return DATASET_REGISTRY.create(name, scale=scale, seed=seed, **kwargs)


@DATASET_REGISTRY.register("device_capture")
def _device_capture(
    scale: ExperimentScale,
    seed: int,
    devices: Optional[Sequence[str]] = None,
    raw: bool = False,
    shares: str = "market",
    capture_cache: Optional[str] = None,
) -> DataBundle:
    """The Table 1 smartphone-capture dataset (Tables 4/5, Figs 1-5, 9).

    ``shares`` selects the partition weighting: ``"market"`` follows the
    Table 1 market shares, ``"uniform"`` weights every device equally.
    ``capture_cache`` names a directory where per-device captures are
    persisted and reloaded bitwise-identically (the CLI's
    ``--capture-cache``); it never changes the data, only the build cost.
    """
    device_names = list(devices) if devices else list(DEVICE_NAMES)
    bundle = build_device_datasets(
        samples_per_class_train=scale.samples_per_class_train,
        samples_per_class_test=scale.samples_per_class_test,
        num_classes=scale.num_classes,
        image_size=scale.image_size,
        scene_size=scale.scene_size,
        devices=device_names,
        raw=raw,
        seed=seed,
        cache=capture_cache,
    )
    if shares == "market":
        share_map = {name: value for name, value in market_shares().items()
                     if name in device_names}
    elif shares == "uniform":
        share_map = {name: 1.0 for name in device_names}
    else:
        raise ValueError(f"shares must be 'market' or 'uniform', got '{shares}'")
    return DataBundle(
        train=bundle.train,
        test=bundle.test,
        task="classification",
        num_classes=bundle.num_classes,
        image_size=bundle.image_size,
        shares=share_map,
        metadata={"devices": device_names, "raw": raw},
    )


@DATASET_REGISTRY.register("synthetic_cifar")
def _synthetic_cifar(
    scale: ExperimentScale,
    seed: int,
    num_classes: Optional[int] = None,
    num_device_types: Optional[int] = None,
) -> DataBundle:
    """The Fig. 8 synthetic-CIFAR heterogeneity dataset."""
    config = SyntheticCifarConfig(
        num_classes=num_classes if num_classes is not None else (
            5 if scale.name == "smoke" else 20
        ),
        samples_per_class_train=scale.samples_per_class_train * 2,
        samples_per_class_test=scale.samples_per_class_test * 2,
        image_size=scale.image_size,
        num_device_types=num_device_types if num_device_types is not None else (
            4 if scale.name == "smoke" else 10
        ),
        seed=seed,
    )
    train_sets, test_sets, devices = build_synthetic_cifar(config)
    return DataBundle(
        train=train_sets,
        test=test_sets,
        task="classification",
        num_classes=config.num_classes,
        image_size=config.image_size,
        default_model="simple_mlp" if scale.name == "smoke" else "simple_cnn",
        metadata={"num_device_types": config.num_device_types,
                  "devices": [d.name for d in devices]},
    )


@DATASET_REGISTRY.register("flair")
def _flair(
    scale: ExperimentScale,
    seed: int,
    num_labels: Optional[int] = None,
    num_device_types: Optional[int] = None,
) -> DataBundle:
    """The Table 6 FLAIR-like multi-label dataset."""
    config = FlairConfig(
        num_labels=num_labels if num_labels is not None else (
            6 if scale.name == "smoke" else 8
        ),
        num_device_types=num_device_types if num_device_types is not None else (
            6 if scale.name == "smoke" else 15
        ),
        samples_per_device_train=max(scale.samples_per_class_train * 3, 9),
        samples_per_device_test=max(scale.samples_per_class_test * 3, 6),
        image_size=scale.image_size,
        seed=seed,
    )
    train_sets, test_sets, devices = build_flair_dataset(config)
    return DataBundle(
        train=train_sets,
        test=test_sets,
        task="multilabel",
        num_classes=config.num_labels,
        image_size=config.image_size,
        default_model="simple_mlp" if scale.name == "smoke" else "multilabel_cnn",
        metadata={"num_device_types": config.num_device_types,
                  "devices": [d.name for d in devices]},
    )


@DATASET_REGISTRY.register("ecg")
def _ecg(
    scale: ExperimentScale,
    seed: int,
    window_size: int = 64,
) -> DataBundle:
    """The Section 6.6 multi-sensor ECG heart-rate regression dataset."""
    train_sets, test_sets, sensors = build_ecg_datasets(
        samples_per_sensor_train=max(scale.samples_per_class_train * 6, 24),
        samples_per_sensor_test=max(scale.samples_per_class_test * 6, 12),
        window_size=window_size,
        seed=seed,
    )
    return DataBundle(
        train=train_sets,
        test=test_sets,
        task="regression",
        num_classes=1,
        image_size=window_size,
        in_channels=1,
        default_model="ecg_regressor",
        # HeteroSwitch's ISP transform is image-specific; the 1-D task needs
        # the random-Gaussian-filter transform instead.
        strategy_defaults={name: {"transform": ecg_transform()}
                           for name in _TRANSFORM_STRATEGIES},
        metadata={"window_size": window_size, "sensors": [s.name for s in sensors]},
    )


def _resize_nearest(images: np.ndarray, size: int) -> np.ndarray:
    """Nearest-neighbour downsample of an (N, H, W, C) batch to size x size."""
    n, h, w, c = images.shape
    if h == size and w == size:
        return images
    rows = np.linspace(0, h - 1, size).round().astype(int)
    cols = np.linspace(0, w - 1, size).round().astype(int)
    return images[:, rows][:, :, cols]


@DATASET_REGISTRY.register("scenes")
def _scenes(
    scale: ExperimentScale,
    seed: int,
    test_fraction: float = 0.3,
) -> DataBundle:
    """The original (pre-capture) procedural scenes, for centralized runs.

    Used by the Fig. 7 robustness study: one pooled train/test split of the
    scene images themselves, before any device capture.
    """
    scenes, labels = generate_scene_dataset(
        scale.samples_per_class_train + scale.samples_per_class_test,
        num_classes=scale.num_classes,
        image_size=scale.scene_size,
        seed=seed,
    )
    scenes = _resize_nearest(scenes, scale.image_size)
    dataset = ArrayDataset(hwc_to_nchw(scenes), labels)
    train_set, test_set = train_test_split(dataset, test_fraction=test_fraction, seed=seed)
    return DataBundle(
        train={"scenes": train_set},
        test={"scenes": test_set},
        task="classification",
        num_classes=scale.num_classes,
        image_size=scale.image_size,
        metadata={"test_fraction": test_fraction},
    )


def default_train_transform(degree: float) -> Callable:
    """The low-degree random ISP transform used for centralized training."""
    return default_isp_transform(wb_degree=degree, gamma_degree=degree)
