"""Composable experiment runner executing declarative :class:`RunSpec`\\ s.

The :class:`Runner` turns a spec into concrete components — dataset bundle,
model factory, client population, strategy, sampler, callbacks — runs every
requested seed, and returns a :class:`RunResult` with per-seed histories and a
cross-seed summary.  Dataset bundles are memoised per ``(dataset, scale, seed,
kwargs)``, so sweeping strategies or hyperparameters over one dataset builds
the data once (the legacy runners' behaviour) instead of once per run.

Attach a :class:`~repro.store.RunStore` (``Runner(store=..., checkpoint_every=
...)``) to make runs durable: every federated seed gets a manifest + periodic
crash-safe checkpoints + a result JSON in the store, and ``run(spec,
resume=True)`` skips seeds whose results are already stored and continues
partial seeds from their newest checkpoint — with final weights and metrics
bitwise identical to an uninterrupted run.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

import numpy as np

from ..core.swad import SWAAverager, SWADAverager
from ..eval.centralized import evaluate_on_devices, train_centralized
from ..eval.factories import make_model_factory
from ..eval.results import ExperimentResult
from ..eval.scale import ExperimentScale
from ..fl.callbacks import CheckpointCallback
from ..fl.config import FLConfig
from ..fl.metrics import summarize_per_device
from ..fl.async_sim import AsyncFederatedSimulation
from ..fl.simulation import FederatedSimulation, FLHistory, history_from_dict
from ..fl.strategies import create_strategy
from ..data.partition import build_client_specs
from ..nn.layers import Module
from ..obs import Tracer, export_run_obs
from ..store import CheckpointError, RunStore
from .registries import (
    CALLBACK_REGISTRY,
    EXECUTOR_REGISTRY,
    SAMPLER_REGISTRY,
    DataBundle,
    build_dataset,
)
from .registries import default_train_transform
from .spec import RunSpec

__all__ = ["Runner", "RunResult", "run_spec"]

_SUMMARY_KEYS = ("worst_case", "variance", "average")


def _check_checkpoint_dtype(snapshot: Dict[str, Any], dtype_name: str) -> None:
    """Refuse to resume a run whose checkpoint was written under another dtype.

    Checkpoints are dtype-exact (the npz codec preserves array dtypes), so a
    checkpoint written by a float32 run cannot seed a float64 run (or vice
    versa) without silently changing the numerics mid-run.  Both the sync and
    async snapshot formats carry the weights under ``"global_state"``.
    """
    expected = np.dtype(dtype_name)
    state = snapshot.get("global_state") or {}
    wrong = sorted({str(np.asarray(value).dtype) for value in state.values()}
                   - {str(expected)})
    if wrong:
        raise CheckpointError(
            f"checkpoint holds {', '.join(wrong)} weights but this run's config "
            f"dtype is '{dtype_name}'; cross-dtype resume is refused — restart "
            f"the run fresh or keep the original dtype")


@dataclass
class RunResult:
    """Outcome of executing one :class:`RunSpec` across all its seeds."""

    spec: RunSpec
    seeds: List[int]
    metrics: List[Dict[str, float]]
    histories: List[FLHistory] = field(default_factory=list)
    models: List[Module] = field(default_factory=list)
    summary: Dict[str, float] = field(default_factory=dict)

    @property
    def history(self) -> FLHistory:
        """The single-seed history (raises when the spec ran several seeds)."""
        if len(self.histories) != 1:
            raise ValueError(f"expected exactly one history, have {len(self.histories)}")
        return self.histories[0]

    def per_seed_summaries(self) -> List[Dict[str, float]]:
        """Worst-case / variance / average of each seed's per-device metrics."""
        return [summarize_per_device(metric) for metric in self.metrics]

    def to_experiment_result(self, experiment_id: str = "bench") -> ExperimentResult:
        """Render as the uniform result record the reporting layer consumes."""
        rows: List[List[object]] = []
        for seed, summary in zip(self.seeds, self.per_seed_summaries()):
            rows.append([self.spec.label, seed, summary["worst_case"],
                         summary["variance"], summary["average"]])
        return ExperimentResult(
            experiment_id=experiment_id,
            description=f"RunSpec '{self.spec.label}' over seeds {self.seeds}",
            headers=["run", "seed", "worst_case", "variance", "average"],
            rows=rows,
            scalars=dict(self.summary),
            metadata={"spec": self.spec.to_dict()},
        )


class Runner:
    """Executes :class:`RunSpec`\\ s, memoising dataset construction.

    One runner instance can execute many specs; bundles are cached by
    ``(dataset, scale, seed, dataset_kwargs)`` so grids over strategies,
    models or FL hyperparameters rebuild nothing but the runs themselves.

    Parameters
    ----------
    cache_datasets:
        Memoise dataset bundles across runs (default on).
    store:
        Optional :class:`~repro.store.RunStore` (or a path to create one at)
        making federated runs durable: manifests, checkpoints and results are
        persisted per ``(spec, seed)``, and :meth:`run` with ``resume=True``
        picks completed seeds up from the store and partial seeds up from
        their newest checkpoint.
    checkpoint_every:
        Checkpoint cadence in rounds for stored runs (``None``/``0`` writes
        only the final snapshot).
    """

    def __init__(self, cache_datasets: bool = True,
                 store: "RunStore | str | None" = None,
                 checkpoint_every: Optional[int] = None) -> None:
        self.cache_datasets = cache_datasets
        if store is not None and not isinstance(store, RunStore):
            store = RunStore(store)
        self.store = store
        if checkpoint_every is not None and (
            isinstance(checkpoint_every, bool)
            or not isinstance(checkpoint_every, int)
            or checkpoint_every < 0
        ):
            raise ValueError(
                f"checkpoint_every must be a non-negative integer or None, "
                f"got {checkpoint_every!r}"
            )
        self.checkpoint_every = checkpoint_every
        self._bundle_cache: Dict[str, DataBundle] = {}

    # -- data --------------------------------------------------------------- #
    def build_bundle(self, spec: RunSpec, seed: int) -> DataBundle:
        """Build (or fetch from cache) the spec's dataset bundle for ``seed``."""
        scale = spec.resolve_scale()
        key = json.dumps(
            {"dataset": spec.dataset, "scale": spec.scale, "seed": seed,
             "kwargs": spec.dataset_kwargs},
            sort_keys=True, default=str,
        )
        if self.cache_datasets and key in self._bundle_cache:
            return self._bundle_cache[key]
        bundle = build_dataset(spec.dataset, scale=scale, seed=seed, **spec.dataset_kwargs)
        if self.cache_datasets:
            self._bundle_cache[key] = bundle
        return bundle

    # -- execution ---------------------------------------------------------- #
    def run(self, spec: RunSpec, resume: bool = False) -> RunResult:
        """Execute every seed of the spec and summarise across seeds.

        With ``resume=True`` (requires a store), seeds whose results are
        already in the store are loaded instead of re-run, and partially
        completed seeds continue from their newest checkpoint.
        """
        spec.validate()
        if resume and self.store is None:
            raise ValueError("resume=True requires a Runner constructed with a store")
        if self.store is not None and spec.kind == "centralized":
            raise ValueError(
                "the run store supports federated specs; run centralized "
                "specs with a store-less Runner"
            )
        result = RunResult(spec=spec, seeds=list(spec.seeds), metrics=[])
        for seed in spec.seeds:
            if spec.kind == "centralized":
                model, metrics = self._run_centralized(spec, seed)
                result.models.append(model)
            else:
                history = self.run_seed(spec, seed, resume=resume)
                result.histories.append(history)
                metrics = history.per_device_metric
            result.metrics.append(metrics)
        result.summary = self._summarize(result)
        return result

    def run_seed(self, spec: RunSpec, seed: int, resume: bool = False) -> FLHistory:
        """Execute one federated run of the spec at ``seed``.

        When the runner has a store, the run is checkpointed into it and its
        result persisted on completion; ``resume=True`` returns the stored
        history for completed runs and restores partial runs from their
        newest checkpoint before continuing.
        """
        if spec.kind not in ("federated", "federated_async"):
            raise ValueError(f"run_seed requires a federated spec, got kind '{spec.kind}'")
        scale = spec.resolve_scale()

        # Consult the store before building anything expensive: resuming a
        # completed seed must not pay for dataset construction.
        entry = snapshot = None
        if self.store is not None:
            num_rounds = int(spec.config_overrides.get("num_rounds", scale.num_rounds))
            entry = self.store.open_run(spec, seed, extra={"num_rounds": num_rounds})
            if resume:
                if entry.has_result():
                    return history_from_dict(entry.load_result()["history"])
                snapshot = entry.load_checkpoint()
                if snapshot is not None:
                    _check_checkpoint_dtype(
                        snapshot, spec.config_overrides.get("dtype", "float64"))

        # Tracing/profiling are result-neutral config overrides; the tracer is
        # created here (not inside the simulation) so it also covers dataset
        # capture and can be exported into the store entry after the run.
        tracer = None
        if spec.config_overrides.get("trace") or spec.config_overrides.get("profile"):
            tracer = Tracer()

        if tracer is not None:
            with tracer.span("capture", dataset=spec.dataset, seed=seed):
                bundle = self.build_bundle(spec, seed)
        else:
            bundle = self.build_bundle(spec, seed)
        config = self._build_config(spec, scale, bundle, seed)
        factory = make_model_factory(
            scale, bundle.num_classes, bundle.image_size,
            in_channels=bundle.in_channels,
            model_name=spec.model or bundle.default_model,
            seed=seed,
        )
        clients = build_client_specs(
            bundle.train, num_clients=config.num_clients, shares=bundle.shares,
            seed=seed, **spec.partition_kwargs,
        )
        strategy_kwargs = {**bundle.strategy_defaults.get(spec.strategy, {}),
                           **spec.strategy_kwargs}
        strategy = create_strategy(spec.strategy, **strategy_kwargs)
        callbacks = [CALLBACK_REGISTRY.create(name, **kwargs)
                     for name, kwargs in spec.callbacks.items()]
        if entry is not None:
            callbacks.append(CheckpointCallback(entry.checkpoint_dir,
                                                every=self.checkpoint_every or 0))
        # The executor is created last so nothing can fail between its
        # construction and the try/finally that guarantees it is closed —
        # including exceptions raised by callbacks or the simulation itself.
        executor = EXECUTOR_REGISTRY.create(spec.executor, max_workers=spec.max_workers)
        try:
            if spec.kind == "federated_async":
                simulation = AsyncFederatedSimulation(
                    factory, clients, bundle.test, strategy, config,
                    latency=spec.latency_kwargs.get("regime", "mild"),
                    concurrency=spec.concurrency,
                    callbacks=callbacks, executor=executor,
                )
            else:
                sampler = SAMPLER_REGISTRY.create(spec.sampler, **spec.sampler_kwargs)
                simulation = FederatedSimulation(
                    factory, clients, bundle.test, strategy, config,
                    sampler=sampler, callbacks=callbacks, executor=executor,
                )
            if tracer is not None:
                simulation.tracer = tracer
            if snapshot is not None:
                simulation.restore(snapshot)
            history = simulation.run()
        finally:
            executor.close()
        if entry is not None:
            entry.save_result(history, final_state=simulation.global_state)
            if tracer is not None:
                export_run_obs(entry.path, tracer,
                               metadata={"run_id": entry.run_id, "seed": seed})
        return history

    def _build_config(self, spec: RunSpec, scale: ExperimentScale,
                      bundle: DataBundle, seed: int) -> FLConfig:
        settings: Dict[str, Any] = dict(
            num_clients=scale.num_clients,
            clients_per_round=min(scale.clients_per_round, scale.num_clients),
            num_rounds=scale.num_rounds,
            local_epochs=scale.local_epochs,
            batch_size=scale.batch_size,
            learning_rate=scale.learning_rate,
            task=bundle.task,
            seed=seed,
        )
        settings.update(spec.config_overrides)
        return FLConfig(**settings)

    def _run_centralized(self, spec: RunSpec, seed: int):
        """One centralized SGD run (Fig. 7 style): returns (model, metrics)."""
        scale = spec.resolve_scale()
        bundle = self.build_bundle(spec, seed)
        if len(bundle.train) != 1:
            raise ValueError(
                f"centralized runs need a single pooled train set, dataset "
                f"'{spec.dataset}' produced {sorted(bundle.train)}"
            )
        train_set = next(iter(bundle.train.values()))
        trainer = dict(spec.trainer_kwargs)
        epochs = int(trainer.pop("epochs", scale.central_epochs))
        batch_size = int(trainer.pop("batch_size", scale.batch_size))
        learning_rate = float(trainer.pop("learning_rate", scale.learning_rate))
        transform_degree = trainer.pop("transform_degree", None)
        averager_name = trainer.pop("averager", "none")
        if trainer:
            raise ValueError(f"unknown trainer_kwargs {sorted(trainer)}")

        batches_per_epoch = max(1, int(np.ceil(len(train_set) / batch_size)))
        if averager_name == "swa":
            weight_averager, average_per_epoch = SWAAverager(batches_per_epoch), True
        elif averager_name == "swad":
            weight_averager, average_per_epoch = SWADAverager(), False
        elif averager_name == "none":
            weight_averager, average_per_epoch = None, False
        else:
            raise ValueError(
                f"averager must be 'none', 'swa' or 'swad', got '{averager_name}'"
            )
        transform = (default_train_transform(float(transform_degree))
                     if transform_degree is not None else None)

        factory = make_model_factory(
            scale, bundle.num_classes, bundle.image_size,
            in_channels=bundle.in_channels,
            model_name=spec.model or bundle.default_model,
            seed=seed,
        )
        model = train_centralized(
            factory(), train_set, epochs=epochs, batch_size=batch_size,
            learning_rate=learning_rate, task=bundle.task, transform=transform,
            weight_averager=weight_averager, average_per_epoch=average_per_epoch,
            seed=seed,
        )
        return model, evaluate_on_devices(model, bundle.test, bundle.task)

    # -- summary ------------------------------------------------------------ #
    @staticmethod
    def _summarize(result: RunResult) -> Dict[str, float]:
        summaries = result.per_seed_summaries()
        summary: Dict[str, float] = {"num_seeds": float(len(summaries))}
        for key in _SUMMARY_KEYS:
            values = np.array([s[key] for s in summaries], dtype=np.float64)
            summary[key] = float(values.mean())
            if len(values) > 1:
                summary[f"{key}_std"] = float(values.std(ddof=1))
        return summary


def run_spec(spec: RunSpec, runner: Optional[Runner] = None) -> RunResult:
    """Execute one spec with a fresh (or provided) :class:`Runner`."""
    return (runner or Runner()).run(spec)
