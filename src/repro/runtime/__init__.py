"""Declarative experiment runtime: RunSpec + registries + Runner.

This package is the library's composable public API (see README):

* :class:`RunSpec`  — a serializable description of one run (strategy, model,
  dataset/partition, sampler, config overrides, callbacks, seeds) with a full
  JSON round-trip.
* registries        — string-keyed component registries: strategies, models,
  datasets, client samplers, simulation callbacks, execution backends.
* :class:`Runner`   — executes specs (multi-seed, dataset-memoising) and
  returns :class:`RunResult` records that plug into the reporting layer.

Example::

    from repro.runtime import RunSpec, Runner

    spec = RunSpec(strategy="heteroswitch", dataset="device_capture",
                   scale="smoke", seeds=[0, 1, 2])
    result = Runner().run(spec)
    print(result.summary)
"""

from ..store import RunStore
from .registries import (
    CALLBACK_REGISTRY,
    DATASET_REGISTRY,
    EXECUTOR_REGISTRY,
    MODEL_REGISTRY,
    SAMPLER_REGISTRY,
    STRATEGY_REGISTRY,
    DataBundle,
    build_dataset,
)
from .runner import Runner, RunResult, run_spec
from .spec import RUN_KINDS, RunSpec, spec_scale

__all__ = [
    "RunSpec",
    "RUN_KINDS",
    "spec_scale",
    "Runner",
    "RunResult",
    "RunStore",
    "run_spec",
    "DataBundle",
    "build_dataset",
    "DATASET_REGISTRY",
    "STRATEGY_REGISTRY",
    "MODEL_REGISTRY",
    "SAMPLER_REGISTRY",
    "CALLBACK_REGISTRY",
    "EXECUTOR_REGISTRY",
]
