"""Generic string-keyed registries for the library's pluggable components.

Strategies, models, datasets, client samplers and simulation callbacks are all
looked up by short string keys (the names used in the paper's tables and in
:class:`repro.runtime.RunSpec`).  A :class:`Registry` behaves like a read-only
mapping from name to factory, adds a ``register`` decorator for new entries,
and raises ``KeyError`` messages that list the available keys — so a typo in a
spec file fails with an actionable error instead of a bare ``KeyError``.
"""

from __future__ import annotations

from typing import Callable, Dict, Generic, Iterator, Mapping, Optional, TypeVar

__all__ = ["Registry"]

T = TypeVar("T")


class Registry(Mapping, Generic[T]):
    """A string-keyed registry of factories for one kind of component.

    Parameters
    ----------
    kind:
        Human-readable component kind (``"strategy"``, ``"model"`` ...); used
        in error messages.
    initial:
        Optional mapping of initial entries.
    """

    def __init__(self, kind: str, initial: Optional[Mapping[str, Callable[..., T]]] = None) -> None:
        self.kind = kind
        self._factories: Dict[str, Callable[..., T]] = dict(initial or {})

    # -- mapping protocol ------------------------------------------------- #
    def __getitem__(self, name: str) -> Callable[..., T]:
        try:
            return self._factories[name]
        except KeyError:
            raise KeyError(
                f"unknown {self.kind} '{name}'; available: {sorted(self._factories)}"
            ) from None

    def __iter__(self) -> Iterator[str]:
        return iter(self._factories)

    def __len__(self) -> int:
        return len(self._factories)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Registry({self.kind!r}, {sorted(self._factories)})"

    # -- registration ----------------------------------------------------- #
    def register(self, name: str, factory: Optional[Callable[..., T]] = None):
        """Register ``factory`` under ``name``.

        Usable directly (``registry.register("x", make_x)``) or as a decorator
        (``@registry.register("x")``).  Re-registering an existing name raises
        so two components cannot silently shadow each other; use
        :meth:`replace` for deliberate overrides.
        """
        def _add(fn: Callable[..., T]) -> Callable[..., T]:
            if name in self._factories:
                raise ValueError(f"{self.kind} '{name}' is already registered")
            self._factories[name] = fn
            return fn

        if factory is not None:
            return _add(factory)
        return _add

    def replace(self, name: str, factory: Callable[..., T]) -> None:
        """Register ``factory`` under ``name``, overriding any existing entry."""
        self._factories[name] = factory

    def unregister(self, name: str) -> None:
        """Remove ``name`` (e.g. a test-scoped component); unknown names raise."""
        if name not in self._factories:
            raise KeyError(
                f"unknown {self.kind} '{name}'; available: {sorted(self._factories)}"
            )
        del self._factories[name]

    # -- lookup ------------------------------------------------------------ #
    def create(self, name: str, **kwargs) -> T:
        """Instantiate the component registered under ``name``."""
        return self[name](**kwargs)

    def available(self) -> list:
        """Sorted list of registered names."""
        return sorted(self._factories)
