"""Persistent on-disk store of experiment runs: manifests, checkpoints, results.

A :class:`RunStore` owns a root directory with one subdirectory per
``(spec, seed)`` run::

    <root>/
      <strategy>-<dataset>-<spec_hash[:10]>-seed<seed>/
        manifest.json          # spec JSON, spec hash, versions, env fingerprint
        checkpoints/
          round_00005.npz      # periodic snapshots (crash-safe, atomic)
          final.npz            # snapshot at run end
        result.json            # completed run: metrics, history, fingerprint

The run directory is keyed by a sha256 hash of the spec's *result-affecting*
fields: seeds are factored out (one directory per seed) and ``name`` /
``executor`` / ``max_workers`` are excluded because they change labels and
wall clock, never results — so a run checkpointed under the serial executor
resumes under the thread executor and still finishes bit-identical.

Completion writes in crash-safe order — final checkpoint, then
``result.json``, then the manifest flips to ``completed`` — each via
atomic-replace, so a run killed at *any* point either resumes from its last
checkpoint or is already complete; no intermediate state is ever observed.

Every manifest and result is stamped with :data:`STORE_FORMAT_VERSION` and
the library version; resuming across an incompatible format raises
:class:`StoreVersionError` with instructions rather than corrupting the run.
"""

from __future__ import annotations

import hashlib
import json
import platform
import re
import time
from pathlib import Path
from typing import TYPE_CHECKING, Any, Dict, List, Optional

import numpy as np

from .. import __version__
from ..io import atomic_write
from ..nn.serialization import state_fingerprint
from .checkpoint import read_checkpoint

if TYPE_CHECKING:  # pragma: no cover - type-only imports (no runtime cycle)
    from ..fl.simulation import FLHistory
    from ..runtime.spec import RunSpec

__all__ = [
    "STORE_FORMAT_VERSION",
    "RunStoreError",
    "StoreVersionError",
    "spec_hash",
    "env_fingerprint",
    "run_fingerprint",
    "RunEntry",
    "RunStore",
]

# Bump whenever the manifest/result layout changes incompatibly.
STORE_FORMAT_VERSION = 1

# Spec fields that do not affect a run's numbers: excluded from the run key so
# relabeling a spec or switching execution backend finds the same run.
_RESULT_NEUTRAL_FIELDS = ("seeds", "name", "executor", "max_workers")

# Dataset-builder kwargs that only change build cost, never the data (cache
# hits are bitwise-identical to rebuilds), so a run started without a capture
# cache resumes cleanly with one and vice versa.
_RESULT_NEUTRAL_DATASET_KWARGS = ("capture_cache",)

# Config overrides that only turn observation on or off (repro.obs tracing and
# per-kernel profiling) — timing never feeds back into results, so a traced
# run shares its directory and fingerprint with the untraced one.
_RESULT_NEUTRAL_CONFIG_OVERRIDES = ("profile", "trace")

_CHECKPOINT_PATTERN = re.compile(r"^round_(\d+)\.npz$")


class RunStoreError(Exception):
    """The run store could not complete an operation."""


class StoreVersionError(RunStoreError):
    """A manifest or result was written under an incompatible format version."""


def spec_hash(spec: "RunSpec") -> str:
    """sha256 of the spec's result-affecting fields (canonical JSON)."""
    data = spec.to_dict()
    for field_name in _RESULT_NEUTRAL_FIELDS:
        data.pop(field_name, None)
    dataset_kwargs = data.get("dataset_kwargs")
    if isinstance(dataset_kwargs, dict):
        for kwarg in _RESULT_NEUTRAL_DATASET_KWARGS:
            dataset_kwargs.pop(kwarg, None)
    config_overrides = data.get("config_overrides")
    if isinstance(config_overrides, dict):
        for key in _RESULT_NEUTRAL_CONFIG_OVERRIDES:
            config_overrides.pop(key, None)
    blob = json.dumps(data, sort_keys=True, default=str).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()


def env_fingerprint() -> Dict[str, str]:
    """The environment facts a resumed run should match (informational)."""
    return {
        "python": platform.python_version(),
        "numpy": np.__version__,
        "platform": platform.platform(),
        "machine": platform.machine(),
    }


def run_fingerprint(state: Dict[str, np.ndarray], metrics: Dict[str, float]) -> str:
    """sha256 digest of a finished run: final weights plus final metrics.

    Two runs have equal fingerprints exactly when their final global weights
    are bitwise identical and their per-device metrics are equal — the
    headline resume guarantee, checkable without shipping weights around.
    """
    digest = hashlib.sha256()
    digest.update(state_fingerprint(state).encode("ascii"))
    digest.update(json.dumps(metrics, sort_keys=True).encode("utf-8"))
    return digest.hexdigest()


def _write_json_atomic(path: Path, payload: Dict[str, Any]) -> None:
    with atomic_write(path, mode="w", encoding="utf-8") as handle:
        handle.write(json.dumps(payload, indent=2, sort_keys=True) + "\n")


class RunEntry:
    """Handle to one run's directory inside a :class:`RunStore`."""

    def __init__(self, path: Path) -> None:
        self.path = Path(path)
        self.run_id = self.path.name

    # -- layout --------------------------------------------------------- #
    @property
    def manifest_path(self) -> Path:
        return self.path / "manifest.json"

    @property
    def checkpoint_dir(self) -> Path:
        return self.path / "checkpoints"

    @property
    def result_path(self) -> Path:
        return self.path / "result.json"

    # Observability artifacts (repro.obs exporters).  Result-neutral: they
    # never enter the spec hash or the run fingerprint.
    @property
    def trace_path(self) -> Path:
        return self.path / "trace.json"

    @property
    def events_path(self) -> Path:
        return self.path / "events.jsonl"

    @property
    def obs_summary_path(self) -> Path:
        return self.path / "obs_summary.json"

    # -- manifest ------------------------------------------------------- #
    def manifest(self) -> Dict[str, Any]:
        """Load and version-check the manifest."""
        if not self.manifest_path.exists():
            raise RunStoreError(f"run '{self.run_id}' has no manifest "
                                f"({self.manifest_path} missing)")
        data = json.loads(self.manifest_path.read_text(encoding="utf-8"))
        version = data.get("format_version")
        if version != STORE_FORMAT_VERSION:
            raise StoreVersionError(
                f"run '{self.run_id}' was written under store format version "
                f"{version} (repro {data.get('repro_version', '?')}); this "
                f"library reads format version {STORE_FORMAT_VERSION} "
                f"(repro {__version__}). Refusing to resume — point --store at "
                f"a fresh directory or delete the stale run."
            )
        return data

    def update_manifest(self, **fields: Any) -> Dict[str, Any]:
        """Merge ``fields`` into the manifest (atomic replace)."""
        data = self.manifest()
        data.update(fields)
        data["updated_at"] = time.strftime("%Y-%m-%dT%H:%M:%S%z")
        _write_json_atomic(self.manifest_path, data)
        return data

    # -- checkpoints ----------------------------------------------------- #
    def checkpoints(self) -> List[Path]:
        """Periodic checkpoints, oldest first (``final.npz`` excluded)."""
        if not self.checkpoint_dir.is_dir():
            return []
        entries = []
        for entry in self.checkpoint_dir.iterdir():
            match = _CHECKPOINT_PATTERN.match(entry.name)
            if match:
                entries.append((int(match.group(1)), entry))
        return [path for _, path in sorted(entries)]

    def checkpoint_files(self) -> List[Path]:
        """Every snapshot on disk: periodic (oldest first), then ``final.npz``."""
        files = self.checkpoints()
        final = self.checkpoint_dir / "final.npz"
        if final.exists():
            files.append(final)
        return files

    def latest_checkpoint(self) -> Optional[Path]:
        """The most advanced snapshot on disk: ``final.npz`` if present,
        else the highest-round periodic checkpoint, else ``None``."""
        final = self.checkpoint_dir / "final.npz"
        if final.exists():
            return final
        periodic = self.checkpoints()
        return periodic[-1] if periodic else None

    def load_checkpoint(self, path: Optional[Path] = None) -> Optional[Dict[str, Any]]:
        """Read a snapshot tree (default: the latest), or ``None`` if none exist."""
        path = path if path is not None else self.latest_checkpoint()
        if path is None:
            return None
        tree, _ = read_checkpoint(path)
        return tree

    # -- results --------------------------------------------------------- #
    def has_result(self) -> bool:
        return self.result_path.exists()

    def save_result(self, history: "FLHistory",
                    final_state: Optional[Dict[str, np.ndarray]] = None) -> Dict[str, Any]:
        """Persist a completed run: result JSON, then manifest ``completed``.

        ``final_state`` defaults to the weights in the run's final checkpoint
        (written by the checkpoint callback at run end); the fingerprint ties
        the stored result to those exact bytes.
        """
        if final_state is None:
            snapshot = self.load_checkpoint()
            if snapshot is None:
                raise RunStoreError(
                    f"run '{self.run_id}' has no final checkpoint to fingerprint; "
                    f"attach the 'checkpoint' callback or pass final_state"
                )
            final_state = snapshot["global_state"]
        payload = {
            "format_version": STORE_FORMAT_VERSION,
            "repro_version": __version__,
            "run_id": self.run_id,
            "metrics": dict(history.per_device_metric),
            "history": history.to_dict(),
            "fingerprint": run_fingerprint(final_state, history.per_device_metric),
        }
        _write_json_atomic(self.result_path, payload)
        rounds_done = (history.rounds[-1].round_index + 1) if history.rounds else 0
        self.update_manifest(status="completed", rounds_completed=rounds_done,
                             fingerprint=payload["fingerprint"])
        return payload

    def load_result(self) -> Dict[str, Any]:
        """Read a completed run's result record (version-checked)."""
        if not self.has_result():
            raise RunStoreError(f"run '{self.run_id}' has no result.json "
                                f"(status: {self.status()})")
        data = json.loads(self.result_path.read_text(encoding="utf-8"))
        version = data.get("format_version")
        if version != STORE_FORMAT_VERSION:
            raise StoreVersionError(
                f"result for run '{self.run_id}' uses store format version "
                f"{version}; this library reads {STORE_FORMAT_VERSION}"
            )
        return data

    # -- convenience ----------------------------------------------------- #
    def status(self) -> str:
        try:
            return str(self.manifest().get("status", "unknown"))
        except RunStoreError:
            return "unknown"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RunEntry({self.run_id!r})"


class RunStore:
    """Directory of persistent runs, keyed by ``(spec hash, seed)``."""

    def __init__(self, root) -> None:
        self.root = Path(root)

    # -- keys ------------------------------------------------------------ #
    @staticmethod
    def run_id(spec: "RunSpec", seed: int) -> str:
        # Both federated kinds key by strategy (the names are disjoint);
        # centralized runs have no strategy and key by kind.
        prefix = spec.kind if spec.kind == "centralized" else spec.strategy
        return f"{prefix}-{spec.dataset}-{spec_hash(spec)[:10]}-seed{seed}"

    # -- lifecycle -------------------------------------------------------- #
    def open_run(self, spec: "RunSpec", seed: int,
                 extra: Optional[Dict[str, Any]] = None) -> RunEntry:
        """Create (or re-open) the run directory for ``(spec, seed)``.

        A fresh run gets a manifest stamped with the spec JSON, its hash, the
        store/library versions and the environment fingerprint.  Re-opening
        validates the manifest's format version and spec hash, so a stale or
        foreign directory fails loudly instead of being silently resumed.
        """
        entry = RunEntry(self.root / self.run_id(spec, seed))
        entry.checkpoint_dir.mkdir(parents=True, exist_ok=True)
        digest = spec_hash(spec)
        if entry.manifest_path.exists():
            manifest = entry.manifest()  # raises StoreVersionError if stale
            if manifest.get("spec_hash") != digest:
                raise RunStoreError(
                    f"run directory '{entry.run_id}' belongs to a different "
                    f"spec (hash {manifest.get('spec_hash')!r} != {digest!r})"
                )
            if extra:
                entry.update_manifest(**extra)
            return entry
        manifest = {
            "format_version": STORE_FORMAT_VERSION,
            "repro_version": __version__,
            "run_id": entry.run_id,
            "spec_hash": digest,
            "seed": seed,
            "spec": spec.to_dict(),
            "env": env_fingerprint(),
            "status": "running",
            "created_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
            **(extra or {}),
        }
        _write_json_atomic(entry.manifest_path, manifest)
        return entry

    # -- lookup ----------------------------------------------------------- #
    def get(self, run_id: str) -> RunEntry:
        """Fetch an existing run by id; unknown ids list what is available."""
        entry = RunEntry(self.root / run_id)
        if not entry.manifest_path.exists():
            available = [e.run_id for e in self.list_runs()]
            raise RunStoreError(
                f"no run '{run_id}' in store {self.root}; available: {available}"
            )
        return entry

    def list_runs(self) -> List[RunEntry]:
        """Every run directory under the root (sorted by run id)."""
        if not self.root.is_dir():
            return []
        return [RunEntry(path) for path in sorted(self.root.iterdir())
                if (path / "manifest.json").exists()]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RunStore({str(self.root)!r})"
