"""Persistent run store: crash-safe checkpointing and bit-identical resume.

The subsystem has two layers:

* :mod:`repro.store.checkpoint` — an ``.npz`` codec for arbitrary state trees
  (nested dicts/lists of arrays and JSON scalars) with atomic-replace writes
  and format versioning.
* :mod:`repro.store.run_store` — a :class:`RunStore` owning one directory per
  ``(spec, seed)`` run: a manifest (spec JSON, versions, environment
  fingerprint), periodic + final checkpoints, and the completed run's result
  JSON with a sha256 run fingerprint.

The correctness criterion is exact state equality: kill a run at any round,
resume it (``Runner(store=..., checkpoint_every=...)`` / ``python -m repro
bench --resume``), and the final weights and metrics are bitwise identical to
the uninterrupted run — client sampling and RNG streams are pure functions of
``(seed, round)``, so a checkpoint of the global weights, strategy state, EMA
tracker and history is a complete description of the run's future.
"""

from .checkpoint import (
    CHECKPOINT_FORMAT_VERSION,
    CheckpointError,
    CheckpointVersionError,
    read_checkpoint,
    write_checkpoint,
)
from .run_store import (
    STORE_FORMAT_VERSION,
    RunEntry,
    RunStore,
    RunStoreError,
    StoreVersionError,
    env_fingerprint,
    run_fingerprint,
    spec_hash,
)

__all__ = [
    "CHECKPOINT_FORMAT_VERSION",
    "CheckpointError",
    "CheckpointVersionError",
    "read_checkpoint",
    "write_checkpoint",
    "STORE_FORMAT_VERSION",
    "RunEntry",
    "RunStore",
    "RunStoreError",
    "StoreVersionError",
    "env_fingerprint",
    "run_fingerprint",
    "spec_hash",
]
