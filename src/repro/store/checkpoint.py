"""Crash-safe ``.npz`` checkpoint codec for simulation snapshots.

A checkpoint is one file holding an arbitrary *state tree*: nested dicts and
lists whose leaves are NumPy arrays or JSON scalars — exactly the shape of
:meth:`repro.fl.simulation.FederatedSimulation.snapshot`.  Arrays are stored
as ordinary ``.npy`` members of the archive (dtype, shape and raw bytes
preserved exactly); everything else lives in an embedded JSON manifest whose
floats round-trip bit-exactly through Python's ``repr``-based JSON encoder.
Integer dict keys (per-client storage) survive because dicts are encoded as
``[key, value]`` pair lists rather than JSON objects.

Writes go to a temporary sibling and are moved into place with
:func:`os.replace`, so a crash — the scenario the run store exists for —
never leaves a truncated checkpoint behind: readers see the previous complete
file or none at all.

Every checkpoint records :data:`CHECKPOINT_FORMAT_VERSION` and the library
version; :func:`read_checkpoint` refuses to load an incompatible format with
a :class:`CheckpointVersionError` instead of mis-deserializing it.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, Tuple

import numpy as np

from .. import __version__
from ..io import atomic_write

__all__ = [
    "CHECKPOINT_FORMAT_VERSION",
    "CheckpointError",
    "CheckpointVersionError",
    "write_checkpoint",
    "read_checkpoint",
]

# Bump whenever the encoded tree layout changes incompatibly; readers refuse
# to load checkpoints written under a different format version.
CHECKPOINT_FORMAT_VERSION = 1

_META_KEY = "__checkpoint_meta__"


class CheckpointError(Exception):
    """A checkpoint file could not be written or read."""


class CheckpointVersionError(CheckpointError):
    """The checkpoint was written under an incompatible format version."""


def _encode(node: Any, arrays: Dict[str, np.ndarray]) -> Any:
    """Encode a state-tree node into JSON-safe form, hoisting arrays out."""
    if isinstance(node, np.ndarray):
        name = f"arr_{len(arrays)}"
        arrays[name] = np.asarray(node)
        return {"__ndarray__": name}
    if isinstance(node, np.generic):
        # NumPy scalars keep their dtype by travelling as 0-d arrays.
        name = f"arr_{len(arrays)}"
        arrays[name] = np.asarray(node)
        return {"__ndarray__": name, "scalar": True}
    if isinstance(node, dict):
        items = []
        for key, value in node.items():
            if not isinstance(key, (str, int)) or isinstance(key, bool):
                raise CheckpointError(
                    f"checkpoint dict keys must be str or int, got {key!r}"
                )
            items.append([key, _encode(value, arrays)])
        return {"__dict__": items}
    if isinstance(node, (list, tuple)):
        return {"__list__": [_encode(value, arrays) for value in node]}
    if node is None or isinstance(node, (bool, int, float, str)):
        return node
    raise CheckpointError(
        f"cannot checkpoint value of type {type(node).__name__}: {node!r}"
    )


def _decode(node: Any, archive) -> Any:
    """Inverse of :func:`_encode`, resolving array references lazily."""
    if isinstance(node, dict):
        if "__ndarray__" in node:
            value = np.asarray(archive[node["__ndarray__"]])
            return value[()] if node.get("scalar") else value
        if "__dict__" in node:
            return {key: _decode(value, archive) for key, value in node["__dict__"]}
        if "__list__" in node:
            return [_decode(value, archive) for value in node["__list__"]]
        raise CheckpointError(f"malformed checkpoint node: {sorted(node)}")
    return node


def write_checkpoint(path, tree: Dict[str, Any],
                     extra_meta: Dict[str, Any] | None = None) -> None:
    """Atomically persist a state tree (plus optional JSON metadata) to ``path``."""
    arrays: Dict[str, np.ndarray] = {}
    meta = {
        "format_version": CHECKPOINT_FORMAT_VERSION,
        "repro_version": __version__,
        "meta": dict(extra_meta or {}),
        "state": _encode(tree, arrays),
    }
    meta_blob = np.frombuffer(json.dumps(meta).encode("utf-8"), dtype=np.uint8)
    with atomic_write(path) as handle:
        np.savez(handle, **arrays, **{_META_KEY: meta_blob})


def read_checkpoint(path) -> Tuple[Dict[str, Any], Dict[str, Any]]:
    """Load a checkpoint, returning ``(state_tree, meta)``.

    ``meta`` carries ``format_version``, ``repro_version`` and whatever
    ``extra_meta`` the writer attached.  Raises
    :class:`CheckpointVersionError` when the file's format version differs
    from this library's :data:`CHECKPOINT_FORMAT_VERSION`.
    """
    with np.load(os.fspath(path), allow_pickle=False) as archive:
        if _META_KEY not in archive.files:
            raise CheckpointError(f"{path} is not a repro checkpoint (no manifest)")
        meta = json.loads(bytes(archive[_META_KEY]).decode("utf-8"))
        version = meta.get("format_version")
        if version != CHECKPOINT_FORMAT_VERSION:
            raise CheckpointVersionError(
                f"checkpoint {path} uses format version {version} (written by "
                f"repro {meta.get('repro_version', '?')}); this library reads "
                f"format version {CHECKPOINT_FORMAT_VERSION} (repro {__version__}). "
                f"Re-run without --resume to start fresh."
            )
        tree = _decode(meta["state"], archive)
    return tree, {"format_version": version,
                  "repro_version": meta.get("repro_version"),
                  **meta.get("meta", {})}
