"""Centralized (non-federated) training helpers for the characterization study.

Sections 3.2-3.4 of the paper train a model on one device type's data and test
it on every other device type; the training itself is ordinary centralized SGD.
These helpers provide that loop, plus robustness evaluation under test-time
transformations for the Fig. 7 SWA/SWAD comparison.
"""

from __future__ import annotations

from typing import Callable, Dict, Mapping, Optional

import numpy as np

from ..data.dataset import ArrayDataset, DataLoader
from ..isp.transforms import Transform
from ..nn.layers import Module
from ..nn.optim import SGD
from ..nn.serialization import set_weights
from ..core.swad import WeightAverager
from ..core.transforms import NCHWTransform
from ..fl.training import compute_loss, evaluate_metric

__all__ = ["train_centralized", "evaluate_on_devices", "evaluate_under_transform"]


def train_centralized(
    model: Module,
    dataset: ArrayDataset,
    epochs: int,
    batch_size: int = 10,
    learning_rate: float = 0.1,
    task: str = "classification",
    transform: Optional[Callable[[np.ndarray, np.random.Generator], np.ndarray]] = None,
    weight_averager: Optional[WeightAverager] = None,
    average_per_epoch: bool = False,
    seed: int = 0,
) -> Module:
    """Train a model with plain SGD on one dataset.

    Parameters
    ----------
    transform:
        Optional per-batch feature transform (NCHW layout), used to train the
        "with random transformation" variants of Fig. 7.
    weight_averager:
        Optional running weight average; updated per batch (SWAD) or per epoch
        (SWA) depending on ``average_per_epoch``.  When given, the averaged
        weights are loaded back into the model at the end of training.
    """
    if epochs <= 0:
        raise ValueError("epochs must be positive")
    optimizer = SGD(model.parameters(), lr=learning_rate)
    rng = np.random.default_rng(seed)
    loader = DataLoader(dataset, batch_size=batch_size, shuffle=True, seed=seed)
    model.train()
    for epoch in range(epochs):
        for features, labels in loader:
            if transform is not None:
                features = transform(features, rng)
            loss = compute_loss(model, features, labels, task)
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
            if weight_averager is not None and not average_per_epoch:
                weight_averager.update_from_model(model)
        if weight_averager is not None and average_per_epoch:
            weight_averager.update_from_model(model)
    if weight_averager is not None and weight_averager.count > 0:
        set_weights(model, weight_averager.average())
    return model


def evaluate_on_devices(
    model: Module,
    test_sets: Mapping[str, ArrayDataset],
    task: str = "classification",
) -> Dict[str, float]:
    """Evaluate a trained model on each per-device test set."""
    return {device: evaluate_metric(model, dataset, task) for device, dataset in test_sets.items()}


def evaluate_under_transform(
    model: Module,
    dataset: ArrayDataset,
    transform: Transform,
    seed: int = 0,
    task: str = "classification",
) -> float:
    """Accuracy of ``model`` on a test set perturbed by a channel-last transform.

    Used by the Fig. 7 robustness sweep: the test images are perturbed with the
    named transformation (affine / Gaussian noise / WB / gamma at a given
    degree) and the model's accuracy on the perturbed set is measured.
    """
    rng = np.random.default_rng(seed)
    wrapper = NCHWTransform(transform)
    perturbed = ArrayDataset(wrapper(dataset.features, rng), dataset.labels, metadata=dataset.metadata)
    return evaluate_metric(model, perturbed, task)
