"""Experiment scale presets.

Every experiment runner accepts an :class:`ExperimentScale` that controls how
much data, how many clients and how many rounds it uses.  The paper's full
settings (N=100, K=20, T=1000, MobileNetV3-small on full-resolution captures)
are far beyond what a pure-NumPy CPU substrate can finish in a test suite, so
three presets are provided:

* ``smoke``   — seconds per experiment; used by unit/integration tests.
* ``default`` — a couple of minutes per experiment; used by the benchmark
  harness to regenerate each table/figure with a meaningful signal.
* ``paper``   — the paper's nominal parameters (kept for completeness; running
  it requires patience but no code changes).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["ExperimentScale", "SCALES", "get_scale"]


@dataclass(frozen=True)
class ExperimentScale:
    """Knobs shared by the experiment runners."""

    name: str
    # Device-capture dataset (Sections 3, 4, 6.1-6.3).
    samples_per_class_train: int
    samples_per_class_test: int
    num_classes: int
    image_size: int
    scene_size: int
    # FL settings.
    num_clients: int
    clients_per_round: int
    num_rounds: int
    local_epochs: int
    batch_size: int
    learning_rate: float
    # Centralized characterization training.
    central_epochs: int
    # Model selection: registry name + width multiplier for the CNN zoo.
    model_name: str
    width_mult: float

    def with_overrides(self, **kwargs) -> "ExperimentScale":
        """Return a copy with selected fields replaced."""
        return replace(self, **kwargs)


SCALES = {
    "smoke": ExperimentScale(
        name="smoke",
        samples_per_class_train=3,
        samples_per_class_test=2,
        num_classes=4,
        image_size=16,
        scene_size=32,
        num_clients=12,
        clients_per_round=4,
        num_rounds=3,
        local_epochs=1,
        batch_size=4,
        # The smoke preset trains a plain MLP on flattened pixels, which needs a
        # smaller step size than the batch-normalized CNNs of the larger presets.
        learning_rate=0.02,
        central_epochs=3,
        model_name="simple_mlp",
        width_mult=0.5,
    ),
    "default": ExperimentScale(
        name="default",
        samples_per_class_train=8,
        samples_per_class_test=4,
        num_classes=8,
        image_size=24,
        scene_size=48,
        num_clients=40,
        clients_per_round=10,
        num_rounds=15,
        local_epochs=1,
        batch_size=10,
        learning_rate=0.1,
        central_epochs=12,
        model_name="mobilenetv3_small",
        width_mult=1.0,
    ),
    "paper": ExperimentScale(
        name="paper",
        samples_per_class_train=40,
        samples_per_class_test=20,
        num_classes=12,
        image_size=32,
        scene_size=64,
        num_clients=100,
        clients_per_round=20,
        num_rounds=1000,
        local_epochs=1,
        batch_size=10,
        learning_rate=0.1,
        central_epochs=30,
        model_name="mobilenetv3_small",
        width_mult=1.0,
    ),
}


def get_scale(scale: "str | ExperimentScale") -> ExperimentScale:
    """Resolve a scale preset by name, or pass a custom scale through."""
    if isinstance(scale, ExperimentScale):
        return scale
    try:
        return SCALES[scale]
    except KeyError as exc:
        raise KeyError(f"unknown scale '{scale}'; available: {sorted(SCALES)}") from exc
