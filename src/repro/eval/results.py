"""Result containers and table formatting shared by the experiment runners."""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Sequence

__all__ = ["ExperimentResult", "format_table", "format_mapping"]


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render a GitHub-flavoured markdown table."""
    def fmt(value: object) -> str:
        if isinstance(value, float):
            return f"{value:.4f}"
        return str(value)

    lines = ["| " + " | ".join(headers) + " |", "|" + "|".join(["---"] * len(headers)) + "|"]
    for row in rows:
        lines.append("| " + " | ".join(fmt(cell) for cell in row) + " |")
    return "\n".join(lines)


def format_mapping(mapping: Mapping[str, float], key_header: str = "key",
                   value_header: str = "value") -> str:
    """Render a one-column mapping as a markdown table."""
    return format_table([key_header, value_header], list(mapping.items()))


@dataclass
class ExperimentResult:
    """Uniform result record produced by every experiment runner.

    Attributes
    ----------
    experiment_id:
        Paper artifact identifier, e.g. ``"table2"`` or ``"fig7"``.
    description:
        One-line description of what was measured.
    headers / rows:
        The regenerated table: the same rows/series the paper reports, at the
        runner's scale.
    scalars:
        Headline numbers (e.g. "mean_degradation") for quick assertions.
    metadata:
        Scale name, devices, and any runner-specific extras.
    """

    experiment_id: str
    description: str
    headers: List[str]
    rows: List[List[object]]
    scalars: Dict[str, float] = field(default_factory=dict)
    metadata: Dict[str, object] = field(default_factory=dict)

    def to_markdown(self) -> str:
        """Full markdown rendering (title, table, scalar summary)."""
        parts = [f"### {self.experiment_id}: {self.description}", ""]
        parts.append(format_table(self.headers, self.rows))
        if self.scalars:
            parts.append("")
            parts.append(format_mapping(self.scalars, key_header="metric", value_header="value"))
        return "\n".join(parts)

    # -- serialization ------------------------------------------------------ #
    def to_dict(self) -> Dict[str, object]:
        """Plain-data dict representation (deep-copied via dataclasses)."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ExperimentResult":
        """Inverse of :meth:`to_dict`; unknown keys raise a listing error."""
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown ExperimentResult field(s) {sorted(unknown)}; "
                f"valid fields: {sorted(known)}"
            )
        return cls(**data)

    def to_json(self, indent: int = 2) -> str:
        """JSON rendering; non-JSON metadata values fall back to ``str``."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True, default=str)

    @classmethod
    def from_json(cls, text: str) -> "ExperimentResult":
        """Parse a result from its JSON rendering."""
        return cls.from_dict(json.loads(text))

    def scalar(self, name: str) -> float:
        """Fetch a headline scalar, raising a helpful error if missing."""
        try:
            return self.scalars[name]
        except KeyError as exc:
            raise KeyError(
                f"scalar '{name}' not recorded for {self.experiment_id}; "
                f"available: {sorted(self.scalars)}"
            ) from exc
