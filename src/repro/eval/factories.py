"""Model-factory helpers shared by the experiment runners."""

from __future__ import annotations

from typing import Callable

from ..nn.layers import Module
from ..nn.models import create_model
from .scale import ExperimentScale

__all__ = ["make_model_factory"]


def make_model_factory(
    scale: ExperimentScale,
    num_classes: int,
    image_size: int,
    in_channels: int = 3,
    model_name: str | None = None,
    seed: int = 0,
) -> Callable[[], Module]:
    """Build a zero-argument model factory appropriate for the given scale.

    The factory always uses the same seed so every FL strategy (and every
    repetition of an experiment) starts from identical initial weights —
    matching the paper's protocol where methods are compared from a common
    initialization.
    """
    name = model_name or scale.model_name

    def factory() -> Module:
        if name in ("simple_mlp", "linear"):
            return create_model(name, input_dim=in_channels * image_size * image_size,
                                num_classes=num_classes, seed=seed)
        if name == "simple_cnn":
            return create_model(name, num_classes=num_classes, in_channels=in_channels,
                                image_size=image_size, seed=seed)
        if name == "multilabel_cnn":
            return create_model(name, num_labels=num_classes, in_channels=in_channels,
                                image_size=image_size, seed=seed)
        if name == "ecg_regressor":
            return create_model(name, window_size=image_size, seed=seed)
        # Mobile CNN zoo (MobileNetV3 / ShuffleNet / SqueezeNet analogues).
        return create_model(name, num_classes=num_classes, in_channels=in_channels,
                            width_mult=scale.width_mult, seed=seed)

    return factory
