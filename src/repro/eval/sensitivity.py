"""Fig. 9 (appendix): hyperparameter sensitivity of the FL setup.

The paper sweeps learning rate, mini-batch size, local epochs and the number of
communication rounds, and selects (0.1, 10, 1, 1000).  This runner repeats the
sweep at simulation scale: each hyperparameter is varied in isolation around
the scale preset's base configuration and the resulting average accuracy is
reported.  Every grid point is a declarative :class:`~repro.runtime.RunSpec`
whose ``config_overrides`` carry the varied hyperparameters; one shared
:class:`~repro.runtime.Runner` memoises the dataset across the whole sweep.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

from ..devices.profiles import DEVICE_NAMES
from ..fl.metrics import mean_value
from .results import ExperimentResult
from .scale import ExperimentScale, get_scale

__all__ = ["fig9_hyperparameter_sensitivity", "DEFAULT_SWEEPS"]

# The paper's grids (appendix A.2), expressed relative to the scaled round budget.
DEFAULT_SWEEPS: Mapping[str, Sequence[float]] = {
    "learning_rate": (0.001, 0.01, 0.1),
    "batch_size": (1, 10, 20),
    "local_epochs": (1, 3, 5),
    "num_rounds_factor": (0.1, 0.5, 1.0),  # fraction of the scale's round budget
}


def fig9_hyperparameter_sensitivity(
    scale: "str | ExperimentScale" = "smoke",
    sweeps: Optional[Mapping[str, Sequence[float]]] = None,
    devices: Optional[Sequence[str]] = None,
    seed: int = 0,
) -> ExperimentResult:
    """Fig. 9: average accuracy as each FL hyperparameter varies in isolation."""
    from ..runtime import Runner, RunSpec, spec_scale  # late: runtime imports repro.eval

    scale_arg = spec_scale(scale)
    scale = get_scale(scale)
    sweeps = dict(sweeps) if sweeps is not None else dict(DEFAULT_SWEEPS)
    device_names = list(devices) if devices else DEVICE_NAMES[:4]
    runner = Runner()

    def run_config(learning_rate: float, batch_size: int, local_epochs: int,
                   num_rounds: int) -> float:
        spec = RunSpec(
            name="fig9/fedavg",
            strategy="fedavg",
            dataset="device_capture",
            dataset_kwargs={"devices": device_names},
            scale=scale_arg,
            config_overrides={
                "learning_rate": learning_rate,
                "batch_size": batch_size,
                "local_epochs": local_epochs,
                "num_rounds": max(1, num_rounds),
            },
            seeds=[seed],
        )
        return mean_value(runner.run(spec).history.per_device_metric)

    base = {
        "learning_rate": scale.learning_rate,
        "batch_size": scale.batch_size,
        "local_epochs": scale.local_epochs,
        "num_rounds": scale.num_rounds,
    }

    rows: List[List[object]] = []
    scalars: Dict[str, float] = {}
    for parameter, values in sweeps.items():
        for value in values:
            settings = dict(base)
            if parameter == "num_rounds_factor":
                settings["num_rounds"] = max(1, int(round(base["num_rounds"] * value)))
                label = f"num_rounds={settings['num_rounds']}"
            elif parameter in ("batch_size", "local_epochs"):
                settings[parameter] = int(value)
                label = f"{parameter}={int(value)}"
            else:
                settings[parameter] = float(value)
                label = f"{parameter}={value}"
            accuracy = run_config(
                learning_rate=settings["learning_rate"],
                batch_size=int(settings["batch_size"]),
                local_epochs=int(settings["local_epochs"]),
                num_rounds=int(settings["num_rounds"]),
            )
            rows.append([parameter, label, accuracy])
            scalars[label] = accuracy

    return ExperimentResult(
        experiment_id="fig9",
        description="Hyperparameter sensitivity of the FL setup (FedAvg)",
        headers=["parameter", "setting", "average_accuracy"],
        rows=rows,
        scalars=scalars,
        metadata={"scale": scale.name, "devices": device_names, "base": base},
    )
