"""Fig. 9 (appendix): hyperparameter sensitivity of the FL setup.

The paper sweeps learning rate, mini-batch size, local epochs and the number of
communication rounds, and selects (0.1, 10, 1, 1000).  This runner repeats the
sweep at simulation scale: each hyperparameter is varied in isolation around
the scale preset's base configuration and the resulting average accuracy is
reported.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np

from ..data.capture import build_device_datasets
from ..data.partition import build_client_specs
from ..devices.profiles import DEVICE_NAMES, market_shares
from ..fl.config import FLConfig
from ..fl.metrics import mean_value
from ..fl.simulation import FederatedSimulation
from ..fl.strategies.base import FedAvg
from .factories import make_model_factory
from .results import ExperimentResult
from .scale import ExperimentScale, get_scale

__all__ = ["fig9_hyperparameter_sensitivity", "DEFAULT_SWEEPS"]

# The paper's grids (appendix A.2), expressed relative to the scaled round budget.
DEFAULT_SWEEPS: Mapping[str, Sequence[float]] = {
    "learning_rate": (0.001, 0.01, 0.1),
    "batch_size": (1, 10, 20),
    "local_epochs": (1, 3, 5),
    "num_rounds_factor": (0.1, 0.5, 1.0),  # fraction of the scale's round budget
}


def fig9_hyperparameter_sensitivity(
    scale: "str | ExperimentScale" = "smoke",
    sweeps: Optional[Mapping[str, Sequence[float]]] = None,
    devices: Optional[Sequence[str]] = None,
    seed: int = 0,
) -> ExperimentResult:
    """Fig. 9: average accuracy as each FL hyperparameter varies in isolation."""
    scale = get_scale(scale)
    sweeps = dict(sweeps) if sweeps is not None else dict(DEFAULT_SWEEPS)
    device_names = list(devices) if devices else DEVICE_NAMES[:4]

    bundle = build_device_datasets(
        samples_per_class_train=scale.samples_per_class_train,
        samples_per_class_test=scale.samples_per_class_test,
        num_classes=scale.num_classes,
        image_size=scale.image_size,
        scene_size=scale.scene_size,
        devices=device_names,
        seed=seed,
    )
    factory = make_model_factory(scale, bundle.num_classes, bundle.image_size, seed=seed)
    shares = {name: share for name, share in market_shares().items() if name in device_names}
    clients = build_client_specs(bundle.train, num_clients=scale.num_clients, shares=shares,
                                 seed=seed)

    def run_config(learning_rate: float, batch_size: int, local_epochs: int,
                   num_rounds: int) -> float:
        config = FLConfig(
            num_clients=scale.num_clients,
            clients_per_round=min(scale.clients_per_round, scale.num_clients),
            num_rounds=max(1, num_rounds),
            local_epochs=local_epochs,
            batch_size=batch_size,
            learning_rate=learning_rate,
            seed=seed,
        )
        simulation = FederatedSimulation(factory, clients, bundle.test, FedAvg(), config)
        return mean_value(simulation.run().per_device_metric)

    base = {
        "learning_rate": scale.learning_rate,
        "batch_size": scale.batch_size,
        "local_epochs": scale.local_epochs,
        "num_rounds": scale.num_rounds,
    }

    rows: List[List[object]] = []
    scalars: Dict[str, float] = {}
    for parameter, values in sweeps.items():
        for value in values:
            settings = dict(base)
            if parameter == "num_rounds_factor":
                settings["num_rounds"] = max(1, int(round(base["num_rounds"] * value)))
                label = f"num_rounds={settings['num_rounds']}"
            elif parameter in ("batch_size", "local_epochs"):
                settings[parameter] = int(value)
                label = f"{parameter}={int(value)}"
            else:
                settings[parameter] = float(value)
                label = f"{parameter}={value}"
            accuracy = run_config(
                learning_rate=settings["learning_rate"],
                batch_size=int(settings["batch_size"]),
                local_epochs=int(settings["local_epochs"]),
                num_rounds=int(settings["num_rounds"]),
            )
            rows.append([parameter, label, accuracy])
            scalars[label] = accuracy

    return ExperimentResult(
        experiment_id="fig9",
        description="Hyperparameter sensitivity of the FL setup (FedAvg)",
        headers=["parameter", "setting", "average_accuracy"],
        rows=rows,
        scalars=scalars,
        metadata={"scale": scale.name, "devices": device_names, "base": base},
    )
