"""Experiment harness: one runner per table/figure of the paper, plus reporting."""

from .centralized import evaluate_on_devices, evaluate_under_transform, train_centralized
from .experiments import (
    EXPERIMENTS,
    ecg_heart_rate,
    fig1_homo_vs_hetero,
    fig2_raw_degradation,
    fig3_isp_stage_ablation,
    fig4_fairness,
    fig5_domain_generalization,
    fig7_swad_robustness,
    fig8_synthetic_cifar,
    fig9_hyperparameter_sensitivity,
    run_experiment,
    table2_cross_device,
    table4_main_evaluation,
    table5_model_architectures,
    table6_flair,
)
from .factories import make_model_factory
from .reporting import result_to_csv, results_to_markdown, write_report
from .results import ExperimentResult, format_table
from .scale import SCALES, ExperimentScale, get_scale

__all__ = [
    "EXPERIMENTS",
    "run_experiment",
    "ExperimentResult",
    "format_table",
    "ExperimentScale",
    "SCALES",
    "get_scale",
    "make_model_factory",
    "train_centralized",
    "evaluate_on_devices",
    "evaluate_under_transform",
    "results_to_markdown",
    "result_to_csv",
    "write_report",
    "fig1_homo_vs_hetero",
    "table2_cross_device",
    "fig2_raw_degradation",
    "fig3_isp_stage_ablation",
    "fig4_fairness",
    "fig5_domain_generalization",
    "fig7_swad_robustness",
    "table4_main_evaluation",
    "table5_model_architectures",
    "table6_flair",
    "fig8_synthetic_cifar",
    "ecg_heart_rate",
    "fig9_hyperparameter_sensitivity",
]
