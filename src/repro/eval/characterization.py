"""Characterization experiments: Sections 3 and 4 of the paper.

* :func:`fig1_homo_vs_hetero`      — Fig. 1: homogeneous vs heterogeneous FL clients.
* :func:`table2_cross_device`      — Table 2: cross-device model-quality degradation.
* :func:`fig2_raw_degradation`     — Fig. 2: the same matrix trained on RAW data.
* :func:`fig3_isp_stage_ablation`  — Fig. 3: per-ISP-stage degradation.
* :func:`fig4_fairness`            — Fig. 4: degradation vs the dominant devices.
* :func:`fig5_domain_generalization` — Fig. 5: leave-one-device-out DG.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from ..data.capture import DeviceDatasetBundle, build_device_datasets
from ..data.partition import build_client_specs
from ..devices.profiles import DEVICE_NAMES, DOMINANT_DEVICES, market_shares
from ..fl.config import FLConfig
from ..fl.metrics import mean_value, model_quality_degradation
from ..fl.simulation import FederatedSimulation
from ..fl.strategies.base import FedAvg
from ..isp.pipeline import BASELINE_CONFIG, stage_variants
from .centralized import evaluate_on_devices, train_centralized
from .factories import make_model_factory
from .results import ExperimentResult
from .scale import ExperimentScale, get_scale

__all__ = [
    "fig1_homo_vs_hetero",
    "table2_cross_device",
    "fig2_raw_degradation",
    "fig3_isp_stage_ablation",
    "fig4_fairness",
    "fig5_domain_generalization",
]


def _build_bundle(scale: ExperimentScale, devices: Optional[Sequence[str]] = None,
                  raw: bool = False, isp_override=None, seed: int = 0) -> DeviceDatasetBundle:
    return build_device_datasets(
        samples_per_class_train=scale.samples_per_class_train,
        samples_per_class_test=scale.samples_per_class_test,
        num_classes=scale.num_classes,
        image_size=scale.image_size,
        scene_size=scale.scene_size,
        devices=devices,
        raw=raw,
        isp_override=isp_override,
        seed=seed,
    )


def _train_on_device(bundle: DeviceDatasetBundle, device: str, scale: ExperimentScale,
                     seed: int = 0):
    """Centralized training on one device's data (the Section 3.2 protocol)."""
    factory = make_model_factory(scale, bundle.num_classes, bundle.image_size, seed=seed)
    model = factory()
    return train_centralized(
        model,
        bundle.train[device],
        epochs=scale.central_epochs,
        batch_size=scale.batch_size,
        learning_rate=scale.learning_rate,
        seed=seed,
    )


def _fl_config(scale: ExperimentScale, num_clients: int, seed: int = 0) -> FLConfig:
    return FLConfig(
        num_clients=num_clients,
        clients_per_round=min(scale.clients_per_round, num_clients),
        num_rounds=scale.num_rounds,
        local_epochs=scale.local_epochs,
        batch_size=scale.batch_size,
        learning_rate=scale.learning_rate,
        seed=seed,
    )


# --------------------------------------------------------------------------- #
# Fig. 1 — homogeneous vs heterogeneous clients
# --------------------------------------------------------------------------- #
def fig1_homo_vs_hetero(scale: "str | ExperimentScale" = "smoke",
                        devices: Optional[Sequence[str]] = None,
                        seed: int = 0) -> ExperimentResult:
    """Fig. 1: FL accuracy with homogeneous vs heterogeneous client devices.

    Homogeneous: all clients use the same (dominant) device type; the model is
    tested on that device.  Heterogeneous: clients are drawn across all device
    types by market share; the model is tested on every device and the average
    accuracy is reported.  The paper observes a 23.5% average drop.
    """
    scale = get_scale(scale)
    device_names = list(devices) if devices else DEVICE_NAMES
    bundle = _build_bundle(scale, devices=device_names, seed=seed)
    factory = make_model_factory(scale, bundle.num_classes, bundle.image_size, seed=seed)

    # Homogeneous: every client holds data from the same device (the most common
    # one).  The homogeneous arm captures a larger pool from that single device so
    # that both arms see the same *total* amount of training data — otherwise the
    # comparison would conflate device heterogeneity with dataset size.
    homo_device = DOMINANT_DEVICES[0] if DOMINANT_DEVICES[0] in device_names else device_names[0]
    homo_scale = scale.with_overrides(
        samples_per_class_train=scale.samples_per_class_train * len(device_names)
    )
    homo_bundle = _build_bundle(homo_scale, devices=[homo_device], seed=seed)
    homo_clients = build_client_specs({homo_device: homo_bundle.train[homo_device]},
                                      num_clients=scale.num_clients, seed=seed)
    homo_cfg = _fl_config(scale, scale.num_clients, seed)
    homo_sim = FederatedSimulation(factory, homo_clients,
                                   {homo_device: homo_bundle.test[homo_device]},
                                   FedAvg(), homo_cfg)
    homo_hist = homo_sim.run()
    homo_acc = mean_value(homo_hist.per_device_metric)

    # Heterogeneous: market-share mixture of all devices, tested on all devices.
    shares = {name: share for name, share in market_shares().items() if name in device_names}
    hetero_clients = build_client_specs(bundle.train, num_clients=scale.num_clients,
                                        shares=shares, seed=seed)
    hetero_sim = FederatedSimulation(factory, hetero_clients, bundle.test, FedAvg(),
                                     _fl_config(scale, scale.num_clients, seed))
    hetero_hist = hetero_sim.run()
    hetero_acc = mean_value(hetero_hist.per_device_metric)

    degradation = model_quality_degradation(homo_acc, hetero_acc)
    rows = [
        ["homogeneous", homo_device, homo_acc],
        ["heterogeneous", "market-share mix", hetero_acc],
    ]
    return ExperimentResult(
        experiment_id="fig1",
        description="FL accuracy with homogeneous vs heterogeneous client devices",
        headers=["setting", "devices", "accuracy"],
        rows=rows,
        scalars={
            "homogeneous_accuracy": homo_acc,
            "heterogeneous_accuracy": hetero_acc,
            "degradation": degradation,
        },
        metadata={"scale": scale.name, "devices": device_names},
    )


# --------------------------------------------------------------------------- #
# Table 2 / Fig. 2 — cross-device degradation matrix
# --------------------------------------------------------------------------- #
def _cross_device_matrix(scale: ExperimentScale, raw: bool,
                         devices: Optional[Sequence[str]], seed: int) -> ExperimentResult:
    device_names = list(devices) if devices else DEVICE_NAMES
    bundle = _build_bundle(scale, devices=device_names, raw=raw, seed=seed)

    accuracy_matrix: Dict[str, Dict[str, float]] = {}
    for train_device in device_names:
        model = _train_on_device(bundle, train_device, scale, seed=seed)
        accuracy_matrix[train_device] = evaluate_on_devices(model, bundle.test)

    headers = ["train \\ test"] + device_names + ["mean_others"]
    rows: List[List[object]] = []
    degradations: List[float] = []
    per_target_degradation: Dict[str, List[float]] = {name: [] for name in device_names}
    for train_device in device_names:
        own_accuracy = accuracy_matrix[train_device][train_device]
        row: List[object] = [train_device]
        others: List[float] = []
        for test_device in device_names:
            degradation = model_quality_degradation(
                own_accuracy, accuracy_matrix[train_device][test_device]
            )
            row.append(degradation if test_device != train_device else 0.0)
            if test_device != train_device:
                others.append(degradation)
                degradations.append(degradation)
                per_target_degradation[test_device].append(degradation)
        row.append(float(np.mean(others)) if others else 0.0)
        rows.append(row)
    mean_others_row: List[object] = ["mean_others"]
    for test_device in device_names:
        values = per_target_degradation[test_device]
        mean_others_row.append(float(np.mean(values)) if values else 0.0)
    mean_others_row.append(float(np.mean(degradations)) if degradations else 0.0)
    rows.append(mean_others_row)

    experiment_id = "fig2" if raw else "table2"
    description = (
        "Cross-device model-quality degradation (RAW data)" if raw
        else "Cross-device model-quality degradation (ISP-processed images)"
    )
    return ExperimentResult(
        experiment_id=experiment_id,
        description=description,
        headers=headers,
        rows=rows,
        scalars={
            "mean_degradation": float(np.mean(degradations)) if degradations else 0.0,
            "max_degradation": float(np.max(degradations)) if degradations else 0.0,
        },
        metadata={"scale": scale.name, "raw": raw, "devices": device_names,
                  "accuracy_matrix": accuracy_matrix},
    )


def table2_cross_device(scale: "str | ExperimentScale" = "smoke",
                        devices: Optional[Sequence[str]] = None,
                        seed: int = 0) -> ExperimentResult:
    """Table 2: train on each device's processed images, test on all devices."""
    return _cross_device_matrix(get_scale(scale), raw=False, devices=devices, seed=seed)


def fig2_raw_degradation(scale: "str | ExperimentScale" = "smoke",
                         devices: Optional[Sequence[str]] = None,
                         seed: int = 0) -> ExperimentResult:
    """Fig. 2: the cross-device degradation matrix computed on RAW captures."""
    return _cross_device_matrix(get_scale(scale), raw=True, devices=devices, seed=seed)


# --------------------------------------------------------------------------- #
# Fig. 3 — ISP stage ablation
# --------------------------------------------------------------------------- #
def fig3_isp_stage_ablation(scale: "str | ExperimentScale" = "smoke",
                            devices: Optional[Sequence[str]] = None,
                            seed: int = 0) -> ExperimentResult:
    """Fig. 3: model-quality degradation when one ISP stage is omitted/replaced.

    The model is trained on images processed by the Baseline ISP (Table 3) and
    tested on images whose ISP replaces a single stage with Option 1 (omitted)
    or Option 2 (alternative algorithm).
    """
    scale = get_scale(scale)
    device_names = list(devices) if devices else DEVICE_NAMES[:3]

    baseline_bundle = _build_bundle(scale, devices=device_names, isp_override=BASELINE_CONFIG,
                                    seed=seed)
    # Train one model on the pooled baseline-ISP images of the selected devices.
    pooled = None
    for device in device_names:
        pooled = baseline_bundle.train[device] if pooled is None else pooled.merge(
            baseline_bundle.train[device]
        )
    factory = make_model_factory(scale, baseline_bundle.num_classes, baseline_bundle.image_size,
                                 seed=seed)
    model = train_centralized(
        factory(), pooled, epochs=scale.central_epochs, batch_size=scale.batch_size,
        learning_rate=scale.learning_rate, seed=seed,
    )

    baseline_accuracy = mean_value(evaluate_on_devices(model, baseline_bundle.test))

    rows: List[List[object]] = []
    degradations: Dict[str, float] = {}
    for variant in stage_variants(BASELINE_CONFIG):
        variant_bundle = _build_bundle(scale, devices=device_names, isp_override=variant, seed=seed)
        accuracy = mean_value(evaluate_on_devices(model, variant_bundle.test))
        degradation = model_quality_degradation(baseline_accuracy, accuracy)
        rows.append([variant.name, accuracy, degradation])
        degradations[variant.name] = degradation

    color_tone = [value for name, value in degradations.items()
                  if name.startswith(("white_balance", "tone"))]
    other = [value for name, value in degradations.items()
             if not name.startswith(("white_balance", "tone"))]
    return ExperimentResult(
        experiment_id="fig3",
        description="Model-quality degradation per ISP-stage substitution",
        headers=["isp_variant", "accuracy", "degradation"],
        rows=rows,
        scalars={
            "baseline_accuracy": baseline_accuracy,
            "mean_degradation": float(np.mean(list(degradations.values()))),
            "mean_color_tone_degradation": float(np.mean(color_tone)) if color_tone else 0.0,
            "mean_other_degradation": float(np.mean(other)) if other else 0.0,
        },
        metadata={"scale": scale.name, "devices": device_names},
    )


# --------------------------------------------------------------------------- #
# Fig. 4 — fairness toward dominant devices
# --------------------------------------------------------------------------- #
def fig4_fairness(scale: "str | ExperimentScale" = "smoke",
                  devices: Optional[Sequence[str]] = None,
                  seed: int = 0) -> ExperimentResult:
    """Fig. 4: per-device degradation relative to the dominant devices (S9, S6).

    Clients are allocated by market share; the global model's accuracy on each
    device is compared with the best accuracy among the dominant devices.
    """
    scale = get_scale(scale)
    device_names = list(devices) if devices else DEVICE_NAMES
    bundle = _build_bundle(scale, devices=device_names, seed=seed)
    factory = make_model_factory(scale, bundle.num_classes, bundle.image_size, seed=seed)

    shares = {name: share for name, share in market_shares().items() if name in device_names}
    clients = build_client_specs(bundle.train, num_clients=scale.num_clients, shares=shares,
                                 seed=seed)
    sim = FederatedSimulation(factory, clients, bundle.test, FedAvg(),
                              _fl_config(scale, scale.num_clients, seed))
    history = sim.run()
    per_device = history.per_device_metric

    dominant = [d for d in DOMINANT_DEVICES if d in per_device]
    if not dominant:
        dominant = [max(per_device, key=per_device.get)]
    dominant_accuracy = max(per_device[d] for d in dominant)

    rows: List[List[object]] = []
    degradations: Dict[str, float] = {}
    for device in device_names:
        degradation = model_quality_degradation(dominant_accuracy, per_device[device])
        rows.append([device, per_device[device], degradation])
        if device not in dominant:
            degradations[device] = degradation

    return ExperimentResult(
        experiment_id="fig4",
        description="Per-device degradation vs the dominant devices under market-share FL",
        headers=["device", "accuracy", "degradation_vs_dominant"],
        rows=rows,
        scalars={
            "dominant_accuracy": dominant_accuracy,
            "mean_nondominant_degradation": float(np.mean(list(degradations.values())))
            if degradations else 0.0,
            "max_nondominant_degradation": float(np.max(list(degradations.values())))
            if degradations else 0.0,
        },
        metadata={"scale": scale.name, "dominant": dominant, "per_device": per_device},
    )


# --------------------------------------------------------------------------- #
# Fig. 5 — leave-one-device-out domain generalization
# --------------------------------------------------------------------------- #
def fig5_domain_generalization(scale: "str | ExperimentScale" = "smoke",
                               devices: Optional[Sequence[str]] = None,
                               seed: int = 0) -> ExperimentResult:
    """Fig. 5: accuracy change on a device when it is excluded from FL training.

    For each device: run FL with uniform participation of all *other* devices
    and measure accuracy on the excluded device; compare with the accuracy on
    that device when every device participates equally.
    """
    scale = get_scale(scale)
    device_names = list(devices) if devices else DEVICE_NAMES
    bundle = _build_bundle(scale, devices=device_names, seed=seed)
    factory = make_model_factory(scale, bundle.num_classes, bundle.image_size, seed=seed)

    uniform_shares = {name: 1.0 for name in device_names}
    all_clients = build_client_specs(bundle.train, num_clients=scale.num_clients,
                                     shares=uniform_shares, seed=seed)
    reference_sim = FederatedSimulation(factory, all_clients, bundle.test, FedAvg(),
                                        _fl_config(scale, scale.num_clients, seed))
    reference = reference_sim.run().per_device_metric

    rows: List[List[object]] = []
    degradations: Dict[str, float] = {}
    for excluded in device_names:
        clients = build_client_specs(bundle.train, num_clients=scale.num_clients,
                                     shares=uniform_shares, seed=seed, exclude=[excluded])
        sim = FederatedSimulation(factory, clients, {excluded: bundle.test[excluded]}, FedAvg(),
                                  _fl_config(scale, scale.num_clients, seed))
        unseen_accuracy = sim.run().per_device_metric[excluded]
        degradation = model_quality_degradation(reference[excluded], unseen_accuracy)
        rows.append([excluded, reference[excluded], unseen_accuracy, degradation])
        degradations[excluded] = degradation

    values = list(degradations.values())
    return ExperimentResult(
        experiment_id="fig5",
        description="Leave-one-device-out domain generalization",
        headers=["excluded_device", "accuracy_all_devices", "accuracy_when_excluded", "degradation"],
        rows=rows,
        scalars={
            "mean_degradation": float(np.mean(values)),
            "max_degradation": float(np.max(values)),
            "min_degradation": float(np.min(values)),
        },
        metadata={"scale": scale.name, "devices": device_names, "per_device": degradations},
    )
