"""Asynchronous vs synchronous FL on the Table 4 workload.

* :func:`async_vs_sync` — accuracy and simulated wall-clock for FedAsync and
  FedBuff against the synchronous FedAvg reference, under two or more device
  latency/availability regimes.

The comparison holds the *update budget* fixed: synchronous FedAvg trains
``num_rounds x clients_per_round`` client updates, so FedAsync targets that
many commits (one update each) and FedBuff targets ``num_rounds`` commits of
``clients_per_round``-sized buffers.  Accuracy is therefore comparable while
the simulated clock exposes the straggler cost of the synchronous barrier.
"""

from __future__ import annotations

import zlib
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..devices.latency import build_latency_model, get_regime
from ..devices.profiles import DEVICE_NAMES, market_shares
from ..fl.metrics import accuracy_variance, mean_value, worst_case
from .results import ExperimentResult
from .scale import get_scale

__all__ = ["async_vs_sync", "estimate_sync_virtual_seconds"]


def estimate_sync_virtual_seconds(
    num_rounds: int,
    clients_per_round: int,
    samples_per_client: int,
    regime: str = "mild",
    devices: Optional[Sequence[str]] = None,
    seed: int = 0,
) -> float:
    """Idealised simulated wall-clock of synchronous FedAvg.

    A synchronous round is gated by its slowest participant: each round draws
    ``clients_per_round`` devices from the Table 1 market shares and advances
    the clock by the maximum sampled round-trip under the same
    :class:`~repro.devices.latency.DeviceLatencyModel` population the
    asynchronous simulation uses.  Availability churn is ignored (the
    idealised server waits out every straggler rather than losing it), so the
    estimate is a *lower bound* on the synchronous wall-clock.
    """
    if num_rounds <= 0 or clients_per_round <= 0:
        raise ValueError("num_rounds and clients_per_round must be positive")
    regime_obj = get_regime(regime)
    device_names = list(devices) if devices else list(DEVICE_NAMES)
    shares = market_shares()
    probs = np.array([shares.get(name, 0.0) for name in device_names])
    if probs.sum() <= 0:
        probs = np.full(len(device_names), 1.0 / len(device_names))
    probs = probs / probs.sum()
    models = [build_latency_model(name, regime_obj) for name in device_names]
    rng = np.random.default_rng([seed, zlib.crc32(regime_obj.name.encode())])
    total = 0.0
    for _ in range(num_rounds):
        picked = rng.choice(len(device_names), size=clients_per_round, p=probs)
        total += max(models[i].sample_round_trip(samples_per_client, rng)
                     for i in picked)
    return float(total)


def async_vs_sync(
    scale: "str | object" = "smoke",
    regimes: Sequence[str] = ("mild", "extreme"),
    methods: Sequence[str] = ("fedasync", "fedbuff"),
    devices: Optional[Sequence[str]] = None,
    seed: int = 0,
) -> ExperimentResult:
    """Accuracy + simulated time: FedAsync/FedBuff vs synchronous FedAvg.

    One synchronous FedAvg reference run (its accuracy is latency-independent)
    plus one asynchronous run per (method, regime) cell, all on the Table 4
    device-capture workload with market-share clients.  Every cell consumes
    the same number of client updates; see the module docstring.
    """
    from ..runtime import Runner, RunSpec, spec_scale  # late: runtime imports repro.eval

    scale_arg = spec_scale(scale)
    scale = get_scale(scale)
    device_names = list(devices) if devices else list(DEVICE_NAMES)
    runner = Runner()
    num_rounds = scale.num_rounds
    cohort = min(scale.clients_per_round, scale.num_clients)
    update_budget = num_rounds * cohort
    # Mean client dataset size: one capture set per device, partitioned
    # market-share-weighted across the client population.
    samples_per_client = max(1, (scale.samples_per_class_train * scale.num_classes
                                 * len(device_names)) // scale.num_clients)

    headers = ["regime", "method", "worst_case_accuracy", "average_accuracy",
               "variance", "virtual_hours", "commits", "updates",
               "mean_staleness"]
    rows: List[List[object]] = []
    scalars: Dict[str, float] = {}

    sync_spec = RunSpec(name="async/fedavg", strategy="fedavg",
                        dataset="device_capture",
                        dataset_kwargs={"devices": device_names},
                        scale=scale_arg, seeds=[seed])
    sync_metrics = runner.run(sync_spec).history.per_device_metric
    sync_row = (worst_case(sync_metrics), mean_value(sync_metrics),
                accuracy_variance(sync_metrics))
    scalars["fedavg_worst_case"], scalars["fedavg_average"], _ = sync_row

    for regime in regimes:
        sync_hours = estimate_sync_virtual_seconds(
            num_rounds, cohort, samples_per_client, regime=regime,
            devices=device_names, seed=seed) / 3600.0
        rows.append([regime, "fedavg (sync)", *sync_row, sync_hours,
                     num_rounds, update_budget, 0.0])
        scalars[f"{regime}_fedavg_virtual_hours"] = sync_hours

        for method in methods:
            overrides: Dict[str, object] = {}
            strategy_kwargs: Dict[str, object] = {}
            if method == "fedasync":
                # One update per commit: match the sync update budget.
                overrides["num_rounds"] = update_budget
            elif method == "fedbuff":
                strategy_kwargs["buffer_size"] = cohort
            spec = RunSpec(
                name=f"async/{method}/{regime}",
                kind="federated_async",
                strategy=method,
                strategy_kwargs=strategy_kwargs,
                dataset="device_capture",
                dataset_kwargs={"devices": device_names},
                scale=scale_arg,
                config_overrides=overrides,
                latency_kwargs={"regime": regime},
                concurrency=cohort,
                seeds=[seed],
            )
            history = runner.run(spec).history
            metrics = history.per_device_metric
            meta = history.metadata
            rows.append([regime, method, worst_case(metrics),
                         mean_value(metrics), accuracy_variance(metrics),
                         meta["virtual_hours"], meta["num_commits"],
                         meta["num_updates"], meta["mean_staleness"]])
            scalars[f"{regime}_{method}_worst_case"] = worst_case(metrics)
            scalars[f"{regime}_{method}_average"] = mean_value(metrics)
            scalars[f"{regime}_{method}_virtual_hours"] = float(meta["virtual_hours"])
            scalars[f"{regime}_{method}_mean_staleness"] = float(meta["mean_staleness"])
            scalars[f"{regime}_{method}_updates"] = float(meta["num_updates"])

    return ExperimentResult(
        experiment_id="async",
        description="Asynchronous FL (FedAsync/FedBuff) vs synchronous FedAvg: "
                    "accuracy and simulated wall-clock under latency regimes",
        headers=headers,
        rows=rows,
        scalars=scalars,
        metadata={"scale": scale.name, "regimes": list(regimes),
                  "update_budget": update_budget,
                  "samples_per_client": samples_per_client},
    )
