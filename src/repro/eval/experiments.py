"""One-stop index of experiment runners, keyed by paper artifact.

Every table and figure of the paper's evaluation maps to one function here
(see DESIGN.md's experiment index).  Each runner accepts a ``scale`` preset
("smoke" / "default" / "paper" or a custom :class:`ExperimentScale`) and
returns an :class:`repro.eval.results.ExperimentResult`.
"""

from __future__ import annotations

from typing import Callable, Dict

from .async_eval import async_vs_sync
from .characterization import (
    fig1_homo_vs_hetero,
    fig2_raw_degradation,
    fig3_isp_stage_ablation,
    fig4_fairness,
    fig5_domain_generalization,
    table2_cross_device,
)
from .evaluation import (
    ecg_heart_rate,
    fig8_synthetic_cifar,
    table4_main_evaluation,
    table5_model_architectures,
    table6_flair,
)
from .generalization import fig7_swad_robustness
from .results import ExperimentResult
from .sensitivity import fig9_hyperparameter_sensitivity

__all__ = [
    "EXPERIMENTS",
    "run_experiment",
    "fig1_homo_vs_hetero",
    "table2_cross_device",
    "fig2_raw_degradation",
    "fig3_isp_stage_ablation",
    "fig4_fairness",
    "fig5_domain_generalization",
    "fig7_swad_robustness",
    "table4_main_evaluation",
    "table5_model_architectures",
    "table6_flair",
    "fig8_synthetic_cifar",
    "ecg_heart_rate",
    "fig9_hyperparameter_sensitivity",
    "async_vs_sync",
]

EXPERIMENTS: Dict[str, Callable[..., ExperimentResult]] = {
    "fig1": fig1_homo_vs_hetero,
    "table2": table2_cross_device,
    "fig2": fig2_raw_degradation,
    "fig3": fig3_isp_stage_ablation,
    "fig4": fig4_fairness,
    "fig5": fig5_domain_generalization,
    "fig7": fig7_swad_robustness,
    "table4": table4_main_evaluation,
    "table5": table5_model_architectures,
    "table6": table6_flair,
    "fig8": fig8_synthetic_cifar,
    "ecg": ecg_heart_rate,
    "fig9": fig9_hyperparameter_sensitivity,
    "async": async_vs_sync,
}


def run_experiment(experiment_id: str, scale: str = "smoke", **kwargs) -> ExperimentResult:
    """Run one experiment by its paper artifact id (e.g. ``"table4"``)."""
    try:
        runner = EXPERIMENTS[experiment_id]
    except KeyError as exc:
        raise KeyError(
            f"unknown experiment '{experiment_id}'; available: {sorted(EXPERIMENTS)}"
        ) from exc
    return runner(scale=scale, **kwargs)
