"""Report generation: render experiment results to markdown / CSV files."""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import Iterable, Sequence

from .results import ExperimentResult

__all__ = ["results_to_markdown", "result_to_csv", "write_report"]


def results_to_markdown(results: Sequence[ExperimentResult], title: str = "Experiment report") -> str:
    """Concatenate experiment results into a single markdown document."""
    parts = [f"# {title}", ""]
    for result in results:
        parts.append(result.to_markdown())
        parts.append("")
    return "\n".join(parts)


def result_to_csv(result: ExperimentResult) -> str:
    """Render one experiment's table as CSV text."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(result.headers)
    for row in result.rows:
        writer.writerow(row)
    return buffer.getvalue()


def write_report(
    results: Iterable[ExperimentResult],
    output_dir: "str | Path",
    title: str = "HeteroSwitch reproduction report",
) -> Path:
    """Write a markdown report plus per-experiment CSV and JSON files under
    ``output_dir``.

    The JSON files round-trip through
    :meth:`~repro.eval.results.ExperimentResult.from_json`, so downstream
    tooling can reload the exact result records instead of re-parsing tables.
    Returns the path of the markdown report.
    """
    output_path = Path(output_dir)
    output_path.mkdir(parents=True, exist_ok=True)
    results = list(results)
    report_file = output_path / "report.md"
    report_file.write_text(results_to_markdown(results, title=title))
    for result in results:
        (output_path / f"{result.experiment_id}.csv").write_text(result_to_csv(result))
        (output_path / f"{result.experiment_id}.json").write_text(result.to_json() + "\n")
    return report_file
