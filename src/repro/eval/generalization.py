"""Fig. 7: robustness of transform-only vs SWA vs SWAD training.

The paper trains the model three ways on the original (pre-capture) image set
with a low-degree random transformation (degree = 0.3): (a) transformation
only, (b) transformation + conventional per-epoch SWA, (c) transformation +
per-batch SWAD.  Each trained model is then evaluated on test sets perturbed by
Affine, Gaussian-noise, White-Balance and Gamma transformations at degrees 0.3
to 0.9, and the model-quality degradation relative to the unperturbed test set
is compared.  SWAD is expected to be the most robust overall, which motivates
its use inside HeteroSwitch.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from ..core.swad import SWAAverager, SWADAverager
from ..core.transforms import default_isp_transform
from ..data.dataset import ArrayDataset, hwc_to_nchw, train_test_split
from ..data.scenes import generate_scene_dataset
from ..fl.metrics import model_quality_degradation
from ..fl.training import evaluate_metric
from ..isp.transforms import GaussianNoise, RandomAffine, RandomGamma, RandomWhiteBalance
from .centralized import evaluate_under_transform, train_centralized
from .factories import make_model_factory
from .results import ExperimentResult
from .scale import ExperimentScale, get_scale

__all__ = ["fig7_swad_robustness", "TEST_TRANSFORMS"]

# The four test-time perturbations of Fig. 7, keyed by the paper's labels.
TEST_TRANSFORMS = {
    "affine": RandomAffine,
    "gaussian_noise": GaussianNoise,
    "white_balance": RandomWhiteBalance,
    "gamma": RandomGamma,
}


def _resize_batch(images: np.ndarray, size: int) -> np.ndarray:
    """Nearest-neighbour downsample of an (N, H, W, C) batch to size x size."""
    n, h, w, c = images.shape
    if h == size and w == size:
        return images
    rows = np.linspace(0, h - 1, size).round().astype(int)
    cols = np.linspace(0, w - 1, size).round().astype(int)
    return images[:, rows][:, :, cols]


def fig7_swad_robustness(
    scale: "str | ExperimentScale" = "smoke",
    train_degree: float = 0.3,
    test_degrees: Sequence[float] = (0.3, 0.6, 0.9),
    seed: int = 0,
) -> ExperimentResult:
    """Fig. 7: compare transform-only, SWA and SWAD robustness.

    Returns one row per (training method, test transformation) with the mean
    quality degradation over the requested test degrees.
    """
    scale = get_scale(scale)
    # Original (pre-capture) dataset: the procedural scenes themselves.
    scenes, labels = generate_scene_dataset(
        scale.samples_per_class_train + scale.samples_per_class_test,
        num_classes=scale.num_classes,
        image_size=scale.scene_size,
        seed=seed,
    )
    scenes = _resize_batch(scenes, scale.image_size)
    dataset = ArrayDataset(hwc_to_nchw(scenes), labels)
    train_set, test_set = train_test_split(dataset, test_fraction=0.3, seed=seed)

    factory = make_model_factory(scale, scale.num_classes, scale.image_size, seed=seed)
    train_transform = default_isp_transform(wb_degree=train_degree, gamma_degree=train_degree)
    batches_per_epoch = max(1, int(np.ceil(len(train_set) / scale.batch_size)))

    methods = {
        "transform_only": dict(weight_averager=None, average_per_epoch=False),
        "transform_swa": dict(weight_averager=SWAAverager(batches_per_epoch), average_per_epoch=True),
        "transform_swad": dict(weight_averager=SWADAverager(), average_per_epoch=False),
    }

    rows: List[List[object]] = []
    per_method_mean: Dict[str, float] = {}
    for method_name, kwargs in methods.items():
        model = train_centralized(
            factory(), train_set, epochs=scale.central_epochs, batch_size=scale.batch_size,
            learning_rate=scale.learning_rate, transform=train_transform, seed=seed, **kwargs,
        )
        clean_accuracy = evaluate_metric(model, test_set, "classification")
        method_degradations: List[float] = []
        for transform_name, transform_cls in TEST_TRANSFORMS.items():
            degradations = []
            for degree_index, degree in enumerate(test_degrees):
                transform = transform_cls(degree=degree)
                accuracy = evaluate_under_transform(model, test_set, transform,
                                                    seed=seed + degree_index)
                degradations.append(model_quality_degradation(clean_accuracy, accuracy))
            mean_degradation = float(np.mean(degradations))
            rows.append([method_name, transform_name, clean_accuracy, mean_degradation])
            method_degradations.append(mean_degradation)
        per_method_mean[method_name] = float(np.mean(method_degradations))

    return ExperimentResult(
        experiment_id="fig7",
        description="Robustness of transform-only vs SWA vs SWAD training",
        headers=["method", "test_transform", "clean_accuracy", "mean_degradation"],
        rows=rows,
        scalars={f"mean_degradation_{name}": value for name, value in per_method_mean.items()},
        metadata={"scale": scale.name, "train_degree": train_degree,
                  "test_degrees": list(test_degrees)},
    )
