"""Fig. 7: robustness of transform-only vs SWA vs SWAD training.

The paper trains the model three ways on the original (pre-capture) image set
with a low-degree random transformation (degree = 0.3): (a) transformation
only, (b) transformation + conventional per-epoch SWA, (c) transformation +
per-batch SWAD.  Each trained model is then evaluated on test sets perturbed by
Affine, Gaussian-noise, White-Balance and Gamma transformations at degrees 0.3
to 0.9, and the model-quality degradation relative to the unperturbed test set
is compared.  SWAD is expected to be the most robust overall, which motivates
its use inside HeteroSwitch.

Each training variant is a centralized-kind :class:`~repro.runtime.RunSpec`
(``trainer_kwargs`` select the weight averager); the robustness grid evaluates
the returned models on the shared, memoised test split.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from ..fl.metrics import model_quality_degradation
from ..isp.transforms import GaussianNoise, RandomAffine, RandomGamma, RandomWhiteBalance
from .centralized import evaluate_under_transform
from .results import ExperimentResult
from .scale import ExperimentScale

__all__ = ["fig7_swad_robustness", "TEST_TRANSFORMS"]

# The four test-time perturbations of Fig. 7, keyed by the paper's labels.
TEST_TRANSFORMS = {
    "affine": RandomAffine,
    "gaussian_noise": GaussianNoise,
    "white_balance": RandomWhiteBalance,
    "gamma": RandomGamma,
}


def fig7_swad_robustness(
    scale: "str | ExperimentScale" = "smoke",
    train_degree: float = 0.3,
    test_degrees: Sequence[float] = (0.3, 0.6, 0.9),
    seed: int = 0,
) -> ExperimentResult:
    """Fig. 7: compare transform-only, SWA and SWAD robustness.

    Returns one row per (training method, test transformation) with the mean
    quality degradation over the requested test degrees.
    """
    from ..runtime import Runner, RunSpec, spec_scale  # late: runtime imports repro.eval

    scale_arg = spec_scale(scale)
    runner = Runner()
    methods = {
        "transform_only": "none",
        "transform_swa": "swa",
        "transform_swad": "swad",
    }

    rows: List[List[object]] = []
    per_method_mean: Dict[str, float] = {}
    for method_name, averager in methods.items():
        spec = RunSpec(
            name=f"fig7/{method_name}",
            kind="centralized",
            dataset="scenes",
            scale=scale_arg,
            trainer_kwargs={"averager": averager, "transform_degree": train_degree},
            seeds=[seed],
        )
        result = runner.run(spec)
        model = result.models[0]
        clean_accuracy = result.metrics[0]["scenes"]
        test_set = runner.build_bundle(spec, seed).test["scenes"]
        method_degradations: List[float] = []
        for transform_name, transform_cls in TEST_TRANSFORMS.items():
            degradations = []
            for degree_index, degree in enumerate(test_degrees):
                transform = transform_cls(degree=degree)
                accuracy = evaluate_under_transform(model, test_set, transform,
                                                    seed=seed + degree_index)
                degradations.append(model_quality_degradation(clean_accuracy, accuracy))
            mean_degradation = float(np.mean(degradations))
            rows.append([method_name, transform_name, clean_accuracy, mean_degradation])
            method_degradations.append(mean_degradation)
        per_method_mean[method_name] = float(np.mean(method_degradations))

    return ExperimentResult(
        experiment_id="fig7",
        description="Robustness of transform-only vs SWA vs SWAD training",
        headers=["method", "test_transform", "clean_accuracy", "mean_degradation"],
        rows=rows,
        scalars={f"mean_degradation_{name}": value for name, value in per_method_mean.items()},
        metadata={"scale": spec.resolve_scale().name, "train_degree": train_degree,
                  "test_degrees": list(test_degrees)},
    )
