"""Evaluation experiments: Section 6 of the paper.

* :func:`table4_main_evaluation`     — Table 4: DG / fairness for every method.
* :func:`table5_model_architectures` — Table 5: FedAvg vs HeteroSwitch across models.
* :func:`table6_flair`               — Table 6: FLAIR-like multi-label evaluation.
* :func:`fig8_synthetic_cifar`       — Fig. 8: synthetic-CIFAR per-device accuracy.
* :func:`ecg_heart_rate`             — Section 6.6: ECG heart-rate deviation.

Tables 4 and 5 are expressed as declarative :class:`~repro.runtime.RunSpec`
runs through the :class:`~repro.runtime.Runner` (one spec per table row); the
remaining runners still use the legacy :func:`run_fl_method` engine, which is
kept both as a thin migration shim and as the reference the runtime's
equivalence tests compare against.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from ..core.transforms import ecg_transform
from ..data.cifar_synthetic import SyntheticCifarConfig, build_synthetic_cifar
from ..data.ecg import build_ecg_datasets
from ..data.flair_synthetic import FlairConfig, build_flair_dataset
from ..data.partition import build_client_specs
from ..devices.profiles import DEVICE_NAMES
from ..fl.config import FLConfig
from ..fl.metrics import accuracy_variance, mean_value, worst_case
from ..fl.simulation import FederatedSimulation, FLHistory
from ..fl.strategies import create_strategy
from .factories import make_model_factory
from .results import ExperimentResult
from .scale import ExperimentScale, get_scale

__all__ = [
    "TABLE4_METHODS",
    "run_fl_method",
    "table4_main_evaluation",
    "table5_model_architectures",
    "table6_flair",
    "fig8_synthetic_cifar",
    "ecg_heart_rate",
]

# The rows of Table 4, in the paper's order.
TABLE4_METHODS = (
    "fedavg",
    "isp_transform",
    "isp_swad",
    "heteroswitch",
    "qfedavg",
    "fedprox",
    "scaffold",
)


def run_fl_method(
    method: str,
    model_factory,
    train_sets,
    test_sets,
    scale: ExperimentScale,
    task: str = "classification",
    shares=None,
    seed: int = 0,
    strategy_kwargs: Optional[dict] = None,
) -> FLHistory:
    """Run one FL method end-to-end and return its history.

    This is the shared engine behind Tables 4-6 and Fig. 8: it builds the
    client population (market-share weighted unless ``shares`` overrides it),
    configures FL from the scale preset, and runs the named strategy.
    """
    clients = build_client_specs(train_sets, num_clients=scale.num_clients,
                                 shares=shares, seed=seed)
    config = FLConfig(
        num_clients=scale.num_clients,
        clients_per_round=min(scale.clients_per_round, scale.num_clients),
        num_rounds=scale.num_rounds,
        local_epochs=scale.local_epochs,
        batch_size=scale.batch_size,
        learning_rate=scale.learning_rate,
        task=task,
        seed=seed,
    )
    strategy = create_strategy(method, **(strategy_kwargs or {}))
    simulation = FederatedSimulation(model_factory, clients, test_sets, strategy, config)
    return simulation.run()


# --------------------------------------------------------------------------- #
# Table 4 — main evaluation
# --------------------------------------------------------------------------- #
def table4_main_evaluation(
    scale: "str | ExperimentScale" = "smoke",
    methods: Sequence[str] = TABLE4_METHODS,
    devices: Optional[Sequence[str]] = None,
    seed: int = 0,
) -> ExperimentResult:
    """Table 4: worst-case accuracy (DG), variance and average accuracy (fairness).

    Clients follow the Table 1 market shares; the global model is evaluated on
    each device type's held-out set.  Each method is one declarative
    :class:`~repro.runtime.RunSpec` executed by a shared
    :class:`~repro.runtime.Runner` (the dataset is built once and memoised).
    """
    from ..runtime import Runner, RunSpec, spec_scale  # late: runtime imports repro.eval

    scale_arg = spec_scale(scale)
    scale = get_scale(scale)
    device_names = list(devices) if devices else DEVICE_NAMES
    runner = Runner()

    rows: List[List[object]] = []
    scalars: Dict[str, float] = {}
    per_method: Dict[str, Dict[str, float]] = {}
    for method in methods:
        spec = RunSpec(
            name=f"table4/{method}",
            strategy=method,
            dataset="device_capture",
            dataset_kwargs={"devices": device_names},
            scale=scale_arg,
            seeds=[seed],
        )
        metrics = runner.run(spec).history.per_device_metric
        per_method[method] = metrics
        worst = worst_case(metrics)
        variance = accuracy_variance(metrics)
        average = mean_value(metrics)
        rows.append([method, worst, variance, average])
        scalars[f"{method}_worst_case"] = worst
        scalars[f"{method}_variance"] = variance
        scalars[f"{method}_average"] = average

    return ExperimentResult(
        experiment_id="table4",
        description="Main evaluation: DG worst-case accuracy and fairness variance/average",
        headers=["method", "worst_case_accuracy", "variance", "average_accuracy"],
        rows=rows,
        scalars=scalars,
        metadata={"scale": scale.name, "devices": device_names, "per_method": per_method},
    )


# --------------------------------------------------------------------------- #
# Table 5 — model architectures
# --------------------------------------------------------------------------- #
def table5_model_architectures(
    scale: "str | ExperimentScale" = "smoke",
    model_names: Sequence[str] = ("mobilenetv3_small", "shufflenet_v2_x0_5", "squeezenet1_1"),
    methods: Sequence[str] = ("fedavg", "heteroswitch"),
    devices: Optional[Sequence[str]] = None,
    seed: int = 0,
) -> ExperimentResult:
    """Table 5: FedAvg vs HeteroSwitch across mobile-friendly model architectures.

    Each (model, method) cell is one :class:`~repro.runtime.RunSpec`; the
    shared :class:`~repro.runtime.Runner` builds the dataset once for the
    whole grid.
    """
    from ..runtime import Runner, RunSpec, spec_scale  # late: runtime imports repro.eval

    scale_arg = spec_scale(scale)
    scale = get_scale(scale)
    device_names = list(devices) if devices else DEVICE_NAMES
    runner = Runner()

    rows: List[List[object]] = []
    scalars: Dict[str, float] = {}
    for model_name in model_names:
        for method in methods:
            spec = RunSpec(
                name=f"table5/{model_name}/{method}",
                strategy=method,
                model=model_name,
                dataset="device_capture",
                dataset_kwargs={"devices": device_names},
                scale=scale_arg,
                seeds=[seed],
            )
            metrics = runner.run(spec).history.per_device_metric
            worst = worst_case(metrics)
            variance = accuracy_variance(metrics)
            average = mean_value(metrics)
            rows.append([model_name, method, worst, variance, average])
            scalars[f"{model_name}_{method}_worst_case"] = worst
            scalars[f"{model_name}_{method}_variance"] = variance
            scalars[f"{model_name}_{method}_average"] = average

    return ExperimentResult(
        experiment_id="table5",
        description="FedAvg vs HeteroSwitch across model architectures",
        headers=["model", "method", "worst_case_accuracy", "variance", "average_accuracy"],
        rows=rows,
        scalars=scalars,
        metadata={"scale": scale.name, "models": list(model_names)},
    )


# --------------------------------------------------------------------------- #
# Table 6 — FLAIR-like multi-label evaluation
# --------------------------------------------------------------------------- #
def table6_flair(
    scale: "str | ExperimentScale" = "smoke",
    methods: Sequence[str] = ("fedavg", "heteroswitch", "qfedavg", "fedprox"),
    num_device_types: Optional[int] = None,
    seed: int = 0,
) -> ExperimentResult:
    """Table 6: averaged precision and its variance on the FLAIR-like dataset."""
    scale = get_scale(scale)
    device_types = num_device_types if num_device_types is not None else (
        6 if scale.name == "smoke" else 15
    )
    config = FlairConfig(
        num_labels=6 if scale.name == "smoke" else 8,
        num_device_types=device_types,
        samples_per_device_train=max(scale.samples_per_class_train * 3, 9),
        samples_per_device_test=max(scale.samples_per_class_test * 3, 6),
        image_size=scale.image_size,
        seed=seed,
    )
    train_sets, test_sets, devices = build_flair_dataset(config)
    factory = make_model_factory(
        scale, config.num_labels, config.image_size,
        model_name="multilabel_cnn" if scale.name != "smoke" else "simple_mlp",
        seed=seed,
    )

    rows: List[List[object]] = []
    scalars: Dict[str, float] = {}
    for method in methods:
        history = run_fl_method(method, factory, train_sets, test_sets, scale,
                                task="multilabel", seed=seed)
        metrics = history.per_device_metric
        average_precision_value = mean_value(metrics)
        variance = accuracy_variance(metrics)
        rows.append([method, average_precision_value, variance])
        scalars[f"{method}_averaged_precision"] = average_precision_value
        scalars[f"{method}_variance"] = variance

    return ExperimentResult(
        experiment_id="table6",
        description="FLAIR-like multi-label evaluation: averaged precision across device types",
        headers=["method", "averaged_precision", "variance"],
        rows=rows,
        scalars=scalars,
        metadata={"scale": scale.name, "num_device_types": device_types},
    )


# --------------------------------------------------------------------------- #
# Fig. 8 — synthetic CIFAR
# --------------------------------------------------------------------------- #
def fig8_synthetic_cifar(
    scale: "str | ExperimentScale" = "smoke",
    methods: Sequence[str] = ("fedavg", "heteroswitch"),
    seed: int = 0,
) -> ExperimentResult:
    """Fig. 8: per-synthetic-device accuracy with FedAvg vs HeteroSwitch."""
    scale = get_scale(scale)
    config = SyntheticCifarConfig(
        num_classes=5 if scale.name == "smoke" else 20,
        samples_per_class_train=scale.samples_per_class_train * 2,
        samples_per_class_test=scale.samples_per_class_test * 2,
        image_size=scale.image_size,
        num_device_types=4 if scale.name == "smoke" else 10,
        seed=seed,
    )
    train_sets, test_sets, devices = build_synthetic_cifar(config)
    factory = make_model_factory(
        scale, config.num_classes, config.image_size,
        model_name="simple_cnn" if scale.name != "smoke" else "simple_mlp",
        seed=seed,
    )

    rows: List[List[object]] = []
    scalars: Dict[str, float] = {}
    per_method: Dict[str, Dict[str, float]] = {}
    for method in methods:
        history = run_fl_method(method, factory, train_sets, test_sets, scale, seed=seed)
        metrics = history.per_device_metric
        per_method[method] = metrics
        for device in sorted(metrics):
            rows.append([method, device, metrics[device]])
        scalars[f"{method}_average"] = mean_value(metrics)
        scalars[f"{method}_variance"] = accuracy_variance(metrics)

    return ExperimentResult(
        experiment_id="fig8",
        description="Synthetic-CIFAR per-device accuracy: FedAvg vs HeteroSwitch",
        headers=["method", "synthetic_device", "accuracy"],
        rows=rows,
        scalars=scalars,
        metadata={"scale": scale.name, "num_device_types": config.num_device_types,
                  "per_method": per_method},
    )


# --------------------------------------------------------------------------- #
# Section 6.6 — ECG heart-rate deviation
# --------------------------------------------------------------------------- #
def ecg_heart_rate(
    scale: "str | ExperimentScale" = "smoke",
    methods: Sequence[str] = ("fedavg", "heteroswitch"),
    window_size: int = 64,
    seed: int = 0,
) -> ExperimentResult:
    """Section 6.6: heart-rate prediction deviation across ECG sensor types.

    HeteroSwitch uses its random-Gaussian-filter transform for this 1-D task.
    The reported number mirrors the paper's: the mean relative deviation of
    predictions across sensor types (lower is better).
    """
    scale = get_scale(scale)
    samples_train = max(scale.samples_per_class_train * 6, 24)
    samples_test = max(scale.samples_per_class_test * 6, 12)
    train_sets, test_sets, sensors = build_ecg_datasets(
        samples_per_sensor_train=samples_train,
        samples_per_sensor_test=samples_test,
        window_size=window_size,
        seed=seed,
    )
    factory = make_model_factory(scale, 1, window_size, model_name="ecg_regressor", seed=seed)

    rows: List[List[object]] = []
    scalars: Dict[str, float] = {}
    for method in methods:
        strategy_kwargs = {}
        if method in ("heteroswitch", "isp_transform", "isp_swad"):
            strategy_kwargs["transform"] = ecg_transform()
        history = run_fl_method(method, factory, train_sets, test_sets, scale,
                                task="regression", seed=seed, strategy_kwargs=strategy_kwargs)
        # Convert the simulation's "1 - deviation" metric back to deviation.
        deviations = {sensor: 1.0 - value for sensor, value in history.per_device_metric.items()}
        for sensor in sorted(deviations):
            rows.append([method, sensor, deviations[sensor]])
        scalars[f"{method}_mean_deviation"] = float(np.mean(list(deviations.values())))
        scalars[f"{method}_worst_deviation"] = float(np.max(list(deviations.values())))

    return ExperimentResult(
        experiment_id="ecg",
        description="ECG heart-rate deviation across sensor types",
        headers=["method", "sensor", "deviation"],
        rows=rows,
        scalars=scalars,
        metadata={"scale": scale.name, "window_size": window_size,
                  "sensors": [s.name for s in sensors]},
    )
