"""Model weight (de)serialization helpers used by the FL framework.

Federated learning exchanges model *parameter vectors*: clients receive the
global weights, train locally, and return updated weights (or deltas).  These
helpers convert between a module's ``state_dict`` and flat vectors, and provide
the arithmetic used by aggregation rules (averaging, scaling, deltas).

:func:`save_state` / :func:`load_state` persist a state dict as an ``.npz``
archive with exact dtype/shape preservation — the codec the run store's
checkpoints (:mod:`repro.store`) are built on — and :func:`state_fingerprint`
hashes the raw bytes of a state so two runs can be compared for bit-identity
without shipping the weights themselves.
"""

from __future__ import annotations

import hashlib
import os
from typing import Dict, Iterable, Optional, Sequence

import numpy as np

from ..io import atomic_write
from .engine import current_engine
from .layers import Module

__all__ = [
    "StateLayout",
    "state_dict_to_vector",
    "vector_to_state_dict",
    "get_weights",
    "set_weights",
    "clone_state",
    "states_equal",
    "zeros_like_state",
    "add_states",
    "scale_state",
    "subtract_states",
    "average_states",
    "StreamingAverager",
    "state_norm",
    "save_state",
    "load_state",
    "state_fingerprint",
]

StateDict = Dict[str, np.ndarray]


class StateLayout:
    """Flat-vector layout of a state dict, preserving the template's key order.

    Aggregation rules reduce many client state dicts; packing each dict into
    one contiguous vector turns the per-key Python loops into whole-vector
    NumPy ops.  The layout keeps the *insertion* order of the template's keys
    (not sorted order): per-key reductions such as :func:`state_norm` sum
    their per-key partials in iteration order, and replaying that exact order
    segment-by-segment is what keeps flat reductions bitwise-identical to the
    dict-based reference.
    """

    def __init__(self, template: StateDict) -> None:
        self.keys = list(template)
        self.shapes = [np.asarray(template[key]).shape for key in self.keys]
        self._finalize()

    @classmethod
    def from_keys_shapes(cls, keys, shapes) -> "StateLayout":
        """Build a layout directly from aligned key/shape sequences."""
        layout = cls.__new__(cls)
        layout.keys = list(keys)
        layout.shapes = [tuple(shape) for shape in shapes]
        layout._finalize()
        return layout

    def _finalize(self) -> None:
        sizes = [int(np.prod(shape)) if shape else 1 for shape in self.shapes]
        self.offsets = np.concatenate([[0], np.cumsum(sizes)]).astype(int)
        self.size = int(self.offsets[-1])
        self._template = dict.fromkeys(self.keys)

    def pack(self, state: StateDict, out: Optional[np.ndarray] = None) -> np.ndarray:
        """Flatten ``state`` into one float64 vector in layout order.

        Every entry must match the layout's recorded shape exactly.  A
        same-size-but-wrong-shape entry (e.g. ``(1, 4)`` where the layout
        records ``(4,)``) would flatten silently here while the dict-based
        reference path broadcasts differently or raises — the flat and
        reference engines must *refuse* malformed input identically rather
        than diverge on it.
        """
        _check_keys(self._template, state)
        if out is None:
            out = np.empty(self.size, dtype=np.float64)
        for key, shape, start, end in zip(
            self.keys, self.shapes, self.offsets[:-1], self.offsets[1:]
        ):
            value = np.asarray(state[key], dtype=np.float64)
            if value.shape != shape:
                raise ValueError(
                    f"shape mismatch for '{key}': got {value.shape}, "
                    f"layout records {shape}"
                )
            out[start:end] = value.reshape(-1)
        return out

    def unpack(self, vector: np.ndarray) -> StateDict:
        """Rebuild a state dict of views into ``vector`` (no copies)."""
        if vector.size != self.size:
            raise ValueError(f"vector length {vector.size} does not match layout size {self.size}")
        return {
            key: vector[start:end].reshape(shape)
            for key, shape, start, end in zip(
                self.keys, self.shapes, self.offsets[:-1], self.offsets[1:]
            )
        }

    def segments(self, vector: np.ndarray):
        """Iterate ``(key, flat_segment)`` pairs of ``vector`` in layout order."""
        for key, start, end in zip(self.keys, self.offsets[:-1], self.offsets[1:]):
            yield key, vector[start:end]


def get_weights(model: Module) -> StateDict:
    """Return a copy of the model's full state (parameters + buffers)."""
    return model.state_dict()


def set_weights(model: Module, state: StateDict) -> None:
    """Load a state dict into a model in-place."""
    model.load_state_dict(state)


def state_dict_to_vector(state: StateDict) -> np.ndarray:
    """Flatten a state dict into a single 1-D array (keys sorted for determinism)."""
    return np.concatenate([np.ravel(state[key]) for key in sorted(state)]) if state else np.zeros(0)


def vector_to_state_dict(vector: np.ndarray, template: StateDict) -> StateDict:
    """Unflatten ``vector`` using the shapes of ``template`` (keys sorted)."""
    result: StateDict = {}
    offset = 0
    for key in sorted(template):
        size = template[key].size
        chunk = vector[offset : offset + size]
        if chunk.size != size:
            raise ValueError("vector length does not match template")
        result[key] = chunk.reshape(template[key].shape).copy()
        offset += size
    if offset != vector.size:
        raise ValueError("vector length does not match template")
    return result


def clone_state(state: StateDict) -> StateDict:
    """Deep copy of a state dict as contiguous, owned arrays.

    Used to build pickle-safe client payloads for the process execution
    backend: the copies alias no model buffers (a worker's scratch model keeps
    training after the result is shipped) and are C-contiguous, so pickling is
    a flat memory copy.
    """
    return {key: np.asarray(value).copy() for key, value in state.items()}


def states_equal(a: StateDict, b: StateDict) -> bool:
    """Exact (bitwise) equality of two state dicts.

    The cross-backend determinism guarantee of :mod:`repro.fl.execution` is
    *bit-identical* weights, so entries are compared by their raw bytes: equal
    NaNs compare equal, and ``+0.0`` / ``-0.0`` compare different — unlike
    value comparison, which would make the guarantee vacuous at those points.
    """
    if a.keys() != b.keys():
        return False
    for key in a:
        x, y = np.asarray(a[key]), np.asarray(b[key])
        if x.shape != y.shape or x.dtype != y.dtype or x.tobytes() != y.tobytes():
            return False
    return True


def zeros_like_state(state: StateDict) -> StateDict:
    """Return a state dict of zeros with the same structure."""
    return {key: np.zeros_like(value) for key, value in state.items()}


def add_states(a: StateDict, b: StateDict) -> StateDict:
    """Elementwise sum of two state dicts."""
    _check_keys(a, b)
    return {key: a[key] + b[key] for key in a}


def subtract_states(a: StateDict, b: StateDict) -> StateDict:
    """Elementwise difference ``a - b``."""
    _check_keys(a, b)
    return {key: a[key] - b[key] for key in a}


def scale_state(state: StateDict, factor: float) -> StateDict:
    """Multiply every entry by ``factor``."""
    return {key: value * factor for key, value in state.items()}


def _normalized_weights(weights: Iterable[float] | None, count: int) -> np.ndarray:
    """Validate and normalize aggregation weights for ``count`` states.

    Beyond requiring a positive total, every entry must be finite and
    non-negative: a NaN weight slips past a ``total <= 0`` check (``nan <= 0``
    is False) and silently poisons the whole average, and a negative
    per-client weight (e.g. ``[-1, 2]``) can sum positive while flipping that
    client's contribution sign.
    """
    if weights is None:
        return np.full(count, 1.0 / count)
    weights_arr = np.asarray(list(weights), dtype=np.float64)
    if weights_arr.ndim != 1 or weights_arr.shape[0] != count:
        raise ValueError("weights length must match number of states")
    if not np.all(np.isfinite(weights_arr)):
        raise ValueError(
            f"weights must be finite, got {weights_arr.tolist()}"
        )
    if np.any(weights_arr < 0):
        raise ValueError(
            f"weights must be non-negative, got {weights_arr.tolist()}"
        )
    total = weights_arr.sum()
    if total <= 0:
        raise ValueError("weights must sum to a positive value")
    return weights_arr / total


class StreamingAverager:
    """Weighted state average consuming one state at a time in O(1) memory.

    The number of states (and their weights) must be known up front — the
    reference reduction normalizes weights by their total *before* the first
    multiply-add, so a one-pass streaming reduction can only replay its exact
    float ops if the normalizer is available before the first state arrives.
    Given that, :meth:`add` folds each state into a single accumulator (flat
    engine: accumulator + one reused pack buffer; reference engine: one
    per-key result dict), so peak memory is independent of how many states
    are averaged — the property the fleet-scale execution path relies on.

    Element-for-element both engines perform the same multiply-add sequence
    as :func:`average_states` (states outermost, starting from zeros, weights
    normalized up front), so streaming is bitwise-identical to materializing
    the full list first.
    """

    def __init__(self, count: int, weights: Iterable[float] | None = None) -> None:
        if count <= 0:
            raise ValueError("cannot average an empty list of states")
        self._weights = _normalized_weights(weights, count)
        self._count = count
        self._index = 0
        self._reference = current_engine() == "reference"
        self._result: Optional[StateDict] = None
        self._layout: Optional[StateLayout] = None
        self._accumulator: Optional[np.ndarray] = None
        self._buffer: Optional[np.ndarray] = None

    def add(self, state: StateDict) -> None:
        """Fold the next state into the running average (in declared order)."""
        if self._index >= self._count:
            raise ValueError(f"received more states than the declared {self._count}")
        weight = self._weights[self._index]
        if self._reference:
            # Seed path: per-key accumulation, clients outermost.
            if self._result is None:
                self._result = zeros_like_state(state)
            _check_keys(self._result, state)
            for key in self._result:
                self._result[key] += weight * state[key]
        else:
            # Flat reduction: pack the state into the one reused buffer and
            # accumulate over the whole vector.
            if self._layout is None:
                self._layout = StateLayout(state)
                self._accumulator = np.zeros(self._layout.size, dtype=np.float64)
                self._buffer = np.empty(self._layout.size, dtype=np.float64)
            self._layout.pack(state, out=self._buffer)
            self._accumulator += weight * self._buffer
        self._index += 1

    def finalize(self) -> StateDict:
        """The average, once exactly ``count`` states have been folded in."""
        if self._index != self._count:
            raise ValueError(
                f"expected {self._count} states, received {self._index}"
            )
        if self._reference:
            return self._result
        return self._layout.unpack(self._accumulator)


def average_states(states: Sequence[StateDict], weights: Iterable[float] | None = None) -> StateDict:
    """Weighted average of state dicts (the FedAvg aggregation primitive).

    Delegates to :class:`StreamingAverager`, so the materialized and
    streaming reductions cannot drift: both run the identical multiply-add
    sequence (clients outermost, weights normalized up front).
    """
    states = list(states)
    if not states:
        raise ValueError("cannot average an empty list of states")
    averager = StreamingAverager(len(states), weights)
    for state in states:
        averager.add(state)
    return averager.finalize()


def state_norm(state: StateDict) -> float:
    """L2 norm of the flattened state (used by q-FedAvg's Lipschitz estimate)."""
    return float(np.sqrt(sum(float(np.sum(value ** 2)) for value in state.values())))


def save_state(path, state: StateDict) -> None:
    """Persist a state dict as an ``.npz`` archive (crash-safe, bit-exact).

    Every entry's dtype, shape and raw bytes survive the round trip, so
    ``states_equal(state, load_state(path))`` holds for any state this module
    produces.  The archive is written to a temporary sibling and moved into
    place with :func:`os.replace`, so a reader (or a resumed run) never
    observes a half-written file.
    """
    for key in state:
        if not isinstance(key, str) or not key:
            raise ValueError(f"state dict keys must be non-empty strings, got {key!r}")
    with atomic_write(path) as handle:
        np.savez(handle, **{key: np.asarray(value) for key, value in state.items()})


def load_state(path) -> StateDict:
    """Inverse of :func:`save_state`: read an ``.npz`` archive as a state dict."""
    with np.load(os.fspath(path), allow_pickle=False) as archive:
        return {key: archive[key] for key in archive.files}


def state_fingerprint(state: StateDict) -> str:
    """sha256 hex digest of a state dict's exact contents.

    Keys are visited in sorted order and each entry contributes its name,
    dtype, shape and raw bytes, so the digest is equal exactly when
    :func:`states_equal` is true — the run store uses it to compare a resumed
    run against an uninterrupted one without keeping both sets of weights.
    """
    digest = hashlib.sha256()
    for key in sorted(state):
        value = np.ascontiguousarray(state[key])
        digest.update(key.encode("utf-8"))
        digest.update(value.dtype.str.encode("ascii"))
        digest.update(repr(value.shape).encode("ascii"))
        digest.update(value.tobytes())
    return digest.hexdigest()


def _check_keys(a: StateDict, b: StateDict) -> None:
    if a.keys() != b.keys():
        missing = set(a).symmetric_difference(b)
        raise KeyError(f"state dicts have mismatched keys: {sorted(missing)[:5]}")
