"""Model weight (de)serialization helpers used by the FL framework.

Federated learning exchanges model *parameter vectors*: clients receive the
global weights, train locally, and return updated weights (or deltas).  These
helpers convert between a module's ``state_dict`` and flat vectors, and provide
the arithmetic used by aggregation rules (averaging, scaling, deltas).

:func:`save_state` / :func:`load_state` persist a state dict as an ``.npz``
archive with exact dtype/shape preservation — the codec the run store's
checkpoints (:mod:`repro.store`) are built on — and :func:`state_fingerprint`
hashes the raw bytes of a state so two runs can be compared for bit-identity
without shipping the weights themselves.
"""

from __future__ import annotations

import hashlib
import os
from typing import Dict, Iterable, Optional, Sequence

import numpy as np

from ..io import atomic_write
from .engine import current_engine
from .layers import Module

__all__ = [
    "StateLayout",
    "state_dict_to_vector",
    "vector_to_state_dict",
    "get_weights",
    "set_weights",
    "clone_state",
    "states_equal",
    "states_allclose",
    "zeros_like_state",
    "add_states",
    "scale_state",
    "subtract_states",
    "average_states",
    "StreamingAverager",
    "state_norm",
    "save_state",
    "load_state",
    "state_fingerprint",
]

StateDict = Dict[str, np.ndarray]


class StateLayout:
    """Flat-vector layout of a state dict, preserving the template's key order.

    Aggregation rules reduce many client state dicts; packing each dict into
    one contiguous vector turns the per-key Python loops into whole-vector
    NumPy ops.  The layout keeps the *insertion* order of the template's keys
    (not sorted order): per-key reductions such as :func:`state_norm` sum
    their per-key partials in iteration order, and replaying that exact order
    segment-by-segment is what keeps flat reductions bitwise-identical to the
    dict-based reference.
    """

    def __init__(self, template: StateDict) -> None:
        self.keys = list(template)
        self.shapes = [np.asarray(template[key]).shape for key in self.keys]
        dtypes = {np.asarray(template[key]).dtype for key in self.keys}
        self.dtype = np.result_type(*dtypes) if dtypes else np.dtype(np.float64)
        self._finalize()

    @classmethod
    def from_keys_shapes(cls, keys, shapes, dtype=np.float64) -> "StateLayout":
        """Build a layout directly from aligned key/shape/dtype metadata."""
        layout = cls.__new__(cls)
        layout.keys = list(keys)
        layout.shapes = [tuple(shape) for shape in shapes]
        layout.dtype = np.dtype(dtype)
        layout._finalize()
        return layout

    def _finalize(self) -> None:
        sizes = [int(np.prod(shape)) if shape else 1 for shape in self.shapes]
        self.offsets = np.concatenate([[0], np.cumsum(sizes)]).astype(int)
        self.size = int(self.offsets[-1])
        self._template = dict.fromkeys(self.keys)

    def pack(self, state: StateDict, out: Optional[np.ndarray] = None) -> np.ndarray:
        """Flatten ``state`` into one vector (in the layout's dtype) in layout order.

        Every entry must match the layout's recorded shape exactly.  A
        same-size-but-wrong-shape entry (e.g. ``(1, 4)`` where the layout
        records ``(4,)``) would flatten silently here while the dict-based
        reference path broadcasts differently or raises — the flat and
        reference engines must *refuse* malformed input identically rather
        than diverge on it.
        """
        _check_keys(self._template, state)
        if out is None:
            out = np.empty(self.size, dtype=self.dtype)
        for key, shape, start, end in zip(
            self.keys, self.shapes, self.offsets[:-1], self.offsets[1:]
        ):
            value = np.asarray(state[key], dtype=out.dtype)
            if value.shape != shape:
                raise ValueError(
                    f"shape mismatch for '{key}': got {value.shape}, "
                    f"layout records {shape}"
                )
            out[start:end] = value.reshape(-1)
        return out

    def unpack(self, vector: np.ndarray) -> StateDict:
        """Rebuild a state dict of views into ``vector`` (no copies)."""
        if vector.size != self.size:
            raise ValueError(f"vector length {vector.size} does not match layout size {self.size}")
        return {
            key: vector[start:end].reshape(shape)
            for key, shape, start, end in zip(
                self.keys, self.shapes, self.offsets[:-1], self.offsets[1:]
            )
        }

    def segments(self, vector: np.ndarray):
        """Iterate ``(key, flat_segment)`` pairs of ``vector`` in layout order."""
        for key, start, end in zip(self.keys, self.offsets[:-1], self.offsets[1:]):
            yield key, vector[start:end]


def get_weights(model: Module) -> StateDict:
    """Return a copy of the model's full state (parameters + buffers)."""
    return model.state_dict()


def set_weights(model: Module, state: StateDict) -> None:
    """Load a state dict into a model in-place."""
    model.load_state_dict(state)


def state_dict_to_vector(state: StateDict) -> np.ndarray:
    """Flatten a state dict into a single 1-D array (keys sorted for determinism)."""
    return np.concatenate([np.ravel(state[key]) for key in sorted(state)]) if state else np.zeros(0)


def vector_to_state_dict(vector: np.ndarray, template: StateDict) -> StateDict:
    """Unflatten ``vector`` using the shapes of ``template`` (keys sorted)."""
    result: StateDict = {}
    offset = 0
    for key in sorted(template):
        size = template[key].size
        chunk = vector[offset : offset + size]
        if chunk.size != size:
            raise ValueError("vector length does not match template")
        result[key] = chunk.reshape(template[key].shape).copy()
        offset += size
    if offset != vector.size:
        raise ValueError("vector length does not match template")
    return result


def clone_state(state: StateDict) -> StateDict:
    """Deep copy of a state dict as contiguous, owned arrays.

    Used to build pickle-safe client payloads for the process execution
    backend: the copies alias no model buffers (a worker's scratch model keeps
    training after the result is shipped) and are C-contiguous, so pickling is
    a flat memory copy.
    """
    return {key: np.asarray(value).copy() for key, value in state.items()}


def states_equal(a: StateDict, b: StateDict) -> bool:
    """Exact (bitwise) equality of two state dicts.

    The cross-backend determinism guarantee of :mod:`repro.fl.execution` is
    *bit-identical* weights, so entries are compared by their raw bytes: equal
    NaNs compare equal, and ``+0.0`` / ``-0.0`` compare different — unlike
    value comparison, which would make the guarantee vacuous at those points.
    """
    if a.keys() != b.keys():
        return False
    for key in a:
        x, y = np.asarray(a[key]), np.asarray(b[key])
        if x.shape != y.shape or x.dtype != y.dtype or x.tobytes() != y.tobytes():
            return False
    return True


def _ulp_keys(arr: np.ndarray, dtype: np.dtype) -> np.ndarray:
    """Map float bits to monotonically increasing unsigned keys.

    The standard IEEE-754 total-order transform: flip all bits of negatives,
    set the top bit of non-negatives.  Adjacent representable floats land on
    adjacent keys, so a key difference *is* the ULP distance.
    """
    utype = np.uint32 if dtype == np.dtype(np.float32) else np.uint64
    bits = np.ascontiguousarray(arr, dtype=dtype).view(utype)
    top = utype(1) << utype(utype().itemsize * 8 - 1)
    return np.where(bits & top, ~bits, bits | top)


def _max_ulp(x: np.ndarray, y: np.ndarray) -> int:
    """Largest per-element ULP distance between two same-shape float arrays."""
    if x.size == 0:
        return 0
    dtype = np.promote_types(x.dtype, y.dtype)
    if dtype != np.dtype(np.float32):
        dtype = np.dtype(np.float64)
    kx, ky = _ulp_keys(x, dtype), _ulp_keys(y, dtype)
    return int((np.maximum(kx, ky) - np.minimum(kx, ky)).max())


def states_allclose(
    a: StateDict, b: StateDict, rtol: float = 1e-5, atol: float = 1e-8
) -> bool:
    """Tolerance-based state equality for cross-precision comparisons.

    The float32 engine cannot promise the bitwise identity
    :func:`states_equal` pins for the float64 golden path, so the float32
    equivalence suites compare against the float64 run with this helper
    instead.  Keys must match exactly (KeyError otherwise) and every entry's
    shape must match (ValueError); entries are then compared with
    ``np.allclose`` under ``rtol``/``atol``.  Returns ``True`` when all
    entries are within tolerance; raises ``AssertionError`` carrying a
    per-key report — max absolute error, max relative error and max ULP
    distance — for every entry that is not, so a failing equivalence test
    says *how far* the precisions drifted, not just that they did.
    """
    _check_keys(a, b)
    failures = []
    for key in a:
        x, y = np.asarray(a[key]), np.asarray(b[key])
        if x.shape != y.shape:
            raise ValueError(
                f"shape mismatch for '{key}': {x.shape} vs {y.shape}"
            )
        if np.allclose(x, y, rtol=rtol, atol=atol):
            continue
        xf = x.astype(np.float64)
        yf = y.astype(np.float64)
        abs_err = np.abs(xf - yf)
        with np.errstate(divide="ignore", invalid="ignore"):
            rel_err = np.where(abs_err > 0.0, abs_err / np.abs(yf), 0.0)
        failures.append(
            f"'{key}': max abs err {abs_err.max():.3e}, "
            f"max rel err {np.nanmax(rel_err):.3e}, "
            f"max ulp {_max_ulp(x, y)}"
        )
    if failures:
        raise AssertionError(
            f"states differ beyond rtol={rtol:g} atol={atol:g}:\n  "
            + "\n  ".join(failures)
        )
    return True


def zeros_like_state(state: StateDict) -> StateDict:
    """Return a state dict of zeros with the same structure."""
    return {key: np.zeros_like(value) for key, value in state.items()}


def add_states(a: StateDict, b: StateDict) -> StateDict:
    """Elementwise sum of two state dicts."""
    _check_keys(a, b)
    return {key: a[key] + b[key] for key in a}


def subtract_states(a: StateDict, b: StateDict) -> StateDict:
    """Elementwise difference ``a - b``."""
    _check_keys(a, b)
    return {key: a[key] - b[key] for key in a}


def scale_state(state: StateDict, factor: float) -> StateDict:
    """Multiply every entry by ``factor``."""
    return {key: value * factor for key, value in state.items()}


def _normalized_weights(weights: Iterable[float] | None, count: int) -> np.ndarray:
    """Validate and normalize aggregation weights for ``count`` states.

    Beyond requiring a positive total, every entry must be finite and
    non-negative: a NaN weight slips past a ``total <= 0`` check (``nan <= 0``
    is False) and silently poisons the whole average, and a negative
    per-client weight (e.g. ``[-1, 2]``) can sum positive while flipping that
    client's contribution sign.
    """
    if weights is None:
        return np.full(count, 1.0 / count)
    weights_arr = np.asarray(list(weights), dtype=np.float64)
    if weights_arr.ndim != 1 or weights_arr.shape[0] != count:
        raise ValueError("weights length must match number of states")
    if not np.all(np.isfinite(weights_arr)):
        raise ValueError(
            f"weights must be finite, got {weights_arr.tolist()}"
        )
    if np.any(weights_arr < 0):
        raise ValueError(
            f"weights must be non-negative, got {weights_arr.tolist()}"
        )
    total = weights_arr.sum()
    if total <= 0:
        raise ValueError("weights must sum to a positive value")
    return weights_arr / total


class StreamingAverager:
    """Weighted state average consuming one state at a time in O(1) memory.

    The number of states (and their weights) must be known up front — the
    reference reduction normalizes weights by their total *before* the first
    multiply-add, so a one-pass streaming reduction can only replay its exact
    float ops if the normalizer is available before the first state arrives.
    Given that, :meth:`add` folds each state into a single accumulator (flat
    engine: accumulator + one reused pack buffer; reference engine: one
    per-key result dict), so peak memory is independent of how many states
    are averaged — the property the fleet-scale execution path relies on.

    Element-for-element both engines perform the same multiply-add sequence
    as :func:`average_states` (states outermost, starting from zeros, weights
    normalized up front), so streaming is bitwise-identical to materializing
    the full list first.

    Precision: the running accumulator is **always float64**, whatever the
    input states' compute dtype; the result is cast back to the input dtype
    exactly once in :meth:`finalize`.  Under the float64 golden path the
    accumulate-then-cast is a bitwise no-op, and under float32 the reduction
    over many clients keeps full double precision until the single commit
    cast — the "accumulate in float64, cast on commit" rule every aggregation
    primitive in this repository follows (pinned in tests/nn/test_dtype.py).
    """

    def __init__(self, count: int, weights: Iterable[float] | None = None) -> None:
        if count <= 0:
            raise ValueError("cannot average an empty list of states")
        self._weights = _normalized_weights(weights, count)
        self._count = count
        self._index = 0
        self._reference = current_engine() == "reference"
        self._result: Optional[StateDict] = None
        self._dtypes: Optional[Dict[str, np.dtype]] = None
        self._layout: Optional[StateLayout] = None
        self._accumulator: Optional[np.ndarray] = None
        self._buffer: Optional[np.ndarray] = None

    def add(self, state: StateDict) -> None:
        """Fold the next state into the running average (in declared order)."""
        if self._index >= self._count:
            raise ValueError(f"received more states than the declared {self._count}")
        weight = self._weights[self._index]
        if self._reference:
            # Seed path: per-key accumulation, clients outermost.  The
            # accumulator is float64 regardless of the state dtype (a no-op
            # for the float64 golden path); the original per-key dtypes are
            # recorded and restored once in finalize().
            if self._result is None:
                self._result = {
                    key: np.zeros_like(value, dtype=np.float64)
                    for key, value in state.items()
                }
                self._dtypes = {
                    key: np.asarray(value).dtype for key, value in state.items()
                }
            _check_keys(self._result, state)
            for key in self._result:
                self._result[key] += weight * state[key]
        else:
            # Flat reduction: pack the state into the one reused buffer and
            # accumulate over the whole vector (always in float64; the
            # buffer keeps the states' own dtype so the promotion happens
            # inside the multiply-add, not per input element).
            if self._layout is None:
                self._layout = StateLayout(state)
                self._accumulator = np.zeros(self._layout.size, dtype=np.float64)
                self._buffer = np.empty(self._layout.size, dtype=self._layout.dtype)
            self._layout.pack(state, out=self._buffer)
            self._accumulator += weight * self._buffer
        self._index += 1

    def finalize(self) -> StateDict:
        """The average, once exactly ``count`` states have been folded in."""
        if self._index != self._count:
            raise ValueError(
                f"expected {self._count} states, received {self._index}"
            )
        if self._reference:
            return {
                key: value if value.dtype == self._dtypes[key]
                else value.astype(self._dtypes[key])
                for key, value in self._result.items()
            }
        if self._layout.dtype == np.float64:
            return self._layout.unpack(self._accumulator)
        return self._layout.unpack(self._accumulator.astype(self._layout.dtype))


def average_states(states: Sequence[StateDict], weights: Iterable[float] | None = None) -> StateDict:
    """Weighted average of state dicts (the FedAvg aggregation primitive).

    Delegates to :class:`StreamingAverager`, so the materialized and
    streaming reductions cannot drift: both run the identical multiply-add
    sequence (clients outermost, weights normalized up front).
    """
    states = list(states)
    if not states:
        raise ValueError("cannot average an empty list of states")
    averager = StreamingAverager(len(states), weights)
    for state in states:
        averager.add(state)
    return averager.finalize()


def state_norm(state: StateDict) -> float:
    """L2 norm of the flattened state (used by q-FedAvg's Lipschitz estimate).

    Squares and sums in float64 whatever the state's compute dtype (a no-op
    for the float64 golden path), following the accumulate-in-float64 rule.
    """
    return float(np.sqrt(sum(
        float(np.sum(np.asarray(value, dtype=np.float64) ** 2))
        for value in state.values()
    )))


def save_state(path, state: StateDict) -> None:
    """Persist a state dict as an ``.npz`` archive (crash-safe, bit-exact).

    Every entry's dtype, shape and raw bytes survive the round trip, so
    ``states_equal(state, load_state(path))`` holds for any state this module
    produces.  The archive is written to a temporary sibling and moved into
    place with :func:`os.replace`, so a reader (or a resumed run) never
    observes a half-written file.
    """
    for key in state:
        if not isinstance(key, str) or not key:
            raise ValueError(f"state dict keys must be non-empty strings, got {key!r}")
    with atomic_write(path) as handle:
        np.savez(handle, **{key: np.asarray(value) for key, value in state.items()})


def load_state(path) -> StateDict:
    """Inverse of :func:`save_state`: read an ``.npz`` archive as a state dict."""
    with np.load(os.fspath(path), allow_pickle=False) as archive:
        return {key: archive[key] for key in archive.files}


def state_fingerprint(state: StateDict) -> str:
    """sha256 hex digest of a state dict's exact contents.

    Keys are visited in sorted order and each entry contributes its name,
    dtype, shape and raw bytes, so the digest is equal exactly when
    :func:`states_equal` is true — the run store uses it to compare a resumed
    run against an uninterrupted one without keeping both sets of weights.
    """
    digest = hashlib.sha256()
    for key in sorted(state):
        value = np.ascontiguousarray(state[key])
        digest.update(key.encode("utf-8"))
        digest.update(value.dtype.str.encode("ascii"))
        digest.update(repr(value.shape).encode("ascii"))
        digest.update(value.tobytes())
    return digest.hexdigest()


def _check_keys(a: StateDict, b: StateDict) -> None:
    if a.keys() != b.keys():
        missing = set(a).symmetric_difference(b)
        raise KeyError(f"state dicts have mismatched keys: {sorted(missing)[:5]}")
