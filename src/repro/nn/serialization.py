"""Model weight (de)serialization helpers used by the FL framework.

Federated learning exchanges model *parameter vectors*: clients receive the
global weights, train locally, and return updated weights (or deltas).  These
helpers convert between a module's ``state_dict`` and flat vectors, and provide
the arithmetic used by aggregation rules (averaging, scaling, deltas).
"""

from __future__ import annotations

from typing import Dict, Iterable, Sequence

import numpy as np

from .layers import Module

__all__ = [
    "state_dict_to_vector",
    "vector_to_state_dict",
    "get_weights",
    "set_weights",
    "clone_state",
    "states_equal",
    "zeros_like_state",
    "add_states",
    "scale_state",
    "subtract_states",
    "average_states",
    "state_norm",
]

StateDict = Dict[str, np.ndarray]


def get_weights(model: Module) -> StateDict:
    """Return a copy of the model's full state (parameters + buffers)."""
    return model.state_dict()


def set_weights(model: Module, state: StateDict) -> None:
    """Load a state dict into a model in-place."""
    model.load_state_dict(state)


def state_dict_to_vector(state: StateDict) -> np.ndarray:
    """Flatten a state dict into a single 1-D array (keys sorted for determinism)."""
    return np.concatenate([np.ravel(state[key]) for key in sorted(state)]) if state else np.zeros(0)


def vector_to_state_dict(vector: np.ndarray, template: StateDict) -> StateDict:
    """Unflatten ``vector`` using the shapes of ``template`` (keys sorted)."""
    result: StateDict = {}
    offset = 0
    for key in sorted(template):
        size = template[key].size
        chunk = vector[offset : offset + size]
        if chunk.size != size:
            raise ValueError("vector length does not match template")
        result[key] = chunk.reshape(template[key].shape).copy()
        offset += size
    if offset != vector.size:
        raise ValueError("vector length does not match template")
    return result


def clone_state(state: StateDict) -> StateDict:
    """Deep copy of a state dict as contiguous, owned arrays.

    Used to build pickle-safe client payloads for the process execution
    backend: the copies alias no model buffers (a worker's scratch model keeps
    training after the result is shipped) and are C-contiguous, so pickling is
    a flat memory copy.
    """
    return {key: np.asarray(value).copy() for key, value in state.items()}


def states_equal(a: StateDict, b: StateDict) -> bool:
    """Exact (bitwise) equality of two state dicts.

    The cross-backend determinism guarantee of :mod:`repro.fl.execution` is
    *bit-identical* weights, so entries are compared by their raw bytes: equal
    NaNs compare equal, and ``+0.0`` / ``-0.0`` compare different — unlike
    value comparison, which would make the guarantee vacuous at those points.
    """
    if a.keys() != b.keys():
        return False
    for key in a:
        x, y = np.asarray(a[key]), np.asarray(b[key])
        if x.shape != y.shape or x.dtype != y.dtype or x.tobytes() != y.tobytes():
            return False
    return True


def zeros_like_state(state: StateDict) -> StateDict:
    """Return a state dict of zeros with the same structure."""
    return {key: np.zeros_like(value) for key, value in state.items()}


def add_states(a: StateDict, b: StateDict) -> StateDict:
    """Elementwise sum of two state dicts."""
    _check_keys(a, b)
    return {key: a[key] + b[key] for key in a}


def subtract_states(a: StateDict, b: StateDict) -> StateDict:
    """Elementwise difference ``a - b``."""
    _check_keys(a, b)
    return {key: a[key] - b[key] for key in a}


def scale_state(state: StateDict, factor: float) -> StateDict:
    """Multiply every entry by ``factor``."""
    return {key: value * factor for key, value in state.items()}


def average_states(states: Sequence[StateDict], weights: Iterable[float] | None = None) -> StateDict:
    """Weighted average of state dicts (the FedAvg aggregation primitive)."""
    states = list(states)
    if not states:
        raise ValueError("cannot average an empty list of states")
    if weights is None:
        weights_arr = np.full(len(states), 1.0 / len(states))
    else:
        weights_arr = np.asarray(list(weights), dtype=np.float64)
        if weights_arr.shape[0] != len(states):
            raise ValueError("weights length must match number of states")
        total = weights_arr.sum()
        if total <= 0:
            raise ValueError("weights must sum to a positive value")
        weights_arr = weights_arr / total
    result = zeros_like_state(states[0])
    for weight, state in zip(weights_arr, states):
        _check_keys(result, state)
        for key in result:
            result[key] += weight * state[key]
    return result


def state_norm(state: StateDict) -> float:
    """L2 norm of the flattened state (used by q-FedAvg's Lipschitz estimate)."""
    return float(np.sqrt(sum(float(np.sum(value ** 2)) for value in state.values())))


def _check_keys(a: StateDict, b: StateDict) -> None:
    if a.keys() != b.keys():
        missing = set(a).symmetric_difference(b)
        raise KeyError(f"state dicts have mismatched keys: {sorted(missing)[:5]}")
