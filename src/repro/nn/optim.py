"""Optimizers for the NumPy neural-network substrate.

Only first-order methods are needed by the paper's experiments: plain SGD with
optional momentum and weight decay, which is what FedAvg-style local training
uses, plus a proximal variant used by the FedProx baseline.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

import numpy as np

from .layers import Parameter

__all__ = ["Optimizer", "SGD", "ProximalSGD"]


class Optimizer:
    """Base optimizer interface."""

    def __init__(self, params: Iterable[Parameter], lr: float) -> None:
        self.params: List[Parameter] = list(params)
        if not self.params:
            raise ValueError("optimizer received an empty parameter list")
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.lr = lr

    def zero_grad(self) -> None:
        for param in self.params:
            param.zero_grad()

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(
        self,
        params: Iterable[Parameter],
        lr: float,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(params, lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        if weight_decay < 0.0:
            raise ValueError(f"weight decay must be non-negative, got {weight_decay}")
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity: Dict[int, np.ndarray] = {}

    def step(self) -> None:
        for param in self.params:
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                velocity = self._velocity.get(id(param))
                if velocity is None:
                    velocity = np.zeros_like(param.data)
                velocity = self.momentum * velocity + grad
                self._velocity[id(param)] = velocity
                update = velocity
            else:
                update = grad
            param.data -= self.lr * update


class ProximalSGD(SGD):
    """SGD with a FedProx proximal term pulling weights toward a reference point.

    The FedProx local objective is ``f(w) + (mu / 2) * ||w - w_global||^2``; its
    gradient adds ``mu * (w - w_global)`` to every update.
    """

    def __init__(
        self,
        params: Iterable[Parameter],
        lr: float,
        mu: float,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(params, lr, momentum=momentum, weight_decay=weight_decay)
        if mu < 0:
            raise ValueError(f"mu must be non-negative, got {mu}")
        self.mu = mu
        self._reference: Optional[List[np.ndarray]] = None

    def set_reference(self, reference: Iterable[np.ndarray]) -> None:
        """Record the global weights ``w_global`` for the proximal term."""
        self._reference = [np.asarray(r, dtype=np.float64).copy() for r in reference]
        if len(self._reference) != len(self.params):
            raise ValueError("reference length does not match parameter count")

    def step(self) -> None:
        if self.mu and self._reference is not None:
            for param, ref in zip(self.params, self._reference):
                if param.grad is None:
                    continue
                param.grad = param.grad + self.mu * (param.data - ref)
        super().step()
