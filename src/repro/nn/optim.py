"""Optimizers for the NumPy neural-network substrate.

Only first-order methods are needed by the paper's experiments: plain SGD with
optional momentum and weight decay, which is what FedAvg-style local training
uses, plus a proximal variant used by the FedProx baseline.

Two bit-identical execution paths are provided:

* **fused** (default) — parameters are flattened into a contiguous
  :class:`~repro.nn.flat.FlatParams` arena and every step is a handful of
  whole-vector NumPy ops (gather grads, one fused momentum/weight-decay/
  proximal update, one axpy into the weights).  This removes the
  per-parameter Python loop from the training hot path.
* **reference** (``fused=False``) — the seed per-parameter loop, kept as the
  golden implementation the fused path is tested against
  (``tests/nn/test_optim.py`` asserts bitwise equality across momentum /
  weight-decay / mu combinations).

The fusion is exact because every update is element-wise: ``v = m*v + g`` and
``w -= lr*u`` round identically whether applied per-parameter or over the
concatenated vector.  Momentum state is keyed by *parameter index* (not
``id(param)``, whose addresses the allocator may reuse after garbage
collection, silently adopting another parameter's velocity).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

import numpy as np

from ..obs.profiling import PROFILER as _PROF
from .flat import FlatParams
from .layers import Parameter

__all__ = ["Optimizer", "SGD", "ProximalSGD"]


class Optimizer:
    """Base optimizer interface."""

    def __init__(self, params: Iterable[Parameter], lr: float) -> None:
        self.params: List[Parameter] = list(params)
        if not self.params:
            raise ValueError("optimizer received an empty parameter list")
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.lr = lr

    def zero_grad(self) -> None:
        for param in self.params:
            param.zero_grad()

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay.

    .. note::
       Constructing a fused optimizer (``fused=True``, the default) flattens
       the parameters into a contiguous arena: each ``param.data`` is rebound
       to a view of the arena (values preserved, in-place update semantics
       preserved).  Hold references to :class:`Parameter` objects — not to
       their ``.data`` arrays — across optimizer construction; an array
       reference captured beforehand stops tracking updates.
    """

    def __init__(
        self,
        params: Iterable[Parameter],
        lr: float,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
        fused: bool = True,
    ) -> None:
        super().__init__(params, lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        if weight_decay < 0.0:
            raise ValueError(f"weight decay must be non-negative, got {weight_decay}")
        self.momentum = momentum
        self.weight_decay = weight_decay
        self.fused = bool(fused)
        # Reference-path momentum state, keyed by parameter index.
        self._velocity: Dict[int, np.ndarray] = {}
        # Fused-path state: the arena and one flat velocity vector.
        self._flat: Optional[FlatParams] = FlatParams.adopt(self.params) if self.fused else None
        self._velocity_flat: Optional[np.ndarray] = None

    # ------------------------------------------------------------------ #
    # Per-parameter gradient adjustments (overridden by ProximalSGD).
    # ------------------------------------------------------------------ #
    def _adjusted_grad(self, index: int, param: Parameter, grad: np.ndarray) -> np.ndarray:
        """Reference-path hook: extra gradient terms applied *before* weight decay."""
        del index, param
        return grad

    def _adjust_flat_grad(self, grad: np.ndarray) -> np.ndarray:
        """Fused-path counterpart of :meth:`_adjusted_grad` over the flat vector."""
        return grad

    # ------------------------------------------------------------------ #
    # Steps
    # ------------------------------------------------------------------ #
    def step(self) -> None:
        if _PROF.enabled:
            with _PROF.time("optim.step"):
                self._step_dispatch()
            return
        self._step_dispatch()

    def _step_dispatch(self) -> None:
        flat = self._flat
        if flat is not None:
            if not flat.is_valid():
                # The parameters were re-flattened into a different arena
                # after this optimizer was built (e.g. the training loop
                # called FlatParams.from_module on the model).  Writing into
                # the orphaned vector would silently update nothing, so
                # re-adopt the parameters' current arena; the velocity layout
                # (same params, same order) stays valid.
                flat = self._flat = FlatParams.adopt(self.params)
            grad, any_grad = flat.gather_grad()
            if not any_grad:
                return
            if grad is not None:
                self._flat_step(grad)
            else:
                # Some parameters have no gradient this step: preserve the
                # reference "skip missing grads" semantics by updating only
                # the covered arena segments (velocity stays a flat vector,
                # so fused and partial steps can interleave freely).
                self._partial_flat_step()
            return
        self._reference_step()

    def _flat_step(self, grad: np.ndarray) -> None:
        flat = self._flat
        grad = self._adjust_flat_grad(grad)
        if self.weight_decay:
            grad = grad + self.weight_decay * flat.vector
        if self.momentum:
            velocity = self._velocity_flat
            if velocity is None:
                velocity = self._velocity_flat = np.zeros(flat.size, dtype=flat.dtype)
            velocity *= self.momentum
            velocity += grad
            update = velocity
        else:
            update = grad
        flat.vector -= self.lr * update

    def _partial_flat_step(self) -> None:
        flat = self._flat
        velocity_flat = self._velocity_flat
        if self.momentum and velocity_flat is None:
            velocity_flat = self._velocity_flat = np.zeros(flat.size, dtype=flat.dtype)
        for index, param in enumerate(self.params):
            if param.grad is None:
                continue
            grad = self._adjusted_grad(index, param, param.grad)
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                segment = velocity_flat[flat.grad_segment(index)].reshape(param.data.shape)
                segment *= self.momentum
                segment += grad
                update = segment
            else:
                update = grad
            param.data -= self.lr * update

    def _reference_step(self) -> None:
        for index, param in enumerate(self.params):
            if param.grad is None:
                continue
            grad = self._adjusted_grad(index, param, param.grad)
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                velocity = self._velocity.get(index)
                if velocity is None:
                    velocity = np.zeros_like(param.data)
                velocity = self.momentum * velocity + grad
                self._velocity[index] = velocity
                update = velocity
            else:
                update = grad
            param.data -= self.lr * update


class ProximalSGD(SGD):
    """SGD with a FedProx proximal term pulling weights toward a reference point.

    The FedProx local objective is ``f(w) + (mu / 2) * ||w - w_global||^2``; its
    gradient adds ``mu * (w - w_global)`` to every update.  The proximal term
    is combined into the update *without* mutating ``param.grad`` — the stored
    gradient stays exactly what ``backward()`` accumulated, so batch hooks and
    any other post-step readers of ``.grad`` see the task gradient, not the
    regularized one.
    """

    def __init__(
        self,
        params: Iterable[Parameter],
        lr: float,
        mu: float,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
        fused: bool = True,
    ) -> None:
        super().__init__(params, lr, momentum=momentum, weight_decay=weight_decay, fused=fused)
        if mu < 0:
            raise ValueError(f"mu must be non-negative, got {mu}")
        self.mu = mu
        self._reference: Optional[List[np.ndarray]] = None
        self._reference_flat: Optional[np.ndarray] = None

    def set_reference(self, reference: Iterable[np.ndarray]) -> None:
        """Record the global weights ``w_global`` for the proximal term."""
        reference = list(reference)
        if len(reference) != len(self.params):
            raise ValueError("reference length does not match parameter count")
        self._reference = [
            np.asarray(r, dtype=p.data.dtype).copy()
            for r, p in zip(reference, self.params)
        ]
        for ref, param in zip(self._reference, self.params):
            if ref.shape != param.data.shape:
                raise ValueError(
                    f"reference shape {ref.shape} does not match parameter "
                    f"shape {param.data.shape}"
                )
        self._reference_flat = (
            np.concatenate([ref.reshape(-1) for ref in self._reference])
            if self._flat is not None
            else None
        )

    def _adjusted_grad(self, index: int, param: Parameter, grad: np.ndarray) -> np.ndarray:
        if self.mu and self._reference is not None:
            return grad + self.mu * (param.data - self._reference[index])
        return grad

    def _adjust_flat_grad(self, grad: np.ndarray) -> np.ndarray:
        if self.mu and self._reference_flat is not None:
            return grad + self.mu * (self._flat.vector - self._reference_flat)
        return grad
