"""NumPy neural-network substrate for the HeteroSwitch reproduction.

The original system is implemented in PyTorch; this package provides the
minimal-yet-complete replacement used here: an autograd :class:`Tensor`,
functional ops, layer modules, optimizers, model serialization helpers and
the model zoo.
"""

from . import functional
from .engine import TRAIN_ENGINES, current_engine, engine_mode
from .flat import FlatParams, flat_arena_of
from .layers import (
    AvgPool2d,
    BatchNorm1d,
    BatchNorm2d,
    Conv2d,
    DepthwiseConv2d,
    Dropout,
    Flatten,
    GlobalAvgPool2d,
    HardSwish,
    Identity,
    Linear,
    MaxPool2d,
    Module,
    Parameter,
    ReLU,
    ReLU6,
    Sequential,
    Sigmoid,
    Tanh,
)
from .optim import SGD, Optimizer, ProximalSGD
from .serialization import (
    StateLayout,
    add_states,
    average_states,
    get_weights,
    scale_state,
    set_weights,
    state_dict_to_vector,
    state_norm,
    subtract_states,
    vector_to_state_dict,
    zeros_like_state,
)
from .tensor import Tensor, no_grad

__all__ = [
    "Tensor",
    "no_grad",
    "functional",
    "TRAIN_ENGINES",
    "current_engine",
    "engine_mode",
    "FlatParams",
    "flat_arena_of",
    "StateLayout",
    "Module",
    "Parameter",
    "Sequential",
    "Linear",
    "Conv2d",
    "DepthwiseConv2d",
    "BatchNorm1d",
    "BatchNorm2d",
    "ReLU",
    "ReLU6",
    "HardSwish",
    "Sigmoid",
    "Tanh",
    "MaxPool2d",
    "AvgPool2d",
    "GlobalAvgPool2d",
    "Flatten",
    "Dropout",
    "Identity",
    "Optimizer",
    "SGD",
    "ProximalSGD",
    "get_weights",
    "set_weights",
    "state_dict_to_vector",
    "vector_to_state_dict",
    "zeros_like_state",
    "add_states",
    "subtract_states",
    "scale_state",
    "average_states",
    "state_norm",
]
