"""Layer modules (``Module`` hierarchy) for the NumPy neural-network substrate.

The module system mirrors the small subset of ``torch.nn`` that the paper's
model zoo needs: parameter registration, train/eval mode, ``state_dict`` /
``load_state_dict`` round-tripping (the FL framework exchanges model weights
as state dicts), and a handful of standard layers.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from . import functional as F
from . import init
from .engine import current_dtype
from .tensor import Tensor

__all__ = [
    "Parameter",
    "Module",
    "Sequential",
    "Linear",
    "Conv2d",
    "DepthwiseConv2d",
    "BatchNorm2d",
    "BatchNorm1d",
    "ReLU",
    "ReLU6",
    "HardSwish",
    "Sigmoid",
    "Tanh",
    "MaxPool2d",
    "AvgPool2d",
    "GlobalAvgPool2d",
    "Flatten",
    "Dropout",
    "Identity",
]


class Parameter(Tensor):
    """A tensor that is registered as a trainable parameter of a module."""

    def __init__(self, data, name: Optional[str] = None) -> None:
        super().__init__(data, requires_grad=True, name=name)


class Module:
    """Base class for all layers and models.

    Subclasses assign :class:`Parameter` and :class:`Module` instances as
    attributes; they are discovered automatically for ``parameters()`` and
    ``state_dict()``.
    """

    def __init__(self) -> None:
        self._parameters: "OrderedDict[str, Parameter]" = OrderedDict()
        self._buffers: "OrderedDict[str, np.ndarray]" = OrderedDict()
        self._modules: "OrderedDict[str, Module]" = OrderedDict()
        self.training: bool = True

    # -- attribute interception ------------------------------------------------
    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self.__dict__.setdefault("_parameters", OrderedDict())[name] = value
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", OrderedDict())[name] = value
        object.__setattr__(self, name, value)

    # -- mode ------------------------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        self.training = mode
        for module in self._modules.values():
            module.train(mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    # -- parameter access --------------------------------------------------------
    def register_buffer(self, name: str, value: np.ndarray) -> None:
        """Register a non-trainable array that is part of the module state."""
        self._buffers[name] = np.asarray(value, dtype=current_dtype())
        object.__setattr__(self, name, self._buffers[name])

    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        for name, param in self._parameters.items():
            yield (f"{prefix}{name}", param)
        for mod_name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{mod_name}.")

    def parameters(self) -> List[Parameter]:
        return [p for _, p in self.named_parameters()]

    def named_buffers(self, prefix: str = "") -> Iterator[Tuple[str, np.ndarray]]:
        for name, buf in self._buffers.items():
            yield (f"{prefix}{name}", buf)
        for mod_name, module in self._modules.items():
            yield from module.named_buffers(prefix=f"{prefix}{mod_name}.")

    def modules(self) -> Iterator["Module"]:
        yield self
        for module in self._modules.values():
            yield from module.modules()

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    def num_parameters(self) -> int:
        """Total number of scalar trainable parameters."""
        return int(sum(p.size for p in self.parameters()))

    # -- state dict ----------------------------------------------------------------
    def state_dict(self) -> Dict[str, np.ndarray]:
        """Return a flat ``name -> array copy`` mapping of parameters and buffers."""
        state: Dict[str, np.ndarray] = {}
        for name, param in self.named_parameters():
            state[name] = param.data.copy()
        for name, buf in self.named_buffers():
            state[name] = buf.copy()
        return state

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Load parameters/buffers in-place from a state dict."""
        params = dict(self.named_parameters())
        for name, param in params.items():
            if name not in state:
                raise KeyError(f"missing parameter '{name}' in state dict")
            value = np.asarray(state[name], dtype=param.data.dtype)
            if value.shape != param.data.shape:
                raise ValueError(
                    f"shape mismatch for '{name}': {value.shape} vs {param.data.shape}"
                )
            param.data[...] = value
        # Buffers are replaced by walking modules to update their registered arrays.
        self._load_buffers(state, prefix="")

    def _load_buffers(self, state: Dict[str, np.ndarray], prefix: str) -> None:
        for name in list(self._buffers.keys()):
            full = f"{prefix}{name}"
            if full in state:
                value = np.asarray(state[full], dtype=self._buffers[name].dtype)
                self._buffers[name][...] = value.reshape(self._buffers[name].shape)
        for mod_name, module in self._modules.items():
            module._load_buffers(state, prefix=f"{prefix}{mod_name}.")

    # -- call ----------------------------------------------------------------------
    def forward(self, x: Tensor) -> Tensor:  # pragma: no cover - abstract
        raise NotImplementedError

    def __call__(self, *args, **kwargs) -> Tensor:
        return self.forward(*args, **kwargs)


class Sequential(Module):
    """Chain modules in order."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        self._layers: List[Module] = []
        for idx, module in enumerate(modules):
            setattr(self, f"layer{idx}", module)
            self._layers.append(module)

    def forward(self, x: Tensor) -> Tensor:
        for layer in self._layers:
            x = layer(x)
        return x

    def __iter__(self) -> Iterator[Module]:
        return iter(self._layers)

    def __len__(self) -> int:
        return len(self._layers)


class Linear(Module):
    """Fully connected layer ``y = x W^T + b``."""

    def __init__(self, in_features: int, out_features: int, bias: bool = True,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.kaiming_uniform((out_features, in_features), rng))
        self.bias = Parameter(np.zeros(out_features)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        return F.linear(x, self.weight, self.bias)


class Conv2d(Module):
    """Standard 2-D convolution on NCHW tensors."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        shape = (out_channels, in_channels, kernel_size, kernel_size)
        self.weight = Parameter(init.kaiming_uniform(shape, rng))
        self.bias = Parameter(np.zeros(out_channels)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        return F.conv2d(x, self.weight, self.bias, stride=self.stride, padding=self.padding)


class DepthwiseConv2d(Module):
    """Depthwise 2-D convolution (one filter per channel)."""

    def __init__(
        self,
        channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.channels = channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        shape = (channels, 1, kernel_size, kernel_size)
        self.weight = Parameter(init.kaiming_uniform(shape, rng))
        self.bias = Parameter(np.zeros(channels)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        return F.depthwise_conv2d(x, self.weight, self.bias, stride=self.stride, padding=self.padding)


class _BatchNorm(Module):
    """Shared implementation for 1-D and 2-D batch normalization."""

    def __init__(self, num_features: int, eps: float = 1e-5, momentum: float = 0.1) -> None:
        super().__init__()
        self.num_features = num_features
        self.eps = eps
        self.momentum = momentum
        self.weight = Parameter(np.ones(num_features))
        self.bias = Parameter(np.zeros(num_features))
        self.register_buffer("running_mean", np.zeros(num_features))
        self.register_buffer("running_var", np.ones(num_features))

    def _reduce_axes(self, x: Tensor) -> Tuple[int, ...]:
        raise NotImplementedError

    def _shape_for(self, x: Tensor) -> Tuple[int, ...]:
        raise NotImplementedError

    def forward(self, x: Tensor) -> Tensor:
        axes = self._reduce_axes(x)
        param_shape = self._shape_for(x)
        if self.training:
            # Single-pass training forward: the batch statistics are computed
            # once (through the normalization path) and their values feed the
            # running-stat update.  (The seed path computed them twice —
            # np.mean/np.var on .data for the buffers, then again through the
            # graph for the normalization.)  The buffer update now sees the
            # ``sum * (1/count)`` formulation instead of NumPy's
            # ``sum / count`` — a deliberate ~1-ulp reassociation of the same
            # reduction, pinned by tests/nn/test_layers.py; the normalized
            # output is bitwise unchanged.
            out, batch_mean, batch_var = F.batch_norm_train(
                x, self.weight, self.bias, axes, param_shape, self.eps
            )
            self._buffers["running_mean"][...] = (
                (1 - self.momentum) * self._buffers["running_mean"]
                + self.momentum * batch_mean.reshape(self.num_features)
            )
            self._buffers["running_var"][...] = (
                (1 - self.momentum) * self._buffers["running_var"]
                + self.momentum * batch_var.reshape(self.num_features)
            )
            return out
        return F.batch_norm_eval(
            x, self.weight, self.bias,
            self._buffers["running_mean"].reshape(param_shape),
            self._buffers["running_var"].reshape(param_shape),
            param_shape, self.eps,
        )


class BatchNorm2d(_BatchNorm):
    """Batch normalization over NCHW tensors."""

    def _reduce_axes(self, x: Tensor) -> Tuple[int, ...]:
        return (0, 2, 3)

    def _shape_for(self, x: Tensor) -> Tuple[int, ...]:
        return (1, self.num_features, 1, 1)


class BatchNorm1d(_BatchNorm):
    """Batch normalization over (N, C) tensors."""

    def _reduce_axes(self, x: Tensor) -> Tuple[int, ...]:
        return (0,)

    def _shape_for(self, x: Tensor) -> Tuple[int, ...]:
        return (1, self.num_features)


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return F.relu(x)


class ReLU6(Module):
    def forward(self, x: Tensor) -> Tensor:
        return F.relu6(x)


class HardSwish(Module):
    def forward(self, x: Tensor) -> Tensor:
        return F.hardswish(x)


class Sigmoid(Module):
    def forward(self, x: Tensor) -> Tensor:
        return F.sigmoid(x)


class Tanh(Module):
    def forward(self, x: Tensor) -> Tensor:
        return F.tanh(x)


class MaxPool2d(Module):
    def __init__(self, kernel_size: int, stride: Optional[int] = None) -> None:
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride

    def forward(self, x: Tensor) -> Tensor:
        return F.max_pool2d(x, self.kernel_size, self.stride)


class AvgPool2d(Module):
    def __init__(self, kernel_size: int, stride: Optional[int] = None) -> None:
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride

    def forward(self, x: Tensor) -> Tensor:
        return F.avg_pool2d(x, self.kernel_size, self.stride)


class GlobalAvgPool2d(Module):
    def forward(self, x: Tensor) -> Tensor:
        return F.global_avg_pool2d(x)


class Flatten(Module):
    def forward(self, x: Tensor) -> Tensor:
        return F.flatten(x)


class Dropout(Module):
    def __init__(self, p: float = 0.5, seed: int = 0) -> None:
        super().__init__()
        self.p = p
        self._rng = np.random.default_rng(seed)

    def forward(self, x: Tensor) -> Tensor:
        return F.dropout(x, self.p, self.training, self._rng)


class Identity(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x
