"""Contiguous flat-parameter arena for the NumPy neural-network substrate.

A :class:`FlatParams` owns one contiguous vector — in the engine's compute
dtype (float64 by default, float32 under ``dtype_mode("float32")``) —
holding *all* of a model's trainable parameters; every :class:`~repro.nn.layers.Parameter`'s
``.data`` becomes a reshaped view into that vector.  Because NumPy views
share memory, all existing in-place code paths (``param.data -= ...`` in the
optimizers, ``param.data[...] = value`` in ``load_state_dict``, SCAFFOLD's
drift-correction hook) keep working unchanged — but whole-model operations
(optimizer steps, weight broadcast/collect, SWAD averaging) collapse from a
per-parameter Python loop into a handful of whole-vector NumPy ops.

Every fused operation is **bitwise identical** to its per-parameter
counterpart: the fusions only batch element-wise arithmetic, which rounds
identically whether it runs per-parameter or over the concatenated vector
(``tests/nn/test_flat.py`` and ``tests/nn/test_optim.py`` pin this).

The dict ``StateDict`` stays the serialization and compatibility boundary:
:meth:`FlatParams.state_dict` returns a name->array mapping (parameter entries
are views into a single fresh copy of the arena, so collecting weights is one
big memcpy), and :meth:`FlatParams.load_state_dict` performs the same
validation as :meth:`repro.nn.layers.Module.load_state_dict`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .engine import current_dtype
from .layers import Module, Parameter

__all__ = ["FlatParams", "flat_arena_of"]

StateDict = Dict[str, np.ndarray]


class FlatParams:
    """Flat contiguous arena over an ordered list of parameters.

    Parameters
    ----------
    params:
        The parameters, in the order that defines the arena layout (for a
        module this is ``named_parameters()`` order).  Their current values
        are copied into the arena and their ``.data`` is rebound to views.
    names:
        Optional parameter names aligned with ``params`` (required for
        :meth:`state_dict` / :meth:`load_state_dict`).
    module:
        Optional owning module; needed so :meth:`state_dict` /
        :meth:`load_state_dict` can include non-trainable buffers.
    """

    def __init__(
        self,
        params: Sequence[Parameter],
        names: Optional[Sequence[str]] = None,
        module: Optional[Module] = None,
    ) -> None:
        self.params: List[Parameter] = list(params)
        if not self.params:
            raise ValueError("cannot build a flat arena over an empty parameter list")
        if names is not None and len(names) != len(self.params):
            raise ValueError("names length does not match parameter count")
        self.names: Optional[List[str]] = list(names) if names is not None else None
        self.module = module

        dtype = current_dtype()
        offsets: List[int] = []
        total = 0
        for param in self.params:
            if param.data.dtype != dtype:
                raise TypeError(
                    f"flat arena requires parameters in the engine compute "
                    f"dtype {dtype} (got {param.data.dtype}); build the model "
                    f"under the matching dtype_mode/engine_scope")
            offsets.append(total)
            total += param.data.size
        self.offsets: List[int] = offsets
        self.size = total
        self.dtype: np.dtype = dtype
        self.vector: np.ndarray = np.empty(total, dtype=dtype)

        self._views: List[np.ndarray] = []
        for param, offset in zip(self.params, offsets):
            view = self.vector[offset : offset + param.data.size].reshape(param.data.shape)
            view[...] = param.data
            param.data = view
            param._arena = self  # backref so optimizers can adopt the arena
            self._views.append(view)
        self._grad_buf: Optional[np.ndarray] = None

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #
    @classmethod
    def from_module(cls, module: Module) -> "FlatParams":
        """The module's cached arena, built (and cached) on first use."""
        arena = getattr(module, "_flat_arena", None)
        if isinstance(arena, FlatParams) and arena.is_valid():
            return arena
        named = list(module.named_parameters())
        arena = cls([p for _, p in named], names=[n for n, _ in named], module=module)
        object.__setattr__(module, "_flat_arena", arena)
        return arena

    @classmethod
    def adopt(cls, params: Sequence[Parameter]) -> "FlatParams":
        """Reuse the arena ``params`` already live in, or build a fresh one.

        Optimizers call this: when the training loop has already flattened the
        model (:meth:`from_module`), adoption is free; bare parameter lists
        (unit tests, ad-hoc training) get their own anonymous arena.
        """
        params = list(params)
        if not params:
            raise ValueError("cannot build a flat arena over an empty parameter list")
        arena = getattr(params[0], "_arena", None)
        if (
            isinstance(arena, FlatParams)
            and len(arena.params) == len(params)
            and all(a is b for a, b in zip(arena.params, params))
            and arena.is_valid()
        ):
            return arena
        return cls(params)

    def is_valid(self) -> bool:
        """True while every parameter's ``.data`` is still its arena view."""
        return all(p.data is v for p, v in zip(self.params, self._views))

    # ------------------------------------------------------------------ #
    # Gradient gathering
    # ------------------------------------------------------------------ #
    def gather_grad(self) -> Tuple[Optional[np.ndarray], bool]:
        """Copy per-parameter gradients into one flat vector.

        Returns ``(grad_vector, any_grad)``.  The buffer is filled and
        returned only when *every* parameter contributed a gradient; with
        partial coverage the result is ``(None, True)`` — coverage is checked
        before any copying, so partial steps (which must fall back to the
        per-parameter "skip missing grads" semantics anyway) never pay a
        wasted whole-model memcpy.  ``(None, False)`` means no parameter has
        a gradient at all.
        """
        any_grad = False
        complete = True
        for param in self.params:
            if param.grad is None:
                complete = False
            else:
                any_grad = True
        if not complete:
            return None, any_grad
        buf = self._grad_buf
        if buf is None:
            buf = self._grad_buf = np.empty(self.size, dtype=self.dtype)
        for param, offset in zip(self.params, self.offsets):
            grad = param.grad
            buf[offset : offset + grad.size] = grad.reshape(-1)
        return buf, True

    def grad_segment(self, index: int) -> slice:
        """The arena slice covered by parameter ``index``."""
        offset = self.offsets[index]
        return slice(offset, offset + self.params[index].data.size)

    # ------------------------------------------------------------------ #
    # State-dict boundary (serialization / FL compat)
    # ------------------------------------------------------------------ #
    def _require_names(self) -> List[str]:
        if self.names is None:
            raise RuntimeError("this arena was built from a bare parameter list; "
                               "state-dict access requires a module-backed arena")
        return self.names

    def load_state_dict(self, state: StateDict) -> None:
        """Load a state dict through the arena (same checks as ``Module``)."""
        names = self._require_names()
        for name, view in zip(names, self._views):
            if name not in state:
                raise KeyError(f"missing parameter '{name}' in state dict")
            value = np.asarray(state[name], dtype=self.dtype)
            if value.shape != view.shape:
                raise ValueError(
                    f"shape mismatch for '{name}': {value.shape} vs {view.shape}"
                )
            view[...] = value
        if self.module is not None:
            self.module._load_buffers(state, prefix="")

    def state_dict(self) -> StateDict:
        """Collect weights as a dict whose parameter entries share ONE copy.

        The arena is copied once; each parameter's entry is a reshaped view
        into that copy, so collecting a model's weights costs a single memcpy
        instead of one allocation per parameter.  Buffers are copied
        individually (they live outside the arena).  Key order matches
        :meth:`repro.nn.layers.Module.state_dict`.
        """
        names = self._require_names()
        snapshot = self.vector.copy()
        state: StateDict = {}
        for name, param, offset in zip(names, self.params, self.offsets):
            state[name] = snapshot[offset : offset + param.data.size].reshape(param.data.shape)
        if self.module is not None:
            for name, buf in self.module.named_buffers():
                state[name] = buf.copy()
        return state

    def pack_with_buffers(self) -> Tuple[List[str], List[Tuple[int, ...]], np.ndarray]:
        """Flatten parameters *and* buffers into one vector (for SWAD/SWA).

        Returns ``(keys, shapes, vector)`` where keys/shapes follow the
        ``state_dict`` layout.  The vector is freshly allocated each call.
        """
        names = self._require_names()
        keys = list(names)
        shapes: List[Tuple[int, ...]] = [tuple(p.data.shape) for p in self.params]
        arrays: List[np.ndarray] = [self.vector]
        if self.module is not None:
            for name, buf in self.module.named_buffers():
                keys.append(name)
                shapes.append(tuple(buf.shape))
                arrays.append(buf.reshape(-1))
        return keys, shapes, np.concatenate(arrays) if len(arrays) > 1 else self.vector.copy()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FlatParams(size={self.size}, params={len(self.params)})"


def flat_arena_of(model: Module) -> Optional[FlatParams]:
    """The model's cached arena if one exists and is still valid, else None."""
    arena = getattr(model, "_flat_arena", None)
    if isinstance(arena, FlatParams) and arena.is_valid():
        return arena
    return None
