"""Functional neural-network operations built on :class:`repro.nn.tensor.Tensor`.

Convolutions use an im2col lowering so the inner computation is a single large
matrix multiplication (vectorized in BLAS) rather than Python loops, following
the vectorization guidance for NumPy ML-systems code.
"""

from __future__ import annotations

from typing import Optional, Tuple, Union

import numpy as np

from .tensor import Tensor

__all__ = [
    "linear",
    "conv2d",
    "depthwise_conv2d",
    "max_pool2d",
    "avg_pool2d",
    "global_avg_pool2d",
    "relu",
    "relu6",
    "hardswish",
    "hardsigmoid",
    "sigmoid",
    "tanh",
    "softmax",
    "log_softmax",
    "cross_entropy",
    "binary_cross_entropy_with_logits",
    "mse_loss",
    "l1_loss",
    "dropout",
    "flatten",
    "channel_shuffle",
    "pad2d",
]

IntPair = Union[int, Tuple[int, int]]


def _pair(value: IntPair) -> Tuple[int, int]:
    if isinstance(value, tuple):
        return value
    return (int(value), int(value))


# --------------------------------------------------------------------------- #
# im2col / col2im helpers
# --------------------------------------------------------------------------- #
def _im2col_indices(
    x_shape: Tuple[int, int, int, int],
    kernel: Tuple[int, int],
    stride: Tuple[int, int],
    padding: Tuple[int, int],
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, int, int]:
    """Compute gather indices for im2col on an NCHW input."""
    n, c, h, w = x_shape
    kh, kw = kernel
    sh, sw = stride
    ph, pw = padding
    out_h = (h + 2 * ph - kh) // sh + 1
    out_w = (w + 2 * pw - kw) // sw + 1

    i0 = np.repeat(np.arange(kh), kw)
    i0 = np.tile(i0, c)
    i1 = sh * np.repeat(np.arange(out_h), out_w)
    j0 = np.tile(np.arange(kw), kh * c)
    j1 = sw * np.tile(np.arange(out_w), out_h)

    i = i0.reshape(-1, 1) + i1.reshape(1, -1)
    j = j0.reshape(-1, 1) + j1.reshape(1, -1)
    k = np.repeat(np.arange(c), kh * kw).reshape(-1, 1)
    return k, i, j, out_h, out_w


def _im2col(
    x: np.ndarray,
    kernel: Tuple[int, int],
    stride: Tuple[int, int],
    padding: Tuple[int, int],
) -> Tuple[np.ndarray, Tuple[np.ndarray, np.ndarray, np.ndarray], int, int]:
    ph, pw = padding
    if ph or pw:
        x_padded = np.pad(x, ((0, 0), (0, 0), (ph, ph), (pw, pw)), mode="constant")
    else:
        x_padded = x
    k, i, j, out_h, out_w = _im2col_indices(x.shape, kernel, stride, padding)
    cols = x_padded[:, k, i, j]  # (N, C*kh*kw, out_h*out_w)
    return cols, (k, i, j), out_h, out_w


def _col2im(
    cols: np.ndarray,
    x_shape: Tuple[int, int, int, int],
    indices: Tuple[np.ndarray, np.ndarray, np.ndarray],
    padding: Tuple[int, int],
) -> np.ndarray:
    n, c, h, w = x_shape
    ph, pw = padding
    k, i, j = indices
    x_padded = np.zeros((n, c, h + 2 * ph, w + 2 * pw), dtype=cols.dtype)
    np.add.at(x_padded, (slice(None), k, i, j), cols)
    if ph or pw:
        return x_padded[:, :, ph : ph + h, pw : pw + w]
    return x_padded


# --------------------------------------------------------------------------- #
# Linear / convolution
# --------------------------------------------------------------------------- #
def linear(x: Tensor, weight: Tensor, bias: Optional[Tensor] = None) -> Tensor:
    """Affine transform ``x @ weight.T + bias`` for 2-D inputs."""
    out = x @ weight.T
    if bias is not None:
        out = out + bias
    return out


def conv2d(
    x: Tensor,
    weight: Tensor,
    bias: Optional[Tensor] = None,
    stride: IntPair = 1,
    padding: IntPair = 0,
) -> Tensor:
    """2-D convolution on NCHW tensors.

    ``weight`` has shape ``(out_channels, in_channels, kh, kw)``.
    """
    stride = _pair(stride)
    padding = _pair(padding)
    n, c, h, w = x.shape
    oc, ic, kh, kw = weight.shape
    if ic != c:
        raise ValueError(f"conv2d channel mismatch: input has {c}, weight expects {ic}")

    cols, indices, out_h, out_w = _im2col(x.data, (kh, kw), stride, padding)
    w_flat = weight.data.reshape(oc, -1)  # (oc, C*kh*kw)
    out_data = np.einsum("of,nfp->nop", w_flat, cols, optimize=True)
    out_data = out_data.reshape(n, oc, out_h, out_w)
    if bias is not None:
        out_data = out_data + bias.data.reshape(1, oc, 1, 1)

    parents = (x, weight) if bias is None else (x, weight, bias)

    def backward(grad: np.ndarray, out: Tensor) -> None:
        grad_flat = grad.reshape(n, oc, out_h * out_w)
        # dL/dW
        grad_w = np.einsum("nop,nfp->of", grad_flat, cols, optimize=True)
        out._send(weight, grad_w.reshape(weight.shape))
        # dL/dx
        grad_cols = np.einsum("of,nop->nfp", w_flat, grad_flat, optimize=True)
        grad_x = _col2im(grad_cols, x.shape, indices, padding)
        out._send(x, grad_x)
        if bias is not None:
            out._send(bias, grad.sum(axis=(0, 2, 3)))

    out = Tensor._make(out_data, parents, lambda g: backward(g, out))
    return out


def depthwise_conv2d(
    x: Tensor,
    weight: Tensor,
    bias: Optional[Tensor] = None,
    stride: IntPair = 1,
    padding: IntPair = 0,
) -> Tensor:
    """Depthwise 2-D convolution: each input channel is filtered independently.

    ``weight`` has shape ``(channels, 1, kh, kw)``.
    """
    stride = _pair(stride)
    padding = _pair(padding)
    n, c, h, w = x.shape
    wc, one, kh, kw = weight.shape
    if wc != c or one != 1:
        raise ValueError("depthwise_conv2d expects weight of shape (C, 1, kh, kw)")

    cols, indices, out_h, out_w = _im2col(x.data, (kh, kw), stride, padding)
    # cols: (N, C*kh*kw, P) -> (N, C, kh*kw, P)
    cols_grouped = cols.reshape(n, c, kh * kw, out_h * out_w)
    w_flat = weight.data.reshape(c, kh * kw)
    out_data = np.einsum("ck,nckp->ncp", w_flat, cols_grouped, optimize=True)
    out_data = out_data.reshape(n, c, out_h, out_w)
    if bias is not None:
        out_data = out_data + bias.data.reshape(1, c, 1, 1)

    parents = (x, weight) if bias is None else (x, weight, bias)

    def backward(grad: np.ndarray, out: Tensor) -> None:
        grad_flat = grad.reshape(n, c, out_h * out_w)
        grad_w = np.einsum("ncp,nckp->ck", grad_flat, cols_grouped, optimize=True)
        out._send(weight, grad_w.reshape(weight.shape))
        grad_cols = np.einsum("ck,ncp->nckp", w_flat, grad_flat, optimize=True)
        grad_cols = grad_cols.reshape(n, c * kh * kw, out_h * out_w)
        grad_x = _col2im(grad_cols, x.shape, indices, padding)
        out._send(x, grad_x)
        if bias is not None:
            out._send(bias, grad.sum(axis=(0, 2, 3)))

    out = Tensor._make(out_data, parents, lambda g: backward(g, out))
    return out


# --------------------------------------------------------------------------- #
# Pooling
# --------------------------------------------------------------------------- #
def max_pool2d(x: Tensor, kernel_size: IntPair, stride: Optional[IntPair] = None) -> Tensor:
    """Max pooling on NCHW tensors (non-overlapping windows by default)."""
    kh, kw = _pair(kernel_size)
    sh, sw = _pair(stride) if stride is not None else (kh, kw)
    n, c, h, w = x.shape
    out_h = (h - kh) // sh + 1
    out_w = (w - kw) // sw + 1

    cols, indices, _, _ = _im2col(x.data, (kh, kw), (sh, sw), (0, 0))
    cols_grouped = cols.reshape(n, c, kh * kw, out_h * out_w)
    argmax = cols_grouped.argmax(axis=2)  # (N, C, P)
    out_data = np.take_along_axis(cols_grouped, argmax[:, :, None, :], axis=2)[:, :, 0, :]
    out_data = out_data.reshape(n, c, out_h, out_w)

    def backward(grad: np.ndarray, out: Tensor) -> None:
        grad_flat = grad.reshape(n, c, out_h * out_w)
        grad_cols = np.zeros_like(cols_grouped)
        np.put_along_axis(grad_cols, argmax[:, :, None, :], grad_flat[:, :, None, :], axis=2)
        grad_cols = grad_cols.reshape(n, c * kh * kw, out_h * out_w)
        grad_x = _col2im(grad_cols, x.shape, indices, (0, 0))
        out._send(x, grad_x)

    out = Tensor._make(out_data, (x,), lambda g: backward(g, out))
    return out


def avg_pool2d(x: Tensor, kernel_size: IntPair, stride: Optional[IntPair] = None) -> Tensor:
    """Average pooling on NCHW tensors."""
    kh, kw = _pair(kernel_size)
    sh, sw = _pair(stride) if stride is not None else (kh, kw)
    n, c, h, w = x.shape
    out_h = (h - kh) // sh + 1
    out_w = (w - kw) // sw + 1

    cols, indices, _, _ = _im2col(x.data, (kh, kw), (sh, sw), (0, 0))
    cols_grouped = cols.reshape(n, c, kh * kw, out_h * out_w)
    out_data = cols_grouped.mean(axis=2).reshape(n, c, out_h, out_w)

    def backward(grad: np.ndarray, out: Tensor) -> None:
        grad_flat = grad.reshape(n, c, 1, out_h * out_w) / (kh * kw)
        grad_cols = np.broadcast_to(grad_flat, cols_grouped.shape).copy()
        grad_cols = grad_cols.reshape(n, c * kh * kw, out_h * out_w)
        grad_x = _col2im(grad_cols, x.shape, indices, (0, 0))
        out._send(x, grad_x)

    out = Tensor._make(out_data, (x,), lambda g: backward(g, out))
    return out


def global_avg_pool2d(x: Tensor) -> Tensor:
    """Average over the spatial dimensions, returning an ``(N, C)`` tensor."""
    return x.mean(axis=(2, 3))


def pad2d(x: Tensor, padding: IntPair) -> Tensor:
    """Zero-pad the spatial dimensions of an NCHW tensor."""
    ph, pw = _pair(padding)
    out_data = np.pad(x.data, ((0, 0), (0, 0), (ph, ph), (pw, pw)), mode="constant")

    def backward(grad: np.ndarray, out: Tensor) -> None:
        out._send(x, grad[:, :, ph : ph + x.shape[2], pw : pw + x.shape[3]])

    out = Tensor._make(out_data, (x,), lambda g: backward(g, out))
    return out


# --------------------------------------------------------------------------- #
# Activations
# --------------------------------------------------------------------------- #
def relu(x: Tensor) -> Tensor:
    return x.relu()


def relu6(x: Tensor) -> Tensor:
    return x.clip(0.0, 6.0)


def hardsigmoid(x: Tensor) -> Tensor:
    """Piecewise-linear sigmoid used by MobileNetV3: ``relu6(x + 3) / 6``."""
    return relu6(x + 3.0) * (1.0 / 6.0)


def hardswish(x: Tensor) -> Tensor:
    """MobileNetV3 hard-swish: ``x * relu6(x + 3) / 6``."""
    return x * hardsigmoid(x)


def sigmoid(x: Tensor) -> Tensor:
    return x.sigmoid()


def tanh(x: Tensor) -> Tensor:
    return x.tanh()


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    shifted = x - Tensor(x.data.max(axis=axis, keepdims=True))
    exp = shifted.exp()
    return exp / exp.sum(axis=axis, keepdims=True)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    shifted = x - Tensor(x.data.max(axis=axis, keepdims=True))
    exp = shifted.exp()
    return shifted - exp.sum(axis=axis, keepdims=True).log()


def flatten(x: Tensor) -> Tensor:
    """Flatten all dimensions but the first."""
    n = x.shape[0]
    return x.reshape(n, int(np.prod(x.shape[1:])))


def channel_shuffle(x: Tensor, groups: int) -> Tensor:
    """ShuffleNet channel shuffle for NCHW tensors."""
    n, c, h, w = x.shape
    if c % groups != 0:
        raise ValueError(f"channels {c} not divisible by groups {groups}")
    return x.reshape(n, groups, c // groups, h, w).transpose(0, 2, 1, 3, 4).reshape(n, c, h, w)


def dropout(x: Tensor, p: float, training: bool, rng: Optional[np.random.Generator] = None) -> Tensor:
    """Inverted dropout.  No-op when not training or when ``p == 0``."""
    if not training or p <= 0.0:
        return x
    if rng is None:
        rng = np.random.default_rng()
    mask = (rng.random(x.shape) >= p).astype(x.data.dtype) / (1.0 - p)
    return x * Tensor(mask)


# --------------------------------------------------------------------------- #
# Losses
# --------------------------------------------------------------------------- #
def cross_entropy(logits: Tensor, targets: np.ndarray) -> Tensor:
    """Mean cross-entropy between ``logits`` (N, C) and integer ``targets`` (N,)."""
    targets = np.asarray(targets)
    n = logits.shape[0]
    log_probs = log_softmax(logits, axis=-1)
    picked = log_probs[np.arange(n), targets]
    return -picked.mean()


def binary_cross_entropy_with_logits(logits: Tensor, targets: np.ndarray) -> Tensor:
    """Mean multi-label BCE loss computed stably from logits.

    Uses the standard ``max(x, 0) - x*t + log(1 + exp(-|x|))`` formulation.
    """
    targets_t = Tensor(np.asarray(targets, dtype=np.float64))
    zeros = Tensor(np.zeros_like(logits.data))
    max_part = Tensor(np.maximum(logits.data, 0.0))
    abs_part = Tensor(np.abs(logits.data))
    # The pieces built directly from logits.data are constants w.r.t. the graph,
    # so re-express them through differentiable ops for correct gradients:
    # max(x, 0) = relu(x); |x| = relu(x) + relu(-x)
    del zeros, max_part, abs_part
    relu_pos = logits.relu()
    relu_neg = (-logits).relu()
    softplus = ((-(relu_pos + relu_neg)).exp() + 1.0).log()
    loss = relu_pos - logits * targets_t + softplus
    return loss.mean()


def mse_loss(pred: Tensor, targets: np.ndarray) -> Tensor:
    """Mean squared error."""
    diff = pred - Tensor(np.asarray(targets, dtype=np.float64))
    return (diff * diff).mean()


def l1_loss(pred: Tensor, targets: np.ndarray) -> Tensor:
    """Mean absolute error (implemented via sqrt of squared error per element)."""
    diff = pred - Tensor(np.asarray(targets, dtype=np.float64))
    return ((diff * diff) + 1e-12).sqrt().mean()
