"""Functional neural-network operations built on :class:`repro.nn.tensor.Tensor`.

Convolutions use an im2col lowering so the inner computation is a single large
matrix multiplication (vectorized in BLAS) rather than Python loops, following
the vectorization guidance for NumPy ML-systems code.

Hot-path kernels come in two bit-identical flavours selected by the
thread-local engine mode (:mod:`repro.nn.engine`): the default ``"flat"``
engine fuses :func:`linear` and :func:`cross_entropy` into single autograd
nodes whose hand-written backward closures replicate the operator-composed
graph expression-for-expression, and replaces the ``np.add.at`` col2im
scatter with a bincount-based kernel; the ``"reference"`` engine keeps the
seed operator-composed implementations as the golden path the fused kernels
are tested against (``tests/nn/test_functional.py``).  im2col gather plans
are cached by ``(C, H, W, kernel, stride, padding)`` in both engines — the
index arrays are a pure function of the geometry, which is fixed across the
batches of a training run.

Every engine-dispatched kernel is split into a ``_<name>_dispatch`` body and
a thin public wrapper guarded by ``if _PROF.enabled:`` — a single attribute
read when profiling is off (:mod:`repro.obs.profiling`), a per-call timer
when ``FLConfig.profile`` turns it on.  The ``_dispatch`` twins stay
addressable so the overhead gate in ``tests/obs/test_profiling.py`` can
measure a truly hookless baseline.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Optional, Tuple, Union

import numpy as np

from ..obs.profiling import PROFILER as _PROF
from .engine import current_engine
from .tensor import Tensor

__all__ = [
    "linear",
    "batch_norm_train",
    "batch_norm_eval",
    "conv2d",
    "depthwise_conv2d",
    "max_pool2d",
    "avg_pool2d",
    "global_avg_pool2d",
    "relu",
    "relu6",
    "hardswish",
    "hardsigmoid",
    "sigmoid",
    "tanh",
    "softmax",
    "log_softmax",
    "cross_entropy",
    "binary_cross_entropy_with_logits",
    "mse_loss",
    "l1_loss",
    "dropout",
    "flatten",
    "channel_shuffle",
    "pad2d",
]

IntPair = Union[int, Tuple[int, int]]


def _pair(value: IntPair) -> Tuple[int, int]:
    if isinstance(value, tuple):
        return value
    return (int(value), int(value))


# --------------------------------------------------------------------------- #
# im2col / col2im helpers
# --------------------------------------------------------------------------- #
def _seed_im2col_indices(
    chw: Tuple[int, int, int],
    kernel: Tuple[int, int],
    stride: Tuple[int, int],
    padding: Tuple[int, int],
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, int, int]:
    """The seed's per-call im2col index computation (reference engine)."""
    c, h, w = chw
    kh, kw = kernel
    sh, sw = stride
    ph, pw = padding
    out_h = (h + 2 * ph - kh) // sh + 1
    out_w = (w + 2 * pw - kw) // sw + 1

    i0 = np.repeat(np.arange(kh), kw)
    i0 = np.tile(i0, c)
    i1 = sh * np.repeat(np.arange(out_h), out_w)
    j0 = np.tile(np.arange(kw), kh * c)
    j1 = sw * np.tile(np.arange(out_w), out_h)

    i = i0.reshape(-1, 1) + i1.reshape(1, -1)
    j = j0.reshape(-1, 1) + j1.reshape(1, -1)
    k = np.repeat(np.arange(c), kh * kw).reshape(-1, 1)
    return k, i, j, out_h, out_w


@lru_cache(maxsize=256)
def _im2col_plan(
    chw: Tuple[int, int, int],
    kernel: Tuple[int, int],
    stride: Tuple[int, int],
    padding: Tuple[int, int],
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, int, int]:
    """Gather/scatter index plan for im2col on an NCHW input.

    The plan depends only on the per-image geometry ``(C, H, W)`` plus the
    kernel / stride / padding, so it is computed once per layer configuration
    and reused for every batch of a run.  Returned arrays are frozen
    read-only: they are shared across threads and must never be mutated.
    ``flat`` is the per-image flattened scatter target
    ``(k * padded_h + i) * padded_w + j`` used by the bincount col2im kernel
    (stored raveled alongside its 2-D shape so backward passes never rebuild
    or re-ravel it).
    """
    c, h, w = chw
    ph, pw = padding
    k, i, j, out_h, out_w = _seed_im2col_indices(chw, kernel, stride, padding)
    flat = (k * (h + 2 * ph) + i) * (w + 2 * pw) + j
    for array in (k, i, j, flat):
        array.flags.writeable = False
    return k, i, j, flat, out_h, out_w


def _im2col_dispatch(
    x: np.ndarray,
    kernel: Tuple[int, int],
    stride: Tuple[int, int],
    padding: Tuple[int, int],
) -> Tuple[np.ndarray, Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray], int, int]:
    """Lower an NCHW batch to im2col columns.

    Both engines produce identical columns — gathering moves bytes, it never
    rounds.  The flat engine pulls its (cached) plan's flattened index matrix
    through one ``np.take`` per batch and zero-pads by slice assignment; the
    reference engine keeps the seed's ``np.pad`` + triple-fancy-index gather.
    """
    n, c, h, w = x.shape
    ph, pw = padding
    if current_engine() == "reference":
        # Seed path: k/i/j indices rebuilt per call (no plan cache, no
        # scatter-target matrix — exactly the work the seed implementation
        # did), np.pad, fancy-index gather.
        k, i, j, out_h, out_w = _seed_im2col_indices((c, h, w), kernel, stride, padding)
        if ph or pw:
            x_padded = np.pad(x, ((0, 0), (0, 0), (ph, ph), (pw, pw)), mode="constant")
        else:
            x_padded = x
        cols = x_padded[:, k, i, j]  # (N, C*kh*kw, out_h*out_w)
        return cols, (k, i, j), out_h, out_w
    k, i, j, flat, out_h, out_w = _im2col_plan((c, h, w), kernel, stride, padding)
    if ph or pw:
        x_padded = np.zeros((n, c, h + 2 * ph, w + 2 * pw), dtype=x.dtype)
        x_padded[:, :, ph : ph + h, pw : pw + w] = x
    else:
        x_padded = x
    cols = np.take(x_padded.reshape(n, -1), flat, axis=1)
    return cols, (k, i, j, flat), out_h, out_w


def _im2col(x, kernel, stride, padding):
    if _PROF.enabled:
        with _PROF.time("im2col"):
            return _im2col_dispatch(x, kernel, stride, padding)
    return _im2col_dispatch(x, kernel, stride, padding)


def _col2im_reference(
    cols: np.ndarray,
    x_shape: Tuple[int, int, int, int],
    indices: Tuple[np.ndarray, ...],
    padding: Tuple[int, int],
) -> np.ndarray:
    """Seed col2im scatter via ``np.add.at`` (the reference-engine path)."""
    n, c, h, w = x_shape
    ph, pw = padding
    k, i, j = indices[:3]
    x_padded = np.zeros((n, c, h + 2 * ph, w + 2 * pw), dtype=cols.dtype)
    np.add.at(x_padded, (slice(None), k, i, j), cols)
    if ph or pw:
        return x_padded[:, :, ph : ph + h, pw : pw + w]
    return x_padded


@lru_cache(maxsize=256)
def _einsum_path(equation: str, *shapes: Tuple[int, ...]):
    """Cached contraction path for an einsum call signature.

    ``np.einsum(..., optimize=True)`` re-derives the contraction path on
    every call — pure Python overhead that dominates small convolutions.  The
    path is a function of the equation and operand shapes only, so the flat
    engine computes it once and replays it; the replayed contraction is the
    byte-for-byte computation ``optimize=True`` would have run.
    """
    dummies = [np.empty(shape) for shape in shapes]
    return np.einsum_path(equation, *dummies, optimize=True)[0]


def _einsum_dispatch(equation: str, *operands: np.ndarray) -> np.ndarray:
    """Engine-dispatched einsum: seed per-call optimize, or cached path."""
    if current_engine() == "reference":
        return np.einsum(equation, *operands, optimize=True)
    path = _einsum_path(equation, *(op.shape for op in operands))
    return np.einsum(equation, *operands, optimize=path)


def _einsum(equation, *operands):
    if _PROF.enabled:
        with _PROF.time("einsum"):
            return _einsum_dispatch(equation, *operands)
    return _einsum_dispatch(equation, *operands)


def _col2im_dispatch(
    cols: np.ndarray,
    x_shape: Tuple[int, int, int, int],
    indices: Tuple[np.ndarray, ...],
    padding: Tuple[int, int],
) -> np.ndarray:
    """Scatter im2col columns back onto the (padded) input grid.

    The flat engine sums duplicate contributions with ``np.bincount`` — a
    tight C loop — instead of ``np.add.at``'s buffered fancy-indexing
    machinery (typically several times faster on conv-sized scatters).  Both
    kernels visit the ``(N, F, P)`` contributions in the same C iteration
    order, so duplicates targeting the same padded pixel accumulate in the
    same sequence and the floating-point sums round identically (pinned
    bitwise in ``tests/nn/test_functional.py``).
    """
    if current_engine() == "reference" or len(indices) < 4:
        # The 3-index tuple comes from a reference-engine forward; a graph
        # built there scatters through the seed kernel even if backward runs
        # under the flat engine.
        return _col2im_reference(cols, x_shape, indices, padding)
    n, c, h, w = x_shape
    ph, pw = padding
    flat = indices[3]  # (F, P) per-image flattened targets from the cached plan
    hp, wp = h + 2 * ph, w + 2 * pw
    per_image = c * hp * wp
    # One bincount per image over the cached raveled targets: images scatter
    # independently, so per-image accumulation is the same sequence of adds
    # as one batch-wide scatter — without materialising an (N*F*P) offset
    # target array on every backward call.
    flat_ravel = flat.reshape(-1)
    # np.bincount computes (and returns) float64 regardless of the weights'
    # dtype, so under float32 the cast is hoisted: one batch-wide upcast of
    # the contributions, one downcast of the scattered result — elementwise
    # identical to casting each image's bincount individually, but without a
    # per-image float64 temporary + copy inside every bincount call.
    weights = cols.reshape(n, -1)
    if weights.dtype != np.float64:
        weights = weights.astype(np.float64)
    x_padded = np.empty((n, per_image), dtype=np.float64)
    for image in range(n):
        x_padded[image] = np.bincount(flat_ravel, weights=weights[image],
                                      minlength=per_image)
    if cols.dtype != np.float64:
        x_padded = x_padded.astype(cols.dtype)
    x_padded = x_padded.reshape(n, c, hp, wp)
    if ph or pw:
        return x_padded[:, :, ph : ph + h, pw : pw + w]
    return x_padded


def _col2im(cols, x_shape, indices, padding):
    if _PROF.enabled:
        with _PROF.time("col2im"):
            return _col2im_dispatch(cols, x_shape, indices, padding)
    return _col2im_dispatch(cols, x_shape, indices, padding)


# --------------------------------------------------------------------------- #
# Linear / convolution
# --------------------------------------------------------------------------- #
def _linear_reference(x: Tensor, weight: Tensor, bias: Optional[Tensor] = None) -> Tensor:
    """Operator-composed affine transform (the seed path): three graph nodes."""
    out = x @ weight.T
    if bias is not None:
        out = out + bias
    return out


def _linear_fused(x: Tensor, weight: Tensor, bias: Optional[Tensor]) -> Tensor:
    """Single-node affine transform, bitwise-equal to the composed graph.

    Forward and backward evaluate exactly the expressions the composed
    ``transpose -> matmul -> add`` graph evaluates — ``x @ W.T``, then
    ``grad @ W``, ``(x.T @ grad).T`` and ``grad.sum(axis=0)`` — just without
    building the two intermediate tensors and their closures per call.
    """
    out_data = x.data @ weight.data.transpose()
    if bias is not None:
        out_data = out_data + bias.data
    parents = (x, weight) if bias is None else (x, weight, bias)

    def backward(grad: np.ndarray, out: Tensor) -> None:
        out._send(x, grad @ weight.data)
        out._send(weight, (x.data.transpose() @ grad).transpose())
        if bias is not None:
            out._send(bias, grad.sum(axis=0))

    out = Tensor._make(out_data, parents, lambda g: backward(g, out))
    return out


def _linear_dispatch(x: Tensor, weight: Tensor, bias: Optional[Tensor]) -> Tensor:
    if x.ndim != 2 or current_engine() == "reference":
        return _linear_reference(x, weight, bias)
    return _linear_fused(x, weight, bias)


def linear(x: Tensor, weight: Tensor, bias: Optional[Tensor] = None) -> Tensor:
    """Affine transform ``x @ weight.T + bias`` for 2-D inputs."""
    if _PROF.enabled:
        with _PROF.time("linear"):
            return _linear_dispatch(x, weight, bias)
    return _linear_dispatch(x, weight, bias)


def _seq_reduce(grad: np.ndarray, param_shape: Tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``param_shape`` one axis at a time, ascending.

    This replicates :func:`repro.nn.tensor._unbroadcast`'s loop exactly —
    sequential single-axis ``sum`` calls, not one multi-axis reduction — so
    fused batch-norm gradients round identically to the composed graph.
    """
    for axis, size in enumerate(param_shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad


def _batch_norm_train_reference(
    x: Tensor,
    weight: Tensor,
    bias: Tensor,
    axes: Tuple[int, ...],
    param_shape: Tuple[int, ...],
    eps: float,
) -> Tuple[Tensor, np.ndarray, np.ndarray]:
    """Operator-composed training batch norm (~12 graph nodes per call)."""
    mean = x.mean(axis=axes, keepdims=True)
    centered = x - mean
    var = (centered * centered).mean(axis=axes, keepdims=True)
    inv_std = (var + eps) ** -0.5
    normalized = centered * inv_std
    out = normalized * weight.reshape(*param_shape) + bias.reshape(*param_shape)
    return out, mean.data, var.data


def _batch_norm_train_fused(
    x: Tensor,
    weight: Tensor,
    bias: Tensor,
    axes: Tuple[int, ...],
    param_shape: Tuple[int, ...],
    eps: float,
) -> Tuple[Tensor, np.ndarray, np.ndarray]:
    """Single-node training batch norm, bitwise-equal to the composed graph.

    Forward and backward evaluate the exact expressions of the composed
    ``mean -> center -> var -> inv_std -> scale -> shift`` graph — including
    the ``sum * (1/count)`` means, the duplicated ``centered`` gradient of
    ``centered * centered``, and the sequential single-axis reductions of
    broadcast gradients — collapsed into one autograd node.
    """
    count = int(np.prod([x.shape[a] for a in axes]))
    inv_count = 1.0 / count
    x_data = x.data
    mean = x_data.sum(axis=axes, keepdims=True) * inv_count
    centered = x_data + (-mean)
    sq = centered * centered
    var = sq.sum(axis=axes, keepdims=True) * inv_count
    var_eps = var + eps
    inv_std = var_eps ** -0.5
    normalized = centered * inv_std
    w_r = weight.data.reshape(param_shape)
    b_r = bias.data.reshape(param_shape)
    out_data = normalized * w_r + b_r
    x_shape = x_data.shape
    dtype = x_data.dtype

    def backward(grad: np.ndarray, out: Tensor) -> None:
        grad_bias = _seq_reduce(grad, param_shape)
        grad_weight = _seq_reduce(grad * normalized, param_shape)
        g_norm = grad * w_r
        g_centered = g_norm * inv_std
        g_inv = _seq_reduce(g_norm * centered, param_shape)
        g_var = g_inv * -0.5 * var_eps ** -1.5
        g_sq = np.broadcast_to(g_var * inv_count, x_shape).astype(dtype)
        # centered*centered sends its gradient to `centered` twice — two
        # separate accumulations, replicated here addition by addition.
        t = g_sq * centered
        g_centered = g_centered + t
        g_centered = g_centered + t
        g_x = g_centered
        g_mean = -_seq_reduce(g_centered, param_shape)
        g_x = g_x + np.broadcast_to(g_mean * inv_count, x_shape).astype(dtype)
        out._send(x, g_x)
        out._send(weight, grad_weight.reshape(weight.data.shape))
        out._send(bias, grad_bias.reshape(bias.data.shape))

    out = Tensor._make(out_data, (x, weight, bias), lambda g: backward(g, out))
    return out, mean, var


def _batch_norm_train_dispatch(x, weight, bias, axes, param_shape, eps):
    if current_engine() == "reference":
        return _batch_norm_train_reference(x, weight, bias, axes, param_shape, eps)
    return _batch_norm_train_fused(x, weight, bias, axes, param_shape, eps)


def batch_norm_train(
    x: Tensor,
    weight: Tensor,
    bias: Tensor,
    axes: Tuple[int, ...],
    param_shape: Tuple[int, ...],
    eps: float,
) -> Tuple[Tensor, np.ndarray, np.ndarray]:
    """Training-mode batch norm; returns ``(out, batch_mean, batch_var)``.

    The returned statistics carry the ``keepdims`` shape of the reduction and
    feed the caller's running-stat update.
    """
    if _PROF.enabled:
        with _PROF.time("batch_norm_train"):
            return _batch_norm_train_dispatch(x, weight, bias, axes, param_shape, eps)
    return _batch_norm_train_dispatch(x, weight, bias, axes, param_shape, eps)


def _batch_norm_eval_reference(
    x: Tensor,
    weight: Tensor,
    bias: Tensor,
    mean: np.ndarray,
    var: np.ndarray,
    param_shape: Tuple[int, ...],
    eps: float,
) -> Tensor:
    normalized = (x - Tensor(mean)) * Tensor(1.0 / np.sqrt(var + eps))
    return normalized * weight.reshape(*param_shape) + bias.reshape(*param_shape)


def _batch_norm_eval_fused(
    x: Tensor,
    weight: Tensor,
    bias: Tensor,
    mean: np.ndarray,
    var: np.ndarray,
    param_shape: Tuple[int, ...],
    eps: float,
) -> Tensor:
    inv = 1.0 / np.sqrt(var + eps)
    centered = x.data + (-mean)
    normalized = centered * inv
    w_r = weight.data.reshape(param_shape)
    out_data = normalized * w_r + bias.data.reshape(param_shape)

    def backward(grad: np.ndarray, out: Tensor) -> None:
        out._send(x, (grad * w_r) * inv)
        out._send(weight, _seq_reduce(grad * normalized, param_shape).reshape(weight.data.shape))
        out._send(bias, _seq_reduce(grad, param_shape).reshape(bias.data.shape))

    out = Tensor._make(out_data, (x, weight, bias), lambda g: backward(g, out))
    return out


def _batch_norm_eval_dispatch(x, weight, bias, mean, var, param_shape, eps):
    if current_engine() == "reference":
        return _batch_norm_eval_reference(x, weight, bias, mean, var, param_shape, eps)
    return _batch_norm_eval_fused(x, weight, bias, mean, var, param_shape, eps)


def batch_norm_eval(
    x: Tensor,
    weight: Tensor,
    bias: Tensor,
    mean: np.ndarray,
    var: np.ndarray,
    param_shape: Tuple[int, ...],
    eps: float,
) -> Tensor:
    """Inference-mode batch norm using the running statistics."""
    if _PROF.enabled:
        with _PROF.time("batch_norm_eval"):
            return _batch_norm_eval_dispatch(x, weight, bias, mean, var, param_shape, eps)
    return _batch_norm_eval_dispatch(x, weight, bias, mean, var, param_shape, eps)


def conv2d(
    x: Tensor,
    weight: Tensor,
    bias: Optional[Tensor] = None,
    stride: IntPair = 1,
    padding: IntPair = 0,
) -> Tensor:
    """2-D convolution on NCHW tensors.

    ``weight`` has shape ``(out_channels, in_channels, kh, kw)``.
    """
    stride = _pair(stride)
    padding = _pair(padding)
    n, c, h, w = x.shape
    oc, ic, kh, kw = weight.shape
    if ic != c:
        raise ValueError(f"conv2d channel mismatch: input has {c}, weight expects {ic}")

    cols, indices, out_h, out_w = _im2col(x.data, (kh, kw), stride, padding)
    w_flat = weight.data.reshape(oc, -1)  # (oc, C*kh*kw)
    out_data = _einsum("of,nfp->nop", w_flat, cols)
    out_data = out_data.reshape(n, oc, out_h, out_w)
    if bias is not None:
        out_data = out_data + bias.data.reshape(1, oc, 1, 1)

    parents = (x, weight) if bias is None else (x, weight, bias)

    def backward(grad: np.ndarray, out: Tensor) -> None:
        grad_flat = grad.reshape(n, oc, out_h * out_w)
        # dL/dW
        grad_w = _einsum("nop,nfp->of", grad_flat, cols)
        out._send(weight, grad_w.reshape(weight.shape))
        # dL/dx
        grad_cols = _einsum("of,nop->nfp", w_flat, grad_flat)
        grad_x = _col2im(grad_cols, x.shape, indices, padding)
        out._send(x, grad_x)
        if bias is not None:
            out._send(bias, grad.sum(axis=(0, 2, 3)))

    out = Tensor._make(out_data, parents, lambda g: backward(g, out))
    return out


def depthwise_conv2d(
    x: Tensor,
    weight: Tensor,
    bias: Optional[Tensor] = None,
    stride: IntPair = 1,
    padding: IntPair = 0,
) -> Tensor:
    """Depthwise 2-D convolution: each input channel is filtered independently.

    ``weight`` has shape ``(channels, 1, kh, kw)``.
    """
    stride = _pair(stride)
    padding = _pair(padding)
    n, c, h, w = x.shape
    wc, one, kh, kw = weight.shape
    if wc != c or one != 1:
        raise ValueError("depthwise_conv2d expects weight of shape (C, 1, kh, kw)")

    cols, indices, out_h, out_w = _im2col(x.data, (kh, kw), stride, padding)
    # cols: (N, C*kh*kw, P) -> (N, C, kh*kw, P)
    cols_grouped = cols.reshape(n, c, kh * kw, out_h * out_w)
    w_flat = weight.data.reshape(c, kh * kw)
    out_data = _einsum("ck,nckp->ncp", w_flat, cols_grouped)
    out_data = out_data.reshape(n, c, out_h, out_w)
    if bias is not None:
        out_data = out_data + bias.data.reshape(1, c, 1, 1)

    parents = (x, weight) if bias is None else (x, weight, bias)

    def backward(grad: np.ndarray, out: Tensor) -> None:
        grad_flat = grad.reshape(n, c, out_h * out_w)
        grad_w = _einsum("ncp,nckp->ck", grad_flat, cols_grouped)
        out._send(weight, grad_w.reshape(weight.shape))
        grad_cols = _einsum("ck,ncp->nckp", w_flat, grad_flat)
        grad_cols = grad_cols.reshape(n, c * kh * kw, out_h * out_w)
        grad_x = _col2im(grad_cols, x.shape, indices, padding)
        out._send(x, grad_x)
        if bias is not None:
            out._send(bias, grad.sum(axis=(0, 2, 3)))

    out = Tensor._make(out_data, parents, lambda g: backward(g, out))
    return out


# --------------------------------------------------------------------------- #
# Pooling
# --------------------------------------------------------------------------- #
def max_pool2d(x: Tensor, kernel_size: IntPair, stride: Optional[IntPair] = None) -> Tensor:
    """Max pooling on NCHW tensors (non-overlapping windows by default)."""
    kh, kw = _pair(kernel_size)
    sh, sw = _pair(stride) if stride is not None else (kh, kw)
    n, c, h, w = x.shape
    out_h = (h - kh) // sh + 1
    out_w = (w - kw) // sw + 1

    cols, indices, _, _ = _im2col(x.data, (kh, kw), (sh, sw), (0, 0))
    cols_grouped = cols.reshape(n, c, kh * kw, out_h * out_w)
    argmax = cols_grouped.argmax(axis=2)  # (N, C, P)
    out_data = np.take_along_axis(cols_grouped, argmax[:, :, None, :], axis=2)[:, :, 0, :]
    out_data = out_data.reshape(n, c, out_h, out_w)

    def backward(grad: np.ndarray, out: Tensor) -> None:
        grad_flat = grad.reshape(n, c, out_h * out_w)
        grad_cols = np.zeros_like(cols_grouped)
        np.put_along_axis(grad_cols, argmax[:, :, None, :], grad_flat[:, :, None, :], axis=2)
        grad_cols = grad_cols.reshape(n, c * kh * kw, out_h * out_w)
        grad_x = _col2im(grad_cols, x.shape, indices, (0, 0))
        out._send(x, grad_x)

    out = Tensor._make(out_data, (x,), lambda g: backward(g, out))
    return out


def avg_pool2d(x: Tensor, kernel_size: IntPair, stride: Optional[IntPair] = None) -> Tensor:
    """Average pooling on NCHW tensors."""
    kh, kw = _pair(kernel_size)
    sh, sw = _pair(stride) if stride is not None else (kh, kw)
    n, c, h, w = x.shape
    out_h = (h - kh) // sh + 1
    out_w = (w - kw) // sw + 1

    cols, indices, _, _ = _im2col(x.data, (kh, kw), (sh, sw), (0, 0))
    cols_grouped = cols.reshape(n, c, kh * kw, out_h * out_w)
    out_data = cols_grouped.mean(axis=2).reshape(n, c, out_h, out_w)

    def backward(grad: np.ndarray, out: Tensor) -> None:
        grad_flat = grad.reshape(n, c, 1, out_h * out_w) / (kh * kw)
        grad_cols = np.broadcast_to(grad_flat, cols_grouped.shape).copy()
        grad_cols = grad_cols.reshape(n, c * kh * kw, out_h * out_w)
        grad_x = _col2im(grad_cols, x.shape, indices, (0, 0))
        out._send(x, grad_x)

    out = Tensor._make(out_data, (x,), lambda g: backward(g, out))
    return out


def global_avg_pool2d(x: Tensor) -> Tensor:
    """Average over the spatial dimensions, returning an ``(N, C)`` tensor."""
    return x.mean(axis=(2, 3))


def pad2d(x: Tensor, padding: IntPair) -> Tensor:
    """Zero-pad the spatial dimensions of an NCHW tensor."""
    ph, pw = _pair(padding)
    out_data = np.pad(x.data, ((0, 0), (0, 0), (ph, ph), (pw, pw)), mode="constant")

    def backward(grad: np.ndarray, out: Tensor) -> None:
        out._send(x, grad[:, :, ph : ph + x.shape[2], pw : pw + x.shape[3]])

    out = Tensor._make(out_data, (x,), lambda g: backward(g, out))
    return out


# --------------------------------------------------------------------------- #
# Activations
# --------------------------------------------------------------------------- #
def relu(x: Tensor) -> Tensor:
    return x.relu()


def relu6(x: Tensor) -> Tensor:
    return x.clip(0.0, 6.0)


def hardsigmoid(x: Tensor) -> Tensor:
    """Piecewise-linear sigmoid used by MobileNetV3: ``relu6(x + 3) / 6``."""
    return relu6(x + 3.0) * (1.0 / 6.0)


def _hardswish_fused(x: Tensor) -> Tensor:
    """Single-node hard-swish, bitwise-equal to the composed chain.

    Replicates ``x * (clip(x + 3, 0, 6) * (1/6))`` and its backward —
    ``g * hsig + ((g * x) * (1/6)) * mask`` — expression for expression.
    """
    shifted = x.data + 3.0
    mask = (shifted >= 0.0) & (shifted <= 6.0)
    hsig = np.clip(shifted, 0.0, 6.0) * (1.0 / 6.0)
    out_data = x.data * hsig

    def backward(grad: np.ndarray, out: Tensor) -> None:
        out._send(x, grad * hsig + ((grad * x.data) * (1.0 / 6.0)) * mask)

    out = Tensor._make(out_data, (x,), lambda g: backward(g, out))
    return out


def _hardswish_dispatch(x: Tensor) -> Tensor:
    if current_engine() == "reference":
        return x * hardsigmoid(x)
    return _hardswish_fused(x)


def hardswish(x: Tensor) -> Tensor:
    """MobileNetV3 hard-swish: ``x * relu6(x + 3) / 6``."""
    if _PROF.enabled:
        with _PROF.time("hardswish"):
            return _hardswish_dispatch(x)
    return _hardswish_dispatch(x)


def sigmoid(x: Tensor) -> Tensor:
    return x.sigmoid()


def tanh(x: Tensor) -> Tensor:
    return x.tanh()


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    shifted = x - Tensor(x.data.max(axis=axis, keepdims=True))
    exp = shifted.exp()
    return exp / exp.sum(axis=axis, keepdims=True)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    shifted = x - Tensor(x.data.max(axis=axis, keepdims=True))
    exp = shifted.exp()
    return shifted - exp.sum(axis=axis, keepdims=True).log()


def flatten(x: Tensor) -> Tensor:
    """Flatten all dimensions but the first."""
    return x.reshape(x.shape[0], -1)


def channel_shuffle(x: Tensor, groups: int) -> Tensor:
    """ShuffleNet channel shuffle for NCHW tensors."""
    n, c, h, w = x.shape
    if c % groups != 0:
        raise ValueError(f"channels {c} not divisible by groups {groups}")
    return x.reshape(n, groups, c // groups, h, w).transpose(0, 2, 1, 3, 4).reshape(n, c, h, w)


def dropout(x: Tensor, p: float, training: bool, rng: Optional[np.random.Generator] = None) -> Tensor:
    """Inverted dropout.  No-op when not training or when ``p == 0``."""
    if not training or p <= 0.0:
        return x
    if rng is None:
        rng = np.random.default_rng()
    mask = (rng.random(x.shape) >= p).astype(x.data.dtype) / (1.0 - p)
    return x * Tensor(mask)


# --------------------------------------------------------------------------- #
# Losses
# --------------------------------------------------------------------------- #
def _cross_entropy_reference(logits: Tensor, targets: np.ndarray) -> Tensor:
    """Operator-composed cross-entropy (the seed path): ~10 graph nodes."""
    targets = np.asarray(targets)
    n = logits.shape[0]
    log_probs = log_softmax(logits, axis=-1)
    picked = log_probs[np.arange(n), targets]
    return -picked.mean()


def _cross_entropy_fused(logits: Tensor, targets: np.ndarray) -> Tensor:
    """Single-node cross-entropy, bitwise-equal to the composed graph.

    The composed graph (shift by max -> exp -> sum -> log -> gather -> mean
    -> negate) builds ~10 tensors and closures per loss evaluation; this
    kernel evaluates the same NumPy expressions in the same order (including
    the ``sum * (1/n)`` mean and the row-sum the broadcast-add backward
    performs) inside one node, so both the loss value and the logits gradient
    match the reference bit-for-bit (``tests/nn/test_functional.py``).
    """
    targets = np.asarray(targets)
    n, num_classes = logits.shape
    rows = np.arange(n)
    x = logits.data
    mx = x.max(axis=-1, keepdims=True)
    shifted = x - mx
    ex = np.exp(shifted)
    sumexp = ex.sum(axis=-1, keepdims=True)
    logsum = np.log(sumexp)
    picked = shifted[rows, targets] - logsum[:, 0]
    out_data = -(picked.sum() * (1.0 / n))

    def backward(grad: np.ndarray, out: Tensor) -> None:
        # Replicates the composed chain: negate -> mean -> gather-scatter ->
        # broadcast-add (row sum) -> log -> sum (broadcast) -> exp -> shift.
        g_picked = np.broadcast_to((-grad) * (1.0 / n), (n,)).astype(x.dtype)
        scatter = np.zeros((n, num_classes), dtype=x.dtype)
        scatter[rows, targets] = g_picked
        g_logsum = -scatter.sum(axis=1, keepdims=True)
        g_exp = np.broadcast_to(g_logsum / sumexp, (n, num_classes)).astype(x.dtype)
        out._send(logits, scatter + g_exp * ex)

    out = Tensor._make(np.asarray(out_data), (logits,), lambda g: backward(g, out))
    return out


def _cross_entropy_dispatch(logits: Tensor, targets: np.ndarray) -> Tensor:
    if current_engine() == "reference":
        return _cross_entropy_reference(logits, targets)
    return _cross_entropy_fused(logits, targets)


def cross_entropy(logits: Tensor, targets: np.ndarray) -> Tensor:
    """Mean cross-entropy between ``logits`` (N, C) and integer ``targets`` (N,)."""
    if _PROF.enabled:
        with _PROF.time("cross_entropy"):
            return _cross_entropy_dispatch(logits, targets)
    return _cross_entropy_dispatch(logits, targets)


def binary_cross_entropy_with_logits(logits: Tensor, targets: np.ndarray) -> Tensor:
    """Mean multi-label BCE loss computed stably from logits.

    Uses the standard ``max(x, 0) - x*t + log(1 + exp(-|x|))`` formulation.
    """
    targets_t = Tensor(np.asarray(targets, dtype=logits.data.dtype))
    # max(x, 0) and |x| are expressed through differentiable ops so gradients
    # flow: max(x, 0) = relu(x); |x| = relu(x) + relu(-x).
    relu_pos = logits.relu()
    relu_neg = (-logits).relu()
    softplus = ((-(relu_pos + relu_neg)).exp() + 1.0).log()
    loss = relu_pos - logits * targets_t + softplus
    return loss.mean()


def mse_loss(pred: Tensor, targets: np.ndarray) -> Tensor:
    """Mean squared error."""
    diff = pred - Tensor(np.asarray(targets, dtype=pred.data.dtype))
    return (diff * diff).mean()


def l1_loss(pred: Tensor, targets: np.ndarray) -> Tensor:
    """Mean absolute error (implemented via sqrt of squared error per element)."""
    diff = pred - Tensor(np.asarray(targets, dtype=pred.data.dtype))
    return ((diff * diff) + 1e-12).sqrt().mean()
