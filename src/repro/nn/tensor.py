"""A small reverse-mode automatic differentiation engine on top of NumPy.

This module is the computational substrate for the whole reproduction: the
paper trains convolutional networks with PyTorch, which is not available in
this environment, so we provide a compact but complete autograd ``Tensor``
with the operations the model zoo (:mod:`repro.nn.models`) needs.

The design follows the familiar define-by-run pattern: every operation on
:class:`Tensor` objects records a backward closure on the output tensor, and
:meth:`Tensor.backward` walks the recorded graph in reverse topological order
accumulating gradients.  All heavy lifting is vectorized NumPy; there are no
per-element Python loops on the hot path.
"""

from __future__ import annotations

import threading
from typing import Callable, Iterable, Optional, Sequence, Tuple, Union

import numpy as np

from .engine import _ENGINE as _engine_state

ArrayLike = Union[np.ndarray, float, int, Sequence]

__all__ = ["Tensor", "no_grad", "is_grad_enabled"]


class _GradMode(threading.local):
    """Per-thread flag controlling whether operations build the graph.

    Thread-local rather than process-wide: the FL thread executor trains
    clients concurrently, and one client's ``no_grad`` evaluation must not
    switch off graph construction under another client's training step.
    """

    def __init__(self) -> None:
        self.enabled = True


_GRAD_MODE = _GradMode()


class no_grad:
    """Context manager that disables graph construction (like ``torch.no_grad``)."""

    def __enter__(self) -> "no_grad":
        self._prev = _GRAD_MODE.enabled
        _GRAD_MODE.enabled = False
        return self

    def __exit__(self, *exc) -> None:
        _GRAD_MODE.enabled = self._prev


def is_grad_enabled() -> bool:
    """Return ``True`` if operations currently record gradient information."""
    return _GRAD_MODE.enabled


def _as_array(data: ArrayLike, dtype=None) -> np.ndarray:
    if dtype is None:
        # The engine's thread-local compute dtype (float64 unless a
        # dtype_mode/engine_scope selects float32); imported lazily at call
        # sites via the module attribute to keep this hot path cheap.
        dtype = _engine_state.dtype
    if isinstance(data, np.ndarray):
        if data.dtype != dtype:
            return data.astype(dtype)
        return data
    return np.asarray(data, dtype=dtype)


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` over broadcast dimensions so it matches ``shape``.

    NumPy broadcasting expands leading dimensions and size-1 dimensions; the
    corresponding gradient contribution must be summed back down.
    """
    if grad.shape == shape:
        return grad
    # Sum extra leading dims.
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # Sum over broadcast (size-1) axes.
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A NumPy-backed tensor with reverse-mode autodiff.

    Parameters
    ----------
    data:
        Array-like payload.  Stored in the engine's thread-local compute
        dtype — ``float64`` by default for numerical robustness of the
        small-scale experiments in this repository, or ``float32`` inside a
        :class:`repro.nn.engine.dtype_mode` / ``engine_scope`` block.
    requires_grad:
        Whether gradients should be accumulated into :attr:`grad` during
        :meth:`backward`.
    """

    __slots__ = (
        "data",
        "grad",
        "requires_grad",
        "_backward",
        "_parents",
        "_pending_grads",
        "name",
    )

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        name: Optional[str] = None,
    ) -> None:
        self.data: np.ndarray = _as_array(data)
        self.grad: Optional[np.ndarray] = None
        self.requires_grad: bool = bool(requires_grad)
        self._backward: Optional[Callable[[np.ndarray], None]] = None
        self._parents: Tuple["Tensor", ...] = ()
        self.name = name

    # ------------------------------------------------------------------ #
    # Basic properties
    # ------------------------------------------------------------------ #
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{grad_flag})"

    def item(self) -> float:
        """Return the single scalar value held by this tensor."""
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else float(self.data)

    def numpy(self) -> np.ndarray:
        """Return the underlying array (no copy)."""
        return self.data

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but cut from the graph."""
        return Tensor(self.data, requires_grad=False)

    def copy(self) -> "Tensor":
        """Return a deep copy (detached)."""
        return Tensor(self.data.copy(), requires_grad=self.requires_grad)

    def zero_grad(self) -> None:
        """Reset the accumulated gradient."""
        self.grad = None

    # ------------------------------------------------------------------ #
    # Graph bookkeeping
    # ------------------------------------------------------------------ #
    @staticmethod
    def _make(
        data: np.ndarray,
        parents: Iterable["Tensor"],
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        parents = tuple(parents)
        requires = _GRAD_MODE.enabled and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=requires)
        if requires:
            out._parents = parents
            out._backward = backward
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        if self.grad is None:
            self.grad = grad.copy() if grad.base is not None or grad is self.data else grad
        else:
            self.grad = self.grad + grad

    def backward(self, grad: Optional[ArrayLike] = None) -> None:
        """Backpropagate from this tensor.

        Parameters
        ----------
        grad:
            Seed gradient.  Defaults to ``1.0`` which is only valid for scalar
            outputs (e.g. a loss value).
        """
        if grad is None:
            if self.data.size != 1:
                raise ValueError("backward() without a gradient requires a scalar tensor")
            grad = np.ones_like(self.data)
        grad = _as_array(grad)

        # Topological order of the graph reachable from self.
        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))

        grads: dict[int, np.ndarray] = {id(self): grad}
        for node in reversed(topo):
            node_grad = grads.pop(id(node), None)
            if node_grad is None:
                continue
            if node.requires_grad and node._backward is None:
                # Leaf tensor: accumulate into .grad
                node._accumulate(node_grad)
            if node._backward is not None:
                # The backward closure stores contributions for the parents
                # via the `grads` dict captured through `_receive`.
                node._pending_grads = grads  # type: ignore[attr-defined]
                node._backward(node_grad)
                del node._pending_grads  # type: ignore[attr-defined]
                if node.requires_grad and node in (self,):
                    pass

    # Helper used inside backward closures to route gradients to parents.
    def _send(self, parent: "Tensor", grad: np.ndarray) -> None:
        grads: dict[int, np.ndarray] = getattr(self, "_pending_grads")
        key = id(parent)
        if parent._backward is None and parent.requires_grad:
            parent._accumulate(grad)
        elif parent._backward is not None:
            if key in grads:
                grads[key] = grads[key] + grad
            else:
                grads[key] = grad

    # ------------------------------------------------------------------ #
    # Elementwise arithmetic
    # ------------------------------------------------------------------ #
    def __add__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        out_data = self.data + other_t.data

        def backward(grad: np.ndarray, out: "Tensor") -> None:
            out._send(self, _unbroadcast(grad, self.shape))
            out._send(other_t, _unbroadcast(grad, other_t.shape))

        out = Tensor._make(out_data, (self, other_t), lambda g: backward(g, out))
        return out

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        out_data = -self.data

        def backward(grad: np.ndarray, out: "Tensor") -> None:
            out._send(self, -grad)

        out = Tensor._make(out_data, (self,), lambda g: backward(g, out))
        return out

    def __sub__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        return self + (-other_t)

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return Tensor(other) + (-self)

    def __mul__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        out_data = self.data * other_t.data

        def backward(grad: np.ndarray, out: "Tensor") -> None:
            out._send(self, _unbroadcast(grad * other_t.data, self.shape))
            out._send(other_t, _unbroadcast(grad * self.data, other_t.shape))

        out = Tensor._make(out_data, (self, other_t), lambda g: backward(g, out))
        return out

    __rmul__ = __mul__

    def __truediv__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        out_data = self.data / other_t.data

        def backward(grad: np.ndarray, out: "Tensor") -> None:
            out._send(self, _unbroadcast(grad / other_t.data, self.shape))
            out._send(
                other_t,
                _unbroadcast(-grad * self.data / (other_t.data ** 2), other_t.shape),
            )

        out = Tensor._make(out_data, (self, other_t), lambda g: backward(g, out))
        return out

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return Tensor(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        out_data = self.data ** exponent

        def backward(grad: np.ndarray, out: "Tensor") -> None:
            out._send(self, grad * exponent * self.data ** (exponent - 1))

        out = Tensor._make(out_data, (self,), lambda g: backward(g, out))
        return out

    # ------------------------------------------------------------------ #
    # Reductions
    # ------------------------------------------------------------------ #
    def sum(self, axis: Optional[Union[int, Tuple[int, ...]]] = None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray, out: "Tensor") -> None:
            g = grad
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis=axis)
            out._send(self, np.broadcast_to(g, self.shape).astype(self.data.dtype))

        out = Tensor._make(out_data, (self,), lambda g: backward(g, out))
        return out

    def mean(self, axis: Optional[Union[int, Tuple[int, ...]]] = None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        elif isinstance(axis, int):
            count = self.data.shape[axis]
        else:
            count = int(np.prod([self.data.shape[a] for a in axis]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis: Optional[int] = None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray, out: "Tensor") -> None:
            g = grad
            expanded = out_data
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis=axis)
                expanded = np.expand_dims(out_data, axis=axis)
            mask = (self.data == expanded).astype(self.data.dtype)
            # Split gradient evenly among ties to keep the operator linear.
            denom = mask.sum(axis=axis, keepdims=True) if axis is not None else mask.sum()
            out._send(self, mask * g / denom)

        out = Tensor._make(out_data, (self,), lambda g: backward(g, out))
        return out

    # ------------------------------------------------------------------ #
    # Shape manipulation
    # ------------------------------------------------------------------ #
    def reshape(self, *shape: int) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out_data = self.data.reshape(shape)
        original_shape = self.shape

        def backward(grad: np.ndarray, out: "Tensor") -> None:
            out._send(self, grad.reshape(original_shape))

        out = Tensor._make(out_data, (self,), lambda g: backward(g, out))
        return out

    def transpose(self, *axes: int) -> "Tensor":
        axes_tuple = axes if axes else None
        out_data = self.data.transpose(axes_tuple)

        def backward(grad: np.ndarray, out: "Tensor") -> None:
            if axes_tuple is None:
                out._send(self, grad.transpose())
            else:
                inverse = np.argsort(axes_tuple)
                out._send(self, grad.transpose(inverse))

        out = Tensor._make(out_data, (self,), lambda g: backward(g, out))
        return out

    def __getitem__(self, index) -> "Tensor":
        out_data = self.data[index]

        def backward(grad: np.ndarray, out: "Tensor") -> None:
            full = np.zeros_like(self.data)
            np.add.at(full, index, grad)
            out._send(self, full)

        out = Tensor._make(out_data, (self,), lambda g: backward(g, out))
        return out

    # ------------------------------------------------------------------ #
    # Linear algebra
    # ------------------------------------------------------------------ #
    def matmul(self, other: "Tensor") -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        out_data = self.data @ other_t.data

        def backward(grad: np.ndarray, out: "Tensor") -> None:
            a, b = self.data, other_t.data
            if a.ndim == 2 and b.ndim == 2:
                out._send(self, grad @ b.T)
                out._send(other_t, a.T @ grad)
            else:  # batched matmul fallback
                grad_a = grad @ np.swapaxes(b, -1, -2)
                grad_b = np.swapaxes(a, -1, -2) @ grad
                out._send(self, _unbroadcast(grad_a, a.shape))
                out._send(other_t, _unbroadcast(grad_b, b.shape))

        out = Tensor._make(out_data, (self, other_t), lambda g: backward(g, out))
        return out

    __matmul__ = matmul

    # ------------------------------------------------------------------ #
    # Nonlinearities (exposed here; functional wrappers live in functional.py)
    # ------------------------------------------------------------------ #
    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)

        def backward(grad: np.ndarray, out: "Tensor") -> None:
            out._send(self, grad * out_data)

        out = Tensor._make(out_data, (self,), lambda g: backward(g, out))
        return out

    def log(self) -> "Tensor":
        out_data = np.log(self.data)

        def backward(grad: np.ndarray, out: "Tensor") -> None:
            out._send(self, grad / self.data)

        out = Tensor._make(out_data, (self,), lambda g: backward(g, out))
        return out

    def sqrt(self) -> "Tensor":
        return self ** 0.5

    def relu(self) -> "Tensor":
        mask = self.data > 0
        out_data = self.data * mask

        def backward(grad: np.ndarray, out: "Tensor") -> None:
            out._send(self, grad * mask)

        out = Tensor._make(out_data, (self,), lambda g: backward(g, out))
        return out

    def sigmoid(self) -> "Tensor":
        out_data = 1.0 / (1.0 + np.exp(-self.data))

        def backward(grad: np.ndarray, out: "Tensor") -> None:
            out._send(self, grad * out_data * (1.0 - out_data))

        out = Tensor._make(out_data, (self,), lambda g: backward(g, out))
        return out

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward(grad: np.ndarray, out: "Tensor") -> None:
            out._send(self, grad * (1.0 - out_data ** 2))

        out = Tensor._make(out_data, (self,), lambda g: backward(g, out))
        return out

    def clip(self, low: float, high: float) -> "Tensor":
        out_data = np.clip(self.data, low, high)
        mask = (self.data >= low) & (self.data <= high)

        def backward(grad: np.ndarray, out: "Tensor") -> None:
            out._send(self, grad * mask)

        out = Tensor._make(out_data, (self,), lambda g: backward(g, out))
        return out


def concatenate(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis`` with gradient support."""
    datas = [t.data for t in tensors]
    out_data = np.concatenate(datas, axis=axis)
    sizes = [d.shape[axis] for d in datas]
    offsets = np.cumsum([0] + sizes)

    def backward(grad: np.ndarray, out: Tensor) -> None:
        for tensor, start, end in zip(tensors, offsets[:-1], offsets[1:]):
            slicer = [slice(None)] * grad.ndim
            slicer[axis] = slice(start, end)
            out._send(tensor, grad[tuple(slicer)])

    out = Tensor._make(out_data, tuple(tensors), lambda g: backward(g, out))
    return out


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new axis with gradient support."""
    out_data = np.stack([t.data for t in tensors], axis=axis)

    def backward(grad: np.ndarray, out: Tensor) -> None:
        moved = np.moveaxis(grad, axis, 0)
        for i, tensor in enumerate(tensors):
            out._send(tensor, moved[i])

    out = Tensor._make(out_data, tuple(tensors), lambda g: backward(g, out))
    return out
