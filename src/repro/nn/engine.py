"""Training-engine mode selection for the NumPy substrate.

The repository ships two bit-identical implementations of the training hot
path:

* ``"flat"`` (the default) — the flat-parameter engine: fused single-node
  autograd kernels (:func:`repro.nn.functional.linear`,
  :func:`repro.nn.functional.cross_entropy`), a bincount-based col2im scatter,
  and whole-vector optimizer steps over a contiguous
  :class:`~repro.nn.flat.FlatParams` arena.
* ``"reference"`` — the seed per-parameter path: operator-composed autograd
  graphs, ``np.add.at`` col2im, and per-parameter optimizer loops.

Both engines produce bitwise-identical weights and metrics (the equivalence
suite in ``tests/fl/test_train_engine.py`` pins this for every strategy and
execution backend); the flat engine simply spends far less time in the Python
interpreter.  The mode is *thread-local* so concurrent clients on the thread
executor can train under different engines without interfering — the same
reasoning that made gradient mode thread-local in :mod:`repro.nn.tensor`.

The engine state also owns the *compute dtype*: every tensor, parameter
arena, optimizer buffer and fused kernel allocates in the current thread's
dtype (``"float64"`` by default — the bitwise golden reference — or
``"float32"``, which halves memory bandwidth on the Table 4 workload).
Aggregation reductions always accumulate in float64 and cast once on commit
regardless of the compute dtype; see :mod:`repro.nn.serialization`.
"""

from __future__ import annotations

import threading

import numpy as np

from ..obs.profiling import PROFILER as KERNEL_PROFILER
from ..obs.profiling import profile_kernels

__all__ = ["COMPUTE_DTYPES", "KERNEL_PROFILER", "TRAIN_ENGINES",
           "current_dtype", "current_dtype_name", "current_engine",
           "dtype_mode", "engine_mode", "engine_scope", "profile_kernels",
           "validate_dtype", "validate_engine"]

TRAIN_ENGINES = ("flat", "reference")

# The supported compute precisions.  float64 is the golden path — bitwise
# identical to the seed implementation; float32 is the opt-in fast path,
# validated by tolerance (tests/nn/test_dtype.py, tests/fl/test_dtype_equivalence.py).
COMPUTE_DTYPES = ("float64", "float32")

_NP_DTYPES = {name: np.dtype(name) for name in COMPUTE_DTYPES}


class _EngineMode(threading.local):
    def __init__(self) -> None:
        self.mode = "flat"
        self.dtype_name = "float64"
        self.dtype = _NP_DTYPES["float64"]


_ENGINE = _EngineMode()


def validate_engine(name: str) -> str:
    """Check ``name`` is a known engine and return it."""
    if name not in TRAIN_ENGINES:
        raise ValueError(f"train engine must be one of {TRAIN_ENGINES}, got {name!r}")
    return name


def current_engine() -> str:
    """The engine the current thread's hot-path kernels dispatch on."""
    return _ENGINE.mode


def validate_dtype(name: str) -> str:
    """Check ``name`` is a supported compute dtype and return it."""
    if name not in COMPUTE_DTYPES:
        raise ValueError(f"dtype must be one of {COMPUTE_DTYPES}, got {name!r}")
    return name


def current_dtype() -> np.dtype:
    """The numpy dtype the current thread's engine allocates in."""
    return _ENGINE.dtype


def current_dtype_name() -> str:
    """The current thread's compute dtype as its config-level name."""
    return _ENGINE.dtype_name


class engine_mode:
    """Context manager selecting the hot-path engine for the current thread.

    ``with engine_mode("reference"): ...`` runs the enclosed training code on
    the seed per-parameter kernels; the previous mode is restored on exit.
    """

    def __init__(self, name: str) -> None:
        self._name = validate_engine(name)

    def __enter__(self) -> "engine_mode":
        self._prev = _ENGINE.mode
        _ENGINE.mode = self._name
        return self

    def __exit__(self, *exc) -> None:
        _ENGINE.mode = self._prev


class dtype_mode:
    """Context manager selecting the compute dtype for the current thread.

    ``with dtype_mode("float32"): ...`` makes every tensor / arena / kernel
    allocation inside the block single precision; the previous dtype is
    restored on exit.  Like :class:`engine_mode` it is thread-local, so
    concurrent executor threads can run different precisions independently.
    """

    def __init__(self, name: str) -> None:
        self._name = validate_dtype(name)

    def __enter__(self) -> "dtype_mode":
        self._prev = _ENGINE.dtype_name
        _ENGINE.dtype_name = self._name
        _ENGINE.dtype = _NP_DTYPES[self._name]
        return self

    def __exit__(self, *exc) -> None:
        _ENGINE.dtype_name = self._prev
        _ENGINE.dtype = _NP_DTYPES[self._prev]


class engine_scope:
    """Combined engine + dtype scope derived from an ``FLConfig``-like object.

    Reads ``config.train_engine`` and ``config.dtype`` (falling back to the
    defaults when absent, so plain namespaces and older configs keep
    working) and applies both thread-local modes for the enclosed block.
    Every site that builds a model, trains a client or aggregates results
    enters this scope so the whole pipeline agrees on one precision.
    """

    def __init__(self, config: object) -> None:
        self._engine = engine_mode(getattr(config, "train_engine", "flat"))
        self._dtype = dtype_mode(getattr(config, "dtype", "float64"))

    def __enter__(self) -> "engine_scope":
        self._engine.__enter__()
        self._dtype.__enter__()
        return self

    def __exit__(self, *exc) -> None:
        self._dtype.__exit__(*exc)
        self._engine.__exit__(*exc)
