"""Training-engine mode selection for the NumPy substrate.

The repository ships two bit-identical implementations of the training hot
path:

* ``"flat"`` (the default) — the flat-parameter engine: fused single-node
  autograd kernels (:func:`repro.nn.functional.linear`,
  :func:`repro.nn.functional.cross_entropy`), a bincount-based col2im scatter,
  and whole-vector optimizer steps over a contiguous
  :class:`~repro.nn.flat.FlatParams` arena.
* ``"reference"`` — the seed per-parameter path: operator-composed autograd
  graphs, ``np.add.at`` col2im, and per-parameter optimizer loops.

Both engines produce bitwise-identical weights and metrics (the equivalence
suite in ``tests/fl/test_train_engine.py`` pins this for every strategy and
execution backend); the flat engine simply spends far less time in the Python
interpreter.  The mode is *thread-local* so concurrent clients on the thread
executor can train under different engines without interfering — the same
reasoning that made gradient mode thread-local in :mod:`repro.nn.tensor`.
"""

from __future__ import annotations

import threading

from ..obs.profiling import PROFILER as KERNEL_PROFILER
from ..obs.profiling import profile_kernels

__all__ = ["KERNEL_PROFILER", "TRAIN_ENGINES", "current_engine", "engine_mode",
           "profile_kernels", "validate_engine"]

TRAIN_ENGINES = ("flat", "reference")


class _EngineMode(threading.local):
    def __init__(self) -> None:
        self.mode = "flat"


_ENGINE = _EngineMode()


def validate_engine(name: str) -> str:
    """Check ``name`` is a known engine and return it."""
    if name not in TRAIN_ENGINES:
        raise ValueError(f"train engine must be one of {TRAIN_ENGINES}, got {name!r}")
    return name


def current_engine() -> str:
    """The engine the current thread's hot-path kernels dispatch on."""
    return _ENGINE.mode


class engine_mode:
    """Context manager selecting the hot-path engine for the current thread.

    ``with engine_mode("reference"): ...`` runs the enclosed training code on
    the seed per-parameter kernels; the previous mode is restored on exit.
    """

    def __init__(self, name: str) -> None:
        self._name = validate_engine(name)

    def __enter__(self) -> "engine_mode":
        self._prev = _ENGINE.mode
        _ENGINE.mode = self._name
        return self

    def __exit__(self, *exc) -> None:
        _ENGINE.mode = self._prev
