"""ShuffleNetV2-x0.5 analogue (Section 6.3 / Table 5 of the paper)."""

from __future__ import annotations

import numpy as np

from .. import functional as F
from ..layers import Linear, Module
from ..tensor import Tensor
from .blocks import ConvBNAct, ShuffleUnit

__all__ = ["ShuffleNetV2"]


class ShuffleNetV2(Module):
    """Tiny ShuffleNetV2 analogue with channel-shuffle units.

    Keeps the ShuffleNet signature (pointwise/depthwise factorization with a
    channel shuffle after every unit) at channel counts suitable for 32x32
    inputs on a CPU NumPy substrate.
    """

    def __init__(
        self,
        num_classes: int = 12,
        width_mult: float = 1.0,
        in_channels: int = 3,
        seed: int = 0,
    ) -> None:
        super().__init__()
        rng = np.random.default_rng(seed)

        def c(channels: int) -> int:
            value = max(4, int(round(channels * width_mult)))
            # Keep channels even so they remain divisible by the shuffle groups.
            return value + (value % 2)

        self.num_classes = num_classes
        self.stem = ConvBNAct(in_channels, c(8), kernel_size=3, stride=2, rng=rng)
        self.stage1 = ShuffleUnit(c(8), c(16), stride=2, rng=rng)
        self.stage2 = ShuffleUnit(c(16), c(16), stride=1, rng=rng)
        self.stage3 = ShuffleUnit(c(16), c(32), stride=2, rng=rng)
        self.stage4 = ShuffleUnit(c(32), c(32), stride=1, rng=rng)
        self.classifier = Linear(c(32), num_classes, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        out = self.stem(x)
        out = self.stage1(out)
        out = self.stage2(out)
        out = self.stage3(out)
        out = self.stage4(out)
        out = F.global_avg_pool2d(out)
        return self.classifier(out)
