"""Model zoo for the HeteroSwitch reproduction.

The paper evaluates with MobileNetV3-small, ShuffleNetV2-x0.5 and
SqueezeNet1.1 (Section 6.3), a "simple CNN" for the synthetic CIFAR-100
experiment (Section 6.5), a "simple DNN" heart-rate regressor for the ECG
experiment (Section 6.6) and a multi-label classifier for FLAIR
(Section 6.4).  This package provides NumPy analogues of each, scaled to the
32x32 inputs and CPU-only substrate used in this reproduction: the
architectural signatures (depthwise-separable inverted residuals, channel
shuffle units, fire modules) are preserved while channel counts are reduced so
that the full benchmark suite finishes on a laptop-class CPU.
"""

from .mobilenet import MobileNetV3Small
from .shufflenet import ShuffleNetV2
from .squeezenet import SqueezeNet
from .simple import SimpleCNN, SimpleMLP, ECGRegressor, MultiLabelCNN, LinearClassifier
from .registry import MODEL_REGISTRY, create_model

__all__ = [
    "MobileNetV3Small",
    "ShuffleNetV2",
    "SqueezeNet",
    "SimpleCNN",
    "SimpleMLP",
    "ECGRegressor",
    "MultiLabelCNN",
    "LinearClassifier",
    "MODEL_REGISTRY",
    "create_model",
]
