"""MobileNetV3-small analogue used as the primary model in the evaluation.

The paper uses MobileNetV3-small (Howard et al., 2019).  This analogue keeps
the defining architectural features — a hard-swish stem, a stack of inverted
residual blocks with depthwise convolutions and squeeze-excitation, and a
global-average-pooled classifier head — while scaling channel counts to the
32x32 synthetic-device images used throughout this reproduction so the FL
simulations run in CPU time.
"""

from __future__ import annotations

import numpy as np

from .. import functional as F
from ..layers import Linear, Module
from ..tensor import Tensor
from .blocks import ConvBNAct, InvertedResidual

__all__ = ["MobileNetV3Small"]


class MobileNetV3Small(Module):
    """Tiny MobileNetV3-small analogue for NCHW 3-channel inputs.

    Parameters
    ----------
    num_classes:
        Number of output classes.
    width_mult:
        Multiplier applied to all channel counts (>= 0.25).
    in_channels:
        Number of input channels (3 for RGB).
    seed:
        Seed for weight initialization, so that every FL client/server starts
        from identical weights when given the same seed.
    """

    def __init__(
        self,
        num_classes: int = 12,
        width_mult: float = 1.0,
        in_channels: int = 3,
        seed: int = 0,
    ) -> None:
        super().__init__()
        if width_mult < 0.25:
            raise ValueError("width_mult must be >= 0.25")
        rng = np.random.default_rng(seed)

        def c(channels: int) -> int:
            return max(4, int(round(channels * width_mult)))

        self.num_classes = num_classes
        self.stem = ConvBNAct(in_channels, c(8), kernel_size=3, stride=2,
                              activation="hardswish", rng=rng)
        self.block1 = InvertedResidual(c(8), c(16), c(8), kernel_size=3, stride=1,
                                       use_se=True, activation="relu", rng=rng)
        self.block2 = InvertedResidual(c(8), c(24), c(12), kernel_size=3, stride=2,
                                       use_se=False, activation="relu", rng=rng)
        self.block3 = InvertedResidual(c(12), c(36), c(12), kernel_size=3, stride=1,
                                       use_se=True, activation="hardswish", rng=rng)
        self.block4 = InvertedResidual(c(12), c(48), c(16), kernel_size=3, stride=2,
                                       use_se=True, activation="hardswish", rng=rng)
        self.head_conv = ConvBNAct(c(16), c(32), kernel_size=1,
                                   activation="hardswish", rng=rng)
        self.classifier = Linear(c(32), num_classes, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        out = self.stem(x)
        out = self.block1(out)
        out = self.block2(out)
        out = self.block3(out)
        out = self.block4(out)
        out = self.head_conv(out)
        out = F.global_avg_pool2d(out)
        return self.classifier(out)
