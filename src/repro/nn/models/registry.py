"""Model registry mapping the names used in the paper's tables to constructors."""

from __future__ import annotations

from typing import Callable, Dict

from ..layers import Module
from .mobilenet import MobileNetV3Small
from .shufflenet import ShuffleNetV2
from .simple import ECGRegressor, LinearClassifier, MultiLabelCNN, SimpleCNN, SimpleMLP
from .squeezenet import SqueezeNet

__all__ = ["MODEL_REGISTRY", "create_model"]

MODEL_REGISTRY: Dict[str, Callable[..., Module]] = {
    "mobilenetv3_small": MobileNetV3Small,
    "shufflenet_v2_x0_5": ShuffleNetV2,
    "squeezenet1_1": SqueezeNet,
    "simple_cnn": SimpleCNN,
    "simple_mlp": SimpleMLP,
    "linear": LinearClassifier,
    "ecg_regressor": ECGRegressor,
    "multilabel_cnn": MultiLabelCNN,
}


def create_model(name: str, **kwargs) -> Module:
    """Instantiate a model by registry name.

    Raises
    ------
    KeyError
        If ``name`` is not registered; the error lists the available names.
    """
    try:
        factory = MODEL_REGISTRY[name]
    except KeyError as exc:
        raise KeyError(
            f"unknown model '{name}'; available: {sorted(MODEL_REGISTRY)}"
        ) from exc
    return factory(**kwargs)
