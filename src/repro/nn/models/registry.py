"""Model registry mapping the names used in the paper's tables to constructors."""

from __future__ import annotations

from ...registry import Registry
from ..layers import Module
from .mobilenet import MobileNetV3Small
from .shufflenet import ShuffleNetV2
from .simple import ECGRegressor, LinearClassifier, MultiLabelCNN, SimpleCNN, SimpleMLP
from .squeezenet import SqueezeNet

__all__ = ["MODEL_REGISTRY", "create_model"]

MODEL_REGISTRY: Registry[Module] = Registry("model", {
    "mobilenetv3_small": MobileNetV3Small,
    "shufflenet_v2_x0_5": ShuffleNetV2,
    "squeezenet1_1": SqueezeNet,
    "simple_cnn": SimpleCNN,
    "simple_mlp": SimpleMLP,
    "linear": LinearClassifier,
    "ecg_regressor": ECGRegressor,
    "multilabel_cnn": MultiLabelCNN,
})


def create_model(name: str, **kwargs) -> Module:
    """Instantiate a model by registry name.

    Raises
    ------
    KeyError
        If ``name`` is not registered; the error lists the available names.
    """
    return MODEL_REGISTRY.create(name, **kwargs)
