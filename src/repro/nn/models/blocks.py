"""Reusable building blocks shared by the mobile-friendly model analogues."""

from __future__ import annotations

from typing import Optional

import numpy as np

from .. import functional as F
from ..layers import (
    BatchNorm2d,
    Conv2d,
    DepthwiseConv2d,
    Linear,
    Module,
)
from ..tensor import Tensor

__all__ = ["ConvBNAct", "SqueezeExcite", "InvertedResidual", "FireModule", "ShuffleUnit"]


class ConvBNAct(Module):
    """Convolution + batch norm + activation, the standard mobile-CNN stem block."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int = 3,
        stride: int = 1,
        activation: str = "relu",
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        padding = kernel_size // 2
        self.conv = Conv2d(in_channels, out_channels, kernel_size, stride=stride,
                           padding=padding, bias=False, rng=rng)
        self.bn = BatchNorm2d(out_channels)
        self.activation = activation

    def forward(self, x: Tensor) -> Tensor:
        out = self.bn(self.conv(x))
        if self.activation == "relu":
            return F.relu(out)
        if self.activation == "hardswish":
            return F.hardswish(out)
        if self.activation == "none":
            return out
        raise ValueError(f"unknown activation '{self.activation}'")


class SqueezeExcite(Module):
    """Squeeze-and-excitation channel attention (MobileNetV3 style)."""

    def __init__(self, channels: int, reduction: int = 4,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        hidden = max(1, channels // reduction)
        self.fc1 = Linear(channels, hidden, rng=rng)
        self.fc2 = Linear(hidden, channels, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        n, c, _, _ = x.shape
        squeezed = F.global_avg_pool2d(x)  # (N, C)
        scale = F.relu(self.fc1(squeezed))
        scale = F.hardsigmoid(self.fc2(scale))
        return x * scale.reshape(n, c, 1, 1)


class InvertedResidual(Module):
    """MobileNetV3 inverted residual: expand -> depthwise -> (SE) -> project."""

    def __init__(
        self,
        in_channels: int,
        expand_channels: int,
        out_channels: int,
        kernel_size: int = 3,
        stride: int = 1,
        use_se: bool = True,
        activation: str = "hardswish",
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        self.use_residual = stride == 1 and in_channels == out_channels
        self.expand = ConvBNAct(in_channels, expand_channels, kernel_size=1,
                                activation=activation, rng=rng)
        padding = kernel_size // 2
        self.depthwise = DepthwiseConv2d(expand_channels, kernel_size, stride=stride,
                                         padding=padding, bias=False, rng=rng)
        self.depthwise_bn = BatchNorm2d(expand_channels)
        self.se = SqueezeExcite(expand_channels, rng=rng) if use_se else None
        self.project = ConvBNAct(expand_channels, out_channels, kernel_size=1,
                                 activation="none", rng=rng)
        self.activation = activation

    def forward(self, x: Tensor) -> Tensor:
        out = self.expand(x)
        out = self.depthwise_bn(self.depthwise(out))
        out = F.hardswish(out) if self.activation == "hardswish" else F.relu(out)
        if self.se is not None:
            out = self.se(out)
        out = self.project(out)
        if self.use_residual:
            out = out + x
        return out


class FireModule(Module):
    """SqueezeNet fire module: squeeze 1x1 then expand with parallel 1x1 and 3x3."""

    def __init__(
        self,
        in_channels: int,
        squeeze_channels: int,
        expand_channels: int,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        self.squeeze = Conv2d(in_channels, squeeze_channels, 1, rng=rng)
        self.expand1 = Conv2d(squeeze_channels, expand_channels, 1, rng=rng)
        self.expand3 = Conv2d(squeeze_channels, expand_channels, 3, padding=1, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        from ..tensor import concatenate

        squeezed = F.relu(self.squeeze(x))
        branch1 = F.relu(self.expand1(squeezed))
        branch3 = F.relu(self.expand3(squeezed))
        return concatenate([branch1, branch3], axis=1)


class ShuffleUnit(Module):
    """Simplified ShuffleNetV2 unit: pointwise -> depthwise -> pointwise + shuffle.

    The full ShuffleNetV2 splits channels into two branches; at the tiny channel
    counts used here we keep a single branch with a residual connection when the
    spatial size is preserved, followed by a channel shuffle, which retains the
    unit's characteristic structure (grouped pointwise + depthwise + shuffle).
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        stride: int = 1,
        groups: int = 2,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        self.stride = stride
        self.groups = groups
        self.use_residual = stride == 1 and in_channels == out_channels
        self.pw1 = ConvBNAct(in_channels, out_channels, kernel_size=1, rng=rng)
        self.dw = DepthwiseConv2d(out_channels, 3, stride=stride, padding=1, bias=False, rng=rng)
        self.dw_bn = BatchNorm2d(out_channels)
        self.pw2 = ConvBNAct(out_channels, out_channels, kernel_size=1, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        out = self.pw1(x)
        out = self.dw_bn(self.dw(out))
        out = self.pw2(out)
        if self.use_residual:
            out = out + x
        return F.channel_shuffle(out, self.groups)
