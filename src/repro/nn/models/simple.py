"""Small auxiliary models used by individual experiments.

* :class:`SimpleCNN` — the "simple CNN" used for the synthetic CIFAR-100
  experiment (Section 6.5, Fig. 8).
* :class:`ECGRegressor` — the "simple DNN" heart-rate regressor for the ECG
  experiment (Section 6.6).
* :class:`MultiLabelCNN` — multi-label classifier head used for the FLAIR-like
  experiment (Section 6.4, Table 6).
* :class:`SimpleMLP` / :class:`LinearClassifier` — tiny models used in unit
  tests and for fast smoke-scale FL runs.
"""

from __future__ import annotations

import numpy as np

from .. import functional as F
from ..layers import BatchNorm1d, Conv2d, Linear, MaxPool2d, Module
from ..tensor import Tensor

__all__ = ["SimpleCNN", "SimpleMLP", "ECGRegressor", "MultiLabelCNN", "LinearClassifier"]


class SimpleCNN(Module):
    """Two-conv-block CNN for small RGB images (the Fig. 8 synthetic-CIFAR model)."""

    def __init__(self, num_classes: int = 20, in_channels: int = 3,
                 image_size: int = 16, seed: int = 0) -> None:
        super().__init__()
        rng = np.random.default_rng(seed)
        self.conv1 = Conv2d(in_channels, 8, 3, padding=1, rng=rng)
        self.pool1 = MaxPool2d(2)
        self.conv2 = Conv2d(8, 16, 3, padding=1, rng=rng)
        self.pool2 = MaxPool2d(2)
        reduced = image_size // 4
        self.fc1 = Linear(16 * reduced * reduced, 32, rng=rng)
        self.fc2 = Linear(32, num_classes, rng=rng)
        self.num_classes = num_classes

    def forward(self, x: Tensor) -> Tensor:
        out = self.pool1(F.relu(self.conv1(x)))
        out = self.pool2(F.relu(self.conv2(out)))
        out = F.flatten(out)
        out = F.relu(self.fc1(out))
        return self.fc2(out)


class SimpleMLP(Module):
    """Flatten + two-layer MLP classifier for quick tests and smoke runs."""

    def __init__(self, input_dim: int, num_classes: int, hidden: int = 32, seed: int = 0) -> None:
        super().__init__()
        rng = np.random.default_rng(seed)
        self.fc1 = Linear(input_dim, hidden, rng=rng)
        self.fc2 = Linear(hidden, num_classes, rng=rng)
        self.num_classes = num_classes
        self.input_dim = input_dim

    def forward(self, x: Tensor) -> Tensor:
        if x.ndim > 2:
            x = F.flatten(x)
        return self.fc2(F.relu(self.fc1(x)))


class LinearClassifier(Module):
    """Single linear layer — the fastest possible model for property tests."""

    def __init__(self, input_dim: int, num_classes: int, seed: int = 0) -> None:
        super().__init__()
        rng = np.random.default_rng(seed)
        self.fc = Linear(input_dim, num_classes, rng=rng)
        self.num_classes = num_classes
        self.input_dim = input_dim

    def forward(self, x: Tensor) -> Tensor:
        if x.ndim > 2:
            x = F.flatten(x)
        return self.fc(x)


class ECGRegressor(Module):
    """MLP that regresses a heart rate (beats per minute) from an ECG window."""

    def __init__(self, window_size: int = 128, hidden: int = 64, seed: int = 0) -> None:
        super().__init__()
        rng = np.random.default_rng(seed)
        self.window_size = window_size
        self.fc1 = Linear(window_size, hidden, rng=rng)
        self.bn1 = BatchNorm1d(hidden)
        self.fc2 = Linear(hidden, hidden // 2, rng=rng)
        self.fc3 = Linear(hidden // 2, 1, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        out = F.relu(self.bn1(self.fc1(x)))
        out = F.relu(self.fc2(out))
        return self.fc3(out)


class MultiLabelCNN(Module):
    """Small CNN with a sigmoid multi-label head for the FLAIR-like experiment."""

    def __init__(self, num_labels: int = 8, in_channels: int = 3,
                 image_size: int = 16, seed: int = 0) -> None:
        super().__init__()
        rng = np.random.default_rng(seed)
        self.conv1 = Conv2d(in_channels, 8, 3, padding=1, rng=rng)
        self.pool1 = MaxPool2d(2)
        self.conv2 = Conv2d(8, 16, 3, padding=1, rng=rng)
        self.pool2 = MaxPool2d(2)
        reduced = image_size // 4
        self.fc = Linear(16 * reduced * reduced, num_labels, rng=rng)
        self.num_labels = num_labels

    def forward(self, x: Tensor) -> Tensor:
        """Return raw logits; apply a sigmoid externally to obtain probabilities."""
        out = self.pool1(F.relu(self.conv1(x)))
        out = self.pool2(F.relu(self.conv2(out)))
        out = F.flatten(out)
        return self.fc(out)
