"""SqueezeNet1.1 analogue (Section 6.3 / Table 5 of the paper)."""

from __future__ import annotations

import numpy as np

from .. import functional as F
from ..layers import Conv2d, MaxPool2d, Module
from ..tensor import Tensor
from .blocks import FireModule

__all__ = ["SqueezeNet"]


class SqueezeNet(Module):
    """Tiny SqueezeNet analogue built from fire modules.

    The original SqueezeNet has no batch normalization and uses a convolutional
    classifier head followed by global average pooling; both traits are kept
    here.  The paper notes SqueezeNet fails to learn under FedAvg on the device
    dataset (Table 5) — the absence of normalization makes it sensitive to the
    input distribution shifts induced by device heterogeneity, and this
    analogue reproduces that fragility.
    """

    def __init__(
        self,
        num_classes: int = 12,
        width_mult: float = 1.0,
        in_channels: int = 3,
        seed: int = 0,
    ) -> None:
        super().__init__()
        rng = np.random.default_rng(seed)

        def c(channels: int) -> int:
            return max(2, int(round(channels * width_mult)))

        self.num_classes = num_classes
        self.stem = Conv2d(in_channels, c(16), 3, stride=2, padding=1, rng=rng)
        self.pool1 = MaxPool2d(2)
        self.fire1 = FireModule(c(16), c(4), c(8), rng=rng)
        self.fire2 = FireModule(2 * c(8), c(4), c(8), rng=rng)
        self.pool2 = MaxPool2d(2)
        self.fire3 = FireModule(2 * c(8), c(8), c(16), rng=rng)
        self.classifier_conv = Conv2d(2 * c(16), num_classes, 1, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        out = F.relu(self.stem(x))
        out = self.pool1(out)
        out = self.fire1(out)
        out = self.fire2(out)
        out = self.pool2(out)
        out = self.fire3(out)
        out = self.classifier_conv(out)
        return F.global_avg_pool2d(out)
