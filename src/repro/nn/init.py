"""Weight initialization schemes for :mod:`repro.nn` layers."""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = ["kaiming_uniform", "kaiming_normal", "xavier_uniform", "zeros", "ones"]


def _fan_in_out(shape: Tuple[int, ...]) -> Tuple[int, int]:
    """Compute fan-in / fan-out for linear and convolutional weight shapes."""
    if len(shape) == 2:  # (out_features, in_features)
        fan_out, fan_in = shape
    elif len(shape) == 4:  # (out_channels, in_channels, kh, kw)
        receptive = shape[2] * shape[3]
        fan_in = shape[1] * receptive
        fan_out = shape[0] * receptive
    else:
        raise ValueError(f"unsupported weight shape {shape}")
    return fan_in, fan_out


def kaiming_uniform(shape: Tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """He/Kaiming uniform initialization (gain for ReLU)."""
    fan_in, _ = _fan_in_out(shape)
    bound = np.sqrt(6.0 / fan_in)
    return rng.uniform(-bound, bound, size=shape)


def kaiming_normal(shape: Tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """He/Kaiming normal initialization (gain for ReLU)."""
    fan_in, _ = _fan_in_out(shape)
    std = np.sqrt(2.0 / fan_in)
    return rng.normal(0.0, std, size=shape)


def xavier_uniform(shape: Tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """Glorot/Xavier uniform initialization."""
    fan_in, fan_out = _fan_in_out(shape)
    bound = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape)


def zeros(shape: Tuple[int, ...]) -> np.ndarray:
    return np.zeros(shape)


def ones(shape: Tuple[int, ...]) -> np.ndarray:
    return np.ones(shape)
