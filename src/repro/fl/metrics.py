"""Evaluation metrics used throughout the paper's tables and figures.

* classification accuracy and model-quality degradation (Tables 2, Fig. 2-5),
* per-device accuracy variance, average and worst-case accuracy (Table 4, 5),
* averaged precision for multi-label FLAIR-like data (Table 6),
* heart-rate deviation for the ECG experiment (Section 6.6).
"""

from __future__ import annotations

from typing import Dict, Mapping

import numpy as np

__all__ = [
    "accuracy",
    "model_quality_degradation",
    "average_precision",
    "mean_average_precision",
    "accuracy_variance",
    "worst_case",
    "mean_value",
    "heart_rate_deviation",
    "summarize_per_device",
]


def accuracy(logits: np.ndarray, labels: np.ndarray) -> float:
    """Top-1 accuracy of class logits against integer labels."""
    logits = np.asarray(logits)
    labels = np.asarray(labels)
    if logits.ndim != 2:
        raise ValueError(f"logits must be 2-D (N, C), got {logits.shape}")
    if len(logits) != len(labels):
        raise ValueError("logits and labels must have the same length")
    if len(labels) == 0:
        raise ValueError("cannot compute accuracy of an empty batch")
    predictions = logits.argmax(axis=1)
    return float(np.mean(predictions == labels))


def model_quality_degradation(reference_accuracy: float, accuracy_value: float) -> float:
    """Relative accuracy drop vs a reference (the paper's "model quality degradation").

    Defined as ``(reference - value) / reference`` and reported as a fraction;
    0 means no degradation, negative values mean improvement over the reference.
    """
    if reference_accuracy <= 0:
        return 0.0
    return float((reference_accuracy - accuracy_value) / reference_accuracy)


def average_precision(scores: np.ndarray, targets: np.ndarray) -> float:
    """Average precision (area under the precision-recall curve) for one label."""
    scores = np.asarray(scores, dtype=np.float64)
    targets = np.asarray(targets, dtype=np.float64)
    if scores.shape != targets.shape:
        raise ValueError("scores and targets must have the same shape")
    positives = targets.sum()
    if positives == 0:
        return 0.0
    order = np.argsort(-scores, kind="stable")
    sorted_targets = targets[order]
    cum_positives = np.cumsum(sorted_targets)
    precision = cum_positives / np.arange(1, len(sorted_targets) + 1)
    # AP = mean of precision at each positive hit.
    return float((precision * sorted_targets).sum() / positives)


def mean_average_precision(scores: np.ndarray, targets: np.ndarray) -> float:
    """Macro-averaged AP over labels (the FLAIR "averaged precision" metric)."""
    scores = np.asarray(scores, dtype=np.float64)
    targets = np.asarray(targets, dtype=np.float64)
    if scores.ndim != 2 or scores.shape != targets.shape:
        raise ValueError("scores and targets must both be (N, L) arrays")
    per_label = [
        average_precision(scores[:, label], targets[:, label])
        for label in range(scores.shape[1])
        if targets[:, label].sum() > 0
    ]
    if not per_label:
        return 0.0
    return float(np.mean(per_label))


def accuracy_variance(per_device: Mapping[str, float]) -> float:
    """Variance of a per-device metric, expressed in percentage-point^2 units.

    The paper reports variance of accuracy percentages (e.g. 8.63 for FedAvg in
    Table 4), so values given as fractions in [0, 1] are scaled to percent
    before the variance is taken.
    """
    values = np.asarray(list(per_device.values()), dtype=np.float64)
    if values.size == 0:
        raise ValueError("per_device must not be empty")
    if values.max() <= 1.0:
        values = values * 100.0
    return float(np.var(values))


def worst_case(per_device: Mapping[str, float]) -> float:
    """Worst-case (minimum) value of a per-device metric."""
    values = list(per_device.values())
    if not values:
        raise ValueError("per_device must not be empty")
    return float(min(values))


def mean_value(per_device: Mapping[str, float]) -> float:
    """Mean of a per-device metric."""
    values = list(per_device.values())
    if not values:
        raise ValueError("per_device must not be empty")
    return float(np.mean(values))


def heart_rate_deviation(predictions: np.ndarray, targets: np.ndarray) -> float:
    """Mean relative deviation of heart-rate predictions (Section 6.6 metric).

    Both arrays are in the normalized [0, 1] label space; the deviation is the
    mean absolute error relative to the target magnitude.
    """
    predictions = np.asarray(predictions, dtype=np.float64).reshape(-1)
    targets = np.asarray(targets, dtype=np.float64).reshape(-1)
    if predictions.shape != targets.shape:
        raise ValueError("predictions and targets must have the same shape")
    if len(targets) == 0:
        raise ValueError("cannot compute deviation of an empty batch")
    denom = np.maximum(np.abs(targets), 1e-6)
    return float(np.mean(np.abs(predictions - targets) / denom))


def summarize_per_device(per_device: Mapping[str, float]) -> Dict[str, float]:
    """Convenience bundle of the Table 4 fairness/DG metrics for one method."""
    return {
        "worst_case": worst_case(per_device),
        "variance": accuracy_variance(per_device),
        "average": mean_value(per_device),
    }
