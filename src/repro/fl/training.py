"""Local training and evaluation primitives shared by all FL strategies.

``local_train`` implements the generic ClientUpdate loop (Section 2.1): given
the broadcast global weights and a client's dataset, run ``E`` epochs of
mini-batch SGD and report the updated weights together with the running
training loss.  Strategy-specific behaviour (proximal terms, control variates,
HeteroSwitch's switched transformations and SWAD averaging) hooks into this
loop through small extension points rather than re-implementing it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

import numpy as np

from ..nn import functional as F
from ..nn.flat import FlatParams
from ..nn.layers import Module
from ..nn.optim import SGD, Optimizer
from ..nn.serialization import get_weights, set_weights
from ..nn.tensor import Tensor, no_grad
from ..data.dataset import ArrayDataset, DataLoader
from .config import FLConfig
from .metrics import accuracy, heart_rate_deviation, mean_average_precision

__all__ = ["ClientResult", "broadcast_weights", "compute_loss", "evaluate_loss",
           "evaluate_metric", "local_train"]

StateDict = Dict[str, np.ndarray]
BatchHook = Callable[[Module, int, int], None]


@dataclass
class ClientResult:
    """What a client returns to the server after a round of local training.

    ``client_id`` identifies the reporting client (stamped by the execution
    backend); aggregation uses it to reduce results in canonical order no
    matter which order the parallel workers completed in.
    """

    state: StateDict
    num_samples: int
    train_loss: float
    init_loss: float
    client_id: int = -1
    metadata: Dict[str, object] = field(default_factory=dict)


def broadcast_weights(model: Module, global_state: StateDict,
                      config: FLConfig) -> Optional[FlatParams]:
    """Load the broadcast global weights under the configured training engine.

    Flat engine: the model's parameters live in one contiguous
    :class:`~repro.nn.flat.FlatParams` arena (built and cached on first use),
    so the load writes straight into it and collecting the trained weights is
    a single vector copy; the cached arena is returned.  Reference engine:
    the seed per-key ``set_weights`` path; returns ``None``.  The dict
    ``StateDict`` stays the wire/serialization format either way.
    """
    if config.train_engine == "flat":
        arena = FlatParams.from_module(model)
        arena.load_state_dict(global_state)
        return arena
    set_weights(model, global_state)
    return None


def compute_loss(model: Module, features: np.ndarray, labels: np.ndarray, task: str) -> Tensor:
    """Forward pass + task-appropriate loss on one batch."""
    outputs = model(Tensor(features))
    if task == "classification":
        return F.cross_entropy(outputs, labels.astype(int))
    if task == "multilabel":
        return F.binary_cross_entropy_with_logits(outputs, labels)
    if task == "regression":
        return F.mse_loss(outputs, labels)
    raise ValueError(f"unknown task '{task}'")


def evaluate_loss(model: Module, dataset: ArrayDataset, task: str, batch_size: int = 64) -> float:
    """Average loss of ``model`` over ``dataset`` without building gradients."""
    model.eval()
    total, count = 0.0, 0
    loader = DataLoader(dataset, batch_size=batch_size, shuffle=False)
    with no_grad():
        for features, labels in loader:
            loss = compute_loss(model, features, labels, task)
            total += float(loss.data) * len(features)
            count += len(features)
    model.train()
    return total / max(count, 1)


def evaluate_metric(model: Module, dataset: ArrayDataset, task: str, batch_size: int = 64) -> float:
    """Task-appropriate quality metric (higher is better).

    * classification — top-1 accuracy,
    * multilabel     — macro averaged precision,
    * regression     — ``1 - mean relative deviation`` so that, like accuracy,
      larger values indicate a better model.
    """
    model.eval()
    outputs_list, labels_list = [], []
    loader = DataLoader(dataset, batch_size=batch_size, shuffle=False)
    with no_grad():
        for features, labels in loader:
            outputs = model(Tensor(features))
            outputs_list.append(outputs.data)
            labels_list.append(labels)
    model.train()
    outputs_all = np.concatenate(outputs_list, axis=0)
    labels_all = np.concatenate(labels_list, axis=0)
    if task == "classification":
        return accuracy(outputs_all, labels_all)
    if task == "multilabel":
        scores = 1.0 / (1.0 + np.exp(-outputs_all))
        return mean_average_precision(scores, labels_all)
    if task == "regression":
        return 1.0 - heart_rate_deviation(outputs_all, labels_all)
    raise ValueError(f"unknown task '{task}'")


def local_train(
    model: Module,
    dataset: ArrayDataset,
    config: FLConfig,
    global_state: StateDict,
    optimizer: Optional[Optimizer] = None,
    transform: Optional[Callable[[np.ndarray, np.ndarray], np.ndarray]] = None,
    batch_hook: Optional[BatchHook] = None,
    rng: Optional[np.random.Generator] = None,
    seed: int = 0,
    init_loss: Optional[float] = None,
) -> ClientResult:
    """Run the generic ClientUpdate loop.

    Parameters
    ----------
    model:
        The (shared) model instance; its weights are overwritten with
        ``global_state`` before training, so the caller can reuse one model
        object across clients.
    dataset:
        The client's local dataset (features already in model layout).
    config:
        FL hyperparameters (epochs ``E``, batch size ``B``, learning rate).
    global_state:
        Weights broadcast by the server this round.
    optimizer:
        Optional pre-built optimizer (FedProx passes a :class:`ProximalSGD`);
        defaults to plain SGD with the config's learning rate.
    transform:
        Optional data transformation applied to each batch's features before
        the forward pass; receives ``(features, labels)`` and returns features.
        HeteroSwitch's random WB / gamma transforms plug in here.
    batch_hook:
        Called after every optimizer step with ``(model, batch_index,
        epoch_index)``; SCAFFOLD's control-variate correction and SWAD's
        per-batch weight averaging plug in here.
    rng:
        Random generator used by the transform.
    init_loss:
        Pre-computed loss of ``global_state`` on the client's data.  Callers
        that already measured it (HeteroSwitch evaluates it to decide its
        switches *before* training) pass it in so the identical evaluation is
        not repeated; left ``None``, it is computed here.

    Returns
    -------
    ClientResult
        Updated weights, sample count, running average train loss over all
        batches (the paper's ``L_train``), and the pre-training loss on the
        client's data (``L_init``).
    """
    arena = broadcast_weights(model, global_state, config)
    if init_loss is None:
        init_loss = evaluate_loss(model, dataset, config.task, batch_size=max(config.batch_size, 32))

    if optimizer is None:
        optimizer = SGD(model.parameters(), lr=config.learning_rate,
                        momentum=config.momentum, weight_decay=config.weight_decay,
                        fused=arena is not None)
    rng = rng or np.random.default_rng(seed)

    loader = DataLoader(dataset, batch_size=config.batch_size, shuffle=True, seed=seed)
    model.train()
    train_loss = 0.0
    batch_index = 0
    for epoch in range(config.local_epochs):
        for features, labels in loader:
            if transform is not None:
                features = transform(features, labels)
            loss = compute_loss(model, features, labels, config.task)
            # Running average of the training loss (Algorithm 1, line 14).
            train_loss = (train_loss * batch_index + float(loss.data)) / (batch_index + 1)
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
            if batch_hook is not None:
                batch_hook(model, batch_index, epoch)
            batch_index += 1

    return ClientResult(
        state=arena.state_dict() if arena is not None else get_weights(model),
        num_samples=len(dataset),
        train_loss=train_loss,
        init_loss=init_loss,
    )
