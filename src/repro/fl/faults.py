"""Deterministic fault injection and fault-tolerance policies for FL rounds.

Production FL fleets lose clients constantly — crashes, stragglers, poisoned
updates, dead workers — and the sync loop historically treated any of them as
fatal.  This module supplies the two halves of surviving them *replayably*:

* :class:`FaultPlan` — a seeded chaos schedule.  Whether a given
  ``(round, client, attempt)`` job crashes, hangs, returns a NaN/Inf-poisoned
  or wrong-shape update, or kills its worker process mid-task is a pure
  function of ``plan.seed`` drawn from named RNG streams (the
  ``event_rng`` discipline of :mod:`repro.fl.async_sim.events`; the fault
  stream tags share that module's collision-checked namespace).  Two runs
  with the same plan produce bit-identical failure schedules on every
  execution backend.
* :class:`FaultPolicy` — how the server responds: per-client wall-clock
  timeouts, bounded retries with seeded backoff, update sanitization at the
  aggregation boundary, and quorum-based graceful degradation (aggregate over
  the survivors when at least ``min_clients`` succeed, else raise a
  structured :class:`~repro.fl.errors.RoundFailedError`).

Determinism contract: a retried client re-derives the *same* RNG stream as a
first-try client (``derive_client_seed`` does not see the attempt number), so
retry-then-succeed is bit-identical to never-failed; and a quorum-degraded
round reduces the survivors in selection order, so its aggregate is
bitwise-equal to a round that selected only the survivors.

This module sits below :mod:`repro.fl.config` (which embeds the two
dataclasses) and imports nothing from the execution/simulation layers — the
orchestrator :func:`run_tolerant_round` receives the executor as an argument.
"""

from __future__ import annotations

import dataclasses
import math
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..nn.serialization import StateLayout
from .errors import ClientFailure, ExecutorError, RoundFailedError

if TYPE_CHECKING:  # pragma: no cover - import cycle guards
    from ..data.partition import ClientSpec
    from .execution import ClientExecutor, ModelFactory
    from .strategies.base import FLContext, Strategy
    from .training import ClientResult

__all__ = [
    "FAULT_KINDS",
    "FAULT_STREAMS",
    "FaultPlan",
    "FaultPolicy",
    "RoundFaultReport",
    "fault_rng",
    "sanitize_result",
    "run_tolerant_round",
]

# The injectable fault kinds, in the order the cumulative injection draw
# consumes their rates (frozen: reordering would reshuffle every existing
# chaos schedule).
FAULT_KINDS = ("crash", "hang", "nan", "shape", "kill")

# Named RNG stream tags for the fault layer.  They live in the same
# collision-checked namespace as the async simulator's event streams (tags
# 1-5 in repro.fl.async_sim.events, which merges this dict in at import and
# refuses overlaps), so fault draws can never alias latency/availability/
# dispatch draws at the same seed.
FAULT_STREAMS = {
    "inject": 16,   # which fault (if any) hits a (round, client, attempt) job
    "backoff": 17,  # seeded retry-backoff jitter per (round, wave)
}


def fault_rng(seed: int, stream: str, *indices: int) -> np.random.Generator:
    """A fresh generator on a named fault stream (see ``event_rng``).

    Seeded only by ``(stream tag, plan seed, indices)`` — never by wall
    clock, backend, or worker identity — so every fault decision is
    replayable bit-for-bit.
    """
    return np.random.default_rng([FAULT_STREAMS[stream], seed, *indices])


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, deterministic chaos schedule for client jobs.

    Each rate is the marginal probability that the corresponding fault hits
    one ``(round, client, attempt)`` job; the rates must sum to at most 1
    because one uniform draw per job decides among them cumulatively.

    ``first_attempt_only=True`` restricts injection to attempt 0, which makes
    every fault recoverable by a single retry — the usual setting for
    retry-determinism tests; ``False`` re-draws on every attempt, so retried
    jobs can fail again (with fresh, still-deterministic draws).
    """

    seed: int = 0
    crash_rate: float = 0.0
    hang_rate: float = 0.0
    nan_rate: float = 0.0
    shape_rate: float = 0.0
    kill_rate: float = 0.0
    hang_seconds: float = 0.05
    first_attempt_only: bool = False

    def __post_init__(self) -> None:
        if isinstance(self.seed, bool) or not isinstance(self.seed, int):
            raise ValueError(f"seed must be an int, got {self.seed!r}")
        total = 0.0
        for kind in FAULT_KINDS:
            rate = getattr(self, f"{kind}_rate")
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{kind}_rate must be in [0, 1], got {rate}")
            total += rate
        if total > 1.0 + 1e-12:
            raise ValueError(
                f"fault rates must sum to at most 1 (one draw decides among "
                f"them), got {total}")
        if self.hang_seconds < 0:
            raise ValueError("hang_seconds must be non-negative")
        if not isinstance(self.first_attempt_only, bool):
            raise ValueError("first_attempt_only must be a bool")

    @property
    def active(self) -> bool:
        """Whether any fault can ever fire (all-zero plans are free)."""
        return any(getattr(self, f"{kind}_rate") > 0.0 for kind in FAULT_KINDS)

    def decide(self, round_index: int, client_id: int,
               attempt: int = 0) -> Optional[str]:
        """The fault (if any) injected into one job — a pure function.

        Depends only on ``(plan.seed, round_index, client_id, attempt)``: the
        same job draws the same fault on every backend, in every run, no
        matter what ran before it.
        """
        if not self.active:
            return None
        if self.first_attempt_only and attempt > 0:
            return None
        draw = float(fault_rng(self.seed, "inject", round_index, client_id,
                               attempt).random())
        edge = 0.0
        for kind in FAULT_KINDS:
            edge += getattr(self, f"{kind}_rate")
            if draw < edge:
                return kind
        return None

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe rendering (inverse of constructing from a dict)."""
        return dataclasses.asdict(self)


@dataclass(frozen=True)
class FaultPolicy:
    """How the server responds to client/worker failures in a round.

    Parameters
    ----------
    max_retries:
        Failed client jobs are retried up to this many times (in later
        *waves*, so one flaky client never blocks its round-mates).  A
        retried client is bit-identical to a first-try client: its RNG
        stream derives from ``(seed, round, client)`` only.
    backoff_seconds:
        Upper bound of the seeded jitter slept between retry waves (actual
        delay is uniform in ``[backoff/2, backoff]``, drawn from the
        ``"backoff"`` fault stream).  Wall-clock only — never observable in
        results.
    client_timeout:
        Per-client wall-clock deadline in seconds (``None`` disables).
        Injected hangs are judged *deterministically* — the configured
        ``hang_seconds`` is compared against this deadline, and the sleep is
        capped at the deadline — so chaos runs stay replayable; a genuine
        straggler is judged post-hoc by measured wall time, which is
        inherently machine-dependent (determinism holds provided no healthy
        client actually exceeds the deadline).
    min_clients:
        The quorum: a round degrades gracefully — aggregating over the
        survivors, bitwise-equal to a survivors-only round — while at least
        this many clients succeed, and raises
        :class:`~repro.fl.errors.RoundFailedError` otherwise.
    worker_timeout:
        How long the process backend waits without *any* job completing
        before declaring the in-flight jobs lost to dead workers (the shm
        backend detects dead workers directly and ignores this).
    sanitize:
        Reject non-finite or out-of-layout client updates at the aggregation
        boundary (counted as per-client failures, retried under the policy)
        instead of letting them poison the server model.
    """

    max_retries: int = 1
    backoff_seconds: float = 0.0
    client_timeout: Optional[float] = None
    min_clients: int = 1
    worker_timeout: float = 30.0
    sanitize: bool = True

    def __post_init__(self) -> None:
        if (isinstance(self.max_retries, bool)
                or not isinstance(self.max_retries, int)
                or self.max_retries < 0):
            raise ValueError(
                f"max_retries must be a non-negative integer, got "
                f"{self.max_retries!r}")
        if self.backoff_seconds < 0:
            raise ValueError("backoff_seconds must be non-negative")
        if self.client_timeout is not None and not self.client_timeout > 0:
            raise ValueError("client_timeout must be positive or None")
        if (isinstance(self.min_clients, bool)
                or not isinstance(self.min_clients, int)
                or self.min_clients < 1):
            raise ValueError(
                f"min_clients must be a positive integer, got "
                f"{self.min_clients!r}")
        if not self.worker_timeout > 0:
            raise ValueError("worker_timeout must be positive")
        if not isinstance(self.sanitize, bool):
            raise ValueError("sanitize must be a bool")

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe rendering (inverse of constructing from a dict)."""
        return dataclasses.asdict(self)


def sanitize_result(result: "ClientResult", layout: StateLayout) -> Optional[str]:
    """Validate one client update against the global layout; reason or ``None``.

    The aggregation boundary's defense: a single NaN/Inf element or a
    wrong-shape tensor in one client's update would silently poison the
    aggregated global model (NaN absorbs every weighted sum it touches).
    Returns a human-readable rejection reason, or ``None`` for a clean
    update.
    """
    state = result.state
    if state is None:
        return None  # already folded into a streaming accumulator
    if list(state) != layout.keys:
        missing = set(layout.keys) - set(state)
        extra = set(state) - set(layout.keys)
        return (f"state keys diverge from the global layout "
                f"(missing={sorted(missing)}, unexpected={sorted(extra)})")
    for key, shape in zip(layout.keys, layout.shapes):
        value = np.asarray(state[key])
        if value.shape != tuple(shape):
            return (f"shape mismatch for '{key}': got {value.shape}, "
                    f"layout records {tuple(shape)}")
        # A float64 sum propagates every NaN/Inf without materialising the
        # bool mask np.isfinite(value) would — one reduction per tensor.
        if not math.isfinite(value.sum(dtype=np.float64)):
            return f"non-finite values in '{key}'"
    if not (math.isfinite(result.train_loss) and math.isfinite(result.init_loss)):
        return (f"non-finite reported losses (train={result.train_loss}, "
                f"init={result.init_loss})")
    return None


@dataclass
class RoundFaultReport:
    """What a fault-tolerant round survived, for records and telemetry."""

    num_failures: int = 0                 # failed attempts (all causes)
    num_retries: int = 0                  # attempts beyond each job's first
    dropped_clients: List[int] = dataclasses.field(default_factory=list)
    failure_kinds: Dict[str, int] = dataclasses.field(default_factory=dict)
    # Last failure message per failed client id (diagnostics, not persisted).
    messages: Dict[int, str] = dataclasses.field(default_factory=dict)

    @property
    def any_faults(self) -> bool:
        return self.num_failures > 0


def run_tolerant_round(
    executor: "ClientExecutor",
    strategy: "Strategy",
    model_fn: "ModelFactory",
    selected: Sequence["ClientSpec"],
    global_state: Dict[str, np.ndarray],
    context: "FLContext",
    policy: FaultPolicy,
) -> Tuple[List["ClientSpec"], List["ClientResult"], RoundFaultReport]:
    """Run one round under a :class:`FaultPolicy`; return the survivors.

    Jobs run in *waves*: the full selection first, then one retry wave per
    remaining attempt containing only the failed jobs.  Each wave fans out
    through ``executor.run_attempts``, which captures per-job failures
    instead of failing the whole round.  Returns ``(survivor_specs,
    survivor_results, report)`` with both lists in selection order — the
    canonical reduction order — so aggregating them is bitwise-equal to a
    round that selected only the survivors.

    Raises :class:`~repro.fl.errors.RoundFailedError` when fewer than
    ``policy.min_clients`` survive every retry.
    """
    from .training import ClientResult  # runtime import: cycle-free leaf

    selected = list(selected)
    layout = StateLayout(global_state) if policy.sanitize else None
    plan = getattr(context.config, "faults", None)
    backoff_seed = plan.seed if plan is not None else context.config.seed
    results_by_pos: Dict[int, "ClientResult"] = {}
    report = RoundFaultReport()
    wave: List[Tuple[int, int]] = [(pos, 0) for pos in range(len(selected))]
    wave_index = 0
    while wave:
        jobs = [(selected[pos], attempt) for pos, attempt in wave]
        outcomes = executor.run_attempts(strategy, model_fn, jobs,
                                         global_state, context, policy)
        retry: List[Tuple[int, int]] = []
        for (pos, attempt), outcome in zip(wave, outcomes):
            spec = selected[pos]
            if isinstance(outcome, ClientResult):
                reason = (sanitize_result(outcome, layout)
                          if layout is not None else None)
                if reason is None:
                    results_by_pos[pos] = outcome
                    continue
                outcome = ClientFailure(
                    f"client {spec.client_id} update rejected on attempt "
                    f"{attempt} of round {context.round_index}: {reason}",
                    client_id=spec.client_id,
                    round_index=context.round_index,
                    attempt=attempt, kind="sanitize")
            if not isinstance(outcome, ExecutorError):  # pragma: no cover
                raise TypeError(
                    f"run_attempts must return ClientResult or ExecutorError "
                    f"outcomes, got {type(outcome).__name__}")
            report.num_failures += 1
            report.failure_kinds[outcome.kind] = (
                report.failure_kinds.get(outcome.kind, 0) + 1)
            report.messages[spec.client_id] = str(outcome)
            if attempt < policy.max_retries:
                retry.append((pos, attempt + 1))
                report.num_retries += 1
        wave = retry
        wave_index += 1
        if wave and policy.backoff_seconds > 0:
            jitter = float(fault_rng(backoff_seed, "backoff",
                                     context.round_index, wave_index).random())
            time.sleep(policy.backoff_seconds * (0.5 + 0.5 * jitter))
    report.dropped_clients = [selected[pos].client_id
                              for pos in range(len(selected))
                              if pos not in results_by_pos]
    if len(results_by_pos) < policy.min_clients:
        raise RoundFailedError(
            f"round {context.round_index} lost its quorum: only "
            f"{len(results_by_pos)} of {len(selected)} clients succeeded "
            f"(min_clients={policy.min_clients}); last failures: "
            + "; ".join(f"client {cid}: {msg}"
                        for cid, msg in sorted(report.messages.items())),
            round_index=context.round_index, num_ok=len(results_by_pos),
            num_selected=len(selected), min_clients=policy.min_clients,
            failures=report.messages)
    survivor_pos = sorted(results_by_pos)
    survivors = [selected[pos] for pos in survivor_pos]
    results = [results_by_pos[pos] for pos in survivor_pos]
    return survivors, results, report
