"""Federated-learning framework: clients, server loop, strategies and metrics."""

from .callbacks import (
    CALLBACK_REGISTRY,
    Callback,
    CallbackList,
    EarlyStopping,
    FaultTelemetry,
    PeriodicEvaluation,
    RoundLogger,
    SwitchTelemetry,
    create_callback,
)
from .config import FLConfig
from .errors import (
    ClientFailure,
    ExecutorError,
    RoundFailedError,
    RoundTimeout,
    WorkerDied,
)
from .execution import (
    EXECUTOR_REGISTRY,
    ClientExecutor,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    client_rng,
    create_executor,
    derive_client_seed,
)
from .faults import (
    FaultPlan,
    FaultPolicy,
    RoundFaultReport,
    run_tolerant_round,
    sanitize_result,
)
from .metrics import (
    accuracy,
    accuracy_variance,
    average_precision,
    heart_rate_deviation,
    mean_average_precision,
    mean_value,
    model_quality_degradation,
    summarize_per_device,
    worst_case,
)
from .sampling import (
    SAMPLER_REGISTRY,
    ClientSampler,
    RoundRobinSampler,
    UniformSampler,
    create_sampler,
)
from .simulation import FederatedSimulation, FLHistory, RoundRecord
from .strategies import (
    STRATEGY_REGISTRY,
    FedAvg,
    FedProx,
    FLContext,
    QFedAvg,
    Scaffold,
    Strategy,
    create_strategy,
)
from .training import ClientResult, compute_loss, evaluate_loss, evaluate_metric, local_train

_CORE_STRATEGY_NAMES = ("HeteroSwitch", "ISPTransformOnly", "ISPTransformWithSWAD")


def __getattr__(name: str):
    """Lazily expose the HeteroSwitch strategies (defined in :mod:`repro.core`).

    The laziness breaks the ``repro.fl`` <-> ``repro.core`` import cycle: the
    strategy classes subclass :class:`repro.fl.strategies.base.Strategy`, so
    they cannot be imported eagerly while this package initializes.
    """
    if name in _CORE_STRATEGY_NAMES:
        from ..core import heteroswitch as _hs

        return getattr(_hs, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "FLConfig",
    "FederatedSimulation",
    "FLHistory",
    "RoundRecord",
    "ClientExecutor",
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "EXECUTOR_REGISTRY",
    "create_executor",
    "derive_client_seed",
    "client_rng",
    "ExecutorError",
    "ClientFailure",
    "WorkerDied",
    "RoundTimeout",
    "RoundFailedError",
    "FaultPlan",
    "FaultPolicy",
    "RoundFaultReport",
    "run_tolerant_round",
    "sanitize_result",
    "Callback",
    "CallbackList",
    "SwitchTelemetry",
    "FaultTelemetry",
    "PeriodicEvaluation",
    "EarlyStopping",
    "RoundLogger",
    "CALLBACK_REGISTRY",
    "create_callback",
    "ClientSampler",
    "UniformSampler",
    "RoundRobinSampler",
    "SAMPLER_REGISTRY",
    "create_sampler",
    "Strategy",
    "FLContext",
    "FedAvg",
    "FedProx",
    "QFedAvg",
    "Scaffold",
    "HeteroSwitch",
    "ISPTransformOnly",
    "ISPTransformWithSWAD",
    "STRATEGY_REGISTRY",
    "create_strategy",
    "ClientResult",
    "local_train",
    "compute_loss",
    "evaluate_loss",
    "evaluate_metric",
    "accuracy",
    "accuracy_variance",
    "average_precision",
    "mean_average_precision",
    "model_quality_degradation",
    "heart_rate_deviation",
    "worst_case",
    "mean_value",
    "summarize_per_device",
]
