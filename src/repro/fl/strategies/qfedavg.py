"""q-FedAvg / q-FFL (Li et al., 2019): fairness-weighted aggregation.

q-FedAvg reweights client updates by their loss raised to the power ``q`` so
poorly-performing clients influence the global model more, shrinking the
accuracy variance across clients.  The server update follows the q-FFL paper:

    Delta_k = L * (w_global - w_k)              (rescaled local update)
    h_k     = q * F_k^(q-1) * ||Delta_k||^2 + L * F_k^q
    w_new   = w_global - sum_k F_k^q * Delta_k / sum_k h_k

where ``F_k`` is client ``k``'s loss and ``L = 1 / lr`` estimates the local
Lipschitz constant.  The paper's appendix selects ``q = 1e-6``.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

import numpy as np

from ...data.partition import ClientSpec
from ...nn.engine import current_engine
from ...nn.serialization import (
    StateLayout,
    add_states,
    scale_state,
    state_norm,
    subtract_states,
    zeros_like_state,
)
from ..training import ClientResult
from .base import FLContext, StateDict, Strategy, canonical_results, consume_stream

__all__ = ["QFedAvg"]


class QFedAvg(Strategy):
    """q-FedAvg baseline strategy (client training identical to FedAvg)."""

    name = "qfedavg"

    def __init__(self, q: float = 1e-6) -> None:
        if q < 0:
            raise ValueError(f"q must be non-negative, got {q}")
        self.q = q

    def aggregate(
        self,
        global_state: StateDict,
        results: List[ClientResult],
        context: FLContext,
    ) -> StateDict:
        if not results:
            raise ValueError("cannot aggregate an empty list of client results")
        # Canonical order makes the floating-point reduction permutation-invariant.
        new_state, _ = self._reduce(
            global_state, canonical_results(results, context), context)
        return new_state

    def aggregate_stream(
        self,
        global_state: StateDict,
        selected: Sequence[ClientSpec],
        stream: Iterable[ClientResult],
        context: FLContext,
    ) -> Tuple[StateDict, List[ClientResult]]:
        """Streaming q-FedAvg: one accumulator pass, O(1) in clients/round.

        The q-FFL normalizer ``h_sum`` is applied once after the loop, so
        unlike FedAvg's weight normalization nothing about the reduction
        needs to be known up front — the materialized and streaming paths
        share :meth:`_reduce` verbatim.
        """
        if not selected:
            raise ValueError("cannot aggregate an empty list of client results")
        return self._reduce(
            global_state, consume_stream(selected, stream), context,
            drop_states=True)

    def _reduce(
        self,
        global_state: StateDict,
        ordered: Iterable[ClientResult],
        context: FLContext,
        drop_states: bool = False,
    ) -> Tuple[StateDict, List[ClientResult]]:
        """The q-FFL server update over results in canonical order.

        ``ordered`` may be a lazy stream: each result's state is folded into
        the accumulator as it arrives (and released when ``drop_states``).
        """
        lipschitz = 1.0 / context.config.learning_rate
        if current_engine() == "reference":
            return self._reduce_reference(global_state, ordered, lipschitz, drop_states)

        # Flat reduction over (n_clients, P): every step below is the exact
        # whole-vector form of the dict-based reference (kept as the pinned
        # baseline in tests/fl/test_train_engine.py).  Elementwise ops
        # (subtract, scale, accumulate) are bitwise-identical flattened; the
        # delta norm replays state_norm's per-key partial sums segment by
        # segment in layout (key-insertion) order, including its
        # sqrt-then-square round trip, so h_k matches bit-for-bit.
        layout = StateLayout(global_state)
        global_vec = layout.pack(global_state)
        # The running sum always accumulates in float64 (cast back to the
        # compute dtype once on commit below); the pack buffer keeps the
        # states' own dtype so promotion happens inside the multiply-add.
        weighted_delta_sum = np.zeros(layout.size, dtype=np.float64)
        delta_buf = np.empty(layout.size, dtype=layout.dtype)
        h_sum = 0.0
        consumed: List[ClientResult] = []
        for result in ordered:
            layout.pack(result.state, out=delta_buf)
            if drop_states:
                result.state = None
            consumed.append(result)
            delta = (global_vec - delta_buf) * lipschitz
            # Use the client's *initial* loss F_k (loss of the global model on the
            # client's data), as in the q-FFL formulation.
            loss = max(result.init_loss, 1e-10)
            loss_pow_q = loss ** self.q
            norm = float(np.sqrt(sum(
                float(np.sum(np.asarray(segment, dtype=np.float64) ** 2))
                for _, segment in layout.segments(delta))))
            delta_norm_sq = norm ** 2
            h_k = self.q * (loss ** (self.q - 1.0)) * delta_norm_sq + lipschitz * loss_pow_q
            weighted_delta_sum += delta * loss_pow_q
            h_sum += h_k
        if h_sum <= 0:
            raise RuntimeError("q-FedAvg aggregation produced a non-positive normalizer")
        update = weighted_delta_sum * (1.0 / h_sum)
        new_vec = global_vec - update
        if new_vec.dtype != layout.dtype:
            new_vec = new_vec.astype(layout.dtype)
        return layout.unpack(new_vec), consumed

    def _reduce_reference(
        self,
        global_state: StateDict,
        ordered: Iterable[ClientResult],
        lipschitz: float,
        drop_states: bool,
    ) -> Tuple[StateDict, List[ClientResult]]:
        """The seed dict-based aggregation, kept as the pinned golden path."""
        weighted_delta_sum = zeros_like_state(global_state)
        h_sum = 0.0
        consumed: List[ClientResult] = []
        for result in ordered:
            delta = scale_state(subtract_states(global_state, result.state), lipschitz)
            if drop_states:
                result.state = None
            consumed.append(result)
            loss = max(result.init_loss, 1e-10)
            loss_pow_q = loss ** self.q
            delta_norm_sq = state_norm(delta) ** 2
            h_k = self.q * (loss ** (self.q - 1.0)) * delta_norm_sq + lipschitz * loss_pow_q
            weighted_delta_sum = add_states(weighted_delta_sum, scale_state(delta, loss_pow_q))
            h_sum += h_k
        if h_sum <= 0:
            raise RuntimeError("q-FedAvg aggregation produced a non-positive normalizer")
        update = scale_state(weighted_delta_sum, 1.0 / h_sum)
        return subtract_states(global_state, update), consumed

    def __repr__(self) -> str:  # pragma: no cover
        return f"QFedAvg(q={self.q})"
