"""FedProx (Li et al., 2020): proximal regularization of local updates.

FedProx adds ``(mu / 2) * ||w - w_global||^2`` to each client's objective so
local updates cannot drift far from the broadcast global weights under data
heterogeneity.  The paper's appendix selects ``mu = 0.1`` from a grid search.
"""

from __future__ import annotations

from ...data.partition import ClientSpec
from ...nn.layers import Module
from ...nn.optim import ProximalSGD
from ..training import ClientResult, local_train
from .base import FLContext, StateDict, Strategy

__all__ = ["FedProx"]


class FedProx(Strategy):
    """FedProx baseline strategy."""

    name = "fedprox"

    def __init__(self, mu: float = 0.1) -> None:
        if mu < 0:
            raise ValueError(f"mu must be non-negative, got {mu}")
        self.mu = mu

    def client_update(
        self,
        model: Module,
        spec: ClientSpec,
        global_state: StateDict,
        context: FLContext,
    ) -> ClientResult:
        config = context.config
        seed = context.client_seed(spec.client_id)
        # The proximal reference must follow the parameter iteration order of
        # model.parameters(); build the optimizer after weights are loaded by
        # local_train, so instead we construct it here and set the reference
        # from the broadcast global state keyed by parameter names.
        from ..training import broadcast_weights

        arena = broadcast_weights(model, global_state, config)
        optimizer = ProximalSGD(model.parameters(), lr=config.learning_rate, mu=self.mu,
                                momentum=config.momentum, weight_decay=config.weight_decay,
                                fused=arena is not None)
        named = dict(model.named_parameters())
        optimizer.set_reference([named[name].data for name in named])
        result = local_train(model, spec.dataset, config, global_state,
                             optimizer=optimizer, seed=seed)
        result.metadata["device"] = spec.device
        return result

    def __repr__(self) -> str:  # pragma: no cover
        return f"FedProx(mu={self.mu})"
