"""SCAFFOLD (Karimireddy et al., 2020): variance reduction with control variates.

SCAFFOLD corrects client drift under non-IID data by maintaining a server
control variate ``c`` and per-client control variates ``c_i``.  During local
training every SGD step is corrected by ``(c - c_i)``; after training, the
client control variate is refreshed using option II of the paper:

    c_i_new = c_i - c + (w_global - w_local) / (K * lr)

where ``K`` is the number of local steps taken.  The server averages the
client deltas for both weights and control variates.

Parallel-execution audit: ``client_update`` only *reads* the control variates
from the shared context (missing entries are treated as zeros without being
written), and ships the refreshed client variate back in
``ClientResult.metadata`` — the server applies it in :meth:`Scaffold.
on_round_end`.  This keeps the client step pure so it can run on any
:mod:`repro.fl.execution` backend, including forked worker processes whose
context mutations would otherwise be silently lost.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

import numpy as np

from ...data.partition import ClientSpec
from ...nn.layers import Module
from ...nn.serialization import (
    StreamingAverager,
    add_states,
    average_states,
    scale_state,
    subtract_states,
    zeros_like_state,
)
from ..training import ClientResult, local_train
from .base import FLContext, StateDict, Strategy, canonical_results, consume_stream

__all__ = ["Scaffold"]


def _parameter_state(model: Module) -> StateDict:
    """State dict restricted to trainable parameters (control variates skip buffers)."""
    return {name: param.data.copy() for name, param in model.named_parameters()}


class Scaffold(Strategy):
    """SCAFFOLD baseline strategy."""

    name = "scaffold"

    def client_update(
        self,
        model: Module,
        spec: ClientSpec,
        global_state: StateDict,
        context: FLContext,
    ) -> ClientResult:
        config = context.config
        seed = context.client_seed(spec.client_id)

        from ..training import broadcast_weights

        arena = broadcast_weights(model, global_state, config)
        param_template = _parameter_state(model)

        # Read-only context access: absent control variates mean zeros, but the
        # shared storage is never written from the (possibly concurrent) client
        # step — the server materialises state in aggregate / on_round_end.
        server_c: StateDict = context.server_storage.get("scaffold_c")
        if server_c is None:
            server_c = zeros_like_state(param_template)
        storage = context.client_storage.get(spec.client_id, {})
        client_c: StateDict = storage.get("c_i")
        if client_c is None:
            client_c = zeros_like_state(param_template)

        correction = subtract_states(server_c, client_c)  # (c - c_i)
        lr = config.learning_rate
        named_params = dict(model.named_parameters())
        steps = {"count": 0}

        if arena is not None:
            # Flat engine: the per-batch drift correction is one whole-vector
            # axpy on the arena instead of a per-parameter loop — elementwise
            # identical to the reference hook below.
            correction_flat = np.concatenate(
                [correction[name].reshape(-1) for name in named_params]
            )

            def batch_hook(hook_model: Module, batch_index: int, epoch_index: int) -> None:
                del hook_model, batch_index, epoch_index
                arena.vector -= lr * correction_flat
                steps["count"] += 1

        else:
            def batch_hook(hook_model: Module, batch_index: int, epoch_index: int) -> None:
                del hook_model, batch_index, epoch_index
                # Apply the SCAFFOLD drift correction after the plain SGD step:
                # w <- w - lr * (c - c_i).
                for name, param in named_params.items():
                    param.data -= lr * correction[name]
                steps["count"] += 1

        result = local_train(model, spec.dataset, config, global_state,
                             batch_hook=batch_hook, seed=seed)
        result.metadata["device"] = spec.device

        # Refresh the client control variate (option II).  Both the delta (for
        # the server variate update) and the exact new value (applied to this
        # client's storage in on_round_end) travel back via metadata.
        num_steps = max(steps["count"], 1)
        local_params = {name: param.data.copy() for name, param in named_params.items()}
        global_params = {name: global_state[name] for name in param_template}
        drift = scale_state(subtract_states(global_params, local_params), 1.0 / (num_steps * lr))
        new_client_c = add_states(subtract_states(client_c, server_c), drift)
        result.metadata["c_delta"] = subtract_states(new_client_c, client_c)
        result.metadata["new_c_i"] = new_client_c
        return result

    def aggregate(
        self,
        global_state: StateDict,
        results: List[ClientResult],
        context: FLContext,
    ) -> StateDict:
        new_state = super().aggregate(global_state, results, context)
        # Update the server control variate with the average client delta, scaled
        # by the participation fraction (|S| / N).  Canonical order keeps the
        # float reduction permutation-invariant.
        c_deltas = [result.metadata["c_delta"]
                    for result in canonical_results(results, context)]
        mean_delta = average_states(c_deltas)
        server_c: StateDict = context.server_storage.get("scaffold_c")
        if server_c is None:
            server_c = zeros_like_state(mean_delta)
        fraction = len(results) / context.config.num_clients
        context.server_storage["scaffold_c"] = add_states(server_c, scale_state(mean_delta, fraction))
        return new_state

    def aggregate_stream(
        self,
        global_state: StateDict,
        selected: Sequence[ClientSpec],
        stream: Iterable[ClientResult],
        context: FLContext,
    ) -> Tuple[StateDict, List[ClientResult]]:
        """Streaming SCAFFOLD: fold weights *and* c-deltas in a single pass.

        The materialized path runs two full passes (the sample-weighted
        weight average, then the uniform c-delta average).  Interleaving them
        per client leaves each accumulator's own multiply-add sequence
        untouched, so the result is bitwise-identical with two accumulators
        plus two pack buffers — O(1) in clients/round.

        Each client's refreshed control variate is committed to the context
        as its result streams in (instead of in ``on_round_end``); no reader
        observes the storage between those two points — a round never selects
        the same client twice, so a still-training client cannot see another
        client's commit — and the metadata copies are released immediately,
        keeping the per-round peak at the persistent-storage floor the
        algorithm itself requires.
        """
        if not selected:
            raise ValueError("cannot aggregate an empty list of client results")
        state_avg = StreamingAverager(
            len(selected), [len(spec.dataset) for spec in selected])
        delta_avg = StreamingAverager(len(selected))
        consumed: List[ClientResult] = []
        for result in consume_stream(selected, stream):
            state_avg.add(result.state)
            result.state = None
            delta_avg.add(result.metadata.pop("c_delta"))
            context.storage_for(result.client_id)["c_i"] = \
                result.metadata.pop("new_c_i")
            consumed.append(result)
        new_state = state_avg.finalize()
        mean_delta = delta_avg.finalize()
        server_c: StateDict = context.server_storage.get("scaffold_c")
        if server_c is None:
            server_c = zeros_like_state(mean_delta)
        fraction = len(selected) / context.config.num_clients
        context.server_storage["scaffold_c"] = add_states(
            server_c, scale_state(mean_delta, fraction))
        return new_state, consumed

    def on_round_end(self, context: FLContext, results: List[ClientResult]) -> None:
        """Apply each client's refreshed control variate, then update the EMA.

        Streaming rounds commit the variates (and drop them from metadata) in
        :meth:`aggregate_stream`, so the pop below finds nothing and only the
        EMA update runs.
        """
        for result in results:
            new_c_i = result.metadata.pop("new_c_i", None)
            if new_c_i is not None:
                context.storage_for(result.client_id)["c_i"] = new_c_i
        super().on_round_end(context, results)
