"""Strategy interface shared by FedAvg, the prior-work baselines and HeteroSwitch.

A *strategy* owns the two points where FL algorithms differ:

* ``client_update`` — how a selected client trains on its local data given the
  broadcast global weights, and
* ``aggregate`` — how the server combines the returned client results into the
  next global model.

Per-round shared state (the EMA loss tracker, per-client persistent storage
such as SCAFFOLD's control variates, the round index) travels in an
:class:`FLContext` owned by the simulation loop.

Execution contract (see :mod:`repro.fl.execution`): ``client_update`` may run
concurrently with other clients of the same round — on threads or in forked
worker processes — so it must treat the context as **read-only** and derive
any randomness from its private stream (:meth:`FLContext.client_rng`), never
from shared mutable generators.  Per-client state updates travel back in
``ClientResult.metadata`` and are applied server-side in ``aggregate`` /
``on_round_end``.  Aggregation reduces client results in *canonical order*
(:func:`canonical_results`) so the global update is invariant to any
permutation of the returned results.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ...core.ema import EMALossTracker
from ...data.partition import ClientSpec
from ...nn.layers import Module
from ...nn.serialization import StreamingAverager, average_states
from ..config import FLConfig
from ..execution import derive_client_seed
from ..training import ClientResult, local_train

__all__ = ["FLContext", "Strategy", "FedAvg", "canonical_results",
           "consume_stream"]

StateDict = Dict[str, np.ndarray]


@dataclass
class FLContext:
    """Mutable state shared across rounds of one FL simulation.

    Strategies may mutate it only on the server side of a round (``aggregate``
    / ``on_round_end``); during ``client_update`` it is read-only shared state
    that worker threads/processes observe as a start-of-round snapshot.
    """

    config: FLConfig
    ema: EMALossTracker
    round_index: int = 0
    round_selection: List[int] = field(default_factory=list)
    client_storage: Dict[int, dict] = field(default_factory=dict)
    server_storage: dict = field(default_factory=dict)

    def storage_for(self, client_id: int) -> dict:
        """Per-client persistent dictionary (created lazily; server-side only)."""
        return self.client_storage.setdefault(client_id, {})

    def client_seed(self, client_id: int) -> int:
        """Seed of the client's private RNG stream for the current round."""
        return derive_client_seed(self.config.seed, self.round_index, client_id)

    def client_rng(self, client_id: int) -> np.random.Generator:
        """A fresh generator on the client's ``(seed, round, client)`` stream.

        This replaces the old shared ``FLContext.rng``: a shared generator's
        draws depend on how many clients consumed it before — a latent
        nondeterminism hazard once clients run concurrently.  Derived streams
        make every client's randomness a pure function of its identity.
        """
        return np.random.default_rng(self.client_seed(client_id))


def canonical_results(results: Sequence[ClientResult],
                      context: Optional[FLContext] = None) -> List[ClientResult]:
    """Client results in canonical reduction order.

    Aggregations reduce floating-point sums, which are not associative: the
    reduction order must therefore be a function of *which* clients reported,
    not of the order their results happened to arrive in.  The canonical order
    is the round's selection order (``context.round_selection``), falling back
    to ascending ``client_id`` when no selection is recorded; results without
    distinct client ids (e.g. hand-built fixtures) are returned unchanged.
    """
    ordered = list(results)
    ids = [result.client_id for result in ordered]
    if len(set(ids)) != len(ids):
        return ordered
    if context is not None and context.round_selection:
        position = {cid: i for i, cid in enumerate(context.round_selection)}
        if all(cid in position for cid in ids):
            return sorted(ordered, key=lambda result: position[result.client_id])
    if all(cid >= 0 for cid in ids):
        return sorted(ordered, key=lambda result: result.client_id)
    return ordered


def consume_stream(selected: Sequence[ClientSpec],
                   stream: Iterable[ClientResult]) -> Iterator[ClientResult]:
    """Validate a streaming round's results against the selection order.

    Streaming aggregation replaces :func:`canonical_results`' sort with a
    protocol guarantee: the executor yields results in selection order (which
    *is* the canonical reduction order).  This wrapper enforces that loudly —
    an out-of-order or short stream raises instead of silently producing a
    differently-associated float reduction — and checks the invariant the
    up-front weight computation relies on (``num_samples == len(spec.dataset)``
    for every strategy built on ``local_train``).
    """
    count = 0
    for spec, result in zip(selected, stream):
        if result.client_id != spec.client_id:
            raise RuntimeError(
                f"streaming round out of order: expected client "
                f"{spec.client_id} at position {count}, got {result.client_id}"
            )
        if result.num_samples != len(spec.dataset):
            raise RuntimeError(
                f"client {result.client_id} reported num_samples="
                f"{result.num_samples} but its dataset holds "
                f"{len(spec.dataset)} samples; streaming aggregation derives "
                f"weights from the selection up front and requires the two "
                f"to agree"
            )
        count += 1
        yield result
    if count != len(selected):
        raise RuntimeError(
            f"streaming round ended early: {count} of {len(selected)} "
            f"client results received"
        )


class Strategy:
    """Base class: FedAvg behaviour with overridable client/server steps."""

    name = "strategy"

    def client_update(
        self,
        model: Module,
        spec: ClientSpec,
        global_state: StateDict,
        context: FLContext,
    ) -> ClientResult:
        """Default ClientUpdate: plain local SGD (FedAvg's client behaviour)."""
        config = context.config
        seed = context.client_seed(spec.client_id)
        result = local_train(model, spec.dataset, config, global_state, seed=seed)
        result.metadata["device"] = spec.device
        return result

    def aggregate(
        self,
        global_state: StateDict,
        results: List[ClientResult],
        context: FLContext,
    ) -> StateDict:
        """Default aggregation: sample-count weighted averaging (FedAvg).

        Results are reduced in canonical order, so the aggregate is invariant
        to any permutation of the collected client updates.
        """
        if not results:
            raise ValueError("cannot aggregate an empty list of client results")
        ordered = canonical_results(results, context)
        weights = [result.num_samples for result in ordered]
        return average_states([result.state for result in ordered], weights)

    def aggregate_stream(
        self,
        global_state: StateDict,
        selected: Sequence[ClientSpec],
        stream: Iterable[ClientResult],
        context: FLContext,
    ) -> Tuple[StateDict, List[ClientResult]]:
        """Aggregate a round whose results arrive one at a time.

        ``stream`` yields :class:`ClientResult`\\ s in selection order (the
        canonical reduction order); each result's weights are folded into the
        accumulator and released before the next arrives, so the server's
        peak memory is independent of clients/round.  Returns the new global
        state plus the consumed results with their ``state`` dropped (losses,
        sample counts and metadata survive for ``on_round_end`` and the
        round record) — bitwise-identical to materializing the full list and
        calling :meth:`aggregate`.

        The base implementation streams the FedAvg reduction.  Its
        sample-count weights are computed *up front* from the selection
        (``num_samples == len(spec.dataset)`` for every strategy built on
        ``local_train``; enforced per result by :func:`consume_stream`)
        because the reference reduction normalizes weights before the first
        multiply-add.  Strategies that override :meth:`aggregate` without
        providing their own streaming reduction fall back to materializing
        the stream — correct, just not O(1).
        """
        if not selected:
            raise ValueError("cannot aggregate an empty list of client results")
        if type(self).aggregate is not Strategy.aggregate:
            # The strategy customized the materialized reduction; preserve its
            # semantics exactly rather than silently bypassing the override.
            results = list(stream)
            return self.aggregate(global_state, results, context), results
        averager = StreamingAverager(
            len(selected), [len(spec.dataset) for spec in selected])
        results: List[ClientResult] = []
        for result in consume_stream(selected, stream):
            averager.add(result.state)
            result.state = None
            results.append(result)
        return averager.finalize(), results

    def on_round_end(self, context: FLContext, results: List[ClientResult]) -> None:
        """Hook after aggregation; default updates the EMA loss tracker (Eq. 1)."""
        ordered = canonical_results(results, context)
        context.ema.update_from_clients(
            [result.train_loss for result in ordered],
            weights=[result.num_samples for result in ordered],
        )

    # -- persistence (checkpoint/resume) --------------------------------- #
    def state_dict(self, context: FLContext) -> Dict[str, Any]:
        """Persistent cross-round strategy state, as a checkpointable tree.

        The default captures the context storages every strategy's server-side
        state lives in — SCAFFOLD's server/client control variates, any
        per-client bookkeeping — as deep copies (nested dicts whose leaves are
        arrays or JSON scalars).  Restoring this tree into a *fresh* context
        via :meth:`load_state_dict`, together with the global weights and the
        EMA tracker, reproduces the strategy's server state bit-for-bit, which
        is what makes mid-run checkpoints resumable with bitwise-identical
        outcomes.  Strategies that keep state outside the context must
        override both methods.
        """
        return {
            "server_storage": copy.deepcopy(context.server_storage),
            "client_storage": {client_id: copy.deepcopy(storage)
                               for client_id, storage in context.client_storage.items()},
        }

    def load_state_dict(self, context: FLContext, state: Dict[str, Any]) -> None:
        """Restore the tree produced by :meth:`state_dict` into ``context``.

        Client-storage keys are coerced back to ``int``: the checkpoint codec
        round-trips them through JSON-adjacent structures where integer keys
        may arrive as strings.
        """
        context.server_storage.clear()
        context.server_storage.update(copy.deepcopy(state.get("server_storage", {})))
        context.client_storage.clear()
        for client_id, storage in state.get("client_storage", {}).items():
            context.client_storage[int(client_id)] = copy.deepcopy(storage)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"


class FedAvg(Strategy):
    """FedAvg (McMahan et al., 2017): the paper's baseline."""

    name = "fedavg"
