"""Strategy interface shared by FedAvg, the prior-work baselines and HeteroSwitch.

A *strategy* owns the two points where FL algorithms differ:

* ``client_update`` — how a selected client trains on its local data given the
  broadcast global weights, and
* ``aggregate`` — how the server combines the returned client results into the
  next global model.

Per-round shared state (the EMA loss tracker, per-client persistent storage
such as SCAFFOLD's control variates, the round index and RNG) travels in an
:class:`FLContext` owned by the simulation loop.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from ...core.ema import EMALossTracker
from ...data.partition import ClientSpec
from ...nn.layers import Module
from ...nn.serialization import average_states
from ..config import FLConfig
from ..training import ClientResult, local_train

__all__ = ["FLContext", "Strategy", "FedAvg"]

StateDict = Dict[str, np.ndarray]


@dataclass
class FLContext:
    """Mutable state shared across rounds of one FL simulation."""

    config: FLConfig
    ema: EMALossTracker
    rng: np.random.Generator
    round_index: int = 0
    client_storage: Dict[int, dict] = field(default_factory=dict)
    server_storage: dict = field(default_factory=dict)

    def storage_for(self, client_id: int) -> dict:
        """Per-client persistent dictionary (created lazily)."""
        return self.client_storage.setdefault(client_id, {})


class Strategy:
    """Base class: FedAvg behaviour with overridable client/server steps."""

    name = "strategy"

    def client_update(
        self,
        model: Module,
        spec: ClientSpec,
        global_state: StateDict,
        context: FLContext,
    ) -> ClientResult:
        """Default ClientUpdate: plain local SGD (FedAvg's client behaviour)."""
        config = context.config
        seed = config.seed * 100_003 + context.round_index * 1_009 + spec.client_id
        result = local_train(model, spec.dataset, config, global_state, seed=seed)
        result.metadata["device"] = spec.device
        return result

    def aggregate(
        self,
        global_state: StateDict,
        results: List[ClientResult],
        context: FLContext,
    ) -> StateDict:
        """Default aggregation: sample-count weighted averaging (FedAvg)."""
        del context
        if not results:
            raise ValueError("cannot aggregate an empty list of client results")
        weights = [result.num_samples for result in results]
        return average_states([result.state for result in results], weights)

    def on_round_end(self, context: FLContext, results: List[ClientResult]) -> None:
        """Hook after aggregation; default updates the EMA loss tracker (Eq. 1)."""
        context.ema.update_from_clients(
            [result.train_loss for result in results],
            weights=[result.num_samples for result in results],
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"


class FedAvg(Strategy):
    """FedAvg (McMahan et al., 2017): the paper's baseline."""

    name = "fedavg"
