"""FL strategies: FedAvg baseline, prior works, and the HeteroSwitch family.

The HeteroSwitch strategies live in :mod:`repro.core` (they are the paper's
contribution); they are re-exported here lazily so the two packages can depend
on each other without an import cycle, and the simulation layer can build any
method in Table 4 from one registry.
"""

from __future__ import annotations

from typing import Callable

from ...registry import Registry
from .base import FedAvg, FLContext, Strategy, canonical_results
from .fedprox import FedProx
from .qfedavg import QFedAvg
from .scaffold import Scaffold

__all__ = [
    "Strategy",
    "FLContext",
    "canonical_results",
    "FedAvg",
    "FedProx",
    "QFedAvg",
    "Scaffold",
    "HeteroSwitch",
    "ISPTransformOnly",
    "ISPTransformWithSWAD",
    "STRATEGY_REGISTRY",
    "create_strategy",
]

_CORE_STRATEGIES = ("HeteroSwitch", "ISPTransformOnly", "ISPTransformWithSWAD")


def __getattr__(name: str):
    """Lazily resolve the HeteroSwitch strategy classes from :mod:`repro.core`."""
    if name in _CORE_STRATEGIES:
        from ...core import heteroswitch as _hs

        return getattr(_hs, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def _core_factory(name: str) -> Callable[..., Strategy]:
    def factory(**kwargs) -> Strategy:
        from ...core import heteroswitch as _hs

        return getattr(_hs, name)(**kwargs)

    factory.__name__ = name
    return factory


STRATEGY_REGISTRY: Registry[Strategy] = Registry("strategy", {
    "fedavg": FedAvg,
    "fedprox": FedProx,
    "qfedavg": QFedAvg,
    "scaffold": Scaffold,
    "isp_transform": _core_factory("ISPTransformOnly"),
    "isp_swad": _core_factory("ISPTransformWithSWAD"),
    "heteroswitch": _core_factory("HeteroSwitch"),
})


def create_strategy(name: str, **kwargs) -> Strategy:
    """Instantiate a strategy by name (the names used in Table 4's rows)."""
    return STRATEGY_REGISTRY.create(name, **kwargs)
