"""FL strategies: FedAvg baseline, prior works, and the HeteroSwitch family.

The HeteroSwitch strategies live in :mod:`repro.core` (they are the paper's
contribution); they are re-exported here lazily so the two packages can depend
on each other without an import cycle, and the simulation layer can build any
method in Table 4 from one registry.
"""

from __future__ import annotations

from typing import Callable

from ...registry import Registry
from .base import FedAvg, FLContext, Strategy, canonical_results
from .fedprox import FedProx
from .qfedavg import QFedAvg
from .scaffold import Scaffold

__all__ = [
    "Strategy",
    "FLContext",
    "canonical_results",
    "FedAvg",
    "FedProx",
    "QFedAvg",
    "Scaffold",
    "HeteroSwitch",
    "ISPTransformOnly",
    "ISPTransformWithSWAD",
    "STRATEGY_REGISTRY",
    "ASYNC_STRATEGY_NAMES",
    "create_strategy",
]

_CORE_STRATEGIES = ("HeteroSwitch", "ISPTransformOnly", "ISPTransformWithSWAD")

# Asynchronous-only strategies (repro.fl.async_sim): they have no round-based
# ``aggregate`` and run only under RunSpec kind="federated_async".  Named here
# (next to their registration) so spec validation can reject mismatched kinds
# without instantiating anything.
ASYNC_STRATEGY_NAMES = frozenset({"fedasync", "fedbuff"})


def __getattr__(name: str):
    """Lazily resolve the HeteroSwitch strategy classes from :mod:`repro.core`."""
    if name in _CORE_STRATEGIES:
        from ...core import heteroswitch as _hs

        return getattr(_hs, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def _core_factory(name: str) -> Callable[..., Strategy]:
    def factory(**kwargs) -> Strategy:
        from ...core import heteroswitch as _hs

        return getattr(_hs, name)(**kwargs)

    factory.__name__ = name
    return factory


def _async_factory(name: str) -> Callable[..., Strategy]:
    """Deferred import of the async strategies (same pattern as core)."""
    def factory(**kwargs) -> Strategy:
        from ..async_sim import strategies as _async

        return getattr(_async, name)(**kwargs)

    factory.__name__ = name
    factory.requires_async = True
    return factory


STRATEGY_REGISTRY: Registry[Strategy] = Registry("strategy", {
    "fedavg": FedAvg,
    "fedprox": FedProx,
    "qfedavg": QFedAvg,
    "scaffold": Scaffold,
    "isp_transform": _core_factory("ISPTransformOnly"),
    "isp_swad": _core_factory("ISPTransformWithSWAD"),
    "heteroswitch": _core_factory("HeteroSwitch"),
    "fedasync": _async_factory("FedAsync"),
    "fedbuff": _async_factory("FedBuff"),
})


def create_strategy(name: str, **kwargs) -> Strategy:
    """Instantiate a strategy by name (the names used in Table 4's rows)."""
    return STRATEGY_REGISTRY.create(name, **kwargs)
