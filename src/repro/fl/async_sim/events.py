"""Deterministic simulated-clock event queue for asynchronous FL.

The virtual clock is a heap of timestamped :class:`SimEvent`\\ s.  Nothing in
the subsystem ever reads wall-clock time: event timestamps come from the
seeded latency models of :mod:`repro.devices.latency`, and ties are broken by
a *seeded* tiebreak drawn when the event is pushed, then by insertion order —
so the pop order is a pure function of the run seed, independent of host
speed, executor backend, or scheduling.

Randomness streams follow the ``derive_client_seed`` discipline of
:mod:`repro.fl.execution`: every draw comes from a fresh generator seeded by
``(stream tag, run seed, identity indices)`` via :func:`event_rng`, never
from a shared stateful generator, so any event's randomness is a pure
function of *what* it is, not of how many draws happened before it.

The queue serializes to a checkpointable tree (:meth:`EventQueue.state_dict`)
with timestamps and tiebreaks preserved bit-exactly, which is what makes
mid-queue checkpoint/resume reproduce the uninterrupted run.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

__all__ = [
    "EVENT_KINDS",
    "SimEvent",
    "EventQueue",
    "event_rng",
]

# The two event kinds the simulation schedules.  Dispatch is not an event:
# clients are (re)dispatched immediately whenever capacity frees up, so only
# things that *take virtual time* live on the queue.
EVENT_KINDS = ("completion", "toggle")

# Stream tags namespace the per-purpose RNG streams (see event_rng).
_STREAMS = {
    "latency": 1,       # round-trip duration of one dispatched update
    "availability": 2,  # on/off session lengths
    "init": 3,          # initial online/offline draw
    "dispatch": 4,      # which idle client to dispatch next
    "tiebreak": 5,      # heap tie-breaking
}

# The fault-injection layer (repro.fl.faults) draws from the same namespace;
# merge its tags in with a collision check so a fault draw can never alias an
# event draw at the same seed.  The import points faults -> here-free: faults
# is a leaf module and never imports the async subsystem.
from ..faults import FAULT_STREAMS as _FAULT_STREAMS  # noqa: E402

_overlap = {tag for tag in _FAULT_STREAMS.values() if tag in _STREAMS.values()}
if _overlap:  # pragma: no cover - tripped only by a bad future edit
    raise RuntimeError(
        f"fault stream tags collide with event stream tags: {sorted(_overlap)}")
_STREAMS.update(_FAULT_STREAMS)


def event_rng(seed: int, stream: str, *indices: int) -> np.random.Generator:
    """A fresh generator on a named per-identity stream.

    ``indices`` identify the draw (client id, event counter, ...).  Sequence
    seeding keeps streams collision-free across tags and disjoint from the
    scalar ``derive_client_seed`` streams used for local training.
    """
    return np.random.default_rng([_STREAMS[stream], seed, *indices])


@dataclass
class SimEvent:
    """One timestamped occurrence on the virtual clock.

    ``job_id`` identifies the dispatched update for ``completion`` events and
    is ``-1`` for ``toggle`` events.  ``tiebreak`` is assigned by the queue at
    push time (seeded) unless the event already carries one (restore path).
    """

    time: float
    kind: str
    client_id: int
    job_id: int = -1
    tiebreak: Optional[float] = None

    def __post_init__(self) -> None:
        if self.kind not in EVENT_KINDS:
            raise ValueError(f"kind must be one of {EVENT_KINDS}, got '{self.kind}'")
        if self.time < 0:
            raise ValueError(f"event time must be non-negative, got {self.time}")

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe rendering (floats round-trip exactly)."""
        return {
            "time": float(self.time),
            "kind": self.kind,
            "client_id": int(self.client_id),
            "job_id": int(self.job_id),
            "tiebreak": None if self.tiebreak is None else float(self.tiebreak),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "SimEvent":
        """Inverse of :meth:`to_dict`."""
        tiebreak = data.get("tiebreak")
        return cls(
            time=float(data["time"]),
            kind=str(data["kind"]),
            client_id=int(data["client_id"]),
            job_id=int(data.get("job_id", -1)),
            tiebreak=None if tiebreak is None else float(tiebreak),
        )


@dataclass(order=True)
class _HeapEntry:
    """Heap ordering: (time, seeded tiebreak, insertion sequence)."""

    time: float
    tiebreak: float
    seq: int
    event: SimEvent = field(compare=False)


class EventQueue:
    """Seeded priority queue of :class:`SimEvent`\\ s.

    Two events at the same timestamp pop in an order decided by their seeded
    tiebreak draws (then by insertion order as a last resort), so ties are
    resolved reproducibly but without structural bias toward, say, lower
    client ids.
    """

    def __init__(self, seed: int) -> None:
        self.seed = int(seed)
        self._heap: List[_HeapEntry] = []
        self._seq = 0        # insertion counter (final tie level)
        self._pushed = 0     # tiebreak stream counter

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def push(self, event: SimEvent) -> SimEvent:
        """Schedule an event; assigns its seeded tiebreak if it has none."""
        if event.tiebreak is None:
            rng = event_rng(self.seed, "tiebreak", self._pushed)
            event.tiebreak = float(rng.random())
        self._pushed += 1
        heapq.heappush(
            self._heap,
            _HeapEntry(float(event.time), float(event.tiebreak), self._seq, event),
        )
        self._seq += 1
        return event

    def pop(self) -> SimEvent:
        """Remove and return the earliest event."""
        if not self._heap:
            raise IndexError("pop from an empty event queue")
        return heapq.heappop(self._heap).event

    def peek(self) -> SimEvent:
        """The earliest event without removing it."""
        if not self._heap:
            raise IndexError("peek at an empty event queue")
        return self._heap[0].event

    # -- checkpoint / resume ------------------------------------------------ #
    def state_dict(self) -> Dict[str, object]:
        """Checkpointable rendering: pending events + counters.

        Events keep their assigned tiebreaks and the entries keep their
        insertion sequence numbers, so the restored heap pops in exactly the
        order the live one would have.
        """
        return {
            "seed": self.seed,
            "seq": self._seq,
            "pushed": self._pushed,
            "events": [
                {"seq": entry.seq, **entry.event.to_dict()}
                for entry in sorted(self._heap)
            ],
        }

    @classmethod
    def from_state_dict(cls, state: Dict[str, object]) -> "EventQueue":
        """Rebuild a queue from :meth:`state_dict`."""
        queue = cls(int(state["seed"]))
        for item in state["events"]:
            event = SimEvent.from_dict(item)
            heapq.heappush(
                queue._heap,
                _HeapEntry(event.time, float(event.tiebreak), int(item["seq"]), event),
            )
        queue._seq = int(state["seq"])
        queue._pushed = int(state["pushed"])
        return queue

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        head = f", next={self._heap[0].event.kind}@{self._heap[0].time:.1f}" if self._heap else ""
        return f"EventQueue(len={len(self._heap)}{head})"
