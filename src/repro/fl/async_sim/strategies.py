"""Staleness-aware server aggregation for asynchronous FL.

Synchronous strategies aggregate a *round*: every selected client trains from
the same broadcast weights and the server reduces all results at once.  The
asynchronous server instead consumes one :class:`AsyncUpdate` at a time, each
trained from whatever global version was current when its client was
dispatched; by the time it arrives the server may have committed ``τ`` newer
versions.  Both strategies here discount updates polynomially in that
staleness, ``(1 + τ)^{-a}`` (Xie et al., 2019):

* :class:`FedAsync` mixes every arriving update straight into the global
  model with weight ``α · (1 + τ)^{-a}`` — one server commit per update.
* :class:`FedBuff` accumulates staleness-discounted *deltas* and commits a
  weighted average once ``buffer_size`` updates have arrived (Nguyen et al.,
  2022) — one commit per K updates.

Server math operates on the flat parameter vectors of
:class:`~repro.nn.serialization.StateLayout` (the PR 5 whole-vector path):
updates arrive packed, and a commit is a handful of vector ops.  Buffered
state lives in ``context.server_storage``, so the base
:meth:`~repro.fl.strategies.base.Strategy.state_dict` checkpoint path
persists it without any strategy-specific code.

These strategies are *asynchronous-only* (``requires_async = True``): the
synchronous loop rejects them, and their ``aggregate`` raises — there is no
meaningful round-based reduction for them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

import numpy as np

from ..strategies.base import FLContext, Strategy
from ..training import ClientResult

__all__ = [
    "AsyncUpdate",
    "AsyncCommit",
    "AsyncStrategy",
    "FedAsync",
    "FedBuff",
    "polynomial_staleness",
]


def polynomial_staleness(staleness: int, exponent: float) -> float:
    """The polynomial staleness discount ``(1 + τ)^{-a}``.

    ``exponent == 0`` disables discounting (every update weighs the same);
    larger exponents damp stale updates harder.
    """
    if staleness < 0:
        raise ValueError(f"staleness must be non-negative, got {staleness}")
    return float((1.0 + staleness) ** -exponent)


@dataclass
class AsyncUpdate:
    """One client's completed local update, as the async server consumes it.

    ``vec`` is the trained weights packed by the run's
    :class:`~repro.nn.serialization.StateLayout`; ``delta`` is ``vec`` minus
    the (packed) weights the client was dispatched with.  ``dispatch_version``
    is the server commit count at dispatch time, so the staleness of the
    update at arrival is ``server_version - dispatch_version``.
    """

    result: ClientResult
    vec: np.ndarray
    delta: np.ndarray
    dispatch_version: int

    @property
    def client_id(self) -> int:
        return self.result.client_id

    @property
    def num_samples(self) -> int:
        return self.result.num_samples

    @property
    def train_loss(self) -> float:
        return self.result.train_loss

    def entry(self, staleness: int) -> Dict[str, Any]:
        """JSON/array-safe record of this update for commit bookkeeping."""
        return {
            "client_id": int(self.result.client_id),
            "num_samples": int(self.result.num_samples),
            "train_loss": float(self.result.train_loss),
            "staleness": int(staleness),
            "device": str(self.result.metadata.get("device", "")),
        }


@dataclass
class AsyncCommit:
    """One server commit: the new global vector plus provenance.

    ``entries`` (see :meth:`AsyncUpdate.entry`) record which client updates
    the commit folded in — one entry for :class:`FedAsync`, ``buffer_size``
    for :class:`FedBuff` — in the deterministic arrival order the server
    consumed them.
    """

    vector: np.ndarray
    entries: List[Dict[str, Any]] = field(default_factory=list)

    @property
    def staleness(self) -> List[int]:
        return [int(e["staleness"]) for e in self.entries]


class AsyncStrategy(Strategy):
    """Base class for staleness-aware server aggregation.

    Subclasses implement :meth:`server_update`; the inherited
    ``client_update`` (plain local SGD from the dispatched weights) is reused
    unchanged, so the executor fan-out path is identical to the synchronous
    one.  ``requires_async`` marks the strategy as unusable in the
    round-synchronous loop.
    """

    requires_async = True

    def server_update(
        self,
        global_vec: np.ndarray,
        update: AsyncUpdate,
        staleness: int,
        context: FLContext,
    ) -> Optional[AsyncCommit]:
        """Consume one update; return a commit or ``None`` (buffered)."""
        raise NotImplementedError

    def pending_entries(self, context: FLContext) -> List[Dict[str, Any]]:
        """Buffered-but-uncommitted update records (empty unless buffering)."""
        return []

    def aggregate(self, global_state, results, context):
        raise RuntimeError(
            f"strategy '{self.name}' is asynchronous-only and has no "
            f"round-based aggregation; run it with kind='federated_async' "
            f"(AsyncFederatedSimulation)"
        )


class FedAsync(AsyncStrategy):
    """FedAsync (Xie et al., 2019): mix every update in as it arrives.

    The arriving update's packed weights are blended into the global vector
    with mixing weight ``s = alpha · (1 + τ)^{-staleness_exponent}``::

        global ← (1 - s) · global + s · update

    Every update produces a server commit, so the global version advances
    once per completed client.
    """

    name = "fedasync"

    def __init__(self, alpha: float = 0.6, staleness_exponent: float = 0.5) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        if staleness_exponent < 0:
            raise ValueError(f"staleness_exponent must be non-negative, got {staleness_exponent}")
        self.alpha = alpha
        self.staleness_exponent = staleness_exponent

    def server_update(self, global_vec, update, staleness, context):
        mix = self.alpha * polynomial_staleness(staleness, self.staleness_exponent)
        vector = (1.0 - mix) * global_vec + mix * update.vec
        return AsyncCommit(vector=vector, entries=[update.entry(staleness)])


class FedBuff(AsyncStrategy):
    """FedBuff (Nguyen et al., 2022): commit a buffer of K discounted deltas.

    Each arriving update contributes its *delta* (trained minus dispatched
    weights) with weight ``num_samples · (1 + τ)^{-staleness_exponent}``.
    Once ``buffer_size`` updates have accumulated, the server applies their
    weighted average, scaled by ``server_lr``, and clears the buffer::

        global ← global + server_lr · Σ wᵢ·δᵢ / Σ wᵢ

    The buffer lives in ``context.server_storage["fedbuff"]``, so checkpoints
    capture half-full buffers and a resumed run commits exactly when the
    uninterrupted one would have.
    """

    name = "fedbuff"

    def __init__(self, buffer_size: int = 4, staleness_exponent: float = 0.5,
                 server_lr: float = 1.0) -> None:
        if isinstance(buffer_size, bool) or not isinstance(buffer_size, int) or buffer_size < 1:
            raise ValueError(f"buffer_size must be a positive integer, got {buffer_size!r}")
        if staleness_exponent < 0:
            raise ValueError(f"staleness_exponent must be non-negative, got {staleness_exponent}")
        if server_lr <= 0:
            raise ValueError(f"server_lr must be positive, got {server_lr}")
        self.buffer_size = buffer_size
        self.staleness_exponent = staleness_exponent
        self.server_lr = server_lr

    def _buffer(self, context: FLContext) -> List[Dict[str, Any]]:
        return context.server_storage.setdefault("fedbuff", {}).setdefault("buffer", [])

    def pending_entries(self, context):
        return [{k: v for k, v in item.items() if k != "delta"}
                for item in self._buffer(context)]

    def server_update(self, global_vec, update, staleness, context):
        buffer = self._buffer(context)
        weight = update.num_samples * polynomial_staleness(staleness, self.staleness_exponent)
        buffer.append({"delta": update.delta.copy(), "weight": float(weight),
                       **update.entry(staleness)})
        if len(buffer) < self.buffer_size:
            return None
        items, buffer[:] = list(buffer), []
        total = sum(item["weight"] for item in items)
        # Accumulate in buffer (arrival) order — deterministic because event
        # pop order is a pure function of the seed.
        merged = np.zeros_like(global_vec)
        for item in items:
            merged += (item["weight"] / total) * item["delta"]
        vector = global_vec + self.server_lr * merged
        entries = [{k: v for k, v in item.items() if k not in ("delta", "weight")}
                   for item in items]
        return AsyncCommit(vector=vector, entries=entries)
