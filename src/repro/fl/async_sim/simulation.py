"""Event-driven asynchronous federated simulation on a deterministic clock.

:class:`AsyncFederatedSimulation` replaces the synchronous round barrier with
a virtual clock: the server keeps up to ``concurrency`` clients training at
once, each dispatched the *current* global weights; completions arrive after
per-device latencies drawn from :mod:`repro.devices.latency`; the strategy
(:class:`~repro.fl.async_sim.strategies.AsyncStrategy`) folds each update in
with a staleness discount and decides when the global version advances.
Devices churn — drop offline mid-training (their update is abandoned) and
rejoin later — according to their availability duty cycles.

**Determinism contract.**  Nothing reads wall-clock time.  Event timestamps,
tie-breaking, availability toggles, and dispatch choices are all pure
functions of the run seed via the named streams of
:func:`~repro.fl.async_sim.events.event_rng`; local training derives its
randomness from ``(seed, batch, client)`` exactly as the synchronous path
does.  Real parallelism comes from the standard
:class:`~repro.fl.execution.ClientExecutor` backends: pending dispatches that
share a broadcast version form a *batch*, and a batch is (incrementally)
flushed through the executor the moment one of its completions pops.  Because
each client's update is a pure function of (broadcast weights, derived seed),
when the flush happens — eagerly, lazily, serially or on a process pool —
cannot change any value, so every backend produces bit-identical runs.

**Checkpoint/resume.**  :meth:`snapshot` flushes pending batches (making all
in-flight results concrete arrays) and captures the clock, version, event
queue, job table, availability state, and every RNG stream counter; restoring
it into a fresh simulation of the same spec continues the run with
bit-identical commits (see ``tests/fl/test_async_sim.py``).
"""

from __future__ import annotations

import dataclasses
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Set, Union

import numpy as np

from ...core.ema import EMALossTracker
from ...data.dataset import ArrayDataset
from ...data.partition import ClientSpec
from ...devices.latency import DeviceLatencyModel, LatencyRegime, build_latency_models
from ...nn.engine import engine_scope
from ...nn.layers import Module
from ...nn.serialization import StateLayout, get_weights, set_weights
from ...obs import MetricsRegistry, Tracer, merge_client_spans
from ..callbacks import Callback, CallbackList, PeriodicEvaluation, SwitchTelemetry
from ..config import FLConfig
from ..execution import ClientExecutor, create_executor
from ..simulation import FLHistory, RoundRecord
from ..strategies.base import FLContext
from ..training import ClientResult, evaluate_metric
from .events import EventQueue, SimEvent, event_rng
from .strategies import AsyncCommit, AsyncStrategy, AsyncUpdate

__all__ = [
    "CommitRecord",
    "AsyncFLHistory",
    "AsyncFederatedSimulation",
    "AsyncTelemetry",
]

StateDict = Dict[str, np.ndarray]
ModelFactory = Callable[[], Module]


@dataclass
class CommitRecord(RoundRecord):
    """One server commit on the virtual clock.

    Subclasses :class:`~repro.fl.simulation.RoundRecord` — ``round_index`` is
    the commit index and ``selected_clients`` the clients whose updates the
    commit folded in — so round-based callbacks (checkpointing, early
    stopping, logging) and the run store work unchanged.  Adds the commit's
    virtual timestamp and the per-update staleness values.
    """

    time: float = 0.0
    staleness: List[int] = field(default_factory=list)

    @property
    def mean_staleness(self) -> float:
        return float(np.mean(self.staleness)) if self.staleness else 0.0

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "CommitRecord":
        base = RoundRecord.from_dict(data)
        return cls(
            **dataclasses.asdict(base),
            time=float(data.get("time", 0.0)),
            staleness=[int(s) for s in data.get("staleness", [])],
        )


@dataclass
class AsyncFLHistory(FLHistory):
    """Run history whose ``rounds`` are :class:`CommitRecord`\\ s.

    Serialized dicts carry ``kind: "federated_async"`` so
    :func:`repro.fl.simulation.history_from_dict` can reconstruct the right
    class when the run store loads a result or checkpoint.
    """

    @property
    def commits(self) -> List[CommitRecord]:
        return self.rounds

    def to_dict(self) -> Dict[str, object]:
        data = super().to_dict()
        data["kind"] = "federated_async"
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "AsyncFLHistory":
        return cls(
            strategy=str(data["strategy"]),
            rounds=[CommitRecord.from_dict(r) for r in data.get("rounds", [])],
            per_device_metric=dict(data.get("per_device_metric", {})),
            evaluations=[dict(e) for e in data.get("evaluations", [])],
            metadata=dict(data.get("metadata", {})),
        )


@dataclass
class _PendingJob:
    """One dispatched-but-unconsumed client update."""

    job_id: int
    client_id: int
    batch_id: int
    dispatch_version: int
    dispatch_time: float
    lost: bool = False

    def to_dict(self) -> Dict[str, object]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "_PendingJob":
        return cls(
            job_id=int(data["job_id"]),
            client_id=int(data["client_id"]),
            batch_id=int(data["batch_id"]),
            dispatch_version=int(data["dispatch_version"]),
            dispatch_time=float(data["dispatch_time"]),
            lost=bool(data["lost"]),
        )


class AsyncTelemetry(Callback):
    """Collects staleness / idle-time / participation telemetry for async runs.

    Consumes the :meth:`~repro.fl.callbacks.Callback.on_event` hook the async
    loop fires on every dispatch, completion, loss, dropout, rejoin and
    commit, and writes a ``telemetry`` block into the history metadata at run
    end: per-client participation (committed updates), executor-slot
    utilisation (busy time / virtual time × concurrency), and churn counts.

    Counters are per run-segment: a run resumed from a checkpoint reports
    telemetry for the resumed segment only (commit/staleness statistics, which
    must match the uninterrupted run, are derived from the history records by
    the simulation itself and are unaffected).

    All counting lives in a :class:`repro.obs.MetricsRegistry` — labeled
    ``dispatches``/``completions``/``busy_seconds`` series per client plus a
    ``churn`` series per event kind — and the ``telemetry`` metadata block is
    reassembled from the registry at run end, byte-for-byte as before: the
    per-client float sums accumulate in the same event order, and the busy
    total sums the per-client series in first-completion (registration)
    order, exactly like the former dict-of-floats.
    """

    name = "async_telemetry"

    def __init__(self) -> None:
        self._reset()

    def _reset(self) -> None:
        self.metrics = MetricsRegistry()
        self._started: Dict[int, float] = {}

    def on_run_start(self, sim, history) -> None:
        self._reset()

    def on_event(self, sim, info: Dict[str, object]) -> None:
        kind = info["kind"]
        cid = int(info.get("client_id", -1))
        if kind == "dispatch":
            self.metrics.counter("dispatches", client=cid).inc()
            self._started[cid] = float(info["time"])
        elif kind == "completion":
            self.metrics.counter("completions", client=cid).inc()
            start = self._started.pop(cid, None)
            if start is not None:
                self.metrics.counter("busy_seconds", client=cid).add(
                    float(info["time"]) - start)
        elif kind in ("lost", "dropout", "rejoin"):
            self.metrics.counter("churn", kind=str(kind)).inc()

    def on_run_end(self, sim, history) -> None:
        virtual = max((r.time for r in history.rounds), default=0.0)
        capacity = virtual * getattr(sim, "concurrency", 1)
        busy = sum(c.value for c in self.metrics.series("busy_seconds"))
        completions = {int(c.labels["client"]): int(c.value)
                       for c in self.metrics.series("completions")}
        dispatches = {int(c.labels["client"]): int(c.value)
                      for c in self.metrics.series("dispatches")}
        churn = {c.labels["kind"]: int(c.value)
                 for c in self.metrics.series("churn")}
        history.metadata["telemetry"] = {
            "participation": {c: n for c, n in sorted(completions.items())},
            "dispatches": {c: n for c, n in sorted(dispatches.items())},
            "utilisation": float(busy / capacity) if capacity > 0 else 0.0,
            "dropouts": churn.get("dropout", 0),
            "rejoins": churn.get("rejoin", 0),
            "updates_lost": churn.get("lost", 0),
        }


class AsyncFederatedSimulation:
    """Asynchronous FL run on a deterministic simulated clock.

    Parameters
    ----------
    model_fn, clients, test_sets, strategy, config:
        As for :class:`~repro.fl.simulation.FederatedSimulation`, except
        ``strategy`` must be an :class:`~repro.fl.async_sim.strategies.
        AsyncStrategy` (``fedasync``/``fedbuff``) and ``config.num_rounds``
        counts *server commits* rather than synchronous rounds.
    latency:
        A regime preset name (``"uniform"``/``"mild"``/``"extreme"``), a
        :class:`~repro.devices.latency.LatencyRegime`, or a ready mapping of
        device name → :class:`~repro.devices.latency.DeviceLatencyModel`
        covering every client device.
    concurrency:
        Maximum clients training at once; defaults to
        ``config.clients_per_round`` (the synchronous cohort size).
    callbacks, executor:
        As for the synchronous simulation.  The async loop additionally fires
        :meth:`~repro.fl.callbacks.Callback.on_event` for every virtual-clock
        occurrence.
    max_events:
        Safety cap on processed events; ``None`` derives a generous bound
        from the commit target.  Exceeding it raises instead of spinning the
        virtual clock forever (e.g. availability so low no update completes).
    """

    def __init__(
        self,
        model_fn: ModelFactory,
        clients: Sequence[ClientSpec],
        test_sets: Mapping[str, ArrayDataset],
        strategy: AsyncStrategy,
        config: FLConfig,
        latency: Union[str, LatencyRegime, Mapping[str, DeviceLatencyModel]] = "mild",
        concurrency: Optional[int] = None,
        callbacks: Sequence[Callback] = (),
        executor: Optional[Union[str, ClientExecutor]] = None,
        max_events: Optional[int] = None,
    ) -> None:
        if not clients:
            raise ValueError("client population must not be empty")
        if not test_sets:
            raise ValueError("test_sets must not be empty")
        if config.num_clients != len(clients):
            raise ValueError(
                f"config.num_clients ({config.num_clients}) does not match the "
                f"provided client population ({len(clients)})"
            )
        if not getattr(strategy, "requires_async", False) or not hasattr(strategy, "server_update"):
            raise ValueError(
                f"strategy '{strategy.name}' has no asynchronous server path; "
                f"the async simulation needs an AsyncStrategy "
                f"('fedasync' or 'fedbuff')"
            )
        self.model_fn = model_fn
        self.clients = list(clients)
        self.test_sets = dict(test_sets)
        self.strategy = strategy
        self.config = config
        self.callbacks = list(callbacks)
        if isinstance(latency, Mapping):
            self.latency_models = dict(latency)
        else:
            self.latency_models = build_latency_models(
                [spec.device for spec in self.clients], latency
            )
        missing = sorted({spec.device for spec in self.clients} - set(self.latency_models))
        if missing:
            raise ValueError(f"no latency model for device(s) {missing}")
        if concurrency is None:
            concurrency = min(config.clients_per_round, len(self.clients))
        if isinstance(concurrency, bool) or not isinstance(concurrency, int) or concurrency < 1:
            raise ValueError(f"concurrency must be a positive integer, got {concurrency!r}")
        self.concurrency = min(concurrency, len(self.clients))
        self.max_events = max_events
        if executor is None or isinstance(executor, str):
            self._executor = create_executor(executor or "serial")
            self._owns_executor = True
        else:
            self._executor = executor
            self._owns_executor = False

        self._client_by_id = {spec.client_id: spec for spec in self.clients}
        if len(self._client_by_id) != len(self.clients):
            raise ValueError("client ids must be unique")

        with engine_scope(config):
            template = get_weights(model_fn())
        self._layout = StateLayout(template)
        self._global_vec = self._layout.pack(template)
        self.context = FLContext(
            config=config,
            ema=EMALossTracker(alpha=config.ema_alpha),
        )
        self._history: Optional[AsyncFLHistory] = None
        self._active_callbacks: Optional[CallbackList] = None
        self._stop_requested = False
        self._resume: Optional[AsyncFLHistory] = None
        # Run-level trace collector (repro.obs); attached externally or
        # auto-created by run().  Purely observational.  run() registers the
        # virtual clock so every span/instant also carries simulated time.
        self.tracer: Optional[Tracer] = None
        self._init_clock_state()

    def _init_clock_state(self) -> None:
        """Virtual-clock bookkeeping for a fresh (round-zero) run."""
        self._clock = 0.0
        self._version = 0
        self._queue = EventQueue(self.config.seed)
        self._jobs: Dict[int, _PendingJob] = {}
        self._results: Dict[int, AsyncUpdate] = {}
        # A batch groups dispatches that share a broadcast version; entries
        # are {"vec", "jobs", "flushed"} and flush incrementally (see module
        # docstring).  self._open_batch is the one accepting new dispatches.
        self._batches: Dict[int, Dict[str, object]] = {}
        self._open_batch: Optional[int] = None
        self._online: Dict[int, bool] = {}
        self._busy: Set[int] = set()
        self._avail_counts: Dict[int, int] = {}
        self._latency_counts: Dict[int, int] = {}
        self._dispatch_count = 0
        self._batch_count = 0
        self._job_count = 0
        self._updates_lost = 0
        self._populated = False

    # ------------------------------------------------------------------ #
    @property
    def executor(self) -> ClientExecutor:
        """The client-execution backend flushing dispatch batches."""
        return self._executor

    @property
    def clock(self) -> float:
        """Current virtual time in simulated seconds."""
        return self._clock

    @property
    def version(self) -> int:
        """Number of server commits so far."""
        return self._version

    @property
    def global_state(self) -> StateDict:
        """Copy of the current global model weights."""
        return {key: value.copy()
                for key, value in self._layout.unpack(self._global_vec).items()}

    @property
    def history(self) -> Optional[AsyncFLHistory]:
        """The history of the in-progress (or most recent) :meth:`run`."""
        return self._history

    def global_model(self) -> Module:
        """A model instance loaded with the current global weights."""
        with engine_scope(self.config):
            model = self.model_fn()
        set_weights(model, self._layout.unpack(self._global_vec))
        return model

    def request_stop(self) -> None:
        """Ask :meth:`run` to stop gracefully after the current commit."""
        self._stop_requested = True

    def model_for(self, client_id: int) -> DeviceLatencyModel:
        """The latency model of one client (by its device type)."""
        return self.latency_models[self._client_by_id[client_id].device]

    # -- event emission -------------------------------------------------- #
    def _emit(self, kind: str, **extra) -> None:
        if self.tracer is not None:
            # Virtual-clock occurrences land in the trace as instants; the
            # registered virtual clock stamps them with simulated time too.
            self.tracer.instant(kind, **{k: v for k, v in extra.items()
                                         if not isinstance(v, (list, dict))})
        if self._active_callbacks is not None:
            self._active_callbacks.on_event(self, {"kind": kind, "time": self._clock, **extra})

    # -- population / availability --------------------------------------- #
    def _initialize_population(self) -> None:
        """Draw initial availability and schedule each client's first toggle."""
        seed = self.config.seed
        for cid in sorted(self._client_by_id):
            model = self.model_for(cid)
            self._online[cid] = model.sample_initially_online(event_rng(seed, "init", cid))
            self._avail_counts[cid] = 0
            self._latency_counts[cid] = 0
            if not model.always_online:
                self._schedule_toggle(cid)
        self._populated = True

    def _schedule_toggle(self, cid: int) -> None:
        model = self.model_for(cid)
        count = self._avail_counts[cid]
        self._avail_counts[cid] = count + 1
        duration = model.sample_session(
            self._online[cid], event_rng(self.config.seed, "availability", cid, count)
        )
        self._queue.push(SimEvent(time=self._clock + duration, kind="toggle", client_id=cid))

    # -- dispatch --------------------------------------------------------- #
    def _fill_dispatch(self) -> None:
        """Dispatch idle online clients until ``concurrency`` are in flight."""
        while len(self._busy) < self.concurrency:
            candidates = sorted(
                cid for cid, online in self._online.items()
                if online and cid not in self._busy
            )
            if not candidates:
                break
            rng = event_rng(self.config.seed, "dispatch", self._dispatch_count)
            self._dispatch(candidates[int(rng.integers(len(candidates)))])

    def _dispatch(self, cid: int) -> None:
        if self._open_batch is None:
            batch_id = self._batch_count
            self._batch_count += 1
            self._batches[batch_id] = {"vec": self._global_vec.copy(),
                                       "jobs": [], "flushed": 0}
            self._open_batch = batch_id
        job_id = self._job_count
        self._job_count += 1
        job = _PendingJob(job_id=job_id, client_id=cid, batch_id=self._open_batch,
                          dispatch_version=self._version, dispatch_time=self._clock)
        self._jobs[job_id] = job
        self._batches[self._open_batch]["jobs"].append(job_id)
        self._busy.add(cid)
        spec = self._client_by_id[cid]
        samples = max(1, len(spec.dataset)) * max(1, self.config.local_epochs)
        count = self._latency_counts[cid]
        self._latency_counts[cid] = count + 1
        duration = self.model_for(cid).sample_round_trip(
            samples, event_rng(self.config.seed, "latency", cid, count)
        )
        self._queue.push(SimEvent(time=self._clock + duration, kind="completion",
                                  client_id=cid, job_id=job_id))
        self._dispatch_count += 1
        self._emit("dispatch", client_id=cid, job_id=job_id, version=self._version)

    # -- batch flushing ---------------------------------------------------- #
    def _flush_batch(self, batch_id: int) -> None:
        """Train the batch's not-yet-flushed jobs through the executor.

        Incremental: an open batch can be flushed repeatedly as jobs are
        appended; each job trains exactly once, from the batch's broadcast
        vector, with a seed derived from ``(run seed, batch id, client id)``
        — so flush timing (completion-triggered, snapshot-triggered) cannot
        change any result.
        """
        batch = self._batches[batch_id]
        pending = batch["jobs"][batch["flushed"]:]
        if pending:
            jobs = [self._jobs[jid] for jid in pending]
            specs = [self._client_by_id[job.client_id] for job in jobs]
            # batch_id plays the round_index role in per-client seed
            # derivation; a client appears at most once per batch, so every
            # (batch, client) training stream is unique.
            self.context.round_index = batch_id
            self.context.round_selection = [job.client_id for job in jobs]
            broadcast = self._layout.unpack(batch["vec"])
            tracer = self.tracer
            with (tracer.span("flush_batch", batch=batch_id, jobs=len(specs))
                  if tracer is not None else nullcontext()) as flush_span:
                results = self._executor.run_round(
                    self.strategy, self.model_fn, specs, broadcast, self.context
                )
            if tracer is not None:
                merge_client_spans(tracer, flush_span.start, results,
                                   {spec.client_id: spec.device for spec in specs})
            for job, result in zip(jobs, results):
                vec = self._layout.pack(result.state)
                result.state = {}  # the packed vector is the payload now
                self._results[job.job_id] = AsyncUpdate(
                    result=result, vec=vec, delta=vec - batch["vec"],
                    dispatch_version=job.dispatch_version,
                )
            batch["flushed"] = len(batch["jobs"])
        self._maybe_discard(batch_id)

    def _maybe_discard(self, batch_id: int) -> None:
        """Drop a batch once it is closed and fully flushed."""
        batch = self._batches.get(batch_id)
        if (batch is not None and batch_id != self._open_batch
                and batch["flushed"] >= len(batch["jobs"])):
            del self._batches[batch_id]

    # -- event handlers ---------------------------------------------------- #
    def _on_completion(self, event: SimEvent) -> None:
        job = self._jobs[event.job_id]
        if job.lost:
            del self._jobs[event.job_id]
            # The client dropped offline mid-training: its update is
            # abandoned and never touches the global model.
            self._updates_lost += 1
            batch = self._batches.get(job.batch_id)
            if batch is not None and job.job_id in batch["jobs"][batch["flushed"]:]:
                # Not trained yet — skip computing it at all.
                batch["jobs"].remove(job.job_id)
                self._maybe_discard(job.batch_id)
            self._results.pop(job.job_id, None)
            self._emit("lost", client_id=job.client_id, job_id=job.job_id)
            return
        if job.job_id not in self._results:
            self._flush_batch(job.batch_id)
        del self._jobs[event.job_id]
        update = self._results.pop(job.job_id)
        self._busy.discard(job.client_id)
        staleness = self._version - job.dispatch_version
        self._emit("completion", client_id=job.client_id, job_id=job.job_id,
                   staleness=staleness)
        commit = self.strategy.server_update(self._global_vec, update, staleness,
                                             self.context)
        if commit is not None:
            self._apply_commit(commit)
        self._fill_dispatch()

    def _on_toggle(self, event: SimEvent) -> None:
        cid = event.client_id
        now_online = not self._online[cid]
        self._online[cid] = now_online
        if not now_online and cid in self._busy:
            # Abandon the in-flight job; the slot frees immediately and the
            # stale completion event is skipped when it pops.
            for job in self._jobs.values():
                if job.client_id == cid and not job.lost:
                    job.lost = True
            self._busy.discard(cid)
        self._schedule_toggle(cid)
        self._emit("rejoin" if now_online else "dropout", client_id=cid)
        # Rejoins add a candidate, dropouts of busy clients free a slot;
        # either way the invariant is restored: between events, capacity is
        # full or no idle online client exists.
        self._fill_dispatch()

    def _apply_commit(self, commit: AsyncCommit) -> None:
        self._global_vec = np.ascontiguousarray(commit.vector,
                                                dtype=self._layout.dtype)
        self._version += 1
        # Later dispatches must broadcast the new version: close the batch.
        closed, self._open_batch = self._open_batch, None
        if closed is not None:
            self._maybe_discard(closed)
        entries = commit.entries
        self.context.ema.update_from_clients(
            [e["train_loss"] for e in entries],
            weights=[e["num_samples"] for e in entries],
        )
        record = CommitRecord(
            round_index=self._version - 1,
            selected_clients=[int(e["client_id"]) for e in entries],
            mean_train_loss=float(np.mean([e["train_loss"] for e in entries])),
            ema_loss=float(self.context.ema.value),
            time=self._clock,
            staleness=[int(e["staleness"]) for e in entries],
        )
        if self._history is not None:
            self._history.rounds.append(record)
        self._emit("commit", version=self._version,
                   clients=[int(e["client_id"]) for e in entries])
        if self._active_callbacks is not None:
            results = [
                ClientResult(state={}, num_samples=int(e["num_samples"]),
                             train_loss=float(e["train_loss"]),
                             init_loss=float(e.get("init_loss", e["train_loss"])),
                             client_id=int(e["client_id"]),
                             metadata={"device": e.get("device", "")})
                for e in entries
            ]
            self._active_callbacks.on_round_end(self, record, results)

    # -- evaluation -------------------------------------------------------- #
    def evaluate(self) -> Dict[str, float]:
        """Evaluate the current global model on every per-device test set."""
        with (self.tracer.span("evaluate", devices=len(self.test_sets))
              if self.tracer is not None else nullcontext()):
            model = self.global_model()
            with engine_scope(self.config):
                metrics = {
                    device: evaluate_metric(model, dataset, self.config.task)
                    for device, dataset in self.test_sets.items()
                }
        if self._active_callbacks is not None:
            self._active_callbacks.on_evaluate(self, self._version, metrics)
        return metrics

    # -- checkpoint / resume ------------------------------------------------ #
    def snapshot(self) -> Dict[str, object]:
        """Everything a bit-identical resume needs, as a checkpointable tree.

        Pending batches are flushed first, so every in-flight update is a
        concrete (packed) array; flushing is observationally transparent (see
        :meth:`_flush_batch`), so taking a snapshot cannot perturb the run.
        """
        if self._history is None:
            raise RuntimeError("snapshot() requires an active or completed run")
        for batch_id in sorted(self._batches):
            self._flush_batch(batch_id)
        return {
            "kind": "federated_async",
            "strategy": self.strategy.name,
            "seed": self.config.seed,
            "clock": float(self._clock),
            "version": int(self._version),
            "global_state": self.global_state,
            "strategy_state": self.strategy.state_dict(self.context),
            "ema": self.context.ema.state_dict(),
            "history": self._history.to_dict(),
            "queue": self._queue.state_dict(),
            "jobs": [self._jobs[jid].to_dict() for jid in sorted(self._jobs)],
            "results": {
                int(jid): {
                    "vec": update.vec,
                    "delta": update.delta,
                    "dispatch_version": int(update.dispatch_version),
                    "client_id": int(update.result.client_id),
                    "num_samples": int(update.result.num_samples),
                    "train_loss": float(update.result.train_loss),
                    "init_loss": float(update.result.init_loss),
                    "metadata": dict(update.result.metadata),
                }
                for jid, update in sorted(self._results.items())
            },
            "batches": [
                {"batch_id": int(bid), "vec": batch["vec"],
                 "jobs": list(batch["jobs"]), "flushed": int(batch["flushed"])}
                for bid, batch in sorted(self._batches.items())
            ],
            "open_batch": self._open_batch,
            "online": {int(c): bool(v) for c, v in sorted(self._online.items())},
            "busy": sorted(self._busy),
            "avail_counts": {int(c): int(v) for c, v in sorted(self._avail_counts.items())},
            "latency_counts": {int(c): int(v) for c, v in sorted(self._latency_counts.items())},
            "dispatch_count": int(self._dispatch_count),
            "batch_count": int(self._batch_count),
            "job_count": int(self._job_count),
            "updates_lost": int(self._updates_lost),
        }

    def restore(self, snapshot: Mapping[str, object]) -> None:
        """Load a :meth:`snapshot` so the next :meth:`run` continues from it."""
        if snapshot.get("kind") != "federated_async":
            raise ValueError(
                "checkpoint was written by a synchronous simulation; it cannot "
                "restore into an asynchronous run"
            )
        if snapshot["strategy"] != self.strategy.name:
            raise ValueError(
                f"checkpoint was written by strategy '{snapshot['strategy']}', "
                f"this simulation runs '{self.strategy.name}'"
            )
        if int(snapshot["seed"]) != self.config.seed:
            raise ValueError(
                f"checkpoint was written at seed {snapshot['seed']}, "
                f"this simulation runs seed {self.config.seed}"
            )
        self._init_clock_state()
        self._clock = float(snapshot["clock"])
        self._version = int(snapshot["version"])
        self._global_vec = self._layout.pack(
            {key: np.asarray(value) for key, value in snapshot["global_state"].items()}
        )
        self.strategy.load_state_dict(self.context, snapshot["strategy_state"])
        self.context.ema.load_state_dict(snapshot["ema"])
        self._queue = EventQueue.from_state_dict(snapshot["queue"])
        self._jobs = {job["job_id"]: _PendingJob.from_dict(job)
                      for job in snapshot["jobs"]}
        self._results = {}
        for jid, data in snapshot["results"].items():
            result = ClientResult(
                state={}, num_samples=int(data["num_samples"]),
                train_loss=float(data["train_loss"]),
                init_loss=float(data["init_loss"]),
                client_id=int(data["client_id"]),
                metadata=dict(data.get("metadata", {})),
            )
            self._results[int(jid)] = AsyncUpdate(
                result=result, vec=np.asarray(data["vec"]),
                delta=np.asarray(data["delta"]),
                dispatch_version=int(data["dispatch_version"]),
            )
        self._batches = {
            int(batch["batch_id"]): {"vec": np.asarray(batch["vec"]),
                                     "jobs": [int(j) for j in batch["jobs"]],
                                     "flushed": int(batch["flushed"])}
            for batch in snapshot["batches"]
        }
        open_batch = snapshot.get("open_batch")
        self._open_batch = None if open_batch is None else int(open_batch)
        self._online = {int(c): bool(v) for c, v in snapshot["online"].items()}
        self._busy = {int(c) for c in snapshot["busy"]}
        self._avail_counts = {int(c): int(v) for c, v in snapshot["avail_counts"].items()}
        self._latency_counts = {int(c): int(v) for c, v in snapshot["latency_counts"].items()}
        self._dispatch_count = int(snapshot["dispatch_count"])
        self._batch_count = int(snapshot["batch_count"])
        self._job_count = int(snapshot["job_count"])
        self._updates_lost = int(snapshot["updates_lost"])
        self._populated = True
        self._resume = AsyncFLHistory.from_dict(snapshot["history"])

    # -- the virtual-clock loop --------------------------------------------- #
    def _default_callbacks(self) -> List[Callback]:
        defaults: List[Callback] = [SwitchTelemetry()]
        if self.config.eval_every:
            defaults.append(PeriodicEvaluation(self.config.eval_every))
        return defaults

    def _event_budget(self, target: int) -> int:
        if self.max_events is not None:
            return self.max_events
        # Generous: every commit needs at most buffer-size completions, plus
        # churn toggles and abandoned updates in between.
        return max(10_000, 500 * target + 100 * len(self.clients))

    def run(self, num_commits: Optional[int] = None) -> AsyncFLHistory:
        """Run until ``num_commits`` server commits (``config.num_rounds``).

        After :meth:`restore`, the run continues from the checkpoint's clock
        and event queue instead of starting at virtual time zero.
        """
        target = num_commits if num_commits is not None else self.config.num_rounds
        if target <= 0:
            raise ValueError("num_commits must be positive")
        if self._resume is not None:
            history, self._resume = self._resume, None
            if self._version > target:
                raise ValueError(
                    f"checkpoint is at commit {self._version} but the run has "
                    f"only {target} commit(s)"
                )
        else:
            history = AsyncFLHistory(strategy=self.strategy.name)
        callbacks = CallbackList([*self._default_callbacks(), *self.callbacks])
        if self.tracer is None and (self.config.trace or self.config.profile):
            self.tracer = Tracer()
        if self.tracer is not None:
            self.tracer.set_virtual_clock(lambda: self._clock)
            if self._version > 0 or self._clock > 0.0:
                # Earlier commits ran in another process; annotate the gap so
                # a resumed run's trace is well-formed.
                self.tracer.instant("resume_gap", version=self._version)
        self._history = history
        self._active_callbacks = callbacks
        self._stop_requested = False
        budget = self._event_budget(target)
        processed = 0
        try:
            callbacks.on_run_start(self, history)
            if not self._populated:
                self._initialize_population()
                self._fill_dispatch()
            elif self._version < target:
                # Checkpoints are written from commit callbacks, which fire
                # *before* the post-commit dispatch refill; perform that
                # pending refill now so the resumed run re-issues exactly the
                # dispatches the uninterrupted run issued right after the
                # checkpointed commit (all RNG stream counters were restored,
                # so the draws are identical).
                self._fill_dispatch()
            while self._version < target and not self._stop_requested:
                if not self._queue:
                    raise RuntimeError(
                        f"event queue ran dry at commit {self._version}/{target} "
                        f"(virtual time {self._clock:.1f}s): no client can "
                        f"produce further updates under this latency/"
                        f"availability configuration"
                    )
                if processed >= budget:
                    raise RuntimeError(
                        f"processed {processed} events without reaching "
                        f"{target} commits (at {self._version}); availability "
                        f"may be too low or the buffer too large — raise "
                        f"max_events to override"
                    )
                event = self._queue.pop()
                self._clock = event.time
                processed += 1
                if event.kind == "completion":
                    self._on_completion(event)
                else:
                    self._on_toggle(event)
            history.per_device_metric = self.evaluate()
            self._finalize_metadata(history)
            callbacks.on_run_end(self, history)
        finally:
            self._active_callbacks = None
            if self._owns_executor:
                self._executor.close()
        return history

    def _finalize_metadata(self, history: AsyncFLHistory) -> None:
        """Simulated-clock summary, derived from the commit records.

        Everything here is a pure function of ``history.rounds`` plus the
        snapshotted loss counter, so a resumed run reports identical values
        to an uninterrupted one.
        """
        staleness = [s for record in history.rounds for s in record.staleness]
        virtual = max((record.time for record in history.rounds), default=self._clock)
        history.metadata.update({
            "virtual_seconds": float(virtual),
            "virtual_hours": float(virtual / 3600.0),
            "num_commits": len(history.rounds),
            "num_updates": len(staleness),
            "mean_staleness": float(np.mean(staleness)) if staleness else 0.0,
            "max_staleness": int(max(staleness)) if staleness else 0,
            "updates_lost": int(self._updates_lost),
            "concurrency": int(self.concurrency),
        })
