"""Event-driven asynchronous FL: simulated clock, staleness, churn.

The synchronous loop of :mod:`repro.fl.simulation` models communication
rounds; this subsystem models *time*.  A deterministic event queue
(:mod:`~repro.fl.async_sim.events`) advances a virtual clock through client
dispatch, completion, dropout and rejoin events whose timings come from
per-device latency/availability models (:mod:`repro.devices.latency`), and
staleness-aware strategies (:mod:`~repro.fl.async_sim.strategies`) fold each
update into the global model as it arrives.

Entry points: :class:`AsyncFederatedSimulation` directly, or
``RunSpec(kind="federated_async", strategy="fedasync"|"fedbuff", ...)``
through the runner/CLI.
"""

from .events import EVENT_KINDS, EventQueue, SimEvent, event_rng
from .simulation import (
    AsyncFederatedSimulation,
    AsyncFLHistory,
    AsyncTelemetry,
    CommitRecord,
)
from .strategies import (
    AsyncCommit,
    AsyncStrategy,
    AsyncUpdate,
    FedAsync,
    FedBuff,
    polynomial_staleness,
)

__all__ = [
    "EVENT_KINDS",
    "SimEvent",
    "EventQueue",
    "event_rng",
    "CommitRecord",
    "AsyncFLHistory",
    "AsyncFederatedSimulation",
    "AsyncTelemetry",
    "AsyncUpdate",
    "AsyncCommit",
    "AsyncStrategy",
    "FedAsync",
    "FedBuff",
    "polynomial_staleness",
]
