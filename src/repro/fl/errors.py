"""Structured executor/round failure hierarchy for the FL execution layer.

Every failure the execution backends can produce is an :class:`ExecutorError`
carrying *where* it happened — ``client_id``, ``round_index``, ``attempt`` —
instead of an ad-hoc ``RuntimeError`` whose context lives only in its message.
The classes subclass ``RuntimeError`` so existing ``except RuntimeError``
call sites (and tests matching on message text) keep working unchanged.

Failures must survive two hostile transports:

* **pickling across process boundaries** — worker processes return or raise
  them through ``multiprocessing`` queues/pools.  Default exception pickling
  re-calls ``__init__(*args)`` and would drop the keyword-only context, so
  :meth:`ExecutorError.__reduce__` rebuilds instances explicitly, preserving
  the context fields and the worker-side ``remote_traceback`` text (the
  chained ``__cause__`` itself cannot be pickled, so its formatted traceback
  travels instead).
* **deferred raising** — under a :class:`~repro.fl.faults.FaultPolicy` the
  orchestrator *collects* failures per attempt instead of raising them, so
  the instances double as plain data (see ``ClientExecutor.run_attempts``).

This module is intentionally dependency-free: everything in ``repro.fl`` may
import it without cycles.
"""

from __future__ import annotations

from typing import Dict, Optional

__all__ = [
    "ExecutorError",
    "ClientFailure",
    "WorkerDied",
    "RoundTimeout",
    "RoundFailedError",
]


def _rebuild_executor_error(cls, message, client_id, round_index, attempt,
                            kind, remote_traceback):
    """Unpickle helper: rebuild an :class:`ExecutorError` with its context."""
    error = cls(message, client_id=client_id, round_index=round_index,
                attempt=attempt)
    error.kind = kind
    error.remote_traceback = remote_traceback
    return error


class ExecutorError(RuntimeError):
    """Base class of every structured failure the execution layer produces.

    Attributes
    ----------
    client_id / round_index / attempt:
        Which client job failed and on which retry attempt (``-1`` / ``0``
        when unknown, e.g. a worker that died between jobs).
    kind:
        Short failure classifier used for telemetry counters
        (``"crash"``, ``"worker_died"``, ``"timeout"``, ``"sanitize"``).
    remote_traceback:
        The formatted traceback captured inside a worker process, when the
        failure crossed a process boundary (``None`` otherwise).  The live
        ``__cause__`` chain cannot be pickled, so this is its durable form.
    """

    default_kind = "crash"

    def __init__(self, message: str, *, client_id: int = -1,
                 round_index: int = -1, attempt: int = 0,
                 kind: Optional[str] = None) -> None:
        super().__init__(message)
        self.client_id = int(client_id)
        self.round_index = int(round_index)
        self.attempt = int(attempt)
        self.kind = kind if kind is not None else self.default_kind
        self.remote_traceback: Optional[str] = None

    def __reduce__(self):
        return (_rebuild_executor_error,
                (type(self), str(self), self.client_id, self.round_index,
                 self.attempt, self.kind, self.remote_traceback))


class ClientFailure(ExecutorError):
    """One client's local update raised (or produced a rejected update).

    Wraps the original exception — chained via ``__cause__`` in-process, and
    as ``remote_traceback`` text across process boundaries — with the
    client/round/attempt context attached.  ``kind`` is ``"crash"`` for
    raised exceptions and ``"sanitize"`` for updates rejected at the
    aggregation boundary.
    """

    default_kind = "crash"


class WorkerDied(ExecutorError):
    """A worker process died (crash, kill, OOM) while owning a client job."""

    default_kind = "worker_died"


class RoundTimeout(ExecutorError):
    """A client exceeded the round's per-client wall-clock deadline."""

    default_kind = "timeout"


class RoundFailedError(ExecutorError):
    """A fault-tolerant round lost its quorum: fewer than ``min_clients`` survived.

    Carries the structured post-mortem: how many clients succeeded out of the
    selection, the configured quorum, and the *last* failure message per
    failed client.
    """

    default_kind = "quorum"

    def __init__(self, message: str, *, round_index: int = -1,
                 num_ok: int = 0, num_selected: int = 0, min_clients: int = 0,
                 failures: Optional[Dict[int, str]] = None) -> None:
        super().__init__(message, round_index=round_index)
        self.num_ok = int(num_ok)
        self.num_selected = int(num_selected)
        self.min_clients = int(min_clients)
        self.failures: Dict[int, str] = dict(failures or {})

    def __reduce__(self):  # structured fields differ from the base class
        return (_rebuild_round_failed,
                (str(self), self.round_index, self.num_ok, self.num_selected,
                 self.min_clients, self.failures, self.remote_traceback))


def _rebuild_round_failed(message, round_index, num_ok, num_selected,
                          min_clients, failures, remote_traceback):
    """Unpickle helper for :class:`RoundFailedError`."""
    error = RoundFailedError(message, round_index=round_index, num_ok=num_ok,
                             num_selected=num_selected, min_clients=min_clients,
                             failures=failures)
    error.remote_traceback = remote_traceback
    return error
