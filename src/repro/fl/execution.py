"""Pluggable client-execution backends for the FL simulation loop.

:class:`~repro.fl.simulation.FederatedSimulation.run_round` fans the per-client
local-training step out through a :class:`ClientExecutor`.  Three backends are
registered in :data:`EXECUTOR_REGISTRY`:

* ``serial``  — the reference path: one scratch model, clients trained in
  selection order on the calling thread.
* ``thread``  — a ``concurrent.futures.ThreadPoolExecutor`` with one scratch
  model per worker thread.  Useful when the training step releases the GIL
  (large BLAS calls) and for exercising the parallel protocol cheaply.
* ``process`` — a ``multiprocessing`` process pool (``fork`` start method).
  Clients train in worker processes, so the Python-heavy training loop scales
  with cores.  Inputs reach workers by fork inheritance (no pickling of model
  factories or datasets); only the :class:`~repro.fl.training.ClientResult`
  payloads return through pickle, made contiguous/pickle-safe via
  :func:`repro.nn.serialization.clone_state`.

Determinism contract (why every backend produces bit-identical runs):

1. Each client job derives its own RNG stream from ``(config.seed,
   round_index, client_id)`` via :func:`derive_client_seed` — never from a
   shared generator — so a client's update is a pure function of the broadcast
   weights and its identity, independent of scheduling.
2. ``client_update`` must treat the shared :class:`~repro.fl.strategies.base.
   FLContext` as read-only; per-client state updates travel in
   ``ClientResult.metadata`` and are applied server-side after the round.
3. Executors return results in *selection order* regardless of completion
   order, and strategies reduce them in canonical order (see
   :func:`repro.fl.strategies.base.canonical_results`), so aggregation is
   independent of both submission interleaving and worker count.
"""

from __future__ import annotations

import multiprocessing
import os
import sys
import threading
from concurrent.futures import ThreadPoolExecutor as _FuturesThreadPool
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..data.partition import ClientSpec
from ..nn.engine import engine_mode
from ..nn.serialization import clone_state
from ..registry import Registry
from .training import ClientResult

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (strategies import us)
    from ..nn.layers import Module
    from .strategies.base import FLContext, Strategy

__all__ = [
    "derive_client_seed",
    "client_rng",
    "run_client",
    "validate_max_workers",
    "ClientExecutor",
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "EXECUTOR_REGISTRY",
    "create_executor",
]

ModelFactory = Callable[[], "Module"]

# The historical per-client seed derivation (formerly duplicated inline in
# every strategy).  The constants are frozen: changing them would change every
# benchmark number the repo has ever produced.
_SEED_ROUND_STRIDE = 1_009
_SEED_RUN_STRIDE = 100_003


def derive_client_seed(seed: int, round_index: int, client_id: int) -> int:
    """The seed of one client's private RNG stream for one round.

    A pure function of ``(run seed, round, client)``: the stream is identical
    whether the client trains serially, on a thread, or in a worker process,
    and regardless of how many other clients train concurrently.
    """
    return seed * _SEED_RUN_STRIDE + round_index * _SEED_ROUND_STRIDE + client_id


def client_rng(seed: int, round_index: int, client_id: int) -> np.random.Generator:
    """A fresh generator positioned at the start of the client's stream."""
    return np.random.default_rng(derive_client_seed(seed, round_index, client_id))


def validate_max_workers(max_workers: Optional[int]) -> None:
    """Reject anything but ``None`` or a positive (non-bool) integer.

    The single validator shared by executor construction and
    :meth:`repro.runtime.RunSpec.validate`, so the two paths cannot drift.
    """
    if max_workers is not None and (
        not isinstance(max_workers, int)
        or isinstance(max_workers, bool)
        or max_workers < 1
    ):
        raise ValueError(
            f"max_workers must be a positive integer or None, got {max_workers!r}"
        )


def run_client(
    strategy: "Strategy",
    model: "Module",
    spec: ClientSpec,
    global_state: Dict[str, np.ndarray],
    context: "FLContext",
) -> ClientResult:
    """Run one client's local update and stamp the provenance aggregation needs.

    The whole update — including strategy-side evaluation such as
    HeteroSwitch's bias measurement — runs under the config's training engine
    (``flat`` or ``reference``); the mode is thread-local, so concurrent
    clients on different engines cannot interfere.
    """
    with engine_mode(getattr(context.config, "train_engine", "flat")):
        result = strategy.client_update(model, spec, global_state, context)
    result.client_id = spec.client_id
    return result


class ClientExecutor:
    """Interface: fan out one round's client updates, reduce deterministically.

    Parameters
    ----------
    max_workers:
        Upper bound on concurrent client jobs; ``None`` means one worker per
        CPU core.  The serial backend accepts (and ignores) it so every
        backend is constructed uniformly from :class:`~repro.runtime.RunSpec`
        fields.
    """

    name = "executor"

    def __init__(self, max_workers: Optional[int] = None) -> None:
        validate_max_workers(max_workers)
        self.max_workers = max_workers

    def run_round(
        self,
        strategy: "Strategy",
        model_fn: ModelFactory,
        selected: Sequence[ClientSpec],
        global_state: Dict[str, np.ndarray],
        context: "FLContext",
    ) -> List[ClientResult]:
        """Train every selected client and return results in selection order."""
        raise NotImplementedError

    def close(self) -> None:
        """Release worker resources (idempotent; the executor stays usable)."""

    def _effective_workers(self, num_jobs: int) -> int:
        limit = self.max_workers if self.max_workers is not None else (os.cpu_count() or 1)
        return max(1, min(limit, num_jobs))

    def __enter__(self) -> "ClientExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(max_workers={self.max_workers})"


class SerialExecutor(ClientExecutor):
    """The reference backend: clients train sequentially on one scratch model."""

    name = "serial"

    def __init__(self, max_workers: Optional[int] = None) -> None:
        super().__init__(max_workers)
        self._factory: Optional[ModelFactory] = None
        self._model: Optional["Module"] = None

    def run_round(self, strategy, model_fn, selected, global_state, context):
        if self._factory is not model_fn:
            self._factory, self._model = model_fn, model_fn()
        return [run_client(strategy, self._model, spec, global_state, context)
                for spec in selected]


class ThreadExecutor(ClientExecutor):
    """Thread-pool backend with one scratch model per worker thread.

    The pool is created lazily and survives across rounds (and runs), so
    models are built once per thread rather than once per client.
    """

    name = "thread"

    def __init__(self, max_workers: Optional[int] = None) -> None:
        super().__init__(max_workers)
        self._pool: Optional[_FuturesThreadPool] = None
        self._pool_workers = 0
        self._local = threading.local()

    def _ensure_pool(self, workers: int) -> _FuturesThreadPool:
        if self._pool is None or self._pool_workers < workers:
            self.close()
            self._pool = _FuturesThreadPool(max_workers=workers,
                                            thread_name_prefix="fl-client")
            self._pool_workers = workers
        return self._pool

    def _run_one(self, strategy, model_fn, spec, global_state, context):
        cache = self._local
        if getattr(cache, "factory", None) is not model_fn:
            cache.factory, cache.model = model_fn, model_fn()
        return run_client(strategy, cache.model, spec, global_state, context)

    def run_round(self, strategy, model_fn, selected, global_state, context):
        if not selected:
            return []
        pool = self._ensure_pool(self._effective_workers(len(selected)))
        futures = [pool.submit(self._run_one, strategy, model_fn, spec,
                               global_state, context)
                   for spec in selected]
        return [future.result() for future in futures]

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
            self._pool_workers = 0


# Handoff slot for the fork-based process pool.  The parent stores the round's
# job just before forking; children inherit it (copy-on-write) so neither the
# model factory (usually a closure) nor the client datasets are ever pickled.
_FORK_JOB: Optional[Tuple] = None
# Child-side scratch model, built on first use and reused for every client the
# child handles this round (children never outlive a round's pool).
_FORK_MODEL: Optional[Tuple[ModelFactory, "Module"]] = None


def _fork_client(position: int) -> ClientResult:
    """Process-pool entry point: train the round's ``position``-th client."""
    global _FORK_MODEL
    strategy, model_fn, selected, global_state, context = _FORK_JOB
    if _FORK_MODEL is None or _FORK_MODEL[0] is not model_fn:
        _FORK_MODEL = (model_fn, model_fn())
    result = run_client(strategy, _FORK_MODEL[1], selected[position],
                        global_state, context)
    # The only pickled payload: make the weights contiguous owned arrays so
    # the transfer back to the server is cheap and alias-free.
    result.state = clone_state(result.state)
    return result


class ProcessExecutor(ClientExecutor):
    """Process-pool backend (``fork`` start method, POSIX only).

    A fresh pool is forked per round: inputs travel by address-space
    inheritance (zero serialization), results return through pickle.  Workers
    see the context exactly as it was at the start of the round — the same
    snapshot semantics the read-only ``client_update`` contract guarantees for
    the serial and thread backends.
    """

    name = "process"

    def run_round(self, strategy, model_fn, selected, global_state, context):
        global _FORK_JOB
        if not selected:
            return []
        # macOS lists 'fork' as available but forking a threaded/Accelerate
        # process is unsafe there (objc fork-safety aborts), so require Linux
        # rather than merely fork availability.
        if sys.platform == "darwin" or "fork" not in multiprocessing.get_all_start_methods():
            raise RuntimeError(
                "the 'process' executor requires a fork-safe platform (Linux); "
                "use executor='thread' or 'serial' on this platform"
            )
        workers = self._effective_workers(len(selected))
        mp_context = multiprocessing.get_context("fork")
        # The module-global handoff supports one in-flight round per process:
        # the payload is set immediately before the fork and cleared before
        # returning, whatever happens in between.
        pool = None
        try:
            _FORK_JOB = (strategy, model_fn, list(selected), global_state, context)
            pool = mp_context.Pool(processes=workers)
            # Pool.map preserves submission order; chunksize=1 load-balances
            # heterogeneous client dataset sizes across workers.
            results = pool.map(_fork_client, range(len(selected)), chunksize=1)
            pool.close()
        except Exception:
            if pool is not None:
                pool.terminate()
            raise
        finally:
            if pool is not None:
                pool.join()
            _FORK_JOB = None
        return list(results)


EXECUTOR_REGISTRY: Registry[ClientExecutor] = Registry("executor", {
    "serial": SerialExecutor,
    "thread": ThreadExecutor,
    "process": ProcessExecutor,
})


def create_executor(name: str, **kwargs) -> ClientExecutor:
    """Instantiate an execution backend by registry name."""
    return EXECUTOR_REGISTRY.create(name, **kwargs)
