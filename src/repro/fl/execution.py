"""Pluggable client-execution backends for the FL simulation loop.

:class:`~repro.fl.simulation.FederatedSimulation.run_round` fans the per-client
local-training step out through a :class:`ClientExecutor`.  Three backends are
registered in :data:`EXECUTOR_REGISTRY`:

* ``serial``  — the reference path: one scratch model, clients trained in
  selection order on the calling thread.
* ``thread``  — a ``concurrent.futures.ThreadPoolExecutor`` with one scratch
  model per worker thread.  Useful when the training step releases the GIL
  (large BLAS calls) and for exercising the parallel protocol cheaply.
* ``process`` — a ``multiprocessing`` process pool (``fork`` start method).
  Clients train in worker processes, so the Python-heavy training loop scales
  with cores.  Inputs reach workers by fork inheritance (no pickling of model
  factories or datasets); only the :class:`~repro.fl.training.ClientResult`
  payloads return through pickle, made contiguous/pickle-safe via
  :func:`repro.nn.serialization.clone_state`.
* ``shm``     — the fleet-scale backend: a *persistent* fork-based worker pool
  plus a ``multiprocessing.shared_memory`` broadcast segment.  The server
  packs the global weights into the segment once per round
  (:class:`~repro.nn.serialization.StateLayout` order); workers attach
  read-only views, train, and ship back only a compact packed update vector.
  Results stream to the server in selection order (``streaming = True``), so
  together with the strategies' streaming reductions one round is O(1) in
  clients/round on the server side.

Determinism contract (why every backend produces bit-identical runs):

1. Each client job derives its own RNG stream from ``(config.seed,
   round_index, client_id)`` via :func:`derive_client_seed` — never from a
   shared generator — so a client's update is a pure function of the broadcast
   weights and its identity, independent of scheduling.
2. ``client_update`` must treat the shared :class:`~repro.fl.strategies.base.
   FLContext` as read-only; per-client state updates travel in
   ``ClientResult.metadata`` and are applied server-side after the round.
3. Executors return results in *selection order* regardless of completion
   order, and strategies reduce them in canonical order (see
   :func:`repro.fl.strategies.base.canonical_results`), so aggregation is
   independent of both submission interleaving and worker count.
"""

from __future__ import annotations

import multiprocessing
import os
import queue as queue_module
import sys
import threading
import time
import traceback
from collections import deque
from concurrent.futures import ThreadPoolExecutor as _FuturesThreadPool
from concurrent.futures import wait as _futures_wait
from typing import TYPE_CHECKING, Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..data.partition import ClientSpec
from ..nn.engine import engine_scope
from ..nn.serialization import StateLayout, clone_state
from ..obs.profiling import PROFILER
from ..registry import Registry
from .errors import ClientFailure, ExecutorError, RoundTimeout, WorkerDied
from .training import ClientResult

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (strategies import us)
    from ..nn.layers import Module
    from .faults import FaultPolicy
    from .strategies.base import FLContext, Strategy

__all__ = [
    "derive_client_seed",
    "client_rng",
    "run_client",
    "validate_max_workers",
    "ClientExecutor",
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "SharedMemoryExecutor",
    "EXECUTOR_REGISTRY",
    "create_executor",
]

#: A (spec, attempt) pair: one client job inside a fault-tolerant wave.
AttemptJob = Tuple[ClientSpec, int]

# Exit code of a worker killed by an injected "kill" fault: distinctive in
# logs and never produced by CPython itself.
_KILL_EXIT_CODE = 173

ModelFactory = Callable[[], "Module"]

# The historical per-client seed derivation (formerly duplicated inline in
# every strategy).  The constants are frozen: changing them would change every
# benchmark number the repo has ever produced.
_SEED_ROUND_STRIDE = 1_009
_SEED_RUN_STRIDE = 100_003


def derive_client_seed(seed: int, round_index: int, client_id: int) -> int:
    """The seed of one client's private RNG stream for one round.

    A pure function of ``(run seed, round, client)``: the stream is identical
    whether the client trains serially, on a thread, or in a worker process,
    and regardless of how many other clients train concurrently.
    """
    return seed * _SEED_RUN_STRIDE + round_index * _SEED_ROUND_STRIDE + client_id


def client_rng(seed: int, round_index: int, client_id: int) -> np.random.Generator:
    """A fresh generator positioned at the start of the client's stream."""
    return np.random.default_rng(derive_client_seed(seed, round_index, client_id))


def validate_max_workers(max_workers: Optional[int]) -> None:
    """Reject anything but ``None`` or a positive (non-bool) integer.

    The single validator shared by executor construction and
    :meth:`repro.runtime.RunSpec.validate`, so the two paths cannot drift.
    """
    if max_workers is not None and (
        not isinstance(max_workers, int)
        or isinstance(max_workers, bool)
        or max_workers < 1
    ):
        raise ValueError(
            f"max_workers must be a positive integer or None, got {max_workers!r}"
        )


def _inject_pre_compute_fault(fault: str, spec: ClientSpec,
                              context: "FLContext", attempt: int,
                              client_timeout: Optional[float]) -> None:
    """Apply an injected fault that fires *before* the local update runs.

    ``crash`` raises a :class:`ClientFailure`; ``kill`` terminates the worker
    process mid-task (``os._exit``, bypassing every cleanup handler — the
    realistic OOM-kill shape) or, in the main process where dying would take
    the server down, degrades to a raised :class:`WorkerDied` so the failure
    schedule and retry behaviour stay identical across backends; ``hang``
    sleeps for the plan's ``hang_seconds``.  A hang is judged against the
    policy's per-client deadline *deterministically* — configured value
    against configured value, with the sleep capped at the deadline — so a
    chaos run's timeouts replay bit-for-bit regardless of host speed.
    """
    client_id, round_index = spec.client_id, context.round_index
    if fault == "crash":
        raise ClientFailure(
            f"injected crash: client {client_id} raised on attempt {attempt} "
            f"of round {round_index}", client_id=client_id,
            round_index=round_index, attempt=attempt, kind="crash")
    if fault == "kill":
        if multiprocessing.current_process().name != "MainProcess":
            os._exit(_KILL_EXIT_CODE)
        raise WorkerDied(
            f"injected kill: the worker training client {client_id} died on "
            f"attempt {attempt} of round {round_index} (simulated in-process)",
            client_id=client_id, round_index=round_index, attempt=attempt)
    if fault == "hang":
        hang_seconds = context.config.faults.hang_seconds
        if client_timeout is not None and hang_seconds >= client_timeout:
            time.sleep(min(hang_seconds, client_timeout))
            raise RoundTimeout(
                f"injected hang: client {client_id} exceeded the "
                f"{client_timeout:g}s per-client deadline on attempt "
                f"{attempt} of round {round_index}", client_id=client_id,
                round_index=round_index, attempt=attempt)
        time.sleep(hang_seconds)


def _poison_result(fault: str, result: ClientResult) -> None:
    """Corrupt a computed update the way a buggy/hostile client would.

    ``nan`` flips the first element of the first tensor to NaN (enough to
    poison every weighted average it touches); ``shape`` prepends a unit axis
    to the first tensor, taking it out of the global layout.  Both mutate
    fresh copies so a shared parameter arena is never corrupted in place.
    """
    key = next(iter(result.state))
    value = np.asarray(result.state[key]).copy()
    if fault == "nan":
        value.reshape(-1)[0] = np.nan
        result.state[key] = value
    else:  # "shape"
        result.state[key] = value.reshape((1,) + value.shape)


def run_client(
    strategy: "Strategy",
    model: "Module",
    spec: ClientSpec,
    global_state: Dict[str, np.ndarray],
    context: "FLContext",
    attempt: int = 0,
) -> ClientResult:
    """Run one client's local update and stamp the provenance aggregation needs.

    The whole update — including strategy-side evaluation such as
    HeteroSwitch's bias measurement — runs under the config's training engine
    (``flat`` or ``reference``) *and* compute dtype (``float64`` or
    ``float32``); both modes are thread-local, so concurrent clients on
    different engines or precisions cannot interfere.

    When the config asks for observability (``trace``/``profile``), the
    update is wall-clock timed — and, under ``profile``, run with the kernel
    timers active — and a compact scalar payload is packed into
    ``result.metadata["obs"]``.  Metadata already rides the result path of
    every backend (including the shm result queue), so this is the single
    cross-process collection point; the server merges the payloads into the
    run-level trace.  Purely observational: the training computation is
    identical with and without it.

    This is also the single chokepoint of the fault layer, shared by every
    backend:

    * When ``config.faults`` is set, the seeded :class:`~repro.fl.faults.
      FaultPlan` decides — as a pure function of ``(plan seed, round,
      client, attempt)`` — whether this job crashes, hangs, returns a
      poisoned/misshapen update, or kills its worker.  ``attempt`` feeds
      only the fault draw, never the client's RNG stream, so a retried
      client is bit-identical to a first-try client.
    * Exceptions escaping ``client_update`` are wrapped into
      :class:`~repro.fl.errors.ClientFailure` (original chained as
      ``__cause__``) with the client/round/attempt context attached.
    * Under a policy with ``client_timeout``, the measured wall time of a
      genuine straggler raises :class:`~repro.fl.errors.RoundTimeout`
      post-hoc (injected hangs are judged deterministically upstream).
    """
    config = context.config
    plan = getattr(config, "faults", None)
    policy = getattr(config, "fault_policy", None)
    client_timeout = policy.client_timeout if policy is not None else None
    fault = None
    if plan is not None and plan.active:
        fault = plan.decide(context.round_index, spec.client_id, attempt)
    if fault is not None:
        _inject_pre_compute_fault(fault, spec, context, attempt, client_timeout)
    profile = bool(getattr(config, "profile", False))
    observed = profile or bool(getattr(config, "trace", False))
    timed = observed or client_timeout is not None
    start = time.perf_counter() if timed else 0.0
    try:
        with engine_scope(config):
            if profile:
                PROFILER.drain()  # drop residue from a previously aborted client
                PROFILER.activate()
                try:
                    result = strategy.client_update(model, spec, global_state,
                                                    context)
                finally:
                    PROFILER.deactivate()
                kernels = PROFILER.drain()
            else:
                result = strategy.client_update(model, spec, global_state,
                                                context)
                kernels = {}
    except ExecutorError:
        raise
    except Exception as exc:
        raise ClientFailure(
            f"client {spec.client_id} failed on attempt {attempt} of round "
            f"{context.round_index}: {type(exc).__name__}: {exc}",
            client_id=spec.client_id, round_index=context.round_index,
            attempt=attempt) from exc
    duration = (time.perf_counter() - start) if timed else 0.0
    result.client_id = spec.client_id
    if observed:
        result.metadata["obs"] = {
            "duration": float(duration),
            "kernels": {name: [int(calls), float(seconds)]
                        for name, (calls, seconds) in sorted(kernels.items())},
        }
    if fault in ("nan", "shape"):
        _poison_result(fault, result)
    if client_timeout is not None and duration > client_timeout:
        raise RoundTimeout(
            f"client {spec.client_id} exceeded the {client_timeout:g}s "
            f"per-client deadline ({duration:.3f}s) on attempt {attempt} of "
            f"round {context.round_index}", client_id=spec.client_id,
            round_index=context.round_index, attempt=attempt)
    return result


def _capture_attempt(strategy: "Strategy", model: "Module", spec: ClientSpec,
                     global_state: Dict[str, np.ndarray],
                     context: "FLContext", attempt: int):
    """Run one attempt, returning failures as values instead of raising.

    The building block of every backend's ``run_attempts``: client-level
    failures become :class:`~repro.fl.errors.ExecutorError` outcomes (with
    the formatted traceback attached for cross-process diagnosis), while
    non-``Exception`` escapes like ``KeyboardInterrupt`` still propagate.
    """
    try:
        return run_client(strategy, model, spec, global_state, context,
                          attempt=attempt)
    except ExecutorError as exc:
        if exc.remote_traceback is None:
            exc.remote_traceback = traceback.format_exc()
        return exc


class ClientExecutor:
    """Interface: fan out one round's client updates, reduce deterministically.

    Parameters
    ----------
    max_workers:
        Upper bound on concurrent client jobs; ``None`` means one worker per
        CPU core.  The serial backend accepts (and ignores) it so every
        backend is constructed uniformly from :class:`~repro.runtime.RunSpec`
        fields.
    """

    name = "executor"

    #: Whether the simulation should consume this backend through
    #: :meth:`iter_round` + ``Strategy.aggregate_stream`` (results folded into
    #: the aggregate one at a time) instead of materializing the round with
    #: :meth:`run_round`.  Only backends whose ``iter_round`` is genuinely
    #: incremental should set this; the golden-path backends keep it ``False``
    #: so their behaviour is byte-for-byte unchanged.
    streaming = False

    def __init__(self, max_workers: Optional[int] = None) -> None:
        validate_max_workers(max_workers)
        self.max_workers = max_workers

    def run_round(
        self,
        strategy: "Strategy",
        model_fn: ModelFactory,
        selected: Sequence[ClientSpec],
        global_state: Dict[str, np.ndarray],
        context: "FLContext",
    ) -> List[ClientResult]:
        """Train every selected client and return results in selection order."""
        raise NotImplementedError

    def iter_round(
        self,
        strategy: "Strategy",
        model_fn: ModelFactory,
        selected: Sequence[ClientSpec],
        global_state: Dict[str, np.ndarray],
        context: "FLContext",
    ) -> Iterator[ClientResult]:
        """Yield the round's client results in selection order.

        The streaming counterpart of :meth:`run_round`: consumers may fold
        each result into an accumulator and release it before the next one
        arrives.  The default materializes the round first, so every backend
        supports the protocol; backends that can produce results
        incrementally override this and advertise it via :attr:`streaming`.
        """
        yield from self.run_round(strategy, model_fn, selected, global_state,
                                  context)

    def run_attempts(
        self,
        strategy: "Strategy",
        model_fn: ModelFactory,
        jobs: Sequence[AttemptJob],
        global_state: Dict[str, np.ndarray],
        context: "FLContext",
        policy: Optional["FaultPolicy"] = None,
    ) -> List[object]:
        """Train one wave of ``(spec, attempt)`` jobs, capturing failures.

        The fault-tolerant counterpart of :meth:`run_round`, used by
        :func:`repro.fl.faults.run_tolerant_round`: instead of failing fast,
        every job produces an outcome — a :class:`ClientResult` on success or
        an :class:`~repro.fl.errors.ExecutorError` describing the failure —
        aligned with ``jobs``.  Backends never raise for client-level faults
        here (worker deaths included: the process backend detects lost jobs
        via ``policy.worker_timeout``, the shm backend heals its pool in
        place), so one bad client can never abort its round-mates.
        """
        raise NotImplementedError

    def close(self) -> None:
        """Release worker resources (idempotent; the executor stays usable)."""

    def _effective_workers(self, num_jobs: int) -> int:
        limit = self.max_workers if self.max_workers is not None else (os.cpu_count() or 1)
        return max(1, min(limit, num_jobs))

    def __enter__(self) -> "ClientExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(max_workers={self.max_workers})"


class SerialExecutor(ClientExecutor):
    """The reference backend: clients train sequentially on one scratch model."""

    name = "serial"

    def __init__(self, max_workers: Optional[int] = None) -> None:
        super().__init__(max_workers)
        self._factory: Optional[ModelFactory] = None
        self._model: Optional["Module"] = None
        self._model_dtype: Optional[str] = None

    def _scratch_model(self, model_fn, context) -> "Module":
        # The scratch-model cache is keyed on (factory, compute dtype): the
        # same factory at a different precision must rebuild, or a float64
        # model would silently serve a float32 round (and vice versa).
        dtype = getattr(context.config, "dtype", "float64")
        if self._factory is not model_fn or self._model_dtype != dtype:
            with engine_scope(context.config):
                self._factory, self._model = model_fn, model_fn()
            self._model_dtype = dtype
        return self._model

    def run_round(self, strategy, model_fn, selected, global_state, context):
        return list(self.iter_round(strategy, model_fn, selected, global_state,
                                    context))

    def iter_round(self, strategy, model_fn, selected, global_state, context):
        model = self._scratch_model(model_fn, context)
        for spec in selected:
            yield run_client(strategy, model, spec, global_state, context)

    def run_attempts(self, strategy, model_fn, jobs, global_state, context,
                     policy=None):
        model = self._scratch_model(model_fn, context)
        return [_capture_attempt(strategy, model, spec, global_state, context,
                                 attempt)
                for spec, attempt in jobs]


class ThreadExecutor(ClientExecutor):
    """Thread-pool backend with one scratch model per worker thread.

    The pool is created lazily and survives across rounds (and runs), so
    models are built once per thread rather than once per client.
    """

    name = "thread"

    def __init__(self, max_workers: Optional[int] = None) -> None:
        super().__init__(max_workers)
        self._pool: Optional[_FuturesThreadPool] = None
        self._pool_workers = 0
        self._local = threading.local()

    def _ensure_pool(self, workers: int) -> _FuturesThreadPool:
        if self._pool is None or self._pool_workers < workers:
            self.close()
            self._pool = _FuturesThreadPool(max_workers=workers,
                                            thread_name_prefix="fl-client")
            self._pool_workers = workers
        return self._pool

    def _thread_model(self, model_fn, context) -> "Module":
        cache = self._local
        dtype = getattr(context.config, "dtype", "float64")
        if (getattr(cache, "factory", None) is not model_fn
                or getattr(cache, "dtype", None) != dtype):
            with engine_scope(context.config):
                cache.factory, cache.model = model_fn, model_fn()
            cache.dtype = dtype
        return cache.model

    def _run_one(self, strategy, model_fn, spec, global_state, context):
        model = self._thread_model(model_fn, context)
        return run_client(strategy, model, spec, global_state, context)

    def _attempt_one(self, strategy, model_fn, spec, global_state, context,
                     attempt):
        model = self._thread_model(model_fn, context)
        return _capture_attempt(strategy, model, spec, global_state, context,
                                attempt)

    def run_round(self, strategy, model_fn, selected, global_state, context):
        if not selected:
            return []
        pool = self._ensure_pool(self._effective_workers(len(selected)))
        futures = [pool.submit(self._run_one, strategy, model_fn, spec,
                               global_state, context)
                   for spec in selected]
        try:
            return [future.result() for future in futures]
        except BaseException:
            # Fail fast: without this, a failing first client would still wait
            # for (and silently discard) every later client's result one
            # ``future.result()`` at a time.  Cancel whatever has not started,
            # then drain the already-running jobs so the pool is quiescent —
            # and safely reusable — when the error propagates.
            for future in futures:
                future.cancel()
            _futures_wait(futures)
            raise

    def run_attempts(self, strategy, model_fn, jobs, global_state, context,
                     policy=None):
        if not jobs:
            return []
        pool = self._ensure_pool(self._effective_workers(len(jobs)))
        futures = [pool.submit(self._attempt_one, strategy, model_fn, spec,
                               global_state, context, attempt)
                   for spec, attempt in jobs]
        try:
            # _attempt_one captures client-level failures as values, so a
            # result() raise here is a non-Exception escape — drain and
            # propagate just like the fail-fast path above.
            return [future.result() for future in futures]
        except BaseException:
            for future in futures:
                future.cancel()
            _futures_wait(futures)
            raise

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
            self._pool_workers = 0


def _require_fork_platform(executor_name: str) -> None:
    """Gate fork-based backends to platforms where forking is actually safe.

    macOS lists 'fork' as available but forking a threaded/Accelerate process
    is unsafe there (objc fork-safety aborts), so require Linux rather than
    merely fork availability.
    """
    if sys.platform == "darwin" or "fork" not in multiprocessing.get_all_start_methods():
        raise RuntimeError(
            f"the '{executor_name}' executor requires a fork-safe platform "
            f"(Linux); use executor='thread' or 'serial' on this platform"
        )


# Handoff slot for the fork-based process pool.  The parent stores the round's
# job just before forking; children inherit it (copy-on-write) so neither the
# model factory (usually a closure) nor the client datasets are ever pickled.
_FORK_JOB: Optional[Tuple] = None
# Child-side scratch model, built on first use and reused for every client the
# child handles this round (children never outlive a round's pool).  Keyed on
# (factory, compute dtype) so mixed-precision runs in one process never share
# a wrong-dtype scratch model.
_FORK_MODEL: Optional[Tuple[ModelFactory, str, "Module"]] = None


def _fork_scratch_model(model_fn: ModelFactory, context: "FLContext") -> "Module":
    """The forked child's scratch model, built once per (factory, dtype)."""
    global _FORK_MODEL
    dtype = getattr(context.config, "dtype", "float64")
    if (_FORK_MODEL is None or _FORK_MODEL[0] is not model_fn
            or _FORK_MODEL[1] != dtype):
        with engine_scope(context.config):
            _FORK_MODEL = (model_fn, dtype, model_fn())
    return _FORK_MODEL[2]


def _fork_client(position: int) -> ClientResult:
    """Process-pool entry point: train the round's ``position``-th client."""
    strategy, model_fn, selected, global_state, context = _FORK_JOB
    model = _fork_scratch_model(model_fn, context)
    result = run_client(strategy, model, selected[position], global_state,
                        context)
    # The only pickled payload: make the weights contiguous owned arrays so
    # the transfer back to the server is cheap and alias-free.
    result.state = clone_state(result.state)
    return result


# Handoff slot for fault-tolerant process waves (same copy-on-write trick as
# _FORK_JOB, but the job list carries (spec, attempt) pairs).
_FORK_ATTEMPTS: Optional[Tuple] = None


def _fork_attempt(index: int):
    """Process-pool entry point for one fault-tolerant attempt job."""
    strategy, model_fn, jobs, global_state, context = _FORK_ATTEMPTS
    spec, attempt = jobs[index]
    model = _fork_scratch_model(model_fn, context)
    outcome = _capture_attempt(strategy, model, spec, global_state, context,
                               attempt)
    if isinstance(outcome, ClientResult):
        outcome.state = clone_state(outcome.state)
    return outcome


class ProcessExecutor(ClientExecutor):
    """Process-pool backend (``fork`` start method, POSIX only).

    A fresh pool is forked per round: inputs travel by address-space
    inheritance (zero serialization), results return through pickle.  Workers
    see the context exactly as it was at the start of the round — the same
    snapshot semantics the read-only ``client_update`` contract guarantees for
    the serial and thread backends.
    """

    name = "process"

    def run_round(self, strategy, model_fn, selected, global_state, context):
        global _FORK_JOB
        if not selected:
            return []
        _require_fork_platform(self.name)
        workers = self._effective_workers(len(selected))
        mp_context = multiprocessing.get_context("fork")
        # The module-global handoff supports one in-flight round per process:
        # the payload is set immediately before the fork and cleared before
        # returning, whatever happens in between.
        pool = None
        try:
            _FORK_JOB = (strategy, model_fn, list(selected), global_state, context)
            pool = mp_context.Pool(processes=workers)
            # Pool.map preserves submission order; chunksize=1 load-balances
            # heterogeneous client dataset sizes across workers.
            results = pool.map(_fork_client, range(len(selected)), chunksize=1)
            pool.close()
        except Exception:
            if pool is not None:
                pool.terminate()
            raise
        finally:
            if pool is not None:
                pool.join()
            _FORK_JOB = None
        return list(results)

    def run_attempts(self, strategy, model_fn, jobs, global_state, context,
                     policy=None):
        global _FORK_ATTEMPTS
        if not jobs:
            return []
        _require_fork_platform(self.name)
        jobs = list(jobs)
        worker_timeout = policy.worker_timeout if policy is not None else 30.0
        workers = self._effective_workers(len(jobs))
        mp_context = multiprocessing.get_context("fork")
        outcomes: List[object] = [None] * len(jobs)
        pool = None
        try:
            _FORK_ATTEMPTS = (strategy, model_fn, jobs, global_state, context)
            pool = mp_context.Pool(processes=workers)
            handles = [pool.apply_async(_fork_attempt, (index,))
                       for index in range(len(jobs))]
            pool.close()
            # A worker killed mid-task (os._exit, OOM) loses its job: the
            # pool respawns the worker and finishes the *queued* jobs, but
            # the in-flight AsyncResult never becomes ready.  Lost jobs are
            # therefore detected by stall: when no job completes for
            # worker_timeout, whatever is still pending belonged to dead
            # workers.  The deadline resets on every completion so slow
            # healthy rounds never trip it.
            pending = set(range(len(jobs)))
            deadline = time.monotonic() + worker_timeout
            while pending:
                progressed = False
                for index in sorted(pending):
                    handle = handles[index]
                    if not handle.ready():
                        continue
                    pending.discard(index)
                    progressed = True
                    try:
                        outcomes[index] = handle.get()
                    except ExecutorError as exc:
                        outcomes[index] = exc
                    except Exception as exc:
                        spec, attempt = jobs[index]
                        failure = ClientFailure(
                            f"client {spec.client_id} failed on attempt "
                            f"{attempt} of round {context.round_index}: "
                            f"{type(exc).__name__}: {exc}",
                            client_id=spec.client_id,
                            round_index=context.round_index, attempt=attempt)
                        failure.__cause__ = exc
                        outcomes[index] = failure
                if progressed:
                    deadline = time.monotonic() + worker_timeout
                elif time.monotonic() >= deadline:
                    for index in pending:
                        spec, attempt = jobs[index]
                        outcomes[index] = WorkerDied(
                            f"process worker owning client {spec.client_id} "
                            f"died (no result within {worker_timeout:g}s) on "
                            f"attempt {attempt} of round "
                            f"{context.round_index}",
                            client_id=spec.client_id,
                            round_index=context.round_index, attempt=attempt)
                    pool.terminate()
                    break
                else:
                    time.sleep(0.01)
        except BaseException:
            if pool is not None:
                pool.terminate()
            raise
        finally:
            if pool is not None:
                pool.join()
            _FORK_ATTEMPTS = None
        return outcomes


# Fork handoff for the persistent shared-memory pool: the (strategy, model
# factory) pair is staged here immediately before the workers fork and cleared
# right after, so neither object is ever pickled — same trick as _FORK_JOB,
# but inherited once for the pool's whole lifetime instead of per round.
_SHM_STATIC: Optional[Tuple["Strategy", ModelFactory]] = None


def _shm_worker_main(worker_index: int, task_queue, result_queue) -> None:
    """Long-lived shm worker loop: attach → train clients → ship packed vectors.

    Protocol (all messages are tuples tagged by their first element):

    * ``("round", header)`` — start-of-round broadcast.  The header names the
      shared-memory segment holding the packed global weights plus the layout
      (keys/shapes) to interpret it, and carries the round's context snapshot
      (config, EMA state, selection, server storage).
    * ``("client", position, spec, storage, attempt)`` — train one client;
      reply on the shared result queue with ``("ok", worker_index, position,
      vector, num_samples, train_loss, init_loss, client_id, metadata)``
      where ``vector`` is the layout-packed update — the model weights
      themselves never travel back as a dict.  ``attempt`` feeds the fault
      layer only (see :func:`run_client`).
    * ``("stop",)`` — exit the loop.

    Failures reply ``("err", worker_index, position, failure)`` — a pickled
    :class:`~repro.fl.errors.ExecutorError` carrying the client/round/attempt
    context and the worker-side traceback text — and keep the worker alive.
    An update that does not fit the broadcast layout (wrong shape/keys) is
    rejected *here*, at the streaming aggregation boundary, as a
    ``ClientFailure(kind="sanitize")``: a misshapen tensor cannot travel
    through the packed vector at all.  The segment is mapped read-only via
    ``np.memmap``
    on its ``/dev/shm`` backing file rather than ``SharedMemory(name=...)``:
    attaching through the class would enroll the segment with this process's
    ``resource_tracker``, whose cleanup would fight the parent's over who
    unlinks it.
    """
    static = _SHM_STATIC
    assert static is not None, "worker forked without a staged (strategy, model_fn)"
    strategy, model_fn = static
    model: Optional["Module"] = None
    model_dtype: Optional[str] = None
    layout: Optional[StateLayout] = None
    shm_name: Optional[str] = None
    shm_vector: Optional[np.ndarray] = None
    round_context: Optional["FLContext"] = None
    while True:
        message = task_queue.get()
        kind = message[0]
        if kind == "stop":
            return
        try:
            if kind == "round":
                # Late imports: strategies.base imports this module, and the
                # core package's __init__ pulls the strategies in too.
                from ..core.ema import EMALossTracker
                from .strategies.base import FLContext

                header = message[1]
                layout = StateLayout.from_keys_shapes(
                    header["keys"], header["shapes"],
                    dtype=np.dtype(header.get("dtype", "<f8")))
                if shm_name != header["shm_name"]:
                    # The segment name changes whenever the server re-creates
                    # the segment — including on a dtype change — so keying
                    # the mapping on the name alone stays sufficient.
                    shm_name = header["shm_name"]
                    shm_vector = np.memmap("/dev/shm/" + shm_name,
                                           dtype=layout.dtype, mode="r",
                                           shape=(layout.size,))
                ema = EMALossTracker(alpha=header["config"].ema_alpha)
                ema.load_state_dict(header["ema"])
                round_context = FLContext(
                    config=header["config"],
                    ema=ema,
                    round_index=header["round_index"],
                    round_selection=list(header["round_selection"]),
                    server_storage=header["server_storage"],
                )
            elif kind == "client":
                position, spec, storage = message[1], message[2], message[3]
                attempt = message[4] if len(message) > 4 else 0
                round_context.client_storage[spec.client_id] = storage
                # Zero-copy broadcast: read-only views into the shared segment.
                # Safe because client_update treats global_state as read-only
                # and model loading copies values in (load_state_dict).
                global_state = layout.unpack(np.asarray(shm_vector))
                dtype = getattr(round_context.config, "dtype", "float64")
                if model is None or model_dtype != dtype:
                    with engine_scope(round_context.config):
                        model = model_fn()
                    model_dtype = dtype
                result = run_client(strategy, model, spec, global_state,
                                    round_context, attempt=attempt)
                try:
                    vector = layout.pack(result.state)
                except Exception as exc:
                    raise ClientFailure(
                        f"client {spec.client_id} update rejected at the shm "
                        f"boundary on attempt {attempt} of round "
                        f"{round_context.round_index}: {exc}",
                        client_id=spec.client_id,
                        round_index=round_context.round_index,
                        attempt=attempt, kind="sanitize") from exc
                result_queue.put(("ok", worker_index, position, vector,
                                  result.num_samples, result.train_loss,
                                  result.init_loss, result.client_id,
                                  result.metadata))
        except BaseException as exc:
            position = message[1] if kind == "client" else -1
            if isinstance(exc, ExecutorError):
                failure = exc
            else:
                failure = ClientFailure(
                    f"shm worker failed processing a '{kind}' message:\n"
                    + traceback.format_exc())
            if failure.remote_traceback is None:
                failure.remote_traceback = traceback.format_exc()
            result_queue.put(("err", worker_index, position, failure))


class SharedMemoryExecutor(ClientExecutor):
    """Fleet-scale backend: persistent fork pool + shared-memory broadcast.

    Differences from :class:`ProcessExecutor` that make hundreds of clients
    per round tractable:

    * **Persistent workers** — the pool forks once (per ``(strategy,
      model_fn)`` pair) and survives across rounds and runs, so scratch
      models are built once per worker, not once per round.
    * **Shared-memory broadcast** — the global weights are packed once into a
      named ``multiprocessing.shared_memory`` segment; workers map it
      read-only.  Per-round communication to each worker is a small header
      (segment name, layout, context snapshot), not a copy of the model.
    * **Compact returns** — workers reply with the layout-packed update
      vector; the server unpacks straight into the streaming aggregation.
    * **Streaming rounds** — :meth:`iter_round` yields results in selection
      order as they complete (a reorder buffer bridges completion order to
      selection order), and advertises ``streaming = True`` so the simulation
      folds each update into the aggregate and frees it immediately: server
      memory per round is O(model), not O(clients x model).

    Task dispatch is dynamically load-balanced: each worker gets one client
    up front and receives the next one when its result arrives.  Determinism
    is unaffected — every client's RNG stream is a pure function of
    ``(seed, round, client_id)`` and reduction follows selection order — so
    runs are bit-identical to the serial reference.
    """

    name = "shm"
    streaming = True

    def __init__(self, max_workers: Optional[int] = None) -> None:
        super().__init__(max_workers)
        self._workers: List[Tuple[Any, Any]] = []  # (Process, SimpleQueue)
        self._result_queue = None
        self._static: Optional[Tuple["Strategy", ModelFactory]] = None
        self._segment = None
        self._segment_vector: Optional[np.ndarray] = None
        self._segment_size = 0

    # -- pool lifecycle --------------------------------------------------- #
    def _ensure_pool(self, strategy: "Strategy", model_fn: ModelFactory,
                     workers: int) -> None:
        global _SHM_STATIC
        if self._workers:
            reusable = (
                self._static is not None
                and self._static[0] is strategy
                and self._static[1] is model_fn
                and len(self._workers) >= workers
                and all(proc.is_alive() for proc, _ in self._workers)
            )
            if reusable:
                return
            self._shutdown_pool(graceful=True)
        mp_context = multiprocessing.get_context("fork")
        self._result_queue = mp_context.Queue()
        # Task queues are SimpleQueues on purpose: their put() writes the pipe
        # synchronously under a lock, so the parent never owns Queue feeder
        # threads whose locks a later fork could copy in a held state.
        _SHM_STATIC = (strategy, model_fn)
        try:
            for index in range(workers):
                task_queue = mp_context.SimpleQueue()
                process = mp_context.Process(
                    target=_shm_worker_main,
                    args=(index, task_queue, self._result_queue),
                    daemon=True,
                )
                process.start()
                self._workers.append((process, task_queue))
        finally:
            _SHM_STATIC = None
        self._static = (strategy, model_fn)

    def _shutdown_pool(self, graceful: bool) -> None:
        workers, self._workers = self._workers, []
        self._static = None
        # One shared wall-clock budget for the whole pool: the joins below
        # used to allow up to 5s *per worker* (10s with the terminate
        # fallback), so one wedged 8-worker pool could stall teardown for
        # over a minute.  Now the budget is pool-wide; workers that ignore
        # it are terminated, then SIGKILLed.
        deadline = time.monotonic() + (5.0 if graceful else 1.0)
        for process, task_queue in workers:
            if graceful and process.is_alive():
                try:
                    task_queue.put(("stop",))
                except (OSError, ValueError):  # pragma: no cover - dying pipe
                    pass
        for process, task_queue in workers:
            process.join(timeout=max(0.0, deadline - time.monotonic()))
            if process.is_alive():
                process.terminate()
                process.join(timeout=max(0.5, deadline - time.monotonic()))
            if process.is_alive():  # pragma: no cover - wedged in a syscall
                process.kill()
                process.join(timeout=1.0)
            try:
                task_queue.close()
            except (OSError, ValueError):  # pragma: no cover - dying pipe
                pass
        if self._result_queue is not None:
            self._result_queue.close()
            self._result_queue = None

    def _respawn_worker(self, index: int) -> None:
        """Replace one dead worker in place; the pool and segment survive.

        The replacement forks with the same ``(strategy, model_fn)`` handoff
        as the original pool and takes over the dead worker's slot (same
        worker index, fresh task queue, the shared result queue), so the
        round keeps streaming without re-broadcasting the global weights —
        the /dev/shm segment is untouched.
        """
        global _SHM_STATIC
        process, task_queue = self._workers[index]
        process.join(timeout=1.0)  # reap: it is already dead
        try:
            task_queue.close()
        except (OSError, ValueError):  # pragma: no cover - dying pipe
            pass
        mp_context = multiprocessing.get_context("fork")
        _SHM_STATIC = self._static
        try:
            fresh_queue = mp_context.SimpleQueue()
            replacement = mp_context.Process(
                target=_shm_worker_main,
                args=(index, fresh_queue, self._result_queue),
                daemon=True,
            )
            replacement.start()
        finally:
            _SHM_STATIC = None
        self._workers[index] = (replacement, fresh_queue)

    # -- broadcast segment ------------------------------------------------ #
    def _ensure_segment(self, layout: StateLayout) -> None:
        # Keyed on (element count, dtype): a dtype flip re-creates the segment
        # (fresh name), which is what tells workers to re-map it.
        if (self._segment is not None and self._segment_size == layout.size
                and self._segment_vector.dtype == layout.dtype):
            return
        self._release_segment()
        from multiprocessing import shared_memory

        self._segment = shared_memory.SharedMemory(
            create=True, size=layout.size * layout.dtype.itemsize)
        self._segment_size = layout.size
        self._segment_vector = np.ndarray((layout.size,), dtype=layout.dtype,
                                          buffer=self._segment.buf)

    def _release_segment(self) -> None:
        if self._segment is None:
            return
        # Drop the exported view first: SharedMemory.close() refuses while
        # buffer views are alive.
        self._segment_vector = None
        self._segment.close()
        try:
            self._segment.unlink()
        except FileNotFoundError:  # pragma: no cover - already reaped
            pass
        self._segment = None
        self._segment_size = 0

    def _round_header(self, layout: StateLayout,
                      context: "FLContext") -> Dict[str, object]:
        """The start-of-round broadcast message (see :func:`_shm_worker_main`)."""
        return {
            "shm_name": self._segment.name,
            "keys": list(layout.keys),
            "shapes": [tuple(shape) for shape in layout.shapes],
            "dtype": layout.dtype.str,
            "config": context.config,
            "ema": context.ema.state_dict(),
            "round_index": context.round_index,
            "round_selection": list(context.round_selection),
            "server_storage": context.server_storage,
        }

    # -- round execution -------------------------------------------------- #
    def run_round(self, strategy, model_fn, selected, global_state, context):
        return list(self.iter_round(strategy, model_fn, selected, global_state,
                                    context))

    def iter_round(self, strategy, model_fn, selected, global_state, context):
        if not selected:
            return
        _require_fork_platform(self.name)
        selected = list(selected)
        workers = self._effective_workers(len(selected))
        self._ensure_pool(strategy, model_fn, workers)
        layout = StateLayout(global_state)
        self._ensure_segment(layout)
        layout.pack(global_state, out=self._segment_vector)
        header = self._round_header(layout, context)
        active = self._workers[:workers]
        for _, task_queue in active:
            task_queue.put(("round", header))
        sent = 0
        for _, task_queue in active:
            if sent >= len(selected):
                break
            self._send_client(task_queue, sent, selected[sent], context)
            sent += 1
        buffered: Dict[int, ClientResult] = {}
        next_position = 0
        received = 0
        try:
            while next_position < len(selected):
                while next_position not in buffered:
                    message = self._next_result(active)
                    if message[0] == "err":
                        # The worker already shaped this into an ExecutorError
                        # with client/round/attempt context and its traceback
                        # text attached; fail the round with it directly.
                        raise message[3]
                    (_, worker_index, position, vector, num_samples,
                     train_loss, init_loss, client_id, metadata) = message
                    buffered[position] = ClientResult(
                        state=layout.unpack(vector), num_samples=num_samples,
                        train_loss=train_loss, init_loss=init_loss,
                        client_id=client_id, metadata=metadata)
                    received += 1
                    if sent < len(selected):
                        self._send_client(active[worker_index][1], sent,
                                          selected[sent], context)
                        sent += 1
                yield buffered.pop(next_position)
                next_position += 1
        except BaseException:
            # A failed (or abandoned — GeneratorExit lands here too) round
            # may leave workers mid-task and results in flight; terminate the
            # pool so stale results cannot leak into the next round.  The
            # broadcast segment stays for close() to unlink.  One abandonment
            # is *normal*: consumers driven by zip() (consume_stream) never
            # resume the generator after its final yield, so GeneratorExit
            # arrives here with every result already received — the workers
            # are idle and the pool must survive for the next round.
            if received < len(selected):
                self._shutdown_pool(graceful=False)
            raise

    def run_attempts(self, strategy, model_fn, jobs, global_state, context,
                     policy=None):
        """Fault-tolerant wave with a self-healing pool.

        Unlike :meth:`iter_round`'s fail-fast protocol, worker deaths do not
        abort the wave: a dead worker's in-flight job becomes a
        :class:`~repro.fl.errors.WorkerDied` outcome (consuming that job's
        attempt), and the worker is respawned *in place* — same slot, same
        result queue, same broadcast segment — so the pool is back at full
        strength for the remaining jobs without re-packing the weights.
        """
        if not jobs:
            return []
        _require_fork_platform(self.name)
        jobs = list(jobs)
        workers = self._effective_workers(len(jobs))
        self._ensure_pool(strategy, model_fn, workers)
        layout = StateLayout(global_state)
        self._ensure_segment(layout)
        layout.pack(global_state, out=self._segment_vector)
        header = self._round_header(layout, context)
        active = list(range(min(workers, len(self._workers))))
        for index in active:
            self._workers[index][1].put(("round", header))
        outcomes: List[object] = [None] * len(jobs)
        pending = deque(range(len(jobs)))
        in_flight: Dict[int, int] = {}  # worker slot -> job position

        def dispatch(index: int) -> None:
            if pending:
                position = pending.popleft()
                spec, attempt = jobs[position]
                self._send_client(self._workers[index][1], position, spec,
                                  context, attempt)
                in_flight[index] = position

        for index in active:
            dispatch(index)
        # Invariant: pending jobs imply in-flight jobs — every completion
        # dispatches the next pending job, and healing re-dispatches after a
        # respawn — so draining in_flight drains the whole wave.
        while in_flight:
            try:
                message = self._result_queue.get(timeout=0.25)
            except queue_module.Empty:
                self._heal_workers(active, in_flight, jobs, outcomes, header,
                                   dispatch, context)
                continue
            tag, worker_index, position = message[0], message[1], message[2]
            if in_flight.get(worker_index) == position:
                del in_flight[worker_index]
            if tag == "ok":
                (_, _, _, vector, num_samples, train_loss, init_loss,
                 client_id, metadata) = message
                outcomes[position] = ClientResult(
                    state=layout.unpack(vector), num_samples=num_samples,
                    train_loss=train_loss, init_loss=init_loss,
                    client_id=client_id, metadata=metadata)
            else:
                outcomes[position] = message[3]
            dispatch(worker_index)
        return outcomes

    def _heal_workers(self, active, in_flight, jobs, outcomes, header,
                      dispatch, context) -> None:
        """Detect dead workers, fail their in-flight jobs, respawn in place."""
        for index in active:
            process, _ = self._workers[index]
            if process.is_alive():
                continue
            position = in_flight.pop(index, None)
            if position is not None:
                spec, attempt = jobs[position]
                outcomes[position] = WorkerDied(
                    f"shm worker (pid {process.pid}) died with exit code "
                    f"{process.exitcode} while training client "
                    f"{spec.client_id} on attempt {attempt} of round "
                    f"{context.round_index}", client_id=spec.client_id,
                    round_index=context.round_index, attempt=attempt)
            self._respawn_worker(index)
            self._workers[index][1].put(("round", header))
            dispatch(index)

    @staticmethod
    def _send_client(task_queue, position: int, spec: ClientSpec,
                     context: "FLContext", attempt: int = 0) -> None:
        task_queue.put(("client", position, spec,
                        context.client_storage.get(spec.client_id, {}),
                        attempt))

    def _next_result(self, active) -> Tuple:
        while True:
            try:
                return self._result_queue.get(timeout=1.0)
            except queue_module.Empty:
                for process, _ in active:
                    if not process.is_alive():
                        raise WorkerDied(
                            f"shm worker (pid {process.pid}) died unexpectedly "
                            f"with exit code {process.exitcode}")

    def close(self) -> None:
        # The segment must be unlinked even if a wedged worker makes the
        # pool shutdown raise: a leaked /dev/shm segment would outlive the
        # process (and fail the fleet-scale CI leak gate).
        try:
            self._shutdown_pool(graceful=True)
        finally:
            self._release_segment()

    def __del__(self) -> None:  # pragma: no cover - interpreter-dependent
        try:
            self.close()
        except Exception:
            pass


EXECUTOR_REGISTRY: Registry[ClientExecutor] = Registry("executor", {
    "serial": SerialExecutor,
    "thread": ThreadExecutor,
    "process": ProcessExecutor,
    "shm": SharedMemoryExecutor,
})


def create_executor(name: str, **kwargs) -> ClientExecutor:
    """Instantiate an execution backend by registry name."""
    return EXECUTOR_REGISTRY.create(name, **kwargs)
