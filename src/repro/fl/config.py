"""Configuration objects for federated-learning simulations."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..nn.engine import validate_dtype, validate_engine
from .faults import FaultPlan, FaultPolicy

__all__ = ["FLConfig", "TASKS"]

TASKS = ("classification", "multilabel", "regression")


@dataclass(frozen=True)
class FLConfig:
    """Hyperparameters of an FL run (Section 6 / Appendix A.2 of the paper).

    Defaults follow the paper's selected values where feasible at simulation
    scale: ``B = 10``, ``E = 1``, learning rate 0.1, ``K = 20`` participants per
    round out of ``N = 100`` clients.  ``num_rounds`` defaults far below the
    paper's 1000 because every experiment runner scales rounds to its compute
    budget explicitly.
    """

    num_clients: int = 100
    clients_per_round: int = 20
    num_rounds: int = 20
    local_epochs: int = 1
    batch_size: int = 10
    learning_rate: float = 0.1
    momentum: float = 0.0
    weight_decay: float = 0.0
    task: str = "classification"
    ema_alpha: float = 0.9  # smoothing factor for L_EMA (Eq. 1, appendix: alpha = 0.9)
    seed: int = 0
    eval_every: int = 0  # 0 = evaluate only at the end
    # Training substrate: "flat" = flat-parameter engine (fused optimizer
    # steps, single-node hot-path kernels, arena broadcast/collect);
    # "reference" = the seed per-parameter path.  Both are bitwise-identical
    # (tests/fl/test_train_engine.py); "reference" exists as the golden
    # baseline for equivalence tests and the training-throughput benchmark.
    train_engine: str = "flat"
    # Compute precision for the whole pipeline (tensors, parameter arena,
    # optimizer buffers, fused kernels, shm segments, checkpoints).
    # "float64" is the golden path — bitwise-identical to the seed
    # implementation; "float32" is the opt-in fast path, equivalent to
    # float64 within tolerance (tests/fl/test_dtype_equivalence.py) at
    # roughly half the memory-bandwidth cost.  Aggregation reductions
    # accumulate in float64 either way.  Changes results -> in the spec hash.
    dtype: str = "float64"
    # Observability (repro.obs).  Both flags are purely observational and
    # result-neutral: they never perturb training results, fingerprints, or
    # the spec hash (store._RESULT_NEUTRAL_CONFIG_OVERRIDES).  ``trace``
    # records run-level spans (capture / client updates / aggregate / eval);
    # ``profile`` additionally enables the per-kernel timers in the engine
    # hot paths and implies trace collection.
    profile: bool = False
    trace: bool = False
    # Fault tolerance (repro.fl.faults).  ``faults`` is a seeded chaos
    # schedule — which (round, client, attempt) jobs crash / hang / return
    # poisoned updates / kill their worker is a pure function of its seed,
    # so chaos runs replay bit-for-bit.  ``fault_policy`` is the server's
    # response: per-client timeouts, bounded retries, update sanitization
    # and quorum-based graceful degradation.  Both change results when set
    # (degraded rounds aggregate over survivors) -> in the spec hash; both
    # default to None, which keeps the golden path byte-for-byte unchanged.
    # Dicts (e.g. from JSON config_overrides) are coerced to the frozen
    # dataclasses, so FLConfig itself stays hashable.
    faults: Optional[FaultPlan] = None
    fault_policy: Optional[FaultPolicy] = None

    def __post_init__(self) -> None:
        if self.num_clients <= 0:
            raise ValueError("num_clients must be positive")
        if not 0 < self.clients_per_round <= self.num_clients:
            raise ValueError("clients_per_round must be in (0, num_clients]")
        if self.num_rounds <= 0:
            raise ValueError("num_rounds must be positive")
        if self.local_epochs <= 0:
            raise ValueError("local_epochs must be positive")
        if self.batch_size <= 0:
            raise ValueError("batch_size must be positive")
        if self.learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if self.task not in TASKS:
            raise ValueError(f"task must be one of {TASKS}, got '{self.task}'")
        if not 0.0 < self.ema_alpha <= 1.0:
            raise ValueError("ema_alpha must be in (0, 1]")
        validate_engine(self.train_engine)
        validate_dtype(self.dtype)
        if not isinstance(self.profile, bool):
            raise ValueError("profile must be a bool")
        if not isinstance(self.trace, bool):
            raise ValueError("trace must be a bool")
        if isinstance(self.faults, dict):
            object.__setattr__(self, "faults", FaultPlan(**self.faults))
        if self.faults is not None and not isinstance(self.faults, FaultPlan):
            raise ValueError(
                f"faults must be a FaultPlan, a dict of its fields, or None; "
                f"got {self.faults!r}")
        if isinstance(self.fault_policy, dict):
            object.__setattr__(self, "fault_policy",
                               FaultPolicy(**self.fault_policy))
        if self.fault_policy is not None and not isinstance(self.fault_policy,
                                                            FaultPolicy):
            raise ValueError(
                f"fault_policy must be a FaultPolicy, a dict of its fields, "
                f"or None; got {self.fault_policy!r}")
