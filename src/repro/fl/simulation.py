"""The federated-learning simulation loop (server + round orchestration).

:class:`FederatedSimulation` reproduces the standard cross-device FL protocol
of Section 2.1: each round the server samples ``K`` of the ``N`` clients,
broadcasts the global weights, collects locally-trained results via the active
strategy, aggregates them, and updates the EMA of the aggregated training loss
that HeteroSwitch's switching consults.  Per-device evaluation on held-out test
sets produces the fairness / domain-generalization metrics of Section 6.

Round bookkeeping (switch counting, periodic evaluation) is implemented with
the observer API of :mod:`repro.fl.callbacks`; client selection is delegated to
a pluggable :class:`~repro.fl.sampling.ClientSampler` whose draws depend only
on ``(seed, round_index)`` so any round can be replayed in isolation.

The per-client local-training step is fanned out through a pluggable
:class:`~repro.fl.execution.ClientExecutor` (serial, thread pool, process
pool, or shared-memory streaming pool); every backend produces bit-identical
runs because client randomness
derives from ``(seed, round, client_id)`` and results are reduced in canonical
order (see :mod:`repro.fl.execution` for the full determinism contract).
"""

from __future__ import annotations

import dataclasses
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from ..core.ema import EMALossTracker
from ..data.dataset import ArrayDataset
from ..data.partition import ClientSpec
from ..nn.engine import engine_scope
from ..nn.layers import Module
from ..nn.serialization import get_weights, set_weights
from ..obs import Tracer, merge_client_spans
from .callbacks import (Callback, CallbackList, FaultTelemetry,
                        PeriodicEvaluation, SwitchTelemetry)
from .config import FLConfig
from .execution import ClientExecutor, create_executor
from .faults import run_tolerant_round
from .metrics import summarize_per_device
from .sampling import ClientSampler, UniformSampler
from .strategies.base import FLContext, Strategy
from .training import ClientResult, evaluate_metric

__all__ = ["RoundRecord", "FLHistory", "FederatedSimulation", "history_from_dict"]

StateDict = Dict[str, np.ndarray]
ModelFactory = Callable[[], Module]


@dataclass
class RoundRecord:
    """Bookkeeping for one communication round."""

    round_index: int
    selected_clients: List[int]
    mean_train_loss: float
    ema_loss: float
    num_switch1: int = 0
    num_switch2: int = 0
    # Fault-tolerance bookkeeping (repro.fl.faults): zero/empty on fault-free
    # rounds, so histories written before this field existed load unchanged.
    num_failures: int = 0
    num_retries: int = 0
    dropped_clients: List[int] = field(default_factory=list)
    failure_kinds: Dict[str, int] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe rendering (floats round-trip exactly through ``json``)."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "RoundRecord":
        """Inverse of :meth:`to_dict`."""
        return cls(
            round_index=int(data["round_index"]),
            selected_clients=[int(c) for c in data["selected_clients"]],
            mean_train_loss=float(data["mean_train_loss"]),
            ema_loss=float(data["ema_loss"]),
            num_switch1=int(data.get("num_switch1", 0)),
            num_switch2=int(data.get("num_switch2", 0)),
            num_failures=int(data.get("num_failures", 0)),
            num_retries=int(data.get("num_retries", 0)),
            dropped_clients=[int(c) for c in data.get("dropped_clients", [])],
            failure_kinds={str(k): int(v)
                           for k, v in dict(data.get("failure_kinds", {})).items()},
        )


@dataclass
class FLHistory:
    """Full record of an FL run: per-round stats and final per-device metrics."""

    strategy: str
    rounds: List[RoundRecord] = field(default_factory=list)
    per_device_metric: Dict[str, float] = field(default_factory=dict)
    evaluations: List[Dict[str, float]] = field(default_factory=list)
    metadata: Dict[str, object] = field(default_factory=dict)

    @property
    def summary(self) -> Dict[str, float]:
        """Worst-case / variance / average of the final per-device metric."""
        return summarize_per_device(self.per_device_metric)

    @property
    def final_train_loss(self) -> float:
        if not self.rounds:
            raise RuntimeError("no rounds recorded")
        return self.rounds[-1].mean_train_loss

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe rendering of the full history.

        ``metadata`` must hold JSON-serializable values for the run store to
        persist it; the built-in callbacks only write ints/floats/lists.
        """
        return {
            "strategy": self.strategy,
            "rounds": [record.to_dict() for record in self.rounds],
            "per_device_metric": dict(self.per_device_metric),
            "evaluations": [dict(e) for e in self.evaluations],
            "metadata": dict(self.metadata),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "FLHistory":
        """Inverse of :meth:`to_dict` (used by checkpoint restore)."""
        return cls(
            strategy=str(data["strategy"]),
            rounds=[RoundRecord.from_dict(r) for r in data.get("rounds", [])],
            per_device_metric=dict(data.get("per_device_metric", {})),
            evaluations=[dict(e) for e in data.get("evaluations", [])],
            metadata=dict(data.get("metadata", {})),
        )


def history_from_dict(data: Dict[str, object]) -> "FLHistory":
    """Reconstruct a serialized history, dispatching on its ``kind`` marker.

    Asynchronous runs serialize their histories with ``kind:
    "federated_async"`` (their rounds are
    :class:`~repro.fl.async_sim.simulation.CommitRecord`\\ s); everything else
    is a plain :class:`FLHistory`.  The run store and runner use this instead
    of :meth:`FLHistory.from_dict` so resume reconstructs the right class.
    """
    if data.get("kind") == "federated_async":
        from .async_sim.simulation import AsyncFLHistory

        return AsyncFLHistory.from_dict(data)
    return FLHistory.from_dict(data)


class FederatedSimulation:
    """Orchestrates a full FL run for a given strategy.

    Parameters
    ----------
    model_fn:
        Zero-argument callable building a fresh model; every run starts from
        the same initialization (the factory should use a fixed seed).
    clients:
        The client population (id, device type, local dataset).
    test_sets:
        Per-device held-out datasets used for the final evaluation.
    strategy:
        The FL algorithm under test.
    config:
        FL hyperparameters.
    sampler:
        Per-round client sampler; defaults to uniform-without-replacement
        derived from ``(config.seed, round_index)``.
    callbacks:
        Extra observers attached to every :meth:`run` (the built-in switch
        telemetry and ``eval_every`` bookkeeping are always present).
    executor:
        Client-execution backend fanning out the per-client training step: a
        :class:`~repro.fl.execution.ClientExecutor` instance, a registry name
        (``"serial"``, ``"thread"``, ``"process"``, ``"shm"``), or ``None``
        for serial.
        A bare name uses one worker per CPU core; pass a constructed instance
        (``create_executor("thread", max_workers=4)``) to cap the pool.
        Backends the simulation creates itself are closed at the end of each
        :meth:`run`; instances passed in are the caller's to close.
    """

    def __init__(
        self,
        model_fn: ModelFactory,
        clients: Sequence[ClientSpec],
        test_sets: Mapping[str, ArrayDataset],
        strategy: Strategy,
        config: FLConfig,
        sampler: Optional[ClientSampler] = None,
        callbacks: Sequence[Callback] = (),
        executor: Optional[Union[str, ClientExecutor]] = None,
    ) -> None:
        if not clients:
            raise ValueError("client population must not be empty")
        if not test_sets:
            raise ValueError("test_sets must not be empty")
        if config.num_clients != len(clients):
            # Keep the config authoritative but consistent with reality.
            raise ValueError(
                f"config.num_clients ({config.num_clients}) does not match the "
                f"provided client population ({len(clients)})"
            )
        if getattr(strategy, "requires_async", False):
            raise ValueError(
                f"strategy '{strategy.name}' is asynchronous-only; run it with "
                f"AsyncFederatedSimulation (RunSpec kind='federated_async')"
            )
        self.model_fn = model_fn
        self.clients = list(clients)
        self.test_sets = dict(test_sets)
        self.strategy = strategy
        self.config = config
        self.sampler = sampler if sampler is not None else UniformSampler()
        self.sampler.bind(self.clients)
        self.callbacks = list(callbacks)
        if executor is None or isinstance(executor, str):
            self._executor = create_executor(executor or "serial")
            self._owns_executor = True
        else:
            self._executor = executor
            self._owns_executor = False

        with engine_scope(config):
            self._global_state: StateDict = get_weights(model_fn())
        self.context = FLContext(
            config=config,
            ema=EMALossTracker(alpha=config.ema_alpha),
        )
        self._history: Optional[FLHistory] = None
        self._active_callbacks: Optional[CallbackList] = None
        self._stop_requested = False
        self._resume: Optional[Tuple[FLHistory, int]] = None
        # Run-level trace collector (repro.obs).  Attached externally (the
        # Runner) or auto-created by run() when config.trace/profile is set;
        # purely observational, so it never influences results.
        self.tracer: Optional[Tracer] = None

    # ------------------------------------------------------------------ #
    @property
    def executor(self) -> ClientExecutor:
        """The client-execution backend fanning out local training."""
        return self._executor

    @property
    def global_state(self) -> StateDict:
        """Copy of the current global model weights."""
        return {key: value.copy() for key, value in self._global_state.items()}

    @property
    def history(self) -> Optional[FLHistory]:
        """The history of the in-progress (or most recent) :meth:`run`."""
        return self._history

    def global_model(self) -> Module:
        """A model instance loaded with the current global weights."""
        with engine_scope(self.config):
            model = self.model_fn()
        set_weights(model, self._global_state)
        return model

    def request_stop(self) -> None:
        """Ask :meth:`run` to stop gracefully after the current round."""
        self._stop_requested = True

    # -- checkpoint / resume ------------------------------------------- #
    def snapshot(self) -> Dict[str, object]:
        """Everything a bit-identical resume needs, as a checkpointable tree.

        The tree holds the global weights, the strategy's persistent state
        (:meth:`~repro.fl.strategies.base.Strategy.state_dict`), the EMA loss
        tracker and the history so far.  Client sampling and per-client RNG
        streams are pure functions of ``(seed, round)``, so they need no
        state: restoring this snapshot into a freshly-built simulation of the
        same spec and continuing from ``next_round`` reproduces the
        uninterrupted run exactly (see :mod:`repro.store`).

        Only callable while a run is active (or just finished): the snapshot
        is anchored to the run's history.
        """
        if self._history is None:
            raise RuntimeError("snapshot() requires an active or completed run")
        history = self._history
        next_round = history.rounds[-1].round_index + 1 if history.rounds else 0
        return {
            "strategy": self.strategy.name,
            "seed": self.config.seed,
            "next_round": next_round,
            "global_state": self.global_state,
            "strategy_state": self.strategy.state_dict(self.context),
            "ema": self.context.ema.state_dict(),
            "history": history.to_dict(),
        }

    def restore(self, snapshot: Mapping[str, object]) -> None:
        """Load a :meth:`snapshot` so the next :meth:`run` continues from it.

        The snapshot must come from a simulation of the same strategy and
        seed; anything else would silently break the determinism guarantee,
        so mismatches raise instead.
        """
        if snapshot["strategy"] != self.strategy.name:
            raise ValueError(
                f"checkpoint was written by strategy '{snapshot['strategy']}', "
                f"this simulation runs '{self.strategy.name}'"
            )
        if int(snapshot["seed"]) != self.config.seed:
            raise ValueError(
                f"checkpoint was written at seed {snapshot['seed']}, "
                f"this simulation runs seed {self.config.seed}"
            )
        self._global_state = {key: np.asarray(value).copy()
                              for key, value in snapshot["global_state"].items()}
        self.strategy.load_state_dict(self.context, snapshot["strategy_state"])
        self.context.ema.load_state_dict(snapshot["ema"])
        next_round = int(snapshot["next_round"])
        self.context.round_index = max(next_round - 1, 0)
        self._resume = (FLHistory.from_dict(snapshot["history"]), next_round)

    # ------------------------------------------------------------------ #
    def select_clients(self, round_index: int) -> List[ClientSpec]:
        """Sample this round's participants via the configured sampler.

        The draw is a pure function of ``(config.seed, round_index)``, so
        replaying a single round reproduces the full run's selection.
        """
        k = min(self.config.clients_per_round, len(self.clients))
        indices = self.sampler.select(len(self.clients), k, round_index, self.config.seed)
        return [self.clients[i] for i in indices]

    def run_round(self, round_index: int, callbacks: Optional[CallbackList] = None) -> RoundRecord:
        """Execute one communication round and return its record.

        When called standalone (outside :meth:`run`), only switch telemetry is
        attached — run-level bookkeeping like periodic evaluation belongs to
        the run whose history it writes into.
        """
        if callbacks is None:
            callbacks = CallbackList([SwitchTelemetry()])
        self.context.round_index = round_index
        callbacks.on_round_start(self, round_index)
        selected = self.select_clients(round_index)
        # Record the selection order: it is the canonical reduction order the
        # strategies aggregate in, whatever order parallel workers finish in.
        self.context.round_selection = [spec.client_id for spec in selected]
        # Server-side reduction runs under the configured training engine so
        # "reference" rounds reproduce the seed dict-based aggregation exactly
        # (the flat and reference reductions are bitwise-identical either way;
        # see tests/fl/test_train_engine.py).
        clients_span = None
        policy = self.config.fault_policy
        report = None
        if policy is not None:
            # Fault-tolerant path (repro.fl.faults): clients run in waves of
            # attempts — failures are collected instead of raised, retried up
            # to the policy's budget, and the round degrades gracefully to the
            # surviving cohort as long as the quorum holds.  Training and
            # retries interleave, so the whole window traces as one span.
            with self._obs_span("clients", round=round_index, count=len(selected),
                                tolerant=True) as clients_span:
                survivors, results, report = run_tolerant_round(
                    self._executor, self.strategy, self.model_fn, selected,
                    self.global_state, self.context, policy)
            # Aggregation (and the strategies' canonical-order checks) must
            # see exactly the surviving cohort: a degraded round is then
            # bitwise-identical to a round that selected only the survivors.
            self.context.round_selection = [spec.client_id for spec in survivors]
            with self._obs_span("aggregate", round=round_index,
                                survivors=len(survivors)):
                with engine_scope(self.config):
                    if getattr(self._executor, "streaming", False):
                        self._global_state, results = self.strategy.aggregate_stream(
                            self._global_state, survivors, iter(results),
                            self.context)
                    else:
                        self._global_state = self.strategy.aggregate(
                            self._global_state, results, self.context)
                    self.strategy.on_round_end(self.context, results)
        elif getattr(self._executor, "streaming", False):
            # Streaming backend (e.g. "shm"): results are folded into the
            # aggregate one at a time in selection order and released, so the
            # server's peak memory is O(model) regardless of clients/round.
            # Bitwise-identical to the materialized path below.  Training and
            # aggregation interleave, so the whole window traces as one
            # "clients" span.
            with self._obs_span("clients", round=round_index, count=len(selected),
                                streaming=True) as clients_span:
                stream = self._executor.iter_round(
                    self.strategy, self.model_fn, selected, self.global_state, self.context
                )
                with engine_scope(self.config):
                    self._global_state, results = self.strategy.aggregate_stream(
                        self._global_state, selected, stream, self.context)
                    self.strategy.on_round_end(self.context, results)
        else:
            with self._obs_span("clients", round=round_index,
                                count=len(selected)) as clients_span:
                results: List[ClientResult] = self._executor.run_round(
                    self.strategy, self.model_fn, selected, self.global_state, self.context
                )
            with self._obs_span("aggregate", round=round_index):
                with engine_scope(self.config):
                    self._global_state = self.strategy.aggregate(
                        self._global_state, results, self.context)
                    self.strategy.on_round_end(self.context, results)
        if self.tracer is not None:
            merge_client_spans(
                self.tracer,
                clients_span.start if clients_span is not None else self.tracer.now(),
                results,
                {spec.client_id: spec.device for spec in selected})

        record = RoundRecord(
            round_index=round_index,
            selected_clients=[spec.client_id for spec in selected],
            mean_train_loss=float(np.mean([r.train_loss for r in results])),
            ema_loss=float(self.context.ema.value),
        )
        if report is not None:
            record.num_failures = report.num_failures
            record.num_retries = report.num_retries
            record.dropped_clients = list(report.dropped_clients)
            record.failure_kinds = dict(report.failure_kinds)
            if self.tracer is not None and report.any_faults:
                self.tracer.instant(
                    "round_faults", round=round_index,
                    failures=report.num_failures, retries=report.num_retries,
                    dropped=len(report.dropped_clients))
        # When called from run(), the record joins the history *before* the
        # callbacks fire, so observers (checkpointing above all) see a history
        # that already includes the round they are reacting to.  Standalone
        # calls never touch a run's history.
        if callbacks is self._active_callbacks and self._history is not None:
            self._history.rounds.append(record)
        callbacks.on_round_end(self, record, results)
        return record

    def _obs_span(self, name: str, **attrs):
        """A tracer span when tracing is attached, else a no-op context."""
        if self.tracer is None:
            return nullcontext()
        return self.tracer.span(name, **attrs)

    def evaluate(self) -> Dict[str, float]:
        """Evaluate the current global model on every per-device test set."""
        with self._obs_span("evaluate", devices=len(self.test_sets)):
            model = self.global_model()
            # Evaluation forwards under the same engine scope as training so
            # test batches are fed to the model in its own compute dtype.
            with engine_scope(self.config):
                metrics = {
                    device: evaluate_metric(model, dataset, self.config.task)
                    for device, dataset in self.test_sets.items()
                }
        if self._active_callbacks is not None:
            self._active_callbacks.on_evaluate(self, self.context.round_index, metrics)
        return metrics

    def _default_callbacks(self) -> List[Callback]:
        """The bookkeeping formerly hard-coded in the loop, as callbacks."""
        defaults: List[Callback] = [SwitchTelemetry()]
        if self.config.fault_policy is not None:
            defaults.append(FaultTelemetry())
        if self.config.eval_every:
            defaults.append(PeriodicEvaluation(self.config.eval_every))
        return defaults

    def run(self, num_rounds: Optional[int] = None) -> FLHistory:
        """Run the full simulation and return its history.

        After :meth:`restore`, the run continues from the checkpoint's next
        round with the restored history, instead of starting from round 0.
        """
        rounds = num_rounds if num_rounds is not None else self.config.num_rounds
        if rounds <= 0:
            raise ValueError("num_rounds must be positive")
        if self._resume is not None:
            history, start_round = self._resume
            if start_round > rounds:
                # Leave the restore in place: the caller can retry run() with
                # a sufficient round budget instead of silently starting over.
                raise ValueError(
                    f"checkpoint is at round {start_round} but the run has "
                    f"only {rounds} round(s)"
                )
            self._resume = None
        else:
            history, start_round = FLHistory(strategy=self.strategy.name), 0
        callbacks = CallbackList([*self._default_callbacks(), *self.callbacks])
        if self.tracer is None and (self.config.trace or self.config.profile):
            self.tracer = Tracer()
        if self.tracer is not None and start_round > 0:
            # Rounds [0, start_round) ran in an earlier process; annotate the
            # gap so a resumed run's trace is well-formed rather than looking
            # like it silently skipped rounds.
            self.tracer.instant("resume_gap", next_round=start_round)
        self._history = history
        self._active_callbacks = callbacks
        self._stop_requested = False
        try:
            with self._obs_span("run", strategy=self.strategy.name,
                                seed=self.config.seed, rounds=rounds):
                callbacks.on_run_start(self, history)
                for round_index in range(start_round, rounds):
                    # Checked before the round (not after) so a stop requested
                    # during on_run_start — e.g. early stopping re-triggered by
                    # a restored history — prevents any further training.
                    if self._stop_requested:
                        break
                    self.run_round(round_index, callbacks=callbacks)
                history.per_device_metric = self.evaluate()
                callbacks.on_run_end(self, history)
        finally:
            self._active_callbacks = None
            if self._owns_executor:
                # Release worker pools; the executor lazily re-creates them if
                # this simulation runs again.
                self._executor.close()
        return history
