"""Observer/callback API for the federated simulation loop.

:class:`~repro.fl.simulation.FederatedSimulation` used to hard-code its
bookkeeping (periodic evaluation via ``config.eval_every``, HeteroSwitch
switch counting).  Both are now ordinary :class:`Callback` instances, and any
number of additional observers — early stopping, logging, custom telemetry —
can be attached to a run without touching the loop itself.

Hook order per run::

    on_run_start
      (per round) on_round_start -> on_round_end
      (whenever the global model is evaluated) on_evaluate
    on_run_end

Callbacks receive the simulation instance, so they can read the config,
trigger an evaluation (``sim.evaluate()``), request a graceful stop
(``sim.request_stop()``), or write run-level results into the history
(``sim.history``).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterable, List, Optional

import numpy as np

from ..registry import Registry
from .training import ClientResult

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (simulation imports us)
    from .simulation import FederatedSimulation, FLHistory, RoundRecord

__all__ = [
    "Callback",
    "CallbackList",
    "SwitchTelemetry",
    "PeriodicEvaluation",
    "EarlyStopping",
    "RoundLogger",
    "CALLBACK_REGISTRY",
    "create_callback",
]


class Callback:
    """Base class: every hook is a no-op, subclasses override what they need."""

    name = "callback"

    def on_run_start(self, sim: "FederatedSimulation", history: "FLHistory") -> None:
        """Called once before the first round."""

    def on_round_start(self, sim: "FederatedSimulation", round_index: int) -> None:
        """Called before clients are sampled for ``round_index``."""

    def on_round_end(self, sim: "FederatedSimulation", record: "RoundRecord",
                     results: List[ClientResult]) -> None:
        """Called after aggregation, with the round's record and client results."""

    def on_evaluate(self, sim: "FederatedSimulation", round_index: int,
                    metrics: Dict[str, float]) -> None:
        """Called whenever the global model is evaluated on the test sets."""

    def on_run_end(self, sim: "FederatedSimulation", history: "FLHistory") -> None:
        """Called once after the final evaluation."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"


class CallbackList(Callback):
    """Dispatches every hook to an ordered list of callbacks."""

    def __init__(self, callbacks: Optional[Iterable[Callback]] = None) -> None:
        self.callbacks: List[Callback] = list(callbacks or [])

    def append(self, callback: Callback) -> None:
        self.callbacks.append(callback)

    def on_run_start(self, sim, history) -> None:
        for callback in self.callbacks:
            callback.on_run_start(sim, history)

    def on_round_start(self, sim, round_index) -> None:
        for callback in self.callbacks:
            callback.on_round_start(sim, round_index)

    def on_round_end(self, sim, record, results) -> None:
        for callback in self.callbacks:
            callback.on_round_end(sim, record, results)

    def on_evaluate(self, sim, round_index, metrics) -> None:
        for callback in self.callbacks:
            callback.on_evaluate(sim, round_index, metrics)

    def on_run_end(self, sim, history) -> None:
        for callback in self.callbacks:
            callback.on_run_end(sim, history)


class SwitchTelemetry(Callback):
    """Fills per-round HeteroSwitch switch counts and accumulates run totals.

    This is the bookkeeping the simulation loop used to hard-code: it reads
    each client result's ``metadata["switch"]`` decision and records how many
    clients applied the ISP transform (switch 1) and SWAD (switch 2).
    """

    name = "switch_telemetry"

    def __init__(self) -> None:
        self.total_switch1 = 0
        self.total_switch2 = 0

    def on_round_end(self, sim, record, results) -> None:
        switch_info = [result.metadata.get("switch") for result in results]
        record.num_switch1 = sum(1 for s in switch_info if s is not None and s.switch1)
        record.num_switch2 = sum(1 for s in switch_info if s is not None and s.switch2)
        self.total_switch1 += record.num_switch1
        self.total_switch2 += record.num_switch2

    def on_run_end(self, sim, history) -> None:
        history.metadata["total_switch1"] = self.total_switch1
        history.metadata["total_switch2"] = self.total_switch2


class PeriodicEvaluation(Callback):
    """Evaluates the global model every ``every`` rounds (``config.eval_every``)."""

    name = "eval_every"

    def __init__(self, every: int) -> None:
        if every <= 0:
            raise ValueError("every must be positive")
        self.every = every

    def on_round_end(self, sim, record, results) -> None:
        if (record.round_index + 1) % self.every == 0:
            metrics = sim.evaluate()
            if sim.history is not None:
                sim.history.evaluations.append(metrics)


class EarlyStopping(Callback):
    """Stops the run when the monitored loss stops improving.

    Parameters
    ----------
    monitor:
        ``"ema_loss"`` (the L_EMA tracker HeteroSwitch consults) or
        ``"mean_train_loss"``.
    patience:
        Number of consecutive non-improving rounds tolerated before stopping.
    min_delta:
        Minimum decrease that counts as an improvement.
    """

    name = "early_stopping"

    _MONITORS = ("ema_loss", "mean_train_loss")

    def __init__(self, monitor: str = "ema_loss", patience: int = 5,
                 min_delta: float = 0.0) -> None:
        if monitor not in self._MONITORS:
            raise ValueError(f"monitor must be one of {self._MONITORS}, got '{monitor}'")
        if patience <= 0:
            raise ValueError("patience must be positive")
        self.monitor = monitor
        self.patience = patience
        self.min_delta = min_delta
        self.best = np.inf
        self.stale_rounds = 0
        self.stopped_at: Optional[int] = None

    def on_run_start(self, sim, history) -> None:
        # A callback instance may observe several runs; patience is per run.
        self.best = np.inf
        self.stale_rounds = 0
        self.stopped_at = None

    def on_round_end(self, sim, record, results) -> None:
        value = getattr(record, self.monitor)
        if value < self.best - self.min_delta:
            self.best = value
            self.stale_rounds = 0
            return
        self.stale_rounds += 1
        if self.stale_rounds >= self.patience:
            self.stopped_at = record.round_index
            sim.request_stop()

    def on_run_end(self, sim, history) -> None:
        if self.stopped_at is not None:
            history.metadata["early_stopped_at"] = self.stopped_at


class RoundLogger(Callback):
    """Prints a one-line progress summary every ``every`` rounds."""

    name = "round_logger"

    def __init__(self, every: int = 1) -> None:
        if every <= 0:
            raise ValueError("every must be positive")
        self.every = every

    def on_round_end(self, sim, record, results) -> None:
        if (record.round_index + 1) % self.every == 0:
            print(
                f"[round {record.round_index + 1}] "
                f"loss={record.mean_train_loss:.4f} ema={record.ema_loss:.4f} "
                f"switch1={record.num_switch1} switch2={record.num_switch2}"
            )


CALLBACK_REGISTRY: Registry[Callback] = Registry("callback", {
    "switch_telemetry": SwitchTelemetry,
    "eval_every": PeriodicEvaluation,
    "early_stopping": EarlyStopping,
    "round_logger": RoundLogger,
})


def create_callback(name: str, **kwargs) -> Callback:
    """Instantiate a callback by registry name."""
    return CALLBACK_REGISTRY.create(name, **kwargs)
