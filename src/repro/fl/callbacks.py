"""Observer/callback API for the federated simulation loop.

:class:`~repro.fl.simulation.FederatedSimulation` used to hard-code its
bookkeeping (periodic evaluation via ``config.eval_every``, HeteroSwitch
switch counting).  Both are now ordinary :class:`Callback` instances, and any
number of additional observers — early stopping, logging, custom telemetry —
can be attached to a run without touching the loop itself.

Hook order per run::

    on_run_start
      (per round) on_round_start -> on_round_end
      (whenever the global model is evaluated) on_evaluate
    on_run_end

Callbacks receive the simulation instance, so they can read the config,
trigger an evaluation (``sim.evaluate()``), request a graceful stop
(``sim.request_stop()``), or write run-level results into the history
(``sim.history``).
"""

from __future__ import annotations

from pathlib import Path
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional

import numpy as np

from ..registry import Registry
from .training import ClientResult

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (simulation imports us)
    from .simulation import FederatedSimulation, FLHistory, RoundRecord

__all__ = [
    "Callback",
    "CallbackList",
    "SwitchTelemetry",
    "FaultTelemetry",
    "PeriodicEvaluation",
    "EarlyStopping",
    "RoundLogger",
    "CheckpointCallback",
    "CALLBACK_REGISTRY",
    "create_callback",
]


class Callback:
    """Base class: every hook is a no-op, subclasses override what they need."""

    name = "callback"

    def on_run_start(self, sim: "FederatedSimulation", history: "FLHistory") -> None:
        """Called once before the first round."""

    def on_round_start(self, sim: "FederatedSimulation", round_index: int) -> None:
        """Called before clients are sampled for ``round_index``."""

    def on_round_end(self, sim: "FederatedSimulation", record: "RoundRecord",
                     results: List[ClientResult]) -> None:
        """Called after aggregation, with the round's record and client results."""

    def on_event(self, sim, info: Dict[str, object]) -> None:
        """Called by the asynchronous loop for every virtual-clock occurrence.

        ``info`` always carries ``kind`` (``dispatch``/``completion``/
        ``lost``/``dropout``/``rejoin``/``commit``) and ``time`` (virtual
        seconds); event-specific keys (``client_id``, ``job_id``,
        ``staleness``, ``version``...) ride along.  Synchronous runs never
        fire this hook.
        """

    def on_evaluate(self, sim: "FederatedSimulation", round_index: int,
                    metrics: Dict[str, float]) -> None:
        """Called whenever the global model is evaluated on the test sets."""

    def on_run_end(self, sim: "FederatedSimulation", history: "FLHistory") -> None:
        """Called once after the final evaluation."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"


class CallbackList(Callback):
    """Dispatches every hook to an ordered list of callbacks.

    Every callback sees every hook: an exception in one callback no longer
    skips the rest of the list (telemetry keeps counting even if, say, a
    checkpoint write fails).  The *first* exception is re-raised after the
    remaining callbacks ran, so failures still propagate to the loop.
    """

    def __init__(self, callbacks: Optional[Iterable[Callback]] = None) -> None:
        self.callbacks: List[Callback] = list(callbacks or [])

    def append(self, callback: Callback) -> None:
        self.callbacks.append(callback)

    def _dispatch(self, hook: str, *args) -> None:
        first_error: Optional[BaseException] = None
        for callback in self.callbacks:
            try:
                getattr(callback, hook)(*args)
            except BaseException as exc:
                if first_error is None:
                    first_error = exc
        if first_error is not None:
            raise first_error

    def on_run_start(self, sim, history) -> None:
        self._dispatch("on_run_start", sim, history)

    def on_round_start(self, sim, round_index) -> None:
        self._dispatch("on_round_start", sim, round_index)

    def on_round_end(self, sim, record, results) -> None:
        self._dispatch("on_round_end", sim, record, results)

    def on_event(self, sim, info) -> None:
        self._dispatch("on_event", sim, info)

    def on_evaluate(self, sim, round_index, metrics) -> None:
        self._dispatch("on_evaluate", sim, round_index, metrics)

    def on_run_end(self, sim, history) -> None:
        self._dispatch("on_run_end", sim, history)


class SwitchTelemetry(Callback):
    """Fills per-round HeteroSwitch switch counts and records run totals.

    This is the bookkeeping the simulation loop used to hard-code: it reads
    each client result's ``metadata["switch"]`` decision and records how many
    clients applied the ISP transform (switch 1) and SWAD (switch 2).

    Counting runs through a :class:`repro.obs.MetricsRegistry` (labeled
    ``switches`` counters, one series per switch kind); the history outputs
    — per-round record fields and run totals — are unchanged.
    """

    name = "switch_telemetry"

    def __init__(self) -> None:
        from ..obs import MetricsRegistry

        self.metrics = MetricsRegistry()

    def on_round_end(self, sim, record, results) -> None:
        switch_info = [result.metadata.get("switch") for result in results]
        record.num_switch1 = sum(1 for s in switch_info if s is not None and s.switch1)
        record.num_switch2 = sum(1 for s in switch_info if s is not None and s.switch2)
        self.metrics.counter("switches", kind="switch1").inc(record.num_switch1)
        self.metrics.counter("switches", kind="switch2").inc(record.num_switch2)

    def on_run_end(self, sim, history) -> None:
        # Derive totals from the round records rather than the instance
        # counters: a run resumed from a checkpoint replays only the remaining
        # rounds through this instance, but its restored history carries every
        # earlier record — so the totals stay identical to an uninterrupted run.
        history.metadata["total_switch1"] = sum(r.num_switch1 for r in history.rounds)
        history.metadata["total_switch2"] = sum(r.num_switch2 for r in history.rounds)


class FaultTelemetry(Callback):
    """Counts failures/retries/drops and records run-level fault totals.

    Per-round counts already live on each :class:`RoundRecord` (filled by the
    fault-tolerant path in ``run_round``); this callback streams them into a
    :class:`repro.obs.MetricsRegistry` (labeled ``client_failures`` counters,
    one series per failure kind, plus ``client_retries`` and
    ``dropped_clients``) and, like :class:`SwitchTelemetry`, derives run
    totals from the *history* at run end — so a run resumed from a checkpoint
    reports the same totals as an uninterrupted one.  ``history.metadata``
    gains a ``"faults"`` block only when something actually failed, keeping
    fault-free histories byte-identical to runs without the callback.
    """

    name = "fault_telemetry"

    def __init__(self) -> None:
        from ..obs import MetricsRegistry

        self.metrics = MetricsRegistry()

    def on_round_end(self, sim, record, results) -> None:
        for kind, count in record.failure_kinds.items():
            self.metrics.counter("client_failures", kind=kind).inc(count)
        self.metrics.counter("client_retries").inc(record.num_retries)
        self.metrics.counter("dropped_clients").inc(len(record.dropped_clients))

    def on_run_end(self, sim, history) -> None:
        rounds = [r for r in history.rounds if getattr(r, "num_failures", 0)]
        if not rounds:
            return
        kinds: Dict[str, int] = {}
        for record in rounds:
            for kind, count in record.failure_kinds.items():
                kinds[kind] = kinds.get(kind, 0) + count
        history.metadata["faults"] = {
            "total_failures": sum(r.num_failures for r in rounds),
            "total_retries": sum(r.num_retries for r in rounds),
            "total_dropped": sum(len(r.dropped_clients) for r in rounds),
            "degraded_rounds": sum(1 for r in rounds if r.dropped_clients),
            "failure_kinds": kinds,
        }


class PeriodicEvaluation(Callback):
    """Evaluates the global model every ``every`` rounds (``config.eval_every``)."""

    name = "eval_every"

    def __init__(self, every: int) -> None:
        if every <= 0:
            raise ValueError("every must be positive")
        self.every = every

    def on_round_end(self, sim, record, results) -> None:
        if (record.round_index + 1) % self.every == 0:
            metrics = sim.evaluate()
            if sim.history is not None:
                sim.history.evaluations.append(metrics)


class EarlyStopping(Callback):
    """Stops the run when the monitored loss stops improving.

    Parameters
    ----------
    monitor:
        ``"ema_loss"`` (the L_EMA tracker HeteroSwitch consults) or
        ``"mean_train_loss"``.
    patience:
        Number of consecutive non-improving rounds tolerated before stopping.
    min_delta:
        Minimum decrease that counts as an improvement.
    """

    name = "early_stopping"

    _MONITORS = ("ema_loss", "mean_train_loss")

    def __init__(self, monitor: str = "ema_loss", patience: int = 5,
                 min_delta: float = 0.0) -> None:
        if monitor not in self._MONITORS:
            raise ValueError(f"monitor must be one of {self._MONITORS}, got '{monitor}'")
        if patience <= 0:
            raise ValueError("patience must be positive")
        self.monitor = monitor
        self.patience = patience
        self.min_delta = min_delta
        self.best = np.inf
        self.stale_rounds = 0
        self.stopped_at: Optional[int] = None

    def on_run_start(self, sim, history) -> None:
        # A callback instance may observe several runs; patience is per run.
        self.best = np.inf
        self.stale_rounds = 0
        self.stopped_at = None
        # A resumed run starts with a restored partial history: replay it so
        # best/patience pick up exactly where the interrupted run left off.
        # If the restored rounds already exhausted the patience (the run was
        # killed after its stopping round but before the result landed), stop
        # before training any further round — otherwise the resumed run would
        # diverge from the uninterrupted one.
        for record in history.rounds:
            if self._observe(getattr(record, self.monitor)):
                self.stopped_at = record.round_index
                sim.request_stop()

    def _observe(self, value: float) -> bool:
        """Fold one monitored value in; returns True when patience ran out."""
        if value < self.best - self.min_delta:
            self.best = value
            self.stale_rounds = 0
            return False
        self.stale_rounds += 1
        return self.stale_rounds >= self.patience

    def on_round_end(self, sim, record, results) -> None:
        if self._observe(getattr(record, self.monitor)):
            self.stopped_at = record.round_index
            sim.request_stop()

    def on_run_end(self, sim, history) -> None:
        if self.stopped_at is not None:
            history.metadata["early_stopped_at"] = self.stopped_at


class RoundLogger(Callback):
    """Prints a one-line progress summary every ``every`` rounds."""

    name = "round_logger"

    def __init__(self, every: int = 1) -> None:
        if every <= 0:
            raise ValueError("every must be positive")
        self.every = every

    def on_round_end(self, sim, record, results) -> None:
        if (record.round_index + 1) % self.every == 0:
            print(
                f"[round {record.round_index + 1}] "
                f"loss={record.mean_train_loss:.4f} ema={record.ema_loss:.4f} "
                f"switch1={record.num_switch1} switch2={record.num_switch2}"
            )


class CheckpointCallback(Callback):
    """Writes crash-safe simulation snapshots while the run progresses.

    Every ``every`` rounds (and always at run end, as ``final.npz``) the full
    simulation snapshot — global weights, strategy state, EMA tracker,
    history so far — is persisted to ``directory`` via the atomic codec of
    :mod:`repro.store.checkpoint`.  A run killed at any point resumes from
    the newest checkpoint with bitwise-identical final weights and metrics
    (see :class:`repro.store.RunStore`, which wires this callback up for
    ``Runner``/CLI runs; it is also usable standalone with a bare directory).

    Parameters
    ----------
    directory:
        Where checkpoint files go (created on first write).
    every:
        Checkpoint cadence in rounds; ``0`` writes only the final snapshot.
    """

    name = "checkpoint"

    def __init__(self, directory, every: int = 1) -> None:
        if isinstance(every, bool) or not isinstance(every, int) or every < 0:
            raise ValueError(f"every must be a non-negative integer, got {every!r}")
        self.directory = Path(directory)
        self.every = every

    def _write(self, sim: "FederatedSimulation", filename: str) -> None:
        # Local import: repro.store builds on fl.simulation's snapshot format,
        # so the dependency points store -> fl everywhere but this one hook.
        from ..store.checkpoint import write_checkpoint

        self.directory.mkdir(parents=True, exist_ok=True)
        write_checkpoint(self.directory / filename, sim.snapshot())

    def on_round_end(self, sim, record, results) -> None:
        if self.every and (record.round_index + 1) % self.every == 0:
            self._write(sim, f"round_{record.round_index + 1:05d}.npz")

    def on_run_end(self, sim, history) -> None:
        self._write(sim, "final.npz")


def _async_telemetry_factory(**kwargs) -> Callback:
    """Lazily resolve :class:`~repro.fl.async_sim.AsyncTelemetry`.

    The async subsystem imports this module; registering its telemetry
    callback through a deferred factory keeps the dependency one-way.
    """
    from .async_sim.simulation import AsyncTelemetry

    return AsyncTelemetry(**kwargs)


CALLBACK_REGISTRY: Registry[Callback] = Registry("callback", {
    "switch_telemetry": SwitchTelemetry,
    "fault_telemetry": FaultTelemetry,
    "eval_every": PeriodicEvaluation,
    "early_stopping": EarlyStopping,
    "round_logger": RoundLogger,
    "checkpoint": CheckpointCallback,
    "async_telemetry": _async_telemetry_factory,
})


def create_callback(name: str, **kwargs) -> Callback:
    """Instantiate a callback by registry name."""
    return CALLBACK_REGISTRY.create(name, **kwargs)
