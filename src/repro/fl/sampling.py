"""Pluggable per-round client samplers.

The FL server samples ``K`` of the ``N`` clients each round.  Samplers derive
every round's draw from ``(seed, round_index)`` rather than from a shared
stateful RNG stream, so round ``t``'s participant set is a pure function of the
run seed and the round number: replaying round ``t`` in isolation (resume,
debugging, audit) selects exactly the clients the full run selected.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..registry import Registry

__all__ = [
    "ClientSampler",
    "UniformSampler",
    "RoundRobinSampler",
    "WeightedSampler",
    "SAMPLER_REGISTRY",
    "create_sampler",
]


class ClientSampler:
    """Interface: pick the indices of this round's participating clients."""

    name = "sampler"

    def bind(self, clients: Sequence) -> None:
        """Observe the client population before the first round.

        The simulation calls this once with its ``ClientSpec`` list; samplers
        that weight clients by device properties derive their per-client
        weights here.  The default is a no-op.
        """

    def select(self, num_clients: int, k: int, round_index: int, seed: int) -> List[int]:
        """Return ``k`` distinct client indices for ``round_index``."""
        raise NotImplementedError

    def _validate(self, num_clients: int, k: int) -> None:
        if not 0 < k <= num_clients:
            raise ValueError(f"cannot sample {k} of {num_clients} clients")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"


class UniformSampler(ClientSampler):
    """Uniform sampling without replacement (the paper's protocol)."""

    name = "uniform"

    def select(self, num_clients: int, k: int, round_index: int, seed: int) -> List[int]:
        self._validate(num_clients, k)
        rng = np.random.default_rng([seed, round_index])
        return [int(i) for i in rng.choice(num_clients, size=k, replace=False)]


class RoundRobinSampler(ClientSampler):
    """Deterministic rotation through the client population.

    Guarantees every client participates once per ``ceil(N / K)`` rounds;
    useful for debugging and for full-participation sweeps.
    """

    name = "round_robin"

    def select(self, num_clients: int, k: int, round_index: int, seed: int) -> List[int]:
        self._validate(num_clients, k)
        start = (round_index * k + seed) % num_clients
        return [(start + offset) % num_clients for offset in range(k)]


class WeightedSampler(ClientSampler):
    """Weighted sampling without replacement, seeded per ``(seed, round)``.

    Client weights come from the device each client simulates:

    * ``weight_by="market_share"`` — Table 1 market shares, so dominant
      devices (S6/S9) participate proportionally more often, matching the
      paper's observation that participation follows the install base;
    * ``weight_by="availability"`` — the latency model's on-fraction for
      ``regime``, so low-tier devices with poor duty cycles are sampled less
      (the cross-device availability skew of real fleets);
    * explicit ``weights`` (one non-negative number per client) bypass the
      device lookup entirely.

    ``smoothing`` is an additive floor (a fraction of the mean weight) so no
    client is starved completely.  Draws are a pure function of ``(seed,
    round_index)``: replaying any round reproduces its participant set.
    """

    name = "weighted"

    _WEIGHT_MODES = ("market_share", "availability")

    def __init__(self, weight_by: str = "market_share", regime: str = "mild",
                 smoothing: float = 0.05,
                 weights: Optional[Sequence[float]] = None) -> None:
        if weight_by not in self._WEIGHT_MODES:
            raise ValueError(
                f"weight_by must be one of {self._WEIGHT_MODES}, got '{weight_by}'"
            )
        if smoothing < 0.0:
            raise ValueError("smoothing must be non-negative")
        self.weight_by = weight_by
        self.regime = regime
        self.smoothing = float(smoothing)
        self._weights: Optional[np.ndarray] = None
        if weights is not None:
            self._set_weights(np.asarray(list(weights), dtype=np.float64))

    def _set_weights(self, weights: np.ndarray) -> None:
        if weights.ndim != 1 or len(weights) == 0:
            raise ValueError("weights must be a non-empty 1-D sequence")
        if np.any(weights < 0.0) or not np.all(np.isfinite(weights)):
            raise ValueError("weights must be finite and non-negative")
        if self.smoothing > 0.0:
            mean = weights.mean() if weights.any() else 1.0
            weights = weights + self.smoothing * mean
        total = weights.sum()
        if total <= 0.0:
            raise ValueError("weights must sum to a positive total")
        self._weights = weights / total

    def bind(self, clients: Sequence) -> None:
        if self._weights is not None:  # explicit weights win over device lookup
            return
        # Local import: repro.devices is independent of the FL layer.
        from ..devices.latency import build_latency_model, get_regime
        from ..devices.profiles import market_shares

        devices = [getattr(spec, "device", None) for spec in clients]
        if self.weight_by == "market_share":
            shares = market_shares(normalize=True)
            fallback = 1.0 / len(shares)
            values = [shares.get(device, fallback) for device in devices]
        else:
            regime = get_regime(self.regime)
            values = [build_latency_model(device or "client", regime).on_fraction
                      for device in devices]
        self._set_weights(np.asarray(values, dtype=np.float64))

    def select(self, num_clients: int, k: int, round_index: int, seed: int) -> List[int]:
        self._validate(num_clients, k)
        if self._weights is None:
            raise ValueError(
                "WeightedSampler has no weights; pass weights= explicitly or "
                "let the simulation bind() it to a client population first"
            )
        if len(self._weights) != num_clients:
            raise ValueError(
                f"weights cover {len(self._weights)} clients, "
                f"population has {num_clients}"
            )
        if np.count_nonzero(self._weights) < k:
            raise ValueError(
                f"cannot sample {k} clients: only "
                f"{np.count_nonzero(self._weights)} have non-zero weight "
                f"(raise smoothing)"
            )
        rng = np.random.default_rng([seed, round_index])
        indices = rng.choice(num_clients, size=k, replace=False, p=self._weights)
        return [int(i) for i in indices]


SAMPLER_REGISTRY: Registry[ClientSampler] = Registry("sampler", {
    "uniform": UniformSampler,
    "round_robin": RoundRobinSampler,
    "weighted": WeightedSampler,
})


def create_sampler(name: str, **kwargs) -> ClientSampler:
    """Instantiate a client sampler by registry name."""
    return SAMPLER_REGISTRY.create(name, **kwargs)
