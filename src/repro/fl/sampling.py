"""Pluggable per-round client samplers.

The FL server samples ``K`` of the ``N`` clients each round.  Samplers derive
every round's draw from ``(seed, round_index)`` rather than from a shared
stateful RNG stream, so round ``t``'s participant set is a pure function of the
run seed and the round number: replaying round ``t`` in isolation (resume,
debugging, audit) selects exactly the clients the full run selected.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..registry import Registry

__all__ = [
    "ClientSampler",
    "UniformSampler",
    "RoundRobinSampler",
    "SAMPLER_REGISTRY",
    "create_sampler",
]


class ClientSampler:
    """Interface: pick the indices of this round's participating clients."""

    name = "sampler"

    def select(self, num_clients: int, k: int, round_index: int, seed: int) -> List[int]:
        """Return ``k`` distinct client indices for ``round_index``."""
        raise NotImplementedError

    def _validate(self, num_clients: int, k: int) -> None:
        if not 0 < k <= num_clients:
            raise ValueError(f"cannot sample {k} of {num_clients} clients")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"


class UniformSampler(ClientSampler):
    """Uniform sampling without replacement (the paper's protocol)."""

    name = "uniform"

    def select(self, num_clients: int, k: int, round_index: int, seed: int) -> List[int]:
        self._validate(num_clients, k)
        rng = np.random.default_rng([seed, round_index])
        return [int(i) for i in rng.choice(num_clients, size=k, replace=False)]


class RoundRobinSampler(ClientSampler):
    """Deterministic rotation through the client population.

    Guarantees every client participates once per ``ceil(N / K)`` rounds;
    useful for debugging and for full-participation sweeps.
    """

    name = "round_robin"

    def select(self, num_clients: int, k: int, round_index: int, seed: int) -> List[int]:
        self._validate(num_clients, k)
        start = (round_index * k + seed) % num_clients
        return [(start + offset) % num_clients for offset in range(k)]


SAMPLER_REGISTRY: Registry[ClientSampler] = Registry("sampler", {
    "uniform": UniformSampler,
    "round_robin": RoundRobinSampler,
})


def create_sampler(name: str, **kwargs) -> ClientSampler:
    """Instantiate a client sampler by registry name."""
    return SAMPLER_REGISTRY.create(name, **kwargs)
