"""Camera sensor (hardware) simulation.

Section 3.3 of the paper attributes a large share of system-induced data
heterogeneity to the image sensor itself: focal length, aperture, pixel size
and resolution all change the RAW response recorded for the same scene.  The
original work measures this with nine physical phones; this module simulates
the same mechanism with a parametric :class:`SensorModel` that converts an
idealized scene into a device-specific Bayer RAW capture.

The per-device knobs (spectral response matrix, exposure, read/shot noise,
vignetting, resolution) are what generate *hardware* heterogeneity; the ISP
configuration attached to the device profile generates the *software* part.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

import numpy as np

from ..isp.raw import RawImage, bayer_mosaic

__all__ = ["SensorModel"]


def _resize_bilinear(image: np.ndarray, size: Tuple[int, int]) -> np.ndarray:
    """Resize an HxWxC image with separable linear interpolation (no SciPy zoom
    edge surprises; keeps the function dependency-light and deterministic)."""
    h, w = image.shape[:2]
    new_h, new_w = size
    if (h, w) == (new_h, new_w):
        return image.astype(np.float64, copy=True)
    row_pos = np.linspace(0, h - 1, new_h)
    col_pos = np.linspace(0, w - 1, new_w)
    row_lo = np.floor(row_pos).astype(int)
    col_lo = np.floor(col_pos).astype(int)
    row_hi = np.minimum(row_lo + 1, h - 1)
    col_hi = np.minimum(col_lo + 1, w - 1)
    row_frac = (row_pos - row_lo)[:, None, None]
    col_frac = (col_pos - col_lo)[None, :, None]
    top = image[row_lo][:, col_lo] * (1 - col_frac) + image[row_lo][:, col_hi] * col_frac
    bottom = image[row_hi][:, col_lo] * (1 - col_frac) + image[row_hi][:, col_hi] * col_frac
    return top * (1 - row_frac) + bottom * row_frac


@dataclass
class SensorModel:
    """Parametric model of a phone camera sensor.

    Parameters
    ----------
    resolution:
        Native capture resolution ``(height, width)`` — must be even for Bayer
        sampling.  Older/lower-tier devices use lower resolutions.
    color_response:
        3x3 matrix mixing scene RGB into sensor RGB before CFA sampling; models
        the spectral response differences between vendors' sensors.
    exposure:
        Global gain applied to the scene radiance (lens aperture + exposure).
    read_noise:
        Standard deviation of additive Gaussian read noise (in [0, 1] units).
    shot_noise_scale:
        Scale of signal-dependent (Poisson-like) shot noise; larger for small
        pixels on cheap sensors.
    vignetting:
        Strength of radial lens falloff in [0, 1); 0 disables it.
    bayer_pattern:
        CFA layout used when sampling the mosaic.
    black_level:
        Constant sensor offset added before noise and removed afterwards.
    """

    resolution: Tuple[int, int] = (64, 64)
    color_response: np.ndarray = field(default_factory=lambda: np.eye(3))
    exposure: float = 1.0
    read_noise: float = 0.01
    shot_noise_scale: float = 0.01
    vignetting: float = 0.0
    bayer_pattern: str = "RGGB"
    black_level: float = 0.0

    def __post_init__(self) -> None:
        self.color_response = np.asarray(self.color_response, dtype=np.float64)
        if self.color_response.shape != (3, 3):
            raise ValueError("color_response must be a 3x3 matrix")
        h, w = self.resolution
        if h % 2 or w % 2:
            raise ValueError("sensor resolution must be even for Bayer sampling")
        if self.exposure <= 0:
            raise ValueError("exposure must be positive")
        if self.read_noise < 0 or self.shot_noise_scale < 0:
            raise ValueError("noise parameters must be non-negative")
        if not 0.0 <= self.vignetting < 1.0:
            raise ValueError("vignetting must be in [0, 1)")

    # ------------------------------------------------------------------ #
    def _vignette_mask(self) -> np.ndarray:
        h, w = self.resolution
        ys = np.linspace(-1.0, 1.0, h)[:, None]
        xs = np.linspace(-1.0, 1.0, w)[None, :]
        radius_sq = ys ** 2 + xs ** 2
        # cos^4-like radial falloff scaled by the vignetting strength.
        return 1.0 - self.vignetting * radius_sq / 2.0

    def expose(self, scene: np.ndarray) -> np.ndarray:
        """Deterministically render the scene onto the sensor plane (no noise).

        Returns the HxWx3 linear sensor irradiance before CFA sampling.
        """
        scene = np.clip(np.asarray(scene, dtype=np.float64), 0.0, 1.0)
        resized = _resize_bilinear(scene, self.resolution)
        mixed = resized.reshape(-1, 3) @ self.color_response.T
        mixed = mixed.reshape(resized.shape)
        exposed = mixed * self.exposure
        if self.vignetting > 0:
            exposed = exposed * self._vignette_mask()[..., None]
        return np.clip(exposed, 0.0, 1.0)

    def capture_raw(self, scene: np.ndarray, rng: np.random.Generator) -> RawImage:
        """Capture a RAW Bayer mosaic of ``scene`` with sensor noise applied."""
        irradiance = self.expose(scene)
        # Shot noise: variance proportional to the signal; read noise: constant.
        shot_sigma = np.sqrt(np.maximum(irradiance, 0.0)) * self.shot_noise_scale
        noisy = irradiance + rng.normal(0.0, 1.0, size=irradiance.shape) * shot_sigma
        noisy = noisy + rng.normal(0.0, self.read_noise, size=irradiance.shape)
        noisy = np.clip(noisy + self.black_level, 0.0, 1.0 + self.black_level) - self.black_level
        noisy = np.clip(noisy, 0.0, 1.0)
        mosaic = bayer_mosaic(noisy, pattern=self.bayer_pattern)
        return RawImage(mosaic=mosaic, pattern=self.bayer_pattern, black_level=self.black_level)
