"""Camera sensor (hardware) simulation.

Section 3.3 of the paper attributes a large share of system-induced data
heterogeneity to the image sensor itself: focal length, aperture, pixel size
and resolution all change the RAW response recorded for the same scene.  The
original work measures this with nine physical phones; this module simulates
the same mechanism with a parametric :class:`SensorModel` that converts an
idealized scene into a device-specific Bayer RAW capture.

The per-device knobs (spectral response matrix, exposure, read/shot noise,
vignetting, resolution) are what generate *hardware* heterogeneity; the ISP
configuration attached to the device profile generates the *software* part.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

import numpy as np

from ..isp.raw import RawBatch, RawImage, bayer_mosaic_batch
from ..isp.resize import resize_bilinear_batch

__all__ = ["SensorModel"]


@dataclass
class SensorModel:
    """Parametric model of a phone camera sensor.

    Parameters
    ----------
    resolution:
        Native capture resolution ``(height, width)`` — must be even for Bayer
        sampling.  Older/lower-tier devices use lower resolutions.
    color_response:
        3x3 matrix mixing scene RGB into sensor RGB before CFA sampling; models
        the spectral response differences between vendors' sensors.
    exposure:
        Global gain applied to the scene radiance (lens aperture + exposure).
    read_noise:
        Standard deviation of additive Gaussian read noise (in [0, 1] units).
    shot_noise_scale:
        Scale of signal-dependent (Poisson-like) shot noise; larger for small
        pixels on cheap sensors.
    vignetting:
        Strength of radial lens falloff in [0, 1); 0 disables it.
    bayer_pattern:
        CFA layout used when sampling the mosaic.
    black_level:
        Constant sensor offset added before noise and removed afterwards.
    """

    resolution: Tuple[int, int] = (64, 64)
    color_response: np.ndarray = field(default_factory=lambda: np.eye(3))
    exposure: float = 1.0
    read_noise: float = 0.01
    shot_noise_scale: float = 0.01
    vignetting: float = 0.0
    bayer_pattern: str = "RGGB"
    black_level: float = 0.0

    def __post_init__(self) -> None:
        self.color_response = np.asarray(self.color_response, dtype=np.float64)
        if self.color_response.shape != (3, 3):
            raise ValueError("color_response must be a 3x3 matrix")
        h, w = self.resolution
        if h % 2 or w % 2:
            raise ValueError("sensor resolution must be even for Bayer sampling")
        if self.exposure <= 0:
            raise ValueError("exposure must be positive")
        if self.read_noise < 0 or self.shot_noise_scale < 0:
            raise ValueError("noise parameters must be non-negative")
        if not 0.0 <= self.vignetting < 1.0:
            raise ValueError("vignetting must be in [0, 1)")

    # ------------------------------------------------------------------ #
    def _vignette_mask(self) -> np.ndarray:
        h, w = self.resolution
        ys = np.linspace(-1.0, 1.0, h)[:, None]
        xs = np.linspace(-1.0, 1.0, w)[None, :]
        radius_sq = ys ** 2 + xs ** 2
        # cos^4-like radial falloff scaled by the vignetting strength.
        return 1.0 - self.vignetting * radius_sq / 2.0

    def expose_batch(self, scenes: np.ndarray) -> np.ndarray:
        """Deterministically render scenes onto the sensor plane (no noise).

        Returns the ``(N, H, W, 3)`` linear sensor irradiance before CFA
        sampling; every operation is per-pixel, so batching is bitwise
        identical to exposing scene-by-scene.
        """
        scenes = np.clip(np.asarray(scenes, dtype=np.float64), 0.0, 1.0)
        if scenes.ndim != 4 or scenes.shape[-1] != 3:
            raise ValueError(f"expected an (N, H, W, 3) scene batch, got {scenes.shape}")
        resized = resize_bilinear_batch(scenes, self.resolution)
        mixed = resized.reshape(-1, 3) @ self.color_response.T
        mixed = mixed.reshape(resized.shape)
        exposed = mixed * self.exposure
        if self.vignetting > 0:
            exposed = exposed * self._vignette_mask()[..., None]
        return np.clip(exposed, 0.0, 1.0)

    def expose(self, scene: np.ndarray) -> np.ndarray:
        """Render one scene onto the sensor plane (batched kernel, N=1)."""
        scene = np.asarray(scene, dtype=np.float64)
        if scene.ndim != 3:
            raise ValueError(f"expected an (H, W, 3) scene, got shape {scene.shape}")
        return self.expose_batch(scene[None])[0]

    def capture_raw_batch(self, scenes: np.ndarray, rng: np.random.Generator) -> RawBatch:
        """Capture ``(N, H, W)`` RAW Bayer mosaics with sensor noise applied.

        The noise realization is drawn as one ``(N, 2, H, W, 3)`` standard-
        normal block, which consumes the generator's bitstream in exactly the
        order the scalar path does (per scene: shot-noise draw, then read-
        noise draw) — so batched captures reproduce the scalar captures
        bit-for-bit from the same seed.
        """
        irradiance = self.expose_batch(scenes)
        # Shot noise: variance proportional to the signal; read noise: constant.
        shot_sigma = np.sqrt(np.maximum(irradiance, 0.0)) * self.shot_noise_scale
        draws = rng.normal(0.0, 1.0, size=(len(irradiance), 2) + irradiance.shape[1:])
        noisy = irradiance + draws[:, 0] * shot_sigma
        noisy = noisy + (0.0 + self.read_noise * draws[:, 1])
        if self.black_level:
            noisy = np.clip(noisy + self.black_level, 0.0, 1.0 + self.black_level) - self.black_level
        noisy = np.clip(noisy, 0.0, 1.0)
        mosaics = bayer_mosaic_batch(noisy, pattern=self.bayer_pattern)
        return RawBatch(mosaics=mosaics, pattern=self.bayer_pattern, black_level=self.black_level)

    def capture_raw(self, scene: np.ndarray, rng: np.random.Generator) -> RawImage:
        """Capture one RAW Bayer mosaic (batched kernel, N=1; same RNG stream)."""
        scene = np.asarray(scene, dtype=np.float64)
        if scene.ndim != 3:
            raise ValueError(f"expected an (H, W, 3) scene, got shape {scene.shape}")
        return self.capture_raw_batch(scene[None], rng)[0]
