"""Per-device latency and availability models for asynchronous FL.

The paper isolates *system-induced* data heterogeneity; this module extends
the same infrastructure-modeling idea to *temporal* heterogeneity.  Each
:class:`DeviceLatencyModel` is derived from the existing
:class:`~repro.devices.profiles.DeviceProfile` population rather than invented
per experiment:

* **tier → compute speed.**  High/mid/low performance tiers map to local
  training throughput (samples per simulated second), mirroring how the tiers
  already map to sensor resolution and ISP sophistication.
* **vendor + market share → network class.**  Devices with a large installed
  base (Table 1's S6/S9) are treated as the mass-market cohort on congested /
  metered links; rare flagships get fast links.  The vendor applies a small
  multiplier (infrastructure quality differs by ecosystem).
* **tier → availability duty cycle.**  Lower-tier devices are charged less
  often and churn more: they are online a smaller fraction of virtual time,
  in shorter sessions.

All distributions are *sampled by the caller*: every method takes an explicit
``numpy`` generator, so the event-driven simulation can feed it per-(client,
event) streams and keep the virtual clock a pure function of the run seed
(see :mod:`repro.fl.async_sim.events`).

A :class:`LatencyRegime` scales how strongly the profile-derived skew is
expressed — ``uniform`` collapses every device to the same speed (useful as a
control), ``mild`` uses the nominal derivation, and ``extreme`` exaggerates
the tails — so benchmarks can sweep skew without redefining the population.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Union

import numpy as np

from .profiles import DEVICE_PROFILES, DeviceProfile

__all__ = [
    "DeviceLatencyModel",
    "LatencyRegime",
    "LATENCY_REGIMES",
    "get_regime",
    "build_latency_model",
    "build_latency_models",
    "mean_round_trip",
    "describe_models",
]

# Nominal local-training throughput per performance tier, in samples per
# simulated second (one sample = one training example for one epoch).
_TIER_COMPUTE = {"high": 360.0, "mid": 140.0, "low": 45.0}
_BASE_COMPUTE = _TIER_COMPUTE["mid"]

# Nominal availability per tier: (fraction of virtual time online,
# mean online-session length in simulated seconds).
_TIER_AVAILABILITY = {
    "high": (0.90, 5400.0),
    "mid": (0.72, 2700.0),
    "low": (0.55, 1200.0),
}

# Vendor multiplier on network transfer time (ecosystem infrastructure).
_VENDOR_NETWORK = {"google": 0.85, "lg": 1.00, "samsung": 1.10}

# Market-share thresholds mapping installed base to a network class: the
# mass-market cohort shares congested links, rare flagships get fast ones.
_NETWORK_CLASSES = (
    (0.15, 28.0),  # share >= 15%: congested
    (0.05, 12.0),  # share >= 5%:  typical
    (0.00, 5.0),   # otherwise:    fast
)
_BASE_NETWORK = 12.0


@dataclass(frozen=True)
class DeviceLatencyModel:
    """Latency and availability distributions for one device type.

    Attributes
    ----------
    device:
        Device name this model was derived for.
    compute_rate:
        Local-training throughput in samples per simulated second.
    network_seconds:
        Mean round-trip transfer time (download + upload) per update.
    jitter_sigma:
        Sigma of the multiplicative log-normal jitter on each round trip.
    on_fraction:
        Long-run fraction of virtual time the device is online.
    mean_session_seconds:
        Mean length of one online session (exponentially distributed).
        ``inf`` disables churn: the device is permanently online.
    """

    device: str
    compute_rate: float
    network_seconds: float
    jitter_sigma: float
    on_fraction: float
    mean_session_seconds: float

    def __post_init__(self) -> None:
        if self.compute_rate <= 0:
            raise ValueError(f"compute_rate must be positive, got {self.compute_rate}")
        if self.network_seconds < 0:
            raise ValueError("network_seconds must be non-negative")
        if self.jitter_sigma < 0:
            raise ValueError("jitter_sigma must be non-negative")
        if not 0.0 < self.on_fraction <= 1.0:
            raise ValueError("on_fraction must be in (0, 1]")
        if self.mean_session_seconds <= 0:
            raise ValueError("mean_session_seconds must be positive")

    @property
    def always_online(self) -> bool:
        """True when churn is disabled (no on/off toggling)."""
        return not np.isfinite(self.mean_session_seconds) or self.on_fraction >= 1.0

    def sample_round_trip(self, num_samples: int, rng: np.random.Generator) -> float:
        """Virtual seconds for one dispatched update: compute + network + jitter.

        ``num_samples`` is the total number of training examples processed
        (local dataset size × local epochs).  The caller supplies the RNG so
        the draw belongs to a per-(client, event) stream.
        """
        base = num_samples / self.compute_rate + self.network_seconds
        if self.jitter_sigma > 0:
            base *= float(rng.lognormal(mean=0.0, sigma=self.jitter_sigma))
        return float(base)

    def sample_session(self, online: bool, rng: np.random.Generator) -> float:
        """Virtual seconds until the device next toggles its availability.

        Online sessions are exponential with mean ``mean_session_seconds``;
        offline gaps are scaled so the long-run online fraction equals
        ``on_fraction``.  Raises when churn is disabled (no toggles exist).
        """
        if self.always_online:
            raise RuntimeError(
                f"device '{self.device}' is permanently online; no sessions to sample"
            )
        if online:
            mean = self.mean_session_seconds
        else:
            mean = self.mean_session_seconds * (1.0 - self.on_fraction) / self.on_fraction
        # Clamp away from zero so two toggles can never collapse onto the
        # same timestamp as their own dispatch/completion.
        return float(max(rng.exponential(mean), 1e-6))

    def sample_initially_online(self, rng: np.random.Generator) -> bool:
        """Whether the device starts the run online (stationary distribution)."""
        if self.always_online:
            return True
        return bool(rng.random() < self.on_fraction)


@dataclass(frozen=True)
class LatencyRegime:
    """How strongly profile-derived heterogeneity is expressed.

    ``compute_skew`` / ``network_skew`` are exponents on the per-device ratio
    to the population baseline: ``0`` collapses every device to the baseline,
    ``1`` is the nominal derivation, ``> 1`` exaggerates the spread.
    ``churn`` scales toggle frequency (``0`` disables churn entirely).
    """

    name: str
    compute_skew: float
    network_skew: float
    jitter_sigma: float
    churn: float

    def __post_init__(self) -> None:
        if self.compute_skew < 0 or self.network_skew < 0:
            raise ValueError("skew exponents must be non-negative")
        if self.jitter_sigma < 0:
            raise ValueError("jitter_sigma must be non-negative")
        if self.churn < 0:
            raise ValueError("churn must be non-negative")


LATENCY_REGIMES: Dict[str, LatencyRegime] = {
    "uniform": LatencyRegime("uniform", compute_skew=0.0, network_skew=0.0,
                             jitter_sigma=0.05, churn=0.0),
    "mild": LatencyRegime("mild", compute_skew=1.0, network_skew=1.0,
                          jitter_sigma=0.15, churn=1.0),
    "extreme": LatencyRegime("extreme", compute_skew=1.6, network_skew=1.5,
                             jitter_sigma=0.35, churn=2.0),
}


def get_regime(regime: Union[str, LatencyRegime]) -> LatencyRegime:
    """Resolve a regime preset name (or pass an instance through)."""
    if isinstance(regime, LatencyRegime):
        return regime
    try:
        return LATENCY_REGIMES[regime]
    except KeyError:
        raise KeyError(
            f"unknown latency regime '{regime}'; "
            f"available: {sorted(LATENCY_REGIMES)}"
        ) from None


def _network_class_seconds(market_share: float) -> float:
    for threshold, seconds in _NETWORK_CLASSES:
        if market_share >= threshold:
            return seconds
    return _NETWORK_CLASSES[-1][1]


def _fallback_profile_params(device: str) -> Dict[str, float]:
    """Deterministic mid-tier parameters for devices outside Table 1.

    Synthetic datasets (``synthetic_cifar``, ``flair``...) name devices that
    have no :class:`DeviceProfile`; they get mid-tier characteristics with a
    name-hashed perturbation so distinct devices still differ.
    """
    jiggle = (zlib.crc32(device.encode("utf-8")) % 1000) / 1000.0  # [0, 1)
    return {
        "compute_rate": _TIER_COMPUTE["mid"] * (0.7 + 0.6 * jiggle),
        "network_seconds": _BASE_NETWORK * (0.8 + 0.4 * (1.0 - jiggle)),
        "on_fraction": _TIER_AVAILABILITY["mid"][0],
        "mean_session_seconds": _TIER_AVAILABILITY["mid"][1],
    }


def build_latency_model(
    device: Union[str, DeviceProfile],
    regime: Union[str, LatencyRegime] = "mild",
) -> DeviceLatencyModel:
    """Derive the latency model for one device under a regime.

    ``device`` may be a profile, a Table 1 device name, or any other string
    (synthetic-device fallback; see :func:`_fallback_profile_params`).
    """
    regime = get_regime(regime)
    if isinstance(device, DeviceProfile):
        profile = device
    else:
        profile = DEVICE_PROFILES.get(device)

    if profile is not None:
        compute = _TIER_COMPUTE[profile.tier]
        network = (_network_class_seconds(profile.market_share)
                   * _VENDOR_NETWORK.get(profile.vendor, 1.0))
        on_fraction, session = _TIER_AVAILABILITY[profile.tier]
        name = profile.name
    else:
        params = _fallback_profile_params(str(device))
        compute = params["compute_rate"]
        network = params["network_seconds"]
        on_fraction, session = params["on_fraction"], params["mean_session_seconds"]
        name = str(device)

    # Skew exponents interpolate between "everyone at the baseline" (0) and
    # the nominal profile-derived value (1); > 1 widens the spread.
    compute = _BASE_COMPUTE * (compute / _BASE_COMPUTE) ** regime.compute_skew
    network = _BASE_NETWORK * (network / _BASE_NETWORK) ** regime.network_skew

    if regime.churn <= 0:
        on_fraction, session = 1.0, float("inf")
    else:
        session = session / regime.churn

    return DeviceLatencyModel(
        device=name,
        compute_rate=compute,
        network_seconds=network,
        jitter_sigma=regime.jitter_sigma,
        on_fraction=on_fraction,
        mean_session_seconds=session,
    )


def build_latency_models(
    devices: Iterable[str],
    regime: Union[str, LatencyRegime] = "mild",
) -> Dict[str, DeviceLatencyModel]:
    """Latency models for a device population (one per distinct name)."""
    regime = get_regime(regime)
    return {name: build_latency_model(name, regime) for name in dict.fromkeys(devices)}


def mean_round_trip(model: DeviceLatencyModel, num_samples: int) -> float:
    """Expected round-trip seconds (no jitter); used for reporting only."""
    return num_samples / model.compute_rate + model.network_seconds


def describe_models(models: Mapping[str, DeviceLatencyModel]) -> Dict[str, Dict[str, float]]:
    """JSON-safe summary of a model population (for history metadata)."""
    return {
        name: {
            "compute_rate": model.compute_rate,
            "network_seconds": model.network_seconds,
            "on_fraction": model.on_fraction,
        }
        for name, model in models.items()
    }
