"""Device (hardware + ISP software) simulation for system-induced heterogeneity.

Provides the nine smartphone profiles of Table 1, their market shares, the
parametric sensor model behind them, and the synthetic device-type generators
used by the CIFAR and FLAIR-like experiments.
"""

from .profiles import (
    DEVICE_NAMES,
    DEVICE_PROFILES,
    DOMINANT_DEVICES,
    DeviceProfile,
    devices_by_tier,
    devices_by_vendor,
    get_device,
    market_shares,
)
from .sensor import SensorModel
from .synthetic import SyntheticDeviceType, generate_synthetic_devices, long_tailed_population

__all__ = [
    "DeviceProfile",
    "DEVICE_PROFILES",
    "DEVICE_NAMES",
    "DOMINANT_DEVICES",
    "get_device",
    "devices_by_vendor",
    "devices_by_tier",
    "market_shares",
    "SensorModel",
    "SyntheticDeviceType",
    "generate_synthetic_devices",
    "long_tailed_population",
]
