"""Device profiles for the nine smartphones of Table 1.

Each :class:`DeviceProfile` couples a simulated camera sensor (hardware) with
an ISP configuration (software) and the device's market share, mirroring how
the paper's dataset isolates system-induced heterogeneity: the same scene is
captured by every device and each produces a different image because of its
sensor and ISP.

The parameter choices are designed to reproduce the *structure* of the paper's
characterization rather than any specific physical phone:

* devices of the same vendor share a colour-response "family" so same-vendor
  pairs (e.g. Pixel 5 / Pixel 2) are closer to each other than cross-vendor
  pairs, matching the Table 2 observation that Pixel 5 <-> Pixel 2 shows the
  least degradation;
* lower performance tiers get lower resolution, more noise and simpler ISP
  settings (older devices "have lower resolutions and simpler ISP algorithms",
  Section 4.2);
* high-end devices get the most aggressive, most distinctive processing
  (the paper notes the Galaxy S22's "advanced ISP algorithms" make its images
  unlike everyone else's, giving it the worst Mean Others column).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from ..isp.pipeline import ISPConfig
from .sensor import SensorModel

__all__ = [
    "DeviceProfile",
    "DEVICE_PROFILES",
    "DEVICE_NAMES",
    "DOMINANT_DEVICES",
    "get_device",
    "devices_by_vendor",
    "devices_by_tier",
    "market_shares",
]


@dataclass(frozen=True)
class DeviceProfile:
    """A single device type participating in FL."""

    name: str
    vendor: str
    tier: str  # "high", "mid", or "low"
    market_share: float  # fraction of participating clients (Table 1 percentages)
    sensor: SensorModel
    isp: ISPConfig

    def __post_init__(self) -> None:
        if self.tier not in ("high", "mid", "low"):
            raise ValueError(f"tier must be high/mid/low, got '{self.tier}'")
        if not 0.0 < self.market_share <= 1.0:
            raise ValueError("market_share must be in (0, 1]")


def _color_matrix(base_hue: float, saturation: float, cross_talk: float) -> np.ndarray:
    """Build a plausible sensor colour-response matrix.

    ``base_hue`` rotates the channel mixing (vendor family), ``saturation``
    scales how much the matrix deviates from identity, and ``cross_talk``
    controls off-diagonal leakage (cheap sensors leak more between channels).
    """
    angle = np.deg2rad(base_hue)
    rotation = np.array(
        [
            [1.0, saturation * np.sin(angle), 0.0],
            [saturation * np.cos(angle) * 0.3, 1.0, saturation * np.sin(angle) * 0.3],
            [0.0, saturation * np.cos(angle), 1.0],
        ]
    )
    leak = np.full((3, 3), cross_talk)
    np.fill_diagonal(leak, 0.0)
    matrix = rotation + leak
    # Normalize rows so a white scene stays (approximately) white.
    return matrix / matrix.sum(axis=1, keepdims=True)


# Vendor colour families: each vendor's sensors share a hue bias.
_VENDOR_HUE = {"google": 10.0, "lg": 140.0, "samsung": 260.0}

# Tier-dependent hardware characteristics.
_TIER_SENSOR = {
    "high": dict(resolution=(64, 64), read_noise=0.005, shot_noise_scale=0.01, vignetting=0.05),
    "mid": dict(resolution=(48, 48), read_noise=0.015, shot_noise_scale=0.03, vignetting=0.12),
    "low": dict(resolution=(32, 32), read_noise=0.03, shot_noise_scale=0.06, vignetting=0.25),
}

# Per-device specification: (vendor, tier, market share, saturation, cross-talk,
# exposure, ISP overrides).  Market shares follow Table 1.
_DEVICE_SPECS: Dict[str, Tuple[str, str, float, float, float, float, Dict[str, str]]] = {
    "Pixel5": ("google", "high", 0.01, 0.10, 0.02, 1.00,
               {"tone": "srgb_gamma", "white_balance": "gray_world", "compression": "jpeg85"}),
    "Pixel2": ("google", "mid", 0.03, 0.12, 0.03, 0.97,
               {"tone": "srgb_gamma", "white_balance": "gray_world", "compression": "jpeg85"}),
    "Nexus5X": ("google", "low", 0.04, 0.22, 0.08, 0.85,
                {"tone": "none", "white_balance": "white_patch", "compression": "jpeg50",
                 "demosaic": "binning", "denoise": "none"}),
    "VELVET": ("lg", "high", 0.02, 0.14, 0.02, 1.02,
               {"tone": "srgb_gamma", "white_balance": "white_patch", "compression": "jpeg85"}),
    "G7": ("lg", "mid", 0.05, 0.18, 0.04, 0.92,
           {"tone": "srgb_gamma_equalize", "white_balance": "white_patch", "compression": "jpeg85",
            "denoise": "wavelet_bayes"}),
    "G4": ("lg", "low", 0.08, 0.24, 0.07, 0.88,
           {"tone": "none", "white_balance": "gray_world", "compression": "jpeg50",
            "demosaic": "binning"}),
    "S22": ("samsung", "high", 0.12, 0.30, 0.02, 1.08,
            {"tone": "srgb_gamma_equalize", "white_balance": "gray_world", "gamut": "prophoto",
             "denoise": "wavelet_bayes", "demosaic": "ahd", "compression": "jpeg85"}),
    "S9": ("samsung", "mid", 0.27, 0.16, 0.03, 1.00,
           {"tone": "srgb_gamma", "white_balance": "gray_world", "compression": "jpeg85"}),
    "S6": ("samsung", "low", 0.38, 0.20, 0.06, 0.90,
           {"tone": "srgb_gamma", "white_balance": "gray_world", "compression": "jpeg50",
            "demosaic": "binning", "denoise": "none"}),
}


def _build_profiles() -> Dict[str, DeviceProfile]:
    profiles: Dict[str, DeviceProfile] = {}
    for name, (vendor, tier, share, saturation, cross_talk, exposure, isp_overrides) in _DEVICE_SPECS.items():
        sensor_kwargs = dict(_TIER_SENSOR[tier])
        sensor = SensorModel(
            color_response=_color_matrix(_VENDOR_HUE[vendor], saturation, cross_talk),
            exposure=exposure,
            **sensor_kwargs,
        )
        isp = ISPConfig(name=f"{name}-isp", **isp_overrides)
        profiles[name] = DeviceProfile(
            name=name,
            vendor=vendor,
            tier=tier,
            market_share=share,
            sensor=sensor,
            isp=isp,
        )
    return profiles


DEVICE_PROFILES: Dict[str, DeviceProfile] = _build_profiles()
DEVICE_NAMES: List[str] = list(DEVICE_PROFILES.keys())

# Devices with the highest participation rate (Section 4.1): Galaxy S9 and S6.
DOMINANT_DEVICES: Tuple[str, str] = ("S9", "S6")


def get_device(name: str) -> DeviceProfile:
    """Look up a device profile by name (case-sensitive, as in Table 1)."""
    try:
        return DEVICE_PROFILES[name]
    except KeyError as exc:
        raise KeyError(f"unknown device '{name}'; available: {DEVICE_NAMES}") from exc


def devices_by_vendor(vendor: str) -> List[DeviceProfile]:
    """All profiles from one vendor ('samsung', 'lg' or 'google')."""
    matches = [p for p in DEVICE_PROFILES.values() if p.vendor == vendor]
    if not matches:
        vendors = sorted({p.vendor for p in DEVICE_PROFILES.values()})
        raise KeyError(f"unknown vendor '{vendor}'; available: {vendors}")
    return matches


def devices_by_tier(tier: str) -> List[DeviceProfile]:
    """All profiles in one performance tier ('high', 'mid' or 'low')."""
    matches = [p for p in DEVICE_PROFILES.values() if p.tier == tier]
    if not matches:
        tiers = sorted({p.tier for p in DEVICE_PROFILES.values()})
        raise KeyError(f"unknown tier '{tier}'; available: {tiers}")
    return matches


def market_shares(normalize: bool = True) -> Dict[str, float]:
    """Market share per device (Table 1); optionally normalized to sum to 1."""
    shares = {name: profile.market_share for name, profile in DEVICE_PROFILES.items()}
    if normalize:
        total = sum(shares.values())
        if total <= 0.0:
            raise ValueError(
                f"cannot normalize market shares: total share is {total} "
                f"across {len(shares)} device(s)"
            )
        shares = {name: share / total for name, share in shares.items()}
    return shares
