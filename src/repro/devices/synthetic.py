"""Synthetic device-type generators for the large-population experiments.

Two of the paper's evaluations need device populations beyond the nine
profiled phones:

* Section 6.5 (Fig. 8) injects heterogeneity into CIFAR-100 with **10
  randomized settings** of contrast, brightness, saturation and hue.
* Section 6.4 (Table 6) uses FLAIR, whose images come from **more than one
  thousand device types**; our synthetic stand-in draws a long-tailed
  population of perturbation profiles.

Both are modelled by :class:`SyntheticDeviceType`, a lightweight appearance
perturbation applied directly to already-formed RGB images (no RAW/ISP re-run
needed at this scale).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import List

import numpy as np

__all__ = ["SyntheticDeviceType", "generate_synthetic_devices", "long_tailed_population"]


@dataclass(frozen=True)
class SyntheticDeviceType:
    """An appearance perturbation profile emulating one device type.

    Attributes map to the four photometric controls the paper randomizes for
    the synthetic CIFAR experiment: contrast, brightness, saturation and hue.
    """

    name: str
    contrast: float = 1.0
    brightness: float = 0.0
    saturation: float = 1.0
    hue_shift: float = 0.0  # fraction of a full RGB channel rotation in [-0.5, 0.5]
    noise_sigma: float = 0.0

    def apply(self, images: np.ndarray, rng: np.random.Generator | None = None) -> np.ndarray:
        """Apply the perturbation to an ``(..., H, W, 3)`` image batch in [0, 1]."""
        images = np.asarray(images, dtype=np.float64)
        out = (images - 0.5) * self.contrast + 0.5 + self.brightness
        # Saturation: interpolate between the grayscale image and the colour image.
        gray = out.mean(axis=-1, keepdims=True)
        out = gray + (out - gray) * self.saturation
        # Hue: rotate channels by a circular blend controlled by hue_shift.
        if self.hue_shift:
            shift = self.hue_shift
            rolled = np.roll(out, 1, axis=-1)
            out = (1.0 - abs(shift)) * out + abs(shift) * rolled
        if self.noise_sigma > 0:
            rng = rng or np.random.default_rng(zlib.crc32(self.name.encode()))
            out = out + rng.normal(0.0, self.noise_sigma, size=out.shape)
        return np.clip(out, 0.0, 1.0)


def generate_synthetic_devices(
    count: int = 10,
    seed: int = 0,
    contrast_range: tuple[float, float] = (0.6, 1.4),
    brightness_range: tuple[float, float] = (-0.2, 0.2),
    saturation_range: tuple[float, float] = (0.5, 1.5),
    hue_range: tuple[float, float] = (-0.3, 0.3),
    noise_range: tuple[float, float] = (0.0, 0.05),
) -> List[SyntheticDeviceType]:
    """Draw ``count`` randomized device settings (Section 6.5's 10 settings)."""
    if count <= 0:
        raise ValueError("count must be positive")
    rng = np.random.default_rng(seed)
    devices = []
    for index in range(count):
        devices.append(
            SyntheticDeviceType(
                name=f"synthetic-{index}",
                contrast=float(rng.uniform(*contrast_range)),
                brightness=float(rng.uniform(*brightness_range)),
                saturation=float(rng.uniform(*saturation_range)),
                hue_shift=float(rng.uniform(*hue_range)),
                noise_sigma=float(rng.uniform(*noise_range)),
            )
        )
    return devices


def long_tailed_population(
    num_types: int = 50,
    seed: int = 0,
    zipf_exponent: float = 1.2,
) -> tuple[List[SyntheticDeviceType], np.ndarray]:
    """Create a long-tailed device-type population for the FLAIR-like experiment.

    Returns the device types and a probability vector over them following a
    Zipf-like distribution, emulating FLAIR's ">1000 device types" where a few
    popular models dominate and most appear rarely.
    """
    if num_types <= 0:
        raise ValueError("num_types must be positive")
    devices = generate_synthetic_devices(count=num_types, seed=seed)
    ranks = np.arange(1, num_types + 1, dtype=np.float64)
    weights = ranks ** (-zipf_exponent)
    probabilities = weights / weights.sum()
    return devices, probabilities
