"""Stochastic weight averaging: SWA (per-epoch) and SWAD (per-batch).

Section 5.2 of the paper adopts SWAD (Cha et al., 2021) on the client: during
local training the model weights after every *batch* update are folded into a
running average, and — if the switch condition holds — the averaged weights
are returned to the server instead of the final SGD iterate.  Conventional SWA
(Izmailov et al., 2018) averages once per *epoch*; Fig. 7 compares the two and
finds the denser averaging more robust, which is why HeteroSwitch uses SWAD.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..nn.engine import current_engine
from ..nn.flat import flat_arena_of
from ..nn.layers import Module
from ..nn.serialization import StateLayout, get_weights

__all__ = ["WeightAverager", "SWADAverager", "SWAAverager"]

StateDict = Dict[str, np.ndarray]


class WeightAverager:
    """Running average of model state dicts (Algorithm 1, line 17).

    The update follows the incremental-mean form used in the paper:
    ``W_avg <- (W_avg * k + W) / (k + 1)`` where ``k`` counts prior updates.

    Internally the average lives as one flat vector: SWAD folds a state in
    after *every* batch, and the incremental mean over the concatenated
    vector is elementwise — hence bitwise — identical to the per-key dict
    loop it replaces, at a fraction of the interpreter overhead.  When the
    model carries a :class:`~repro.nn.flat.FlatParams` arena,
    :meth:`update_from_model` flattens straight from the arena without
    materialising an intermediate state dict at all.
    """

    def __init__(self, initial_state: Optional[StateDict] = None) -> None:
        self._average: Optional[StateDict] = None  # reference-engine storage
        self._layout: Optional[StateLayout] = None  # flat-engine storage
        self._flat: Optional[np.ndarray] = None
        self._count = 0
        if initial_state is not None:
            self.update(initial_state)

    @property
    def count(self) -> int:
        """Number of states folded into the average so far."""
        return self._count

    def _fold(self, vector: np.ndarray) -> None:
        if self._flat is None:
            self._flat = vector.copy() if vector.base is not None else vector
            self._count = 1
            return
        k = self._count
        self._flat = (self._flat * k + vector) / (k + 1)
        self._count += 1

    def _update_reference(self, state: StateDict) -> None:
        """Seed per-key incremental mean (the reference-engine path)."""
        if self._average is None:
            self._average = {key: value.copy() for key, value in state.items()}
            self._count = 1
            return
        if state.keys() != self._average.keys():
            raise KeyError("state dict keys do not match the averaged state")
        k = self._count
        for key, value in state.items():
            self._average[key] = (self._average[key] * k + value) / (k + 1)
        self._count += 1

    def update(self, state: StateDict) -> None:
        """Fold one state dict into the running average.

        The storage representation (flat vector vs per-key dict) is chosen by
        the engine mode at the *first* update and is sticky afterwards, so an
        averager never mixes representations mid-stream.
        """
        if self._layout is not None:
            if set(state.keys()) != set(self._layout.keys):
                raise KeyError("state dict keys do not match the averaged state")
            self._fold(self._layout.pack(state))
            return
        if self._average is not None or current_engine() == "reference":
            self._update_reference(state)
            return
        self._layout = StateLayout(state)
        self._fold(self._layout.pack(state))

    def update_from_model(self, model: Module) -> None:
        """Convenience: fold the model's current weights into the average."""
        arena = None
        if self._average is None and current_engine() != "reference":
            arena = flat_arena_of(model)
        if arena is None:
            self.update(get_weights(model))
            return
        keys, shapes, vector = arena.pack_with_buffers()
        if self._layout is None:
            self._layout = StateLayout.from_keys_shapes(keys, shapes,
                                                        dtype=vector.dtype)
        elif list(keys) != self._layout.keys:
            raise KeyError("state dict keys do not match the averaged state")
        self._fold(vector)

    def average(self) -> StateDict:
        """Return a copy of the current average."""
        if self._average is not None:
            return {key: value.copy() for key, value in self._average.items()}
        if self._flat is None:
            raise RuntimeError("no states have been averaged yet")
        return {key: value.copy() for key, value in self._layout.unpack(self._flat).items()}

    def reset(self) -> None:
        self._average = None
        self._layout = None
        self._flat = None
        self._count = 0


class SWADAverager(WeightAverager):
    """Per-batch weight averaging (SWAD): call :meth:`on_batch_end` after every step."""

    def on_batch_end(self, model: Module, batch_index: int, epoch_index: int) -> None:
        del batch_index, epoch_index  # SWAD averages after every batch unconditionally
        self.update_from_model(model)


class SWAAverager(WeightAverager):
    """Per-epoch weight averaging (conventional SWA): averages at each epoch boundary.

    ``batches_per_epoch`` must be supplied so the averager can detect epoch
    boundaries from the per-batch hook the training loop exposes.
    """

    def __init__(self, batches_per_epoch: int, initial_state: Optional[StateDict] = None) -> None:
        super().__init__(initial_state)
        if batches_per_epoch <= 0:
            raise ValueError("batches_per_epoch must be positive")
        self.batches_per_epoch = batches_per_epoch

    def on_batch_end(self, model: Module, batch_index: int, epoch_index: int) -> None:
        del epoch_index
        if (batch_index + 1) % self.batches_per_epoch == 0:
            self.update_from_model(model)
