"""HeteroSwitch core: bias measurement, switching logic, SWAD, client transforms.

This package holds the paper's primary contribution (Section 5): the EMA loss
tracker of Eq. 1, the two-switch decision logic of Algorithm 1, per-batch SWAD
weight averaging, the random ISP transforms in model layout, and the
:class:`HeteroSwitch` FL strategy plus its always-on ablations.
"""

from .ema import EMALossTracker
from .heteroswitch import HeteroSwitch, ISPTransformOnly, ISPTransformWithSWAD
from .swad import SWAAverager, SWADAverager, WeightAverager
from .switch import SwitchDecision, decide_switch1, decide_switch2
from .transforms import (
    NCHWTransform,
    SignalTransform,
    default_isp_transform,
    ecg_transform,
)

__all__ = [
    "EMALossTracker",
    "WeightAverager",
    "SWADAverager",
    "SWAAverager",
    "SwitchDecision",
    "decide_switch1",
    "decide_switch2",
    "NCHWTransform",
    "SignalTransform",
    "default_isp_transform",
    "ecg_transform",
    "HeteroSwitch",
    "ISPTransformOnly",
    "ISPTransformWithSWAD",
]
