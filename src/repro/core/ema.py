"""Exponential-moving-average loss tracking (Eq. 1 of the paper).

The server keeps an EMA of the aggregated client training loss across rounds:

    L_EMA(t+1) = alpha * L_cur + (1 - alpha) * L_EMA(t)

HeteroSwitch compares each client's initial loss ``L_init`` against ``L_EMA``
to decide whether the client's data is already well represented by the global
model (a sign of bias toward that device type's characteristics).
"""

from __future__ import annotations

from typing import Iterable, List, Optional

import numpy as np

__all__ = ["EMALossTracker"]


class EMALossTracker:
    """Tracks the EMA of aggregated training losses across FL rounds."""

    def __init__(self, alpha: float = 0.9) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        self.alpha = alpha
        self._value: Optional[float] = None
        self._history: List[float] = []

    @property
    def value(self) -> Optional[float]:
        """Current EMA value, or ``None`` before the first update."""
        return self._value

    @property
    def history(self) -> List[float]:
        """EMA value after each update (for diagnostics and plotting)."""
        return list(self._history)

    def update(self, current_loss: float) -> float:
        """Fold one round's aggregated loss into the EMA (Eq. 1)."""
        current_loss = float(current_loss)
        if not np.isfinite(current_loss):
            raise ValueError(f"current_loss must be finite, got {current_loss}")
        if self._value is None:
            # First observation seeds the average.
            self._value = current_loss
        else:
            self._value = self.alpha * current_loss + (1.0 - self.alpha) * self._value
        self._history.append(self._value)
        return self._value

    def update_from_clients(self, client_losses: Iterable[float],
                            weights: Optional[Iterable[float]] = None) -> float:
        """Aggregate this round's client losses (optionally sample-weighted) and update."""
        losses = np.asarray(list(client_losses), dtype=np.float64)
        if losses.size == 0:
            raise ValueError("client_losses must not be empty")
        if weights is None:
            aggregated = float(losses.mean())
        else:
            weight_arr = np.asarray(list(weights), dtype=np.float64)
            if weight_arr.shape != losses.shape:
                raise ValueError("weights must align with client_losses")
            total = weight_arr.sum()
            if total <= 0:
                raise ValueError("weights must sum to a positive value")
            aggregated = float((losses * weight_arr).sum() / total)
        return self.update(aggregated)

    def reset(self) -> None:
        """Forget all state (used between independent FL runs)."""
        self._value = None
        self._history.clear()

    # -- persistence (checkpoint/resume) -------------------------------- #
    def state_dict(self) -> dict:
        """JSON-safe snapshot of the tracker (exact float round trip)."""
        return {"value": self._value, "history": list(self._history)}

    def load_state_dict(self, state: dict) -> None:
        """Restore a snapshot produced by :meth:`state_dict`."""
        value = state["value"]
        self._value = None if value is None else float(value)
        self._history = [float(v) for v in state["history"]]
