"""The HeteroSwitch client update (Algorithm 1) and FL strategy (Section 5).

HeteroSwitch adapts how much generalization each client applies per round:

1. *Bias measurement*: the client's initial loss ``L_init`` is compared with the
   server-tracked EMA of the aggregated loss ``L_EMA`` (Eq. 1).
2. *Switch 1 — dataset diversification*: if ``L_init < L_EMA`` the client's data
   is already well captured by the global model (bias toward its device type),
   so random ISP transformations (Eq. 2 random white balance + Eq. 3 random
   gamma) are applied during local training.
3. *Switch 2 — model generalization*: if additionally the training loss stays
   below ``L_EMA``, the SWAD per-batch weight average is returned to the server
   instead of the final SGD iterate.

Two always-on ablations of the same machinery, ``ISPTransformOnly`` and
``ISPTransformWithSWAD``, reproduce the middle rows of Table 4.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..data.partition import ClientSpec
from ..fl.strategies.base import FLContext, StateDict, Strategy
from ..fl.training import ClientResult, local_train
from ..nn.layers import Module
from .swad import SWADAverager
from .switch import SwitchDecision, decide_switch1, decide_switch2
from .transforms import BatchTransform, default_isp_transform

__all__ = ["HeteroSwitch", "ISPTransformOnly", "ISPTransformWithSWAD"]


class _GeneralizingStrategy(Strategy):
    """Shared implementation for strategies that may transform data and/or use SWAD."""

    def __init__(self, transform: Optional[BatchTransform] = None) -> None:
        self.transform: BatchTransform = transform if transform is not None else default_isp_transform()

    # Subclasses decide whether each mechanism is active for this client round.
    def _use_transform(self, init_loss: float, context: FLContext) -> bool:
        raise NotImplementedError

    def _use_swad_weights(self, switch1: bool, train_loss: float, context: FLContext) -> bool:
        raise NotImplementedError

    def client_update(
        self,
        model: Module,
        spec: ClientSpec,
        global_state: StateDict,
        context: FLContext,
    ) -> ClientResult:
        config = context.config
        # Private per-client stream: identical regardless of which execution
        # backend (serial / thread / process) runs this update.
        seed = context.client_seed(spec.client_id)
        rng = context.client_rng(spec.client_id)

        # Bias measurement happens inside local_train (init_loss); to decide the
        # switch *before* training we evaluate it here explicitly, mirroring
        # Algorithm 1 where L_init is computed first.
        from ..fl.training import evaluate_loss
        from ..nn.serialization import set_weights

        set_weights(model, global_state)
        init_loss = evaluate_loss(model, spec.dataset, config.task,
                                  batch_size=max(config.batch_size, 32))
        switch1 = self._use_transform(init_loss, context)

        transform_fn = None
        if switch1:
            def transform_fn(features: np.ndarray, labels: np.ndarray) -> np.ndarray:
                del labels
                return self.transform(features, rng)

        averager = SWADAverager()

        def batch_hook(hook_model: Module, batch_index: int, epoch_index: int) -> None:
            averager.on_batch_end(hook_model, batch_index, epoch_index)

        result = local_train(
            model,
            spec.dataset,
            config,
            global_state,
            transform=transform_fn,
            batch_hook=batch_hook if switch1 else None,
            seed=seed,
            # Already measured above for the switch decision — identical
            # weights and data, so re-evaluating it would be pure waste.
            init_loss=init_loss,
        )
        switch2 = self._use_swad_weights(switch1, result.train_loss, context)
        if switch2 and averager.count > 0:
            result.state = averager.average()

        result.init_loss = init_loss
        result.metadata["device"] = spec.device
        result.metadata["switch"] = SwitchDecision(
            switch1=switch1,
            switch2=switch2,
            init_loss=init_loss,
            train_loss=result.train_loss,
            ema_loss=context.ema.value,
        )
        return result


class HeteroSwitch(_GeneralizingStrategy):
    """The proposed method: switched ISP transformation + switched SWAD."""

    name = "heteroswitch"

    def _use_transform(self, init_loss: float, context: FLContext) -> bool:
        return decide_switch1(init_loss, context.ema.value)

    def _use_swad_weights(self, switch1: bool, train_loss: float, context: FLContext) -> bool:
        return decide_switch2(switch1, train_loss, context.ema.value)


class ISPTransformOnly(_GeneralizingStrategy):
    """Ablation: random ISP transformation applied to every client, no SWAD.

    Corresponds to the "ISP Transformation" row of Table 4.
    """

    name = "isp_transform"

    def _use_transform(self, init_loss: float, context: FLContext) -> bool:
        del init_loss, context
        return True

    def _use_swad_weights(self, switch1: bool, train_loss: float, context: FLContext) -> bool:
        del switch1, train_loss, context
        return False


class ISPTransformWithSWAD(_GeneralizingStrategy):
    """Ablation: ISP transformation and SWAD weights for every client.

    Corresponds to the "+ SWAD" row of Table 4 — the one-size-fits-all variant
    whose over-generalization HeteroSwitch's switching avoids.
    """

    name = "isp_swad"

    def _use_transform(self, init_loss: float, context: FLContext) -> bool:
        del init_loss, context
        return True

    def _use_swad_weights(self, switch1: bool, train_loss: float, context: FLContext) -> bool:
        del switch1, train_loss, context
        return True
