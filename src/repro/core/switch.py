"""The switching logic of HeteroSwitch (Algorithm 1, lines 1-5 and 22-24).

Two binary switches control how much generalization is applied to a client in
a given round:

* **Switch 1** (dataset diversification): enabled when the client's initial
  loss on its own data is *below* the EMA of the aggregated loss — the global
  model already fits this client's device characteristics well, i.e. the data
  is likely from a dominant/over-represented device type and can tolerate (and
  benefits from) random ISP transformation.
* **Switch 2** (model generalization): enabled when Switch 1 fired *and* the
  client's training loss also stayed below the EMA — the client learned easily
  even under transformation, so the more strongly generalized SWAD-averaged
  weights are returned instead of the last SGD iterate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = ["SwitchDecision", "decide_switch1", "decide_switch2"]


@dataclass(frozen=True)
class SwitchDecision:
    """Record of the two switch outcomes for one client round (for analysis)."""

    switch1: bool
    switch2: bool
    init_loss: float
    train_loss: Optional[float]
    ema_loss: Optional[float]


def decide_switch1(init_loss: float, ema_loss: Optional[float]) -> bool:
    """Switch 1: apply random ISP transformation if ``L_init < L_EMA``.

    Before the first round there is no EMA yet; HeteroSwitch then behaves like
    plain FedAvg (no transformation), so this returns ``False``.
    """
    if ema_loss is None:
        return False
    return init_loss < ema_loss


def decide_switch2(switch1: bool, train_loss: float, ema_loss: Optional[float]) -> bool:
    """Switch 2: return SWAD weights if Switch 1 fired and ``L_train < L_EMA``."""
    if not switch1 or ema_loss is None:
        return False
    return train_loss < ema_loss
