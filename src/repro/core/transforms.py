"""Client-side generalization transforms in model (NCHW) layout.

:mod:`repro.isp.transforms` operates on channel-last image arrays; the FL
training loop hands batches to strategies in the NCHW layout models consume.
This module bridges the two and bundles the paper's default client transform —
random white balance (Eq. 2) + random gamma (Eq. 3) — plus the 1-D variant
used for the ECG experiment.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

import numpy as np

from ..isp.transforms import (
    Compose,
    RandomGamma,
    RandomGaussianFilter1D,
    RandomWhiteBalance,
    Transform,
)

__all__ = [
    "BatchTransform",
    "NCHWTransform",
    "SignalTransform",
    "default_isp_transform",
    "ecg_transform",
]

# A batch transform maps (features, rng) -> transformed features in model layout.
BatchTransform = Callable[[np.ndarray, np.random.Generator], np.ndarray]


class NCHWTransform:
    """Wrap a channel-last :class:`Transform` so it applies to NCHW image batches."""

    def __init__(self, transform: Transform) -> None:
        self.transform = transform

    def __call__(self, features: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        features = np.asarray(features, dtype=np.float64)
        if features.ndim != 4:
            raise ValueError(f"expected NCHW batch, got shape {features.shape}")
        hwc = features.transpose(0, 2, 3, 1)
        transformed = self.transform(hwc, rng)
        return np.ascontiguousarray(transformed.transpose(0, 3, 1, 2))


class SignalTransform:
    """Apply a :class:`Transform` directly to (N, D) signal batches (ECG)."""

    def __init__(self, transform: Transform) -> None:
        self.transform = transform

    def __call__(self, features: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        features = np.asarray(features, dtype=np.float64)
        if features.ndim != 2:
            raise ValueError(f"expected (N, D) batch, got shape {features.shape}")
        return self.transform(features, rng)


def default_isp_transform(
    wb_degree: float = 0.5,
    gamma_degree: float = 0.5,
    per_sample: bool = True,
    extra: Optional[Sequence[Transform]] = None,
) -> NCHWTransform:
    """The paper's dataset-diversification transform: random WB + random gamma.

    The appendix's tuned degrees (WB 0.001, gamma 0.9) apply to its real-device
    dataset; the defaults here are midpoints that behave well on the synthetic
    captures, and every experiment runner can override them.
    """
    transforms: list[Transform] = [
        RandomWhiteBalance(degree=wb_degree, per_sample=per_sample),
        RandomGamma(degree=gamma_degree, per_sample=per_sample),
    ]
    if extra:
        transforms.extend(extra)
    return NCHWTransform(Compose(transforms))


def ecg_transform(min_sigma: float = 0.5, max_sigma: float = 2.5) -> SignalTransform:
    """HeteroSwitch's ECG generalization transform: a random Gaussian filter."""
    return SignalTransform(RandomGaussianFilter1D(min_sigma=min_sigma, max_sigma=max_sigma))
