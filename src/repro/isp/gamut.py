"""Colour transformation stage 2: gamut mapping (Table 3, "Gamut mapping").

Baseline maps the camera's native colour space to sRGB primaries; Option 1
omits the stage; Option 2 maps to the wide-gamut ProPhoto RGB primaries.  The
3x3 matrices below are the standard linear-RGB conversions via CIE XYZ (D50
white point for ProPhoto, D65 for sRGB), which is all the reproduction needs:
the two options apply *different* linear colour twists to the same data.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "gamut_map",
    "gamut_map_batch",
    "GAMUT_METHODS",
    "GAMUT_BATCH_METHODS",
    "SRGB_TO_XYZ",
    "XYZ_TO_SRGB",
    "XYZ_TO_PROPHOTO",
]

# Linear sRGB <-> CIE XYZ (D65), IEC 61966-2-1.
SRGB_TO_XYZ = np.array(
    [
        [0.4124564, 0.3575761, 0.1804375],
        [0.2126729, 0.7151522, 0.0721750],
        [0.0193339, 0.1191920, 0.9503041],
    ]
)
XYZ_TO_SRGB = np.linalg.inv(SRGB_TO_XYZ)

# CIE XYZ (D50) -> ProPhoto RGB (ROMM), ISO 22028-2.
XYZ_TO_PROPHOTO = np.array(
    [
        [1.3459433, -0.2556075, -0.0511118],
        [-0.5445989, 1.5081673, 0.0205351],
        [0.0000000, 0.0000000, 1.2118128],
    ]
)


def _apply_matrix(image: np.ndarray, matrix: np.ndarray) -> np.ndarray:
    """Apply a 3x3 colour matrix to any ``(..., 3)`` array (per-pixel dot
    products, so batching over a leading axis is bitwise identical)."""
    image = np.asarray(image, dtype=np.float64)
    flat = image.reshape(-1, 3) @ matrix.T
    return np.clip(flat.reshape(image.shape), 0.0, 1.0)


def gamut_srgb(image: np.ndarray) -> np.ndarray:
    """Map camera RGB (assumed ~sRGB-linear) through XYZ and back to sRGB.

    For data that is already close to sRGB this is near-identity with small
    clipping at the gamut boundary, mirroring what a real pipeline does.
    """
    xyz = _apply_matrix(image, SRGB_TO_XYZ)
    return _apply_matrix(xyz, XYZ_TO_SRGB)


def gamut_prophoto(image: np.ndarray) -> np.ndarray:
    """Map camera RGB to the ProPhoto primaries (a visibly different rendition)."""
    xyz = _apply_matrix(image, SRGB_TO_XYZ)
    return _apply_matrix(xyz, XYZ_TO_PROPHOTO)


def gamut_none(image: np.ndarray) -> np.ndarray:
    """Pass-through used when gamut mapping is omitted."""
    return np.asarray(image, dtype=np.float64)


GAMUT_METHODS = {
    "srgb": gamut_srgb,
    "none": gamut_none,
    "prophoto": gamut_prophoto,
}

# The gamut transforms are pure per-pixel matrix products, so the per-image
# functions already are the batched kernels.
GAMUT_BATCH_METHODS = GAMUT_METHODS


def gamut_map(image: np.ndarray, method: str = "srgb") -> np.ndarray:
    """Gamut-map with the named method (see :data:`GAMUT_METHODS`)."""
    try:
        fn = GAMUT_METHODS[method]
    except KeyError as exc:
        raise ValueError(f"unknown gamut method '{method}'; options: {sorted(GAMUT_METHODS)}") from exc
    return fn(image)


def gamut_map_batch(images: np.ndarray, method: str = "srgb") -> np.ndarray:
    """Gamut-map an ``(N, H, W, C)`` batch with the named method."""
    images = np.asarray(images, dtype=np.float64)
    if images.ndim != 4:
        raise ValueError(f"expected an (N, H, W, C) batch, got shape {images.shape}")
    return gamut_map(images, method)
