"""Denoising algorithms (Table 3, "Denoising" row).

Baseline: FBDD-style impulse/readout noise suppression (implemented as an
edge-preserving median + bilateral-flavoured blend).  Option 1 omits the stage
entirely.  Option 2 is wavelet BayesShrink soft-thresholding implemented with
an orthogonal Haar transform, following Chipman et al. (1997).

Every method has a batched ``(N, H, W, C)`` kernel (the implementation) and a
per-image wrapper; the batched path processes each image independently, so
stacking is bitwise identical to looping.
"""

from __future__ import annotations

import numpy as np

from .filters import median_filter_3x3

__all__ = [
    "denoise",
    "denoise_batch",
    "DENOISE_METHODS",
    "DENOISE_BATCH_METHODS",
    "denoise_fbdd",
    "denoise_wavelet_bayes",
    "denoise_none",
]


def _as_batch(images: np.ndarray) -> np.ndarray:
    images = np.asarray(images, dtype=np.float64)
    if images.ndim != 4:
        raise ValueError(f"expected an (N, H, W, C) batch, got shape {images.shape}")
    return images


def denoise_none_batch(images: np.ndarray) -> np.ndarray:
    """Pass-through used when the denoising stage is omitted."""
    return _as_batch(images)


def denoise_fbdd_batch(images: np.ndarray, strength: float = 0.5) -> np.ndarray:
    """FBDD-style denoising: median suppression blended with the original.

    FBDD (used by dcraw/LibRaw) removes impulse noise before demosaicing; on
    our already-demosaiced float images the practical equivalent is a small
    median filter whose output is blended with the input so edges survive.
    """
    images = _as_batch(images)
    if not 0.0 <= strength <= 1.0:
        raise ValueError(f"strength must be in [0, 1], got {strength}")
    filtered = np.empty_like(images)
    for channel in range(images.shape[-1]):
        filtered[..., channel] = median_filter_3x3(images[..., channel])
    return np.clip((1.0 - strength) * images + strength * filtered, 0.0, 1.0)


def _haar_decompose(channel: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """One level of a 2-D Haar wavelet transform (orthonormal) on ``(..., H, W)``."""
    a = channel[..., 0::2, 0::2]
    b = channel[..., 0::2, 1::2]
    c = channel[..., 1::2, 0::2]
    d = channel[..., 1::2, 1::2]
    ll = (a + b + c + d) / 2.0
    lh = (a + b - c - d) / 2.0
    hl = (a - b + c - d) / 2.0
    hh = (a - b - c + d) / 2.0
    return ll, lh, hl, hh


def _haar_reconstruct(ll: np.ndarray, lh: np.ndarray, hl: np.ndarray, hh: np.ndarray) -> np.ndarray:
    """Inverse of :func:`_haar_decompose`."""
    a = (ll + lh + hl + hh) / 2.0
    b = (ll + lh - hl - hh) / 2.0
    c = (ll - lh + hl - hh) / 2.0
    d = (ll - lh - hl + hh) / 2.0
    h, w = ll.shape[-2:]
    out = np.empty(ll.shape[:-2] + (2 * h, 2 * w), dtype=ll.dtype)
    out[..., 0::2, 0::2] = a
    out[..., 0::2, 1::2] = b
    out[..., 1::2, 0::2] = c
    out[..., 1::2, 1::2] = d
    return out


def _bayes_shrink_threshold(detail: np.ndarray, noise_sigma: np.ndarray) -> np.ndarray:
    """BayesShrink threshold per image: ``sigma_n^2 / sigma_x`` with a robust
    signal estimate.  ``detail`` is ``(N, h, w)``, ``noise_sigma`` is ``(N,)``."""
    noise_var = noise_sigma ** 2
    total_var = np.mean((detail ** 2).reshape(len(detail), -1), axis=-1)
    signal_var = np.maximum(total_var - noise_var, 1e-12)
    return noise_var / np.sqrt(signal_var)


def denoise_wavelet_bayes_batch(images: np.ndarray, levels: int = 1) -> np.ndarray:
    """Wavelet BayesShrink soft-thresholding (Table 3 Option 2).

    The noise level is estimated per image per channel from the finest-scale
    HH subband via the median absolute deviation, the classic Donoho estimator.
    """
    images = _as_batch(images)
    out = np.empty_like(images)
    n, h, w = images.shape[0], images.shape[1], images.shape[2]
    for channel in range(images.shape[-1]):
        data = images[..., channel]
        # Pad to even dimensions for the Haar transform if necessary.
        pad_h, pad_w = h % 2, w % 2
        if pad_h or pad_w:
            data = np.pad(data, ((0, 0), (0, pad_h), (0, pad_w)), mode="edge")
        ll, lh, hl, hh = _haar_decompose(data)
        noise_sigma = np.median(np.abs(hh).reshape(n, -1), axis=-1) / 0.6745 + 1e-12
        threshold = _bayes_shrink_threshold(hh, noise_sigma)[:, None, None]

        def soft(band: np.ndarray) -> np.ndarray:
            return np.sign(band) * np.maximum(np.abs(band) - threshold, 0.0)

        recon = _haar_reconstruct(ll, soft(lh), soft(hl), soft(hh))
        out[..., channel] = recon[:, :h, :w]
    return np.clip(out, 0.0, 1.0)


def denoise_none(image: np.ndarray) -> np.ndarray:
    """Pass-through used when the denoising stage is omitted."""
    return np.asarray(image, dtype=np.float64)


def denoise_fbdd(image: np.ndarray, strength: float = 0.5) -> np.ndarray:
    """FBDD-style denoising of one image (batched kernel, N=1)."""
    return denoise_fbdd_batch(np.asarray(image, dtype=np.float64)[None], strength)[0]


def denoise_wavelet_bayes(image: np.ndarray, levels: int = 1) -> np.ndarray:
    """Wavelet BayesShrink denoising of one image (batched kernel, N=1)."""
    return denoise_wavelet_bayes_batch(np.asarray(image, dtype=np.float64)[None], levels)[0]


DENOISE_METHODS = {
    "fbdd": denoise_fbdd,
    "none": denoise_none,
    "wavelet_bayes": denoise_wavelet_bayes,
}

DENOISE_BATCH_METHODS = {
    "fbdd": denoise_fbdd_batch,
    "none": denoise_none_batch,
    "wavelet_bayes": denoise_wavelet_bayes_batch,
}


def denoise(image: np.ndarray, method: str = "fbdd") -> np.ndarray:
    """Denoise with the named method (see :data:`DENOISE_METHODS`)."""
    try:
        fn = DENOISE_METHODS[method]
    except KeyError as exc:
        raise ValueError(f"unknown denoise method '{method}'; options: {sorted(DENOISE_METHODS)}") from exc
    return fn(image)


def denoise_batch(images: np.ndarray, method: str = "fbdd") -> np.ndarray:
    """Denoise an ``(N, H, W, C)`` batch with the named method."""
    try:
        fn = DENOISE_BATCH_METHODS[method]
    except KeyError as exc:
        raise ValueError(f"unknown denoise method '{method}'; options: {sorted(DENOISE_BATCH_METHODS)}") from exc
    return fn(images)
