"""Denoising algorithms (Table 3, "Denoising" row).

Baseline: FBDD-style impulse/readout noise suppression (implemented as an
edge-preserving median + bilateral-flavoured blend).  Option 1 omits the stage
entirely.  Option 2 is wavelet BayesShrink soft-thresholding implemented with
an orthogonal Haar transform, following Chipman et al. (1997).
"""

from __future__ import annotations

import numpy as np
from scipy import ndimage

__all__ = ["denoise", "DENOISE_METHODS", "denoise_fbdd", "denoise_wavelet_bayes", "denoise_none"]


def denoise_none(image: np.ndarray) -> np.ndarray:
    """Pass-through used when the denoising stage is omitted."""
    return np.asarray(image, dtype=np.float64)


def denoise_fbdd(image: np.ndarray, strength: float = 0.5) -> np.ndarray:
    """FBDD-style denoising: median suppression blended with the original.

    FBDD (used by dcraw/LibRaw) removes impulse noise before demosaicing; on
    our already-demosaiced float images the practical equivalent is a small
    median filter whose output is blended with the input so edges survive.
    """
    image = np.asarray(image, dtype=np.float64)
    if not 0.0 <= strength <= 1.0:
        raise ValueError(f"strength must be in [0, 1], got {strength}")
    filtered = np.empty_like(image)
    for channel in range(image.shape[-1]):
        filtered[..., channel] = ndimage.median_filter(image[..., channel], size=3, mode="mirror")
    return np.clip((1.0 - strength) * image + strength * filtered, 0.0, 1.0)


def _haar_decompose(channel: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """One level of a 2-D Haar wavelet transform (orthonormal)."""
    a = channel[0::2, 0::2]
    b = channel[0::2, 1::2]
    c = channel[1::2, 0::2]
    d = channel[1::2, 1::2]
    ll = (a + b + c + d) / 2.0
    lh = (a + b - c - d) / 2.0
    hl = (a - b + c - d) / 2.0
    hh = (a - b - c + d) / 2.0
    return ll, lh, hl, hh


def _haar_reconstruct(ll: np.ndarray, lh: np.ndarray, hl: np.ndarray, hh: np.ndarray) -> np.ndarray:
    """Inverse of :func:`_haar_decompose`."""
    a = (ll + lh + hl + hh) / 2.0
    b = (ll + lh - hl - hh) / 2.0
    c = (ll - lh + hl - hh) / 2.0
    d = (ll - lh - hl + hh) / 2.0
    h, w = ll.shape
    out = np.empty((2 * h, 2 * w), dtype=ll.dtype)
    out[0::2, 0::2] = a
    out[0::2, 1::2] = b
    out[1::2, 0::2] = c
    out[1::2, 1::2] = d
    return out


def _bayes_shrink_threshold(detail: np.ndarray, noise_sigma: float) -> float:
    """BayesShrink threshold: ``sigma_n^2 / sigma_x`` with a robust signal estimate."""
    noise_var = noise_sigma ** 2
    total_var = float(np.mean(detail ** 2))
    signal_var = max(total_var - noise_var, 1e-12)
    return noise_var / np.sqrt(signal_var)


def denoise_wavelet_bayes(image: np.ndarray, levels: int = 1) -> np.ndarray:
    """Wavelet BayesShrink soft-thresholding (Table 3 Option 2).

    The noise level is estimated per channel from the finest-scale HH subband
    via the median absolute deviation, the classic Donoho estimator.
    """
    image = np.asarray(image, dtype=np.float64)
    out = np.empty_like(image)
    for channel in range(image.shape[-1]):
        data = image[..., channel]
        h, w = data.shape
        # Pad to even dimensions for the Haar transform if necessary.
        pad_h, pad_w = h % 2, w % 2
        if pad_h or pad_w:
            data = np.pad(data, ((0, pad_h), (0, pad_w)), mode="edge")
        ll, lh, hl, hh = _haar_decompose(data)
        noise_sigma = float(np.median(np.abs(hh)) / 0.6745) + 1e-12
        threshold = _bayes_shrink_threshold(hh, noise_sigma)

        def soft(band: np.ndarray) -> np.ndarray:
            return np.sign(band) * np.maximum(np.abs(band) - threshold, 0.0)

        recon = _haar_reconstruct(ll, soft(lh), soft(hl), soft(hh))
        out[..., channel] = recon[:h, :w]
    return np.clip(out, 0.0, 1.0)


DENOISE_METHODS = {
    "fbdd": denoise_fbdd,
    "none": denoise_none,
    "wavelet_bayes": denoise_wavelet_bayes,
}


def denoise(image: np.ndarray, method: str = "fbdd") -> np.ndarray:
    """Denoise with the named method (see :data:`DENOISE_METHODS`)."""
    try:
        fn = DENOISE_METHODS[method]
    except KeyError as exc:
        raise ValueError(f"unknown denoise method '{method}'; options: {sorted(DENOISE_METHODS)}") from exc
    return fn(image)
