"""Demosaicing algorithms (Table 3, "Demosaicing" row).

The paper compares three demosaicing choices: PPG (baseline), pixel binning
(Option 1) and AHD (Option 2).  Exact reimplementations of PPG/AHD are not the
point of the reproduction — what matters is that the three options produce
*systematically different* reconstructions of the same mosaic, so models
trained on one and tested on another see a distribution shift.  We therefore
implement three well-separated reconstruction strategies:

* ``ppg``      — gradient-corrected bilinear interpolation at full resolution
  (a faithful stand-in for Pixel-Grouping-style edge-aware demosaicing).
* ``binning``  — 2x2 pixel binning: each Bayer tile collapses into one RGB
  pixel, then the result is upsampled back (lower detail, less noise).
* ``ahd``      — homogeneity-flavoured variant: bilinear interpolation followed
  by a small median-based refinement of the chroma channels, mimicking AHD's
  artifact suppression.

Each method's implementation is a batched kernel over a
:class:`~repro.isp.raw.RawBatch`; the per-image functions wrap it with N=1.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np
from scipy import ndimage

from .filters import median_filter_3x3
from .raw import BAYER_PATTERNS, RawBatch, RawImage

__all__ = [
    "demosaic",
    "demosaic_batch",
    "DEMOSAIC_METHODS",
    "DEMOSAIC_BATCH_METHODS",
    "demosaic_bilinear",
    "demosaic_binning",
    "demosaic_ahd",
]

_INTERP_KERNEL = np.array([[0.25, 0.5, 0.25], [0.5, 1.0, 0.5], [0.25, 0.5, 0.25]])


def _channel_scatter(raw: RawBatch) -> np.ndarray:
    """Scatter mosaic values into an (N, H, W, 3) array with zeros at missing sites."""
    n, h, w = raw.mosaics.shape
    rgb = np.zeros((n, h, w, 3), dtype=np.float64)
    sites = BAYER_PATTERNS[raw.pattern]
    channel_index = {"R": 0, "G1": 1, "G2": 1, "B": 2}
    for key, (dy, dx) in sites.items():
        rgb[:, dy::2, dx::2, channel_index[key]] = raw.mosaics[:, dy::2, dx::2]
    return rgb


@lru_cache(maxsize=None)
def _interp_weights(pattern: str, shape: tuple[int, int], channel: str) -> np.ndarray:
    """Normalization weights for one CFA channel (identical for every capture
    of the same pattern/resolution, so computed once)."""
    from .raw import _channel_mask

    mask = _channel_mask(shape, pattern, channel)
    weights = ndimage.convolve(mask.astype(np.float64), _INTERP_KERNEL, mode="mirror")
    weights.setflags(write=False)
    return weights


def _interpolate_channel(values: np.ndarray, mask: np.ndarray, weights: np.ndarray) -> np.ndarray:
    """Fill missing pixels of one channel stack ``(N, H, W)`` by normalized
    convolution; ``values`` is already zero off ``mask`` (scatter output), so
    the numerator needs no masking multiply."""
    weighted = ndimage.convolve(values, _INTERP_KERNEL[None], mode="mirror")
    return np.where(mask, values, weighted / np.maximum(weights, 1e-12))


def demosaic_bilinear_batch(raw: RawBatch) -> np.ndarray:
    """Gradient-agnostic bilinear demosaicing (the PPG baseline stand-in)."""
    scattered = _channel_scatter(raw)
    out = np.empty_like(scattered)
    h, w = raw.mosaics.shape[1:]
    for idx, channel in enumerate("RGB"):
        mask = raw.channel_mask(channel)
        weights = _interp_weights(raw.pattern, (h, w), channel)
        out[..., idx] = _interpolate_channel(scattered[..., idx], mask, weights)
    return np.clip(out, 0.0, 1.0)


def demosaic_binning_batch(raw: RawBatch) -> np.ndarray:
    """2x2 pixel binning: average each Bayer tile into a single RGB value.

    Binning trades spatial resolution for noise reduction; the result is
    upsampled back to the mosaic resolution by nearest-neighbour repetition so
    all demosaicing options produce same-sized images.
    """
    _, h, w = raw.mosaics.shape
    sites = BAYER_PATTERNS[raw.pattern]

    def site(key: str) -> np.ndarray:
        dy, dx = sites[key]
        return raw.mosaics[:, dy::2, dx::2]

    red = site("R")
    green = 0.5 * (site("G1") + site("G2"))
    blue = site("B")
    binned = np.stack([red, green, blue], axis=-1)  # (N, h/2, w/2, 3)
    upsampled = np.repeat(np.repeat(binned, 2, axis=1), 2, axis=2)
    return np.clip(upsampled[:, :h, :w], 0.0, 1.0)


def demosaic_ahd_batch(raw: RawBatch) -> np.ndarray:
    """AHD-flavoured demosaicing: bilinear base + median chroma refinement."""
    base = demosaic_bilinear_batch(raw)
    green = base[..., 1]
    out = base.copy()
    # Refine R and B through their chroma difference to green, the same trick
    # AHD uses to suppress colour fringes at edges.
    for idx in (0, 2):
        chroma = base[..., idx] - green
        chroma = median_filter_3x3(chroma)
        out[..., idx] = green + chroma
    return np.clip(out, 0.0, 1.0)


def demosaic_bilinear(raw: RawImage) -> np.ndarray:
    """Bilinear demosaicing of one capture (batched kernel, N=1)."""
    return demosaic_bilinear_batch(raw.as_batch())[0]


def demosaic_binning(raw: RawImage) -> np.ndarray:
    """Pixel-binning demosaicing of one capture (batched kernel, N=1)."""
    return demosaic_binning_batch(raw.as_batch())[0]


def demosaic_ahd(raw: RawImage) -> np.ndarray:
    """AHD-flavoured demosaicing of one capture (batched kernel, N=1)."""
    return demosaic_ahd_batch(raw.as_batch())[0]


DEMOSAIC_METHODS = {
    "ppg": demosaic_bilinear,
    "binning": demosaic_binning,
    "ahd": demosaic_ahd,
}

DEMOSAIC_BATCH_METHODS = {
    "ppg": demosaic_bilinear_batch,
    "binning": demosaic_binning_batch,
    "ahd": demosaic_ahd_batch,
}


def demosaic(raw: RawImage, method: str = "ppg") -> np.ndarray:
    """Demosaic a RAW image with the named method (see :data:`DEMOSAIC_METHODS`)."""
    try:
        fn = DEMOSAIC_METHODS[method]
    except KeyError as exc:
        raise ValueError(f"unknown demosaic method '{method}'; options: {sorted(DEMOSAIC_METHODS)}") from exc
    return fn(raw)


def demosaic_batch(raw: RawBatch, method: str = "ppg") -> np.ndarray:
    """Demosaic a RAW batch with the named method (see :data:`DEMOSAIC_BATCH_METHODS`)."""
    try:
        fn = DEMOSAIC_BATCH_METHODS[method]
    except KeyError as exc:
        raise ValueError(f"unknown demosaic method '{method}'; options: {sorted(DEMOSAIC_BATCH_METHODS)}") from exc
    return fn(raw)
