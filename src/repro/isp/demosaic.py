"""Demosaicing algorithms (Table 3, "Demosaicing" row).

The paper compares three demosaicing choices: PPG (baseline), pixel binning
(Option 1) and AHD (Option 2).  Exact reimplementations of PPG/AHD are not the
point of the reproduction — what matters is that the three options produce
*systematically different* reconstructions of the same mosaic, so models
trained on one and tested on another see a distribution shift.  We therefore
implement three well-separated reconstruction strategies:

* ``ppg``      — gradient-corrected bilinear interpolation at full resolution
  (a faithful stand-in for Pixel-Grouping-style edge-aware demosaicing).
* ``binning``  — 2x2 pixel binning: each Bayer tile collapses into one RGB
  pixel, then the result is upsampled back (lower detail, less noise).
* ``ahd``      — homogeneity-flavoured variant: bilinear interpolation followed
  by a small median-based refinement of the chroma channels, mimicking AHD's
  artifact suppression.
"""

from __future__ import annotations

import numpy as np
from scipy import ndimage

from .raw import BAYER_PATTERNS, RawImage

__all__ = ["demosaic", "DEMOSAIC_METHODS", "demosaic_bilinear", "demosaic_binning", "demosaic_ahd"]


def _channel_scatter(raw: RawImage) -> np.ndarray:
    """Scatter mosaic values into an HxWx3 array with zeros at missing sites."""
    h, w = raw.mosaic.shape
    rgb = np.zeros((h, w, 3), dtype=np.float64)
    sites = BAYER_PATTERNS[raw.pattern]
    channel_index = {"R": 0, "G1": 1, "G2": 1, "B": 2}
    for key, (dy, dx) in sites.items():
        rgb[dy::2, dx::2, channel_index[key]] = raw.mosaic[dy::2, dx::2]
    return rgb


def _interpolate_channel(values: np.ndarray, mask: np.ndarray) -> np.ndarray:
    """Fill missing pixels of one channel by normalized convolution."""
    kernel = np.array([[0.25, 0.5, 0.25], [0.5, 1.0, 0.5], [0.25, 0.5, 0.25]])
    weighted = ndimage.convolve(values * mask, kernel, mode="mirror")
    weights = ndimage.convolve(mask.astype(np.float64), kernel, mode="mirror")
    filled = np.where(mask, values, weighted / np.maximum(weights, 1e-12))
    return filled


def demosaic_bilinear(raw: RawImage) -> np.ndarray:
    """Gradient-agnostic bilinear demosaicing (the PPG baseline stand-in)."""
    scattered = _channel_scatter(raw)
    out = np.empty_like(scattered)
    for idx, channel in enumerate("RGB"):
        mask = raw.channel_mask(channel)
        out[..., idx] = _interpolate_channel(scattered[..., idx], mask)
    return np.clip(out, 0.0, 1.0)


def demosaic_binning(raw: RawImage) -> np.ndarray:
    """2x2 pixel binning: average each Bayer tile into a single RGB value.

    Binning trades spatial resolution for noise reduction; the result is
    upsampled back to the mosaic resolution by nearest-neighbour repetition so
    all demosaicing options produce same-sized images.
    """
    h, w = raw.mosaic.shape
    sites = BAYER_PATTERNS[raw.pattern]

    def site(key: str) -> np.ndarray:
        dy, dx = sites[key]
        return raw.mosaic[dy::2, dx::2]

    red = site("R")
    green = 0.5 * (site("G1") + site("G2"))
    blue = site("B")
    binned = np.stack([red, green, blue], axis=-1)  # (h/2, w/2, 3)
    upsampled = np.repeat(np.repeat(binned, 2, axis=0), 2, axis=1)
    return np.clip(upsampled[:h, :w], 0.0, 1.0)


def demosaic_ahd(raw: RawImage) -> np.ndarray:
    """AHD-flavoured demosaicing: bilinear base + median chroma refinement."""
    base = demosaic_bilinear(raw)
    green = base[..., 1]
    out = base.copy()
    # Refine R and B through their chroma difference to green, the same trick
    # AHD uses to suppress colour fringes at edges.
    for idx in (0, 2):
        chroma = base[..., idx] - green
        chroma = ndimage.median_filter(chroma, size=3, mode="mirror")
        out[..., idx] = green + chroma
    return np.clip(out, 0.0, 1.0)


DEMOSAIC_METHODS = {
    "ppg": demosaic_bilinear,
    "binning": demosaic_binning,
    "ahd": demosaic_ahd,
}


def demosaic(raw: RawImage, method: str = "ppg") -> np.ndarray:
    """Demosaic a RAW image with the named method (see :data:`DEMOSAIC_METHODS`)."""
    try:
        fn = DEMOSAIC_METHODS[method]
    except KeyError as exc:
        raise ValueError(f"unknown demosaic method '{method}'; options: {sorted(DEMOSAIC_METHODS)}") from exc
    return fn(raw)
