"""End-to-end ISP pipeline (Figure 1 / Table 3 of the paper).

An :class:`ISPConfig` names the algorithm used at each of the six stages —
denoising, demosaicing, white balance, gamut mapping, tone transformation and
compression — and :class:`ISPPipeline` runs a RAW capture through them in
order, producing the processed image a device's camera app would hand to the
training pipeline.

Table 3's Baseline / Option 1 / Option 2 columns are provided as ready-made
configs, and :func:`stage_variants` enumerates the per-stage substitutions the
Fig. 3 ablation sweeps over.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List

import numpy as np

from .compression import COMPRESSION_METHODS, compress_batch
from .demosaic import DEMOSAIC_METHODS, demosaic_batch
from .denoise import DENOISE_METHODS, denoise_batch
from .gamut import GAMUT_METHODS, gamut_map_batch
from .raw import RawBatch, RawImage
from .tone import TONE_METHODS, tone_transform_batch
from .white_balance import WHITE_BALANCE_METHODS, white_balance_batch

__all__ = [
    "ISPConfig",
    "ISPPipeline",
    "BASELINE_CONFIG",
    "OPTION1_CONFIG",
    "OPTION2_CONFIG",
    "ISP_STAGES",
    "stage_variants",
]

# Order of the ISP stages as they execute (Fig. 1 of the paper).
ISP_STAGES = (
    "denoise",
    "demosaic",
    "white_balance",
    "gamut",
    "tone",
    "compression",
)

_STAGE_METHODS: Dict[str, Dict[str, object]] = {
    "denoise": DENOISE_METHODS,
    "demosaic": DEMOSAIC_METHODS,
    "white_balance": WHITE_BALANCE_METHODS,
    "gamut": GAMUT_METHODS,
    "tone": TONE_METHODS,
    "compression": COMPRESSION_METHODS,
}


@dataclass(frozen=True)
class ISPConfig:
    """Algorithm selection for each ISP stage.

    Defaults correspond to the Baseline column of Table 3: FBDD denoising,
    PPG demosaicing, gray-world white balance, sRGB gamut, sRGB gamma tone
    curve and JPEG quality-85 compression.
    """

    denoise: str = "fbdd"
    demosaic: str = "ppg"
    white_balance: str = "gray_world"
    gamut: str = "srgb"
    tone: str = "srgb_gamma"
    compression: str = "jpeg85"
    name: str = "baseline"

    def __post_init__(self) -> None:
        for stage in ISP_STAGES:
            method = getattr(self, stage)
            methods = _STAGE_METHODS[stage]
            if method not in methods:
                raise ValueError(
                    f"unknown method '{method}' for ISP stage '{stage}'; "
                    f"options: {sorted(methods)}"
                )

    def with_stage(self, stage: str, method: str, name: str | None = None) -> "ISPConfig":
        """Return a copy of this config with one stage's algorithm replaced."""
        if stage not in ISP_STAGES:
            raise ValueError(f"unknown ISP stage '{stage}'; stages: {ISP_STAGES}")
        return replace(self, **{stage: method, "name": name or f"{self.name}:{stage}={method}"})

    def as_dict(self) -> Dict[str, str]:
        """Return the per-stage method mapping."""
        return {stage: getattr(self, stage) for stage in ISP_STAGES}


BASELINE_CONFIG = ISPConfig(name="baseline")

OPTION1_CONFIG = ISPConfig(
    denoise="none",
    demosaic="binning",
    white_balance="none",
    gamut="none",
    tone="none",
    compression="none",
    name="option1",
)

OPTION2_CONFIG = ISPConfig(
    denoise="wavelet_bayes",
    demosaic="ahd",
    white_balance="white_patch",
    gamut="prophoto",
    tone="srgb_gamma_equalize",
    compression="jpeg50",
    name="option2",
)

# Per-stage alternatives used by the Fig. 3 ablation: for each stage, Option 1
# omits it (or uses pixel binning for demosaicing, which cannot be omitted) and
# Option 2 swaps in the alternative algorithm from Table 3.
_STAGE_OPTIONS: Dict[str, Dict[str, str]] = {
    "denoise": {"option1": "none", "option2": "wavelet_bayes"},
    "demosaic": {"option1": "binning", "option2": "ahd"},
    "white_balance": {"option1": "none", "option2": "white_patch"},
    "gamut": {"option1": "none", "option2": "prophoto"},
    "tone": {"option1": "none", "option2": "srgb_gamma_equalize"},
    "compression": {"option1": "none", "option2": "jpeg50"},
}


def stage_variants(base: ISPConfig = BASELINE_CONFIG) -> List[ISPConfig]:
    """Enumerate the single-stage substitutions Fig. 3 evaluates.

    For every stage, returns configs identical to ``base`` except that the
    stage uses Option 1 (omitted) and Option 2 (alternative algorithm).
    """
    variants: List[ISPConfig] = []
    for stage in ISP_STAGES:
        for option, method in _STAGE_OPTIONS[stage].items():
            if method == getattr(base, stage):
                continue
            variants.append(base.with_stage(stage, method, name=f"{stage}:{option}"))
    return variants


class ISPPipeline:
    """Run a RAW capture through the six ISP stages of an :class:`ISPConfig`."""

    def __init__(self, config: ISPConfig = BASELINE_CONFIG) -> None:
        self.config = config

    def process_batch(self, raw: RawBatch) -> np.ndarray:
        """Process ``(N, H, W)`` RAW mosaics into ``(N, H, W, 3)`` images in [0, 1].

        The stage order follows Fig. 1: demosaicing must run before the
        colour stages, denoising operates on the demosaiced image (our
        denoisers are RGB-domain), and compression runs last.  Every stage
        kernel treats batch members independently, so this is bitwise
        identical to processing the captures one at a time.
        """
        images = demosaic_batch(raw, self.config.demosaic)
        images = denoise_batch(images, self.config.denoise)
        images = white_balance_batch(images, self.config.white_balance)
        images = gamut_map_batch(images, self.config.gamut)
        images = tone_transform_batch(images, self.config.tone)
        images = compress_batch(images, self.config.compression)
        return np.clip(images, 0.0, 1.0)

    def process(self, raw: RawImage) -> np.ndarray:
        """Process one RAW mosaic into an HxWx3 image (batched kernel, N=1)."""
        return self.process_batch(raw.as_batch())[0]

    def __call__(self, raw: RawImage) -> np.ndarray:
        return self.process(raw)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ISPPipeline({self.config.as_dict()})"
