"""Image compression stage (Table 3, "Image compression").

The paper uses JPEG at quality 85 (baseline) and quality 50 (Option 2);
Option 1 omits compression.  We implement the lossy core of JPEG — 8x8 block
DCT, quality-scaled quantization of the luma/chroma planes, inverse DCT —
which reproduces the characteristic blocking/ringing distortion without the
entropy-coding bookkeeping (lossless, so irrelevant to data heterogeneity).

The block transform is independent per 8x8 tile, so the batched ``(N, H, W,
C)`` kernel tiles the whole batch at once and is bitwise identical to
compressing image-by-image.
"""

from __future__ import annotations

import numpy as np
from scipy.fft import dctn, idctn

__all__ = [
    "compress",
    "compress_batch",
    "COMPRESSION_METHODS",
    "COMPRESSION_BATCH_METHODS",
    "jpeg_compress",
    "compress_none",
    "quality_to_quant_table",
]

# Standard JPEG luminance quantization table (Annex K of ITU-T T.81).
_BASE_QUANT_TABLE = np.array(
    [
        [16, 11, 10, 16, 24, 40, 51, 61],
        [12, 12, 14, 19, 26, 58, 60, 55],
        [14, 13, 16, 24, 40, 57, 69, 56],
        [14, 17, 22, 29, 51, 87, 80, 62],
        [18, 22, 37, 56, 68, 109, 103, 77],
        [24, 35, 55, 64, 81, 104, 113, 92],
        [49, 64, 78, 87, 103, 121, 120, 101],
        [72, 92, 95, 98, 112, 100, 103, 99],
    ],
    dtype=np.float64,
)

_BLOCK = 8

# RGB <-> YCbCr (JPEG / JFIF convention).
_RGB_TO_YCBCR = np.array(
    [
        [0.299, 0.587, 0.114],
        [-0.168736, -0.331264, 0.5],
        [0.5, -0.418688, -0.081312],
    ]
)
_YCBCR_TO_RGB = np.linalg.inv(_RGB_TO_YCBCR)


def quality_to_quant_table(quality: int) -> np.ndarray:
    """Scale the base quantization table for a JPEG quality factor in [1, 100]."""
    if not 1 <= quality <= 100:
        raise ValueError(f"quality must be in [1, 100], got {quality}")
    if quality < 50:
        scale = 5000.0 / quality
    else:
        scale = 200.0 - 2.0 * quality
    table = np.floor((_BASE_QUANT_TABLE * scale + 50.0) / 100.0)
    return np.clip(table, 1.0, 255.0)


def _blockwise_quantize(planes: np.ndarray, quant: np.ndarray) -> np.ndarray:
    """DCT-quantize-dequantize-IDCT every 8x8 block of ``(N, H, W)`` planes."""
    n, h, w = planes.shape
    pad_h = (-h) % _BLOCK
    pad_w = (-w) % _BLOCK
    padded = np.pad(planes, ((0, 0), (0, pad_h), (0, pad_w)), mode="edge")
    ph, pw = padded.shape[1:]
    blocks = padded.reshape(n, ph // _BLOCK, _BLOCK, pw // _BLOCK, _BLOCK).transpose(0, 1, 3, 2, 4)
    coeffs = dctn(blocks, axes=(3, 4), norm="ortho")
    quantized = np.round(coeffs / quant) * quant
    recon = idctn(quantized, axes=(3, 4), norm="ortho")
    out = recon.transpose(0, 1, 3, 2, 4).reshape(n, ph, pw)
    return out[:, :h, :w]


def jpeg_compress_batch(images: np.ndarray, quality: int = 85) -> np.ndarray:
    """Apply JPEG-style lossy compression to an ``(N, H, W, 3)`` batch."""
    images = np.clip(np.asarray(images, dtype=np.float64), 0.0, 1.0)
    if images.ndim != 4:
        raise ValueError(f"expected an (N, H, W, C) batch, got shape {images.shape}")
    quant = quality_to_quant_table(quality) / 255.0  # work in [0, 1] space
    flat = images.reshape(-1, 3) @ _RGB_TO_YCBCR.T
    ycbcr = flat.reshape(images.shape)
    out = np.empty_like(ycbcr)
    for channel in range(3):
        # Chroma planes use a stronger effective quantization (JPEG subsamples
        # them; doubling the table is the equivalent distortion here).
        channel_quant = quant if channel == 0 else quant * 2.0
        out[..., channel] = _blockwise_quantize(ycbcr[..., channel], channel_quant)
    rgb = out.reshape(-1, 3) @ _YCBCR_TO_RGB.T
    return np.clip(rgb.reshape(images.shape), 0.0, 1.0)


def jpeg_compress(image: np.ndarray, quality: int = 85) -> np.ndarray:
    """Apply JPEG-style lossy compression to one image (batched kernel, N=1)."""
    return jpeg_compress_batch(np.asarray(image, dtype=np.float64)[None], quality)[0]


def compress_none(image: np.ndarray) -> np.ndarray:
    """Pass-through used when the compression stage is omitted."""
    return np.asarray(image, dtype=np.float64)


def _jpeg85(image: np.ndarray) -> np.ndarray:
    return jpeg_compress(image, quality=85)


def _jpeg50(image: np.ndarray) -> np.ndarray:
    return jpeg_compress(image, quality=50)


def _jpeg85_batch(images: np.ndarray) -> np.ndarray:
    return jpeg_compress_batch(images, quality=85)


def _jpeg50_batch(images: np.ndarray) -> np.ndarray:
    return jpeg_compress_batch(images, quality=50)


COMPRESSION_METHODS = {
    "jpeg85": _jpeg85,
    "none": compress_none,
    "jpeg50": _jpeg50,
}

COMPRESSION_BATCH_METHODS = {
    "jpeg85": _jpeg85_batch,
    "none": compress_none,
    "jpeg50": _jpeg50_batch,
}


def compress(image: np.ndarray, method: str = "jpeg85") -> np.ndarray:
    """Compress with the named method (see :data:`COMPRESSION_METHODS`)."""
    try:
        fn = COMPRESSION_METHODS[method]
    except KeyError as exc:
        raise ValueError(
            f"unknown compression method '{method}'; options: {sorted(COMPRESSION_METHODS)}"
        ) from exc
    return fn(image)


def compress_batch(images: np.ndarray, method: str = "jpeg85") -> np.ndarray:
    """Compress an ``(N, H, W, C)`` batch with the named method."""
    images = np.asarray(images, dtype=np.float64)
    if images.ndim != 4:
        raise ValueError(f"expected an (N, H, W, C) batch, got shape {images.shape}")
    try:
        fn = COMPRESSION_BATCH_METHODS[method]
    except KeyError as exc:
        raise ValueError(
            f"unknown compression method '{method}'; options: {sorted(COMPRESSION_BATCH_METHODS)}"
        ) from exc
    return fn(images)
