"""Image compression stage (Table 3, "Image compression").

The paper uses JPEG at quality 85 (baseline) and quality 50 (Option 2);
Option 1 omits compression.  We implement the lossy core of JPEG — 8x8 block
DCT, quality-scaled quantization of the luma/chroma planes, inverse DCT —
which reproduces the characteristic blocking/ringing distortion without the
entropy-coding bookkeeping (lossless, so irrelevant to data heterogeneity).
"""

from __future__ import annotations

import numpy as np
from scipy.fft import dctn, idctn

__all__ = ["compress", "COMPRESSION_METHODS", "jpeg_compress", "compress_none", "quality_to_quant_table"]

# Standard JPEG luminance quantization table (Annex K of ITU-T T.81).
_BASE_QUANT_TABLE = np.array(
    [
        [16, 11, 10, 16, 24, 40, 51, 61],
        [12, 12, 14, 19, 26, 58, 60, 55],
        [14, 13, 16, 24, 40, 57, 69, 56],
        [14, 17, 22, 29, 51, 87, 80, 62],
        [18, 22, 37, 56, 68, 109, 103, 77],
        [24, 35, 55, 64, 81, 104, 113, 92],
        [49, 64, 78, 87, 103, 121, 120, 101],
        [72, 92, 95, 98, 112, 100, 103, 99],
    ],
    dtype=np.float64,
)

_BLOCK = 8

# RGB <-> YCbCr (JPEG / JFIF convention).
_RGB_TO_YCBCR = np.array(
    [
        [0.299, 0.587, 0.114],
        [-0.168736, -0.331264, 0.5],
        [0.5, -0.418688, -0.081312],
    ]
)
_YCBCR_TO_RGB = np.linalg.inv(_RGB_TO_YCBCR)


def quality_to_quant_table(quality: int) -> np.ndarray:
    """Scale the base quantization table for a JPEG quality factor in [1, 100]."""
    if not 1 <= quality <= 100:
        raise ValueError(f"quality must be in [1, 100], got {quality}")
    if quality < 50:
        scale = 5000.0 / quality
    else:
        scale = 200.0 - 2.0 * quality
    table = np.floor((_BASE_QUANT_TABLE * scale + 50.0) / 100.0)
    return np.clip(table, 1.0, 255.0)


def _blockwise_quantize(plane: np.ndarray, quant: np.ndarray) -> np.ndarray:
    """DCT-quantize-dequantize-IDCT every 8x8 block of a single plane."""
    h, w = plane.shape
    pad_h = (-h) % _BLOCK
    pad_w = (-w) % _BLOCK
    padded = np.pad(plane, ((0, pad_h), (0, pad_w)), mode="edge")
    ph, pw = padded.shape
    blocks = padded.reshape(ph // _BLOCK, _BLOCK, pw // _BLOCK, _BLOCK).transpose(0, 2, 1, 3)
    coeffs = dctn(blocks, axes=(2, 3), norm="ortho")
    quantized = np.round(coeffs / quant) * quant
    recon = idctn(quantized, axes=(2, 3), norm="ortho")
    out = recon.transpose(0, 2, 1, 3).reshape(ph, pw)
    return out[:h, :w]


def jpeg_compress(image: np.ndarray, quality: int = 85) -> np.ndarray:
    """Apply JPEG-style lossy compression and return the decompressed image."""
    image = np.clip(np.asarray(image, dtype=np.float64), 0.0, 1.0)
    quant = quality_to_quant_table(quality) / 255.0  # work in [0, 1] space
    flat = image.reshape(-1, 3) @ _RGB_TO_YCBCR.T
    ycbcr = flat.reshape(image.shape)
    out = np.empty_like(ycbcr)
    for channel in range(3):
        # Chroma planes use a stronger effective quantization (JPEG subsamples
        # them; doubling the table is the equivalent distortion here).
        channel_quant = quant if channel == 0 else quant * 2.0
        out[..., channel] = _blockwise_quantize(ycbcr[..., channel], channel_quant)
    rgb = out.reshape(-1, 3) @ _YCBCR_TO_RGB.T
    return np.clip(rgb.reshape(image.shape), 0.0, 1.0)


def compress_none(image: np.ndarray) -> np.ndarray:
    """Pass-through used when the compression stage is omitted."""
    return np.asarray(image, dtype=np.float64)


def _jpeg85(image: np.ndarray) -> np.ndarray:
    return jpeg_compress(image, quality=85)


def _jpeg50(image: np.ndarray) -> np.ndarray:
    return jpeg_compress(image, quality=50)


COMPRESSION_METHODS = {
    "jpeg85": _jpeg85,
    "none": compress_none,
    "jpeg50": _jpeg50,
}


def compress(image: np.ndarray, method: str = "jpeg85") -> np.ndarray:
    """Compress with the named method (see :data:`COMPRESSION_METHODS`)."""
    try:
        fn = COMPRESSION_METHODS[method]
    except KeyError as exc:
        raise ValueError(
            f"unknown compression method '{method}'; options: {sorted(COMPRESSION_METHODS)}"
        ) from exc
    return fn(image)
