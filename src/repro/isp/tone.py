"""Tone transformation stage (Table 3, "Tone transformation").

Baseline applies the standard sRGB gamma (the piecewise linear/exponential
encoding of IEC 61966-2-1).  Option 1 omits the stage (leaving linear data).
Option 2 applies the sRGB gamma followed by histogram (tone) equalization.
Section 3.4 identifies tone transformation as the second most influential ISP
stage (49.2% degradation when omitted).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "tone_transform",
    "TONE_METHODS",
    "srgb_gamma",
    "srgb_gamma_inverse",
    "tone_equalize",
    "tone_none",
    "apply_gamma",
]


def srgb_gamma(image: np.ndarray) -> np.ndarray:
    """Encode linear RGB with the sRGB transfer curve."""
    image = np.clip(np.asarray(image, dtype=np.float64), 0.0, 1.0)
    low = image * 12.92
    high = 1.055 * np.power(image, 1.0 / 2.4) - 0.055
    return np.where(image <= 0.0031308, low, high)


def srgb_gamma_inverse(image: np.ndarray) -> np.ndarray:
    """Decode an sRGB-encoded image back to linear RGB."""
    image = np.clip(np.asarray(image, dtype=np.float64), 0.0, 1.0)
    low = image / 12.92
    high = np.power((image + 0.055) / 1.055, 2.4)
    return np.where(image <= 0.04045, low, high)


def apply_gamma(image: np.ndarray, gamma: float) -> np.ndarray:
    """Raise the image to the power ``gamma`` (Eq. 3's random-gamma primitive)."""
    if gamma <= 0:
        raise ValueError(f"gamma must be positive, got {gamma}")
    image = np.clip(np.asarray(image, dtype=np.float64), 0.0, 1.0)
    return np.power(image, gamma)


def tone_equalize(image: np.ndarray, bins: int = 64) -> np.ndarray:
    """sRGB gamma followed by luminance histogram equalization (Option 2)."""
    encoded = srgb_gamma(image)
    luminance = encoded.mean(axis=-1)
    hist, bin_edges = np.histogram(luminance, bins=bins, range=(0.0, 1.0))
    cdf = np.cumsum(hist).astype(np.float64)
    if cdf[-1] <= 0:
        return encoded
    cdf /= cdf[-1]
    equalized_lum = np.interp(luminance, bin_edges[:-1], cdf)
    # Scale each pixel's channels by the luminance remapping ratio.
    ratio = equalized_lum / np.maximum(luminance, 1e-6)
    return np.clip(encoded * ratio[..., None], 0.0, 1.0)


def tone_none(image: np.ndarray) -> np.ndarray:
    """Pass-through used when tone transformation is omitted (image stays linear)."""
    return np.asarray(image, dtype=np.float64)


TONE_METHODS = {
    "srgb_gamma": srgb_gamma,
    "none": tone_none,
    "srgb_gamma_equalize": tone_equalize,
}


def tone_transform(image: np.ndarray, method: str = "srgb_gamma") -> np.ndarray:
    """Tone-transform with the named method (see :data:`TONE_METHODS`)."""
    try:
        fn = TONE_METHODS[method]
    except KeyError as exc:
        raise ValueError(f"unknown tone method '{method}'; options: {sorted(TONE_METHODS)}") from exc
    return fn(image)
