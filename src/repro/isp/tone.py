"""Tone transformation stage (Table 3, "Tone transformation").

Baseline applies the standard sRGB gamma (the piecewise linear/exponential
encoding of IEC 61966-2-1).  Option 1 omits the stage (leaving linear data).
Option 2 applies the sRGB gamma followed by histogram (tone) equalization.
Section 3.4 identifies tone transformation as the second most influential ISP
stage (49.2% degradation when omitted).

The gamma curves are elementwise, so they batch trivially; equalization
estimates a per-image luminance CDF, which the batched kernel computes with a
vectorized histogram + linear-interpolation lookup that reproduces
``np.histogram``/``np.interp`` exactly per image.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "tone_transform",
    "tone_transform_batch",
    "TONE_METHODS",
    "TONE_BATCH_METHODS",
    "srgb_gamma",
    "srgb_gamma_inverse",
    "tone_equalize",
    "tone_none",
    "apply_gamma",
]


def srgb_gamma(image: np.ndarray) -> np.ndarray:
    """Encode linear RGB with the sRGB transfer curve."""
    image = np.clip(np.asarray(image, dtype=np.float64), 0.0, 1.0)
    low = image * 12.92
    high = 1.055 * np.power(image, 1.0 / 2.4) - 0.055
    return np.where(image <= 0.0031308, low, high)


def srgb_gamma_inverse(image: np.ndarray) -> np.ndarray:
    """Decode an sRGB-encoded image back to linear RGB."""
    image = np.clip(np.asarray(image, dtype=np.float64), 0.0, 1.0)
    low = image / 12.92
    high = np.power((image + 0.055) / 1.055, 2.4)
    return np.where(image <= 0.04045, low, high)


def apply_gamma(image: np.ndarray, gamma: float) -> np.ndarray:
    """Raise the image to the power ``gamma`` (Eq. 3's random-gamma primitive)."""
    if gamma <= 0:
        raise ValueError(f"gamma must be positive, got {gamma}")
    image = np.clip(np.asarray(image, dtype=np.float64), 0.0, 1.0)
    return np.power(image, gamma)


def _rowwise_histogram(values: np.ndarray, edges: np.ndarray) -> np.ndarray:
    """Per-row histogram of ``(N, K)`` values over shared bin edges.

    Matches ``np.histogram(row, bins, range)`` exactly: bins are left-closed,
    the last bin is closed on both sides, and out-of-range values are dropped.
    """
    n, k = values.shape
    bins = len(edges) - 1
    idx = np.searchsorted(edges, values.ravel(), side="right") - 1
    idx[values.ravel() == edges[-1]] = bins - 1
    valid = (idx >= 0) & (idx < bins)
    rows = np.repeat(np.arange(n), k)[valid]
    counts = np.bincount(rows * bins + idx[valid], minlength=n * bins)
    return counts.reshape(n, bins)


def _rowwise_interp(x: np.ndarray, xp: np.ndarray, fp: np.ndarray) -> np.ndarray:
    """Per-row ``np.interp(x[i], xp, fp[i])`` for ``(N, K)`` x and ``(N, B)`` fp.

    Reproduces ``np.interp``'s arithmetic bit-for-bit for strictly increasing
    ``xp``: interior points get ``slope * (x - xp[j]) + fp[j]``; points at or
    beyond the ends clamp to the end values.
    """
    j = np.clip(np.searchsorted(xp, x.ravel(), side="right") - 1, 0, len(xp) - 2)
    j = j.reshape(x.shape)
    fp_lo = np.take_along_axis(fp, j, axis=1)
    fp_hi = np.take_along_axis(fp, j + 1, axis=1)
    slope = (fp_hi - fp_lo) / (xp[j + 1] - xp[j])
    out = slope * (x - xp[j]) + fp_lo
    out = np.where(x >= xp[-1], fp[:, -1:], out)
    out = np.where(x < xp[0], fp[:, :1], out)
    return out


def tone_equalize_batch(images: np.ndarray, bins: int = 64) -> np.ndarray:
    """sRGB gamma followed by per-image luminance histogram equalization."""
    images = np.asarray(images, dtype=np.float64)
    if images.ndim != 4:
        raise ValueError(f"expected an (N, H, W, C) batch, got shape {images.shape}")
    encoded = srgb_gamma(images)
    luminance = encoded.mean(axis=-1)                            # (N, H, W)
    n = len(images)
    flat_lum = luminance.reshape(n, -1)
    edges = np.linspace(0.0, 1.0, bins + 1)
    hist = _rowwise_histogram(flat_lum, edges)
    cdf = np.cumsum(hist, axis=1).astype(np.float64)
    totals = cdf[:, -1:]
    # A zero total can only happen for an empty image; guard like the scalar
    # path did (return the encoded image unchanged for such rows).
    safe_totals = np.maximum(totals, 1.0)
    cdf = cdf / safe_totals
    equalized_lum = _rowwise_interp(flat_lum, edges[:-1], cdf).reshape(luminance.shape)
    # Scale each pixel's channels by the luminance remapping ratio.
    ratio = equalized_lum / np.maximum(luminance, 1e-6)
    ratio = np.where((totals <= 0).reshape(-1, 1, 1), 1.0, ratio)
    return np.clip(encoded * ratio[..., None], 0.0, 1.0)


def tone_equalize(image: np.ndarray, bins: int = 64) -> np.ndarray:
    """sRGB gamma + luminance equalization of one image (batched kernel, N=1)."""
    return tone_equalize_batch(np.asarray(image, dtype=np.float64)[None], bins)[0]


def tone_none(image: np.ndarray) -> np.ndarray:
    """Pass-through used when tone transformation is omitted (image stays linear)."""
    return np.asarray(image, dtype=np.float64)


TONE_METHODS = {
    "srgb_gamma": srgb_gamma,
    "none": tone_none,
    "srgb_gamma_equalize": tone_equalize,
}

# The gamma curves are elementwise and equalization dispatches on batch rank,
# so only equalize needs a distinct batched entry.
TONE_BATCH_METHODS = {
    "srgb_gamma": srgb_gamma,
    "none": tone_none,
    "srgb_gamma_equalize": tone_equalize_batch,
}


def tone_transform(image: np.ndarray, method: str = "srgb_gamma") -> np.ndarray:
    """Tone-transform with the named method (see :data:`TONE_METHODS`)."""
    try:
        fn = TONE_METHODS[method]
    except KeyError as exc:
        raise ValueError(f"unknown tone method '{method}'; options: {sorted(TONE_METHODS)}") from exc
    return fn(image)


def tone_transform_batch(images: np.ndarray, method: str = "srgb_gamma") -> np.ndarray:
    """Tone-transform an ``(N, H, W, C)`` batch with the named method."""
    images = np.asarray(images, dtype=np.float64)
    if images.ndim != 4:
        raise ValueError(f"expected an (N, H, W, C) batch, got shape {images.shape}")
    try:
        fn = TONE_BATCH_METHODS[method]
    except KeyError as exc:
        raise ValueError(f"unknown tone method '{method}'; options: {sorted(TONE_BATCH_METHODS)}") from exc
    return fn(images)
