"""Data transformations used for dataset diversification and robustness tests.

This module implements the client-side random ISP transformations at the heart
of HeteroSwitch (Section 5.2):

* :class:`RandomWhiteBalance` — Eq. 2: per-channel gains drawn from
  ``U(1 - degree, 1 + degree)``.
* :class:`RandomGamma` — Eq. 3: exponent drawn from ``U(1 - degree, 1 + degree)``.

plus the additional transformations Fig. 7 evaluates robustness against
(affine warps and Gaussian noise) and the random Gaussian filter HeteroSwitch
uses for the 1-D ECG experiment (Section 6.6).

All image transforms operate on ``(..., H, W, C)`` float arrays in [0, 1] and
are also usable on batches shaped ``(N, H, W, C)``.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np
from scipy import ndimage

__all__ = [
    "Transform",
    "Compose",
    "RandomWhiteBalance",
    "RandomGamma",
    "RandomAffine",
    "GaussianNoise",
    "RandomGaussianFilter1D",
    "apply_white_balance_gains",
    "apply_gamma",
]


def apply_white_balance_gains(images: np.ndarray, gains: Sequence[float]) -> np.ndarray:
    """Apply the diagonal per-channel gain matrix of Eq. 2."""
    images = np.asarray(images, dtype=np.float64)
    gains_arr = np.asarray(gains, dtype=np.float64)
    if gains_arr.shape[-1] != images.shape[-1]:
        raise ValueError("number of gains must match the channel dimension")
    return np.clip(images * gains_arr, 0.0, 1.0)


def apply_gamma(images: np.ndarray, gamma: float) -> np.ndarray:
    """Apply the power-law transformation of Eq. 3."""
    if gamma <= 0:
        raise ValueError(f"gamma must be positive, got {gamma}")
    images = np.clip(np.asarray(images, dtype=np.float64), 0.0, 1.0)
    return np.power(images, gamma)


class Transform:
    """Base class: a callable mapping a batch of samples to a transformed batch."""

    def __call__(self, images: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({vars(self)})"


class Compose(Transform):
    """Apply transforms in sequence."""

    def __init__(self, transforms: Sequence[Transform]) -> None:
        self.transforms = list(transforms)

    def __call__(self, images: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        for transform in self.transforms:
            images = transform(images, rng)
        return images


class RandomWhiteBalance(Transform):
    """Eq. 2: random per-channel gains ``r ~ U(1 - degree, 1 + degree)``.

    A fresh gain triple is drawn per call (i.e. per batch), matching the
    "random transformation on D" step of Algorithm 1.
    """

    def __init__(self, degree: float = 0.5, per_sample: bool = False) -> None:
        if not 0.0 <= degree < 1.0:
            raise ValueError(f"degree must be in [0, 1), got {degree}")
        self.degree = degree
        self.per_sample = per_sample

    def __call__(self, images: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        images = np.asarray(images, dtype=np.float64)
        channels = images.shape[-1]
        if self.per_sample and images.ndim == 4:
            gains = rng.uniform(1.0 - self.degree, 1.0 + self.degree,
                                size=(images.shape[0], 1, 1, channels))
            return np.clip(images * gains, 0.0, 1.0)
        gains = rng.uniform(1.0 - self.degree, 1.0 + self.degree, size=channels)
        return apply_white_balance_gains(images, gains)


class RandomGamma(Transform):
    """Eq. 3: random power-law tone change ``gamma ~ U(1 - degree, 1 + degree)``."""

    def __init__(self, degree: float = 0.5, per_sample: bool = False) -> None:
        if not 0.0 <= degree < 1.0:
            raise ValueError(f"degree must be in [0, 1), got {degree}")
        self.degree = degree
        self.per_sample = per_sample

    def __call__(self, images: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        images = np.clip(np.asarray(images, dtype=np.float64), 0.0, 1.0)
        if self.per_sample and images.ndim == 4:
            gammas = rng.uniform(1.0 - self.degree, 1.0 + self.degree,
                                 size=(images.shape[0], 1, 1, 1))
            return np.power(images, gammas)
        gamma = float(rng.uniform(1.0 - self.degree, 1.0 + self.degree))
        return apply_gamma(images, gamma)


class RandomAffine(Transform):
    """Small random rotation + translation, the geometric transform of Fig. 7."""

    def __init__(self, degree: float = 0.3, max_rotation_deg: float = 30.0,
                 max_translation: float = 0.2) -> None:
        if not 0.0 <= degree <= 1.0:
            raise ValueError(f"degree must be in [0, 1], got {degree}")
        self.degree = degree
        self.max_rotation_deg = max_rotation_deg
        self.max_translation = max_translation

    def __call__(self, images: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        images = np.asarray(images, dtype=np.float64)
        single = images.ndim == 3
        batch = images[None] if single else images
        angle = float(rng.uniform(-1.0, 1.0)) * self.max_rotation_deg * self.degree
        height, width = batch.shape[1:3]
        shift_y = float(rng.uniform(-1.0, 1.0)) * self.max_translation * self.degree * height
        shift_x = float(rng.uniform(-1.0, 1.0)) * self.max_translation * self.degree * width
        out = np.empty_like(batch)
        for i in range(batch.shape[0]):
            rotated = ndimage.rotate(batch[i], angle, axes=(0, 1), reshape=False,
                                     order=1, mode="nearest")
            out[i] = ndimage.shift(rotated, (shift_y, shift_x, 0), order=1, mode="nearest")
        out = np.clip(out, 0.0, 1.0)
        return out[0] if single else out


class GaussianNoise(Transform):
    """Additive Gaussian pixel noise, the appearance perturbation of Fig. 7."""

    def __init__(self, degree: float = 0.3, max_sigma: float = 0.1) -> None:
        if degree < 0:
            raise ValueError(f"degree must be non-negative, got {degree}")
        self.degree = degree
        self.max_sigma = max_sigma

    def __call__(self, images: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        images = np.asarray(images, dtype=np.float64)
        sigma = self.max_sigma * self.degree
        noise = rng.normal(0.0, sigma, size=images.shape)
        return np.clip(images + noise, 0.0, 1.0)


class RandomGaussianFilter1D(Transform):
    """Random-width Gaussian smoothing for 1-D signals (ECG experiment).

    HeteroSwitch's generalization transform for the ECG dataset is a random
    Gaussian filter (Section 6.6): smoothing with a randomly drawn bandwidth
    diversifies the sensor-specific noise signatures of the training signal.
    """

    def __init__(self, min_sigma: float = 0.5, max_sigma: float = 2.5) -> None:
        if min_sigma <= 0 or max_sigma < min_sigma:
            raise ValueError("require 0 < min_sigma <= max_sigma")
        self.min_sigma = min_sigma
        self.max_sigma = max_sigma

    def __call__(self, signals: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        signals = np.asarray(signals, dtype=np.float64)
        sigma = float(rng.uniform(self.min_sigma, self.max_sigma))
        return ndimage.gaussian_filter1d(signals, sigma=sigma, axis=-1, mode="nearest")
