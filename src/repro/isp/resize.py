"""Shared separable bilinear resize, batched over the leading dimension.

Both the sensor (scene -> sensor plane) and the capture layer (processed
image -> training tensor) need the same dependency-light deterministic
resize.  The batched kernel operates on ``(N, H, W, C)`` arrays with pure
elementwise gather/lerp arithmetic, so resizing a stacked batch is bitwise
identical to resizing each image alone — the property the batched capture
path's equivalence guarantee rests on.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = ["resize_bilinear", "resize_bilinear_batch"]


def resize_bilinear_batch(images: np.ndarray, size: Tuple[int, int]) -> np.ndarray:
    """Resize an ``(N, H, W, C)`` batch to ``(N, new_h, new_w, C)``."""
    images = np.asarray(images, dtype=np.float64)
    if images.ndim != 4:
        raise ValueError(f"expected an (N, H, W, C) batch, got shape {images.shape}")
    h, w = images.shape[1:3]
    new_h, new_w = size
    if (h, w) == (new_h, new_w):
        return images.copy()
    row_pos = np.linspace(0, h - 1, new_h)
    col_pos = np.linspace(0, w - 1, new_w)
    row_lo = np.floor(row_pos).astype(int)
    col_lo = np.floor(col_pos).astype(int)
    row_hi = np.minimum(row_lo + 1, h - 1)
    col_hi = np.minimum(col_lo + 1, w - 1)
    row_frac = (row_pos - row_lo)[None, :, None, None]
    col_frac = (col_pos - col_lo)[None, None, :, None]
    # Separable two-pass lerp: rows first, then columns of the row-reduced
    # array — half the gather/fma traffic of the naive four-corner blend.
    rows = images[:, row_lo] * (1 - row_frac) + images[:, row_hi] * row_frac
    return rows[:, :, col_lo] * (1 - col_frac) + rows[:, :, col_hi] * col_frac


def resize_bilinear(image: np.ndarray, size: Tuple[int, int]) -> np.ndarray:
    """Resize one ``(H, W, C)`` image (thin wrapper over the batched kernel)."""
    image = np.asarray(image, dtype=np.float64)
    if image.ndim != 3:
        raise ValueError(f"expected an (H, W, C) image, got shape {image.shape}")
    return resize_bilinear_batch(image[None], size)[0]
