"""Software image-signal-processing (ISP) pipeline simulator.

Implements the six-stage ISP of Fig. 1 / Table 3 of the paper — denoising,
demosaicing, white balance, gamut mapping, tone transformation and JPEG-style
compression — plus the random ISP transformations HeteroSwitch applies on the
client (Eq. 2 and Eq. 3).
"""

from .compression import COMPRESSION_METHODS, compress, compress_batch, jpeg_compress
from .demosaic import DEMOSAIC_METHODS, demosaic, demosaic_batch
from .denoise import DENOISE_METHODS, denoise, denoise_batch
from .gamut import GAMUT_METHODS, gamut_map, gamut_map_batch
from .pipeline import (
    BASELINE_CONFIG,
    ISP_STAGES,
    ISPConfig,
    ISPPipeline,
    OPTION1_CONFIG,
    OPTION2_CONFIG,
    stage_variants,
)
from .raw import (
    BAYER_PATTERNS,
    RawBatch,
    RawImage,
    bayer_mosaic,
    bayer_mosaic_batch,
    raw_to_training_array,
    raw_to_training_array_batch,
)
from .resize import resize_bilinear, resize_bilinear_batch
from .tone import (
    TONE_METHODS,
    apply_gamma,
    srgb_gamma,
    srgb_gamma_inverse,
    tone_transform,
    tone_transform_batch,
)
from .transforms import (
    Compose,
    GaussianNoise,
    RandomAffine,
    RandomGamma,
    RandomGaussianFilter1D,
    RandomWhiteBalance,
    Transform,
    apply_white_balance_gains,
)
from .white_balance import WHITE_BALANCE_METHODS, white_balance, white_balance_batch

__all__ = [
    "RawImage",
    "RawBatch",
    "bayer_mosaic",
    "bayer_mosaic_batch",
    "raw_to_training_array",
    "raw_to_training_array_batch",
    "resize_bilinear",
    "resize_bilinear_batch",
    "BAYER_PATTERNS",
    "ISPConfig",
    "ISPPipeline",
    "BASELINE_CONFIG",
    "OPTION1_CONFIG",
    "OPTION2_CONFIG",
    "ISP_STAGES",
    "stage_variants",
    "demosaic",
    "demosaic_batch",
    "DEMOSAIC_METHODS",
    "denoise",
    "denoise_batch",
    "DENOISE_METHODS",
    "white_balance",
    "white_balance_batch",
    "WHITE_BALANCE_METHODS",
    "gamut_map",
    "gamut_map_batch",
    "GAMUT_METHODS",
    "tone_transform",
    "tone_transform_batch",
    "TONE_METHODS",
    "srgb_gamma",
    "srgb_gamma_inverse",
    "apply_gamma",
    "compress",
    "compress_batch",
    "jpeg_compress",
    "COMPRESSION_METHODS",
    "Transform",
    "Compose",
    "RandomWhiteBalance",
    "RandomGamma",
    "RandomAffine",
    "GaussianNoise",
    "RandomGaussianFilter1D",
    "apply_white_balance_gains",
]
