"""Software image-signal-processing (ISP) pipeline simulator.

Implements the six-stage ISP of Fig. 1 / Table 3 of the paper — denoising,
demosaicing, white balance, gamut mapping, tone transformation and JPEG-style
compression — plus the random ISP transformations HeteroSwitch applies on the
client (Eq. 2 and Eq. 3).
"""

from .compression import COMPRESSION_METHODS, compress, jpeg_compress
from .demosaic import DEMOSAIC_METHODS, demosaic
from .denoise import DENOISE_METHODS, denoise
from .gamut import GAMUT_METHODS, gamut_map
from .pipeline import (
    BASELINE_CONFIG,
    ISP_STAGES,
    ISPConfig,
    ISPPipeline,
    OPTION1_CONFIG,
    OPTION2_CONFIG,
    stage_variants,
)
from .raw import BAYER_PATTERNS, RawImage, bayer_mosaic, raw_to_training_array
from .tone import TONE_METHODS, apply_gamma, srgb_gamma, srgb_gamma_inverse, tone_transform
from .transforms import (
    Compose,
    GaussianNoise,
    RandomAffine,
    RandomGamma,
    RandomGaussianFilter1D,
    RandomWhiteBalance,
    Transform,
    apply_white_balance_gains,
)
from .white_balance import WHITE_BALANCE_METHODS, white_balance

__all__ = [
    "RawImage",
    "bayer_mosaic",
    "raw_to_training_array",
    "BAYER_PATTERNS",
    "ISPConfig",
    "ISPPipeline",
    "BASELINE_CONFIG",
    "OPTION1_CONFIG",
    "OPTION2_CONFIG",
    "ISP_STAGES",
    "stage_variants",
    "demosaic",
    "DEMOSAIC_METHODS",
    "denoise",
    "DENOISE_METHODS",
    "white_balance",
    "WHITE_BALANCE_METHODS",
    "gamut_map",
    "GAMUT_METHODS",
    "tone_transform",
    "TONE_METHODS",
    "srgb_gamma",
    "srgb_gamma_inverse",
    "apply_gamma",
    "compress",
    "jpeg_compress",
    "COMPRESSION_METHODS",
    "Transform",
    "Compose",
    "RandomWhiteBalance",
    "RandomGamma",
    "RandomAffine",
    "GaussianNoise",
    "RandomGaussianFilter1D",
    "apply_white_balance_gains",
]
