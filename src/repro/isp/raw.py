"""RAW image representation and Bayer colour-filter-array simulation.

The paper's characterization separates hardware effects (lens + sensor,
Section 3.3) from software effects (ISP algorithms, Section 3.4) by collecting
both RAW sensor data and post-ISP images.  This module provides the RAW side:
converting an idealized linear-RGB scene into the single-channel Bayer mosaic
a real sensor records, which the rest of :mod:`repro.isp` then processes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "RawImage",
    "RawBatch",
    "bayer_mosaic",
    "bayer_mosaic_batch",
    "BAYER_PATTERNS",
    "raw_to_training_array",
    "raw_to_training_array_batch",
]

# Offsets of (R, G1, G2, B) sites within the 2x2 Bayer tile for each pattern.
BAYER_PATTERNS = {
    "RGGB": {"R": (0, 0), "G1": (0, 1), "G2": (1, 0), "B": (1, 1)},
    "BGGR": {"B": (0, 0), "G1": (0, 1), "G2": (1, 0), "R": (1, 1)},
    "GRBG": {"G1": (0, 0), "R": (0, 1), "B": (1, 0), "G2": (1, 1)},
    "GBRG": {"G1": (0, 0), "B": (0, 1), "R": (1, 0), "G2": (1, 1)},
}


@dataclass
class RawImage:
    """A single-channel Bayer mosaic plus the metadata needed to process it.

    Attributes
    ----------
    mosaic:
        2-D float array in [0, 1]; each pixel holds the response of one colour
        site according to ``pattern``.
    pattern:
        Bayer pattern name (key of :data:`BAYER_PATTERNS`).
    black_level:
        Sensor black level already subtracted from the data (kept for record).
    device:
        Name of the device profile that produced the capture, if any.
    """

    mosaic: np.ndarray
    pattern: str = "RGGB"
    black_level: float = 0.0
    device: str | None = None

    def __post_init__(self) -> None:
        self.mosaic = np.asarray(self.mosaic, dtype=np.float64)
        if self.mosaic.ndim != 2:
            raise ValueError(f"RAW mosaic must be 2-D, got shape {self.mosaic.shape}")
        if self.mosaic.shape[0] % 2 or self.mosaic.shape[1] % 2:
            raise ValueError("RAW mosaic dimensions must be even (full Bayer tiles)")
        if self.pattern not in BAYER_PATTERNS:
            raise ValueError(f"unknown Bayer pattern '{self.pattern}'")

    @property
    def shape(self) -> tuple[int, int]:
        return self.mosaic.shape

    def channel_mask(self, channel: str) -> np.ndarray:
        """Boolean mask of pixels belonging to ``channel`` ('R', 'G', or 'B')."""
        return _channel_mask(self.mosaic.shape, self.pattern, channel)

    def as_batch(self) -> "RawBatch":
        """View this capture as a single-image :class:`RawBatch`."""
        return RawBatch(mosaics=self.mosaic[None], pattern=self.pattern,
                        black_level=self.black_level, device=self.device)


@dataclass
class RawBatch:
    """A stack of RAW Bayer mosaics sharing one pattern and black level.

    The batched ISP kernels consume this instead of :class:`RawImage`:
    ``mosaics`` is ``(N, H, W)`` and all per-capture metadata is shared, which
    matches how captures are produced (one device, one scene pool).
    """

    mosaics: np.ndarray
    pattern: str = "RGGB"
    black_level: float = 0.0
    device: str | None = None

    def __post_init__(self) -> None:
        self.mosaics = np.asarray(self.mosaics, dtype=np.float64)
        if self.mosaics.ndim != 3:
            raise ValueError(f"RAW batch must be (N, H, W), got shape {self.mosaics.shape}")
        if self.mosaics.shape[1] % 2 or self.mosaics.shape[2] % 2:
            raise ValueError("RAW mosaic dimensions must be even (full Bayer tiles)")
        if self.pattern not in BAYER_PATTERNS:
            raise ValueError(f"unknown Bayer pattern '{self.pattern}'")

    def __len__(self) -> int:
        return len(self.mosaics)

    @property
    def shape(self) -> tuple[int, int, int]:
        return self.mosaics.shape

    def channel_mask(self, channel: str) -> np.ndarray:
        """Boolean ``(H, W)`` mask of pixels belonging to ``channel``."""
        return _channel_mask(self.mosaics.shape[1:], self.pattern, channel)

    def __getitem__(self, index: int) -> RawImage:
        return RawImage(mosaic=self.mosaics[index], pattern=self.pattern,
                        black_level=self.black_level, device=self.device)


def _channel_mask(shape: tuple[int, int], pattern: str, channel: str) -> np.ndarray:
    h, w = shape
    mask = np.zeros((h, w), dtype=bool)
    sites = BAYER_PATTERNS[pattern]
    keys = ["G1", "G2"] if channel == "G" else [channel]
    for key in keys:
        dy, dx = sites[key]
        mask[dy::2, dx::2] = True
    return mask


def bayer_mosaic_batch(rgb: np.ndarray, pattern: str = "RGGB") -> np.ndarray:
    """Sample an ``(N, H, W, 3)`` linear-RGB batch onto ``(N, H, W)`` mosaics."""
    rgb = np.asarray(rgb, dtype=np.float64)
    if rgb.ndim != 4 or rgb.shape[3] != 3:
        raise ValueError(f"expected an (N, H, W, 3) batch, got {rgb.shape}")
    if pattern not in BAYER_PATTERNS:
        raise ValueError(f"unknown Bayer pattern '{pattern}'")
    n, h, w, _ = rgb.shape
    if h % 2 or w % 2:
        raise ValueError("image dimensions must be even for Bayer sampling")
    mosaics = np.zeros((n, h, w), dtype=np.float64)
    sites = BAYER_PATTERNS[pattern]
    channel_index = {"R": 0, "G1": 1, "G2": 1, "B": 2}
    for key, (dy, dx) in sites.items():
        mosaics[:, dy::2, dx::2] = rgb[:, dy::2, dx::2, channel_index[key]]
    return mosaics


def bayer_mosaic(rgb: np.ndarray, pattern: str = "RGGB") -> np.ndarray:
    """Sample an HxWx3 linear-RGB image onto a Bayer mosaic.

    Each output pixel keeps only the colour channel its CFA site is sensitive
    to, exactly like a single-chip sensor behind a colour filter array.
    """
    rgb = np.asarray(rgb, dtype=np.float64)
    if rgb.ndim != 3 or rgb.shape[2] != 3:
        raise ValueError(f"expected HxWx3 image, got {rgb.shape}")
    return bayer_mosaic_batch(rgb[None], pattern=pattern)[0]


def raw_to_training_array_batch(raw: RawBatch) -> np.ndarray:
    """Convert ``(N, H, W)`` RAW mosaics to ``(N, H/2, W/2, 3)`` training arrays.

    The paper's Section 3.3 trains models on RAW data *without* any ISP.  To
    feed a 3-channel network we de-interleave the Bayer tiles into half-
    resolution R / G / B planes (averaging the two green sites) and stack them,
    which preserves the un-processed sensor response while matching the model's
    input layout.
    """
    sites = BAYER_PATTERNS[raw.pattern]

    def plane(key: str) -> np.ndarray:
        dy, dx = sites[key]
        return raw.mosaics[:, dy::2, dx::2]

    red = plane("R")
    green = 0.5 * (plane("G1") + plane("G2"))
    blue = plane("B")
    return np.stack([red, green, blue], axis=-1)


def raw_to_training_array(raw: RawImage) -> np.ndarray:
    """Convert one RAW mosaic to a 3-channel training array (batched kernel, N=1)."""
    return raw_to_training_array_batch(raw.as_batch())[0]
