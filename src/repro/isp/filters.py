"""Small vectorized neighbourhood filters shared by the ISP stage kernels.

``scipy.ndimage``'s rank filter dominates the capture profile at our image
sizes; a 3x3 median over a batch of planes is cheaper as a reflect-pad +
nine-shift exchange network (Paeth's median-of-9: 19 vectorized min/max
exchanges).  Min/max exchanges compute the exact order statistic of the same
nine neighbours ``ndimage.median_filter(size=3, mode="mirror")`` selects, so
swapping implementations preserves outputs bit-for-bit.
"""

from __future__ import annotations

import numpy as np

__all__ = ["median_filter_3x3"]

# Paeth's exchange network: after these (lo, hi) exchanges the element at
# index 4 holds the median of the nine inputs.
_MEDIAN9_EXCHANGES = (
    (1, 2), (4, 5), (7, 8), (0, 1), (3, 4), (6, 7), (1, 2), (4, 5), (7, 8),
    (0, 3), (5, 8), (4, 7), (3, 6), (1, 4), (2, 5), (4, 7), (4, 2), (6, 4),
    (4, 2),
)


def median_filter_3x3(planes: np.ndarray) -> np.ndarray:
    """Exact 3x3 median of ``(..., H, W)`` planes with mirror boundaries."""
    planes = np.asarray(planes, dtype=np.float64)
    pad = [(0, 0)] * (planes.ndim - 2) + [(1, 1), (1, 1)]
    padded = np.pad(planes, pad, mode="reflect")
    h, w = planes.shape[-2], planes.shape[-1]
    neighbours = [padded[..., dy:dy + h, dx:dx + w].copy()
                  for dy in range(3) for dx in range(3)]
    scratch = np.empty_like(neighbours[0])
    for lo, hi in _MEDIAN9_EXCHANGES:
        np.minimum(neighbours[lo], neighbours[hi], out=scratch)
        np.maximum(neighbours[lo], neighbours[hi], out=neighbours[hi])
        neighbours[lo], scratch = scratch, neighbours[lo]
    return neighbours[4]
