"""Colour transformation stage 1: white balance (Table 3, "Color transformation").

The paper's Section 3.4 finds white balance to be one of the two most
influential ISP stages (56.0% accuracy degradation when omitted).  Baseline is
the gray-world assumption, Option 1 omits the stage, Option 2 is white-patch
(a.k.a. max-RGB) balancing.

Gains are estimated per image, so the batched ``(N, H, W, C)`` kernels reduce
over each image's pixels independently — stacking is bitwise identical to
looping image-by-image.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "white_balance",
    "white_balance_batch",
    "WHITE_BALANCE_METHODS",
    "WHITE_BALANCE_BATCH_METHODS",
    "gray_world",
    "white_patch",
    "white_balance_none",
    "apply_gains",
]


def apply_gains(image: np.ndarray, gains: np.ndarray | tuple[float, float, float]) -> np.ndarray:
    """Apply per-channel multiplicative gains (the diagonal model of Eq. 2)."""
    image = np.asarray(image, dtype=np.float64)
    gains_arr = np.asarray(gains, dtype=np.float64).reshape(1, 1, 3)
    return np.clip(image * gains_arr, 0.0, 1.0)


def _as_batch(images: np.ndarray) -> np.ndarray:
    images = np.asarray(images, dtype=np.float64)
    if images.ndim != 4:
        raise ValueError(f"expected an (N, H, W, C) batch, got shape {images.shape}")
    return images


def gray_world_batch(images: np.ndarray) -> np.ndarray:
    """Gray-world white balance: scale channels so their means are equal."""
    images = _as_batch(images)
    means = images.reshape(len(images), -1, 3).mean(axis=1)      # (N, 3)
    target = means.mean(axis=-1, keepdims=True)                  # (N, 1)
    gains = target / np.maximum(means, 1e-6)
    return np.clip(images * gains[:, None, None, :], 0.0, 1.0)


def white_patch_batch(images: np.ndarray, percentile: float = 99.0) -> np.ndarray:
    """White-patch (max-RGB) balance: map the brightest response of each channel to white."""
    images = _as_batch(images)
    maxima = np.percentile(images.reshape(len(images), -1, 3), percentile, axis=1)
    gains = 1.0 / np.maximum(maxima, 1e-6)
    return np.clip(images * gains[:, None, None, :], 0.0, 1.0)


def white_balance_none_batch(images: np.ndarray) -> np.ndarray:
    """Pass-through used when the white-balance stage is omitted."""
    return _as_batch(images)


def gray_world(image: np.ndarray) -> np.ndarray:
    """Gray-world white balance of one image (batched kernel, N=1)."""
    return gray_world_batch(np.asarray(image, dtype=np.float64)[None])[0]


def white_patch(image: np.ndarray, percentile: float = 99.0) -> np.ndarray:
    """White-patch balance of one image (batched kernel, N=1)."""
    return white_patch_batch(np.asarray(image, dtype=np.float64)[None], percentile)[0]


def white_balance_none(image: np.ndarray) -> np.ndarray:
    """Pass-through used when the white-balance stage is omitted."""
    return np.asarray(image, dtype=np.float64)


WHITE_BALANCE_METHODS = {
    "gray_world": gray_world,
    "none": white_balance_none,
    "white_patch": white_patch,
}

WHITE_BALANCE_BATCH_METHODS = {
    "gray_world": gray_world_batch,
    "none": white_balance_none_batch,
    "white_patch": white_patch_batch,
}


def white_balance(image: np.ndarray, method: str = "gray_world") -> np.ndarray:
    """White-balance with the named method (see :data:`WHITE_BALANCE_METHODS`)."""
    try:
        fn = WHITE_BALANCE_METHODS[method]
    except KeyError as exc:
        raise ValueError(
            f"unknown white balance method '{method}'; options: {sorted(WHITE_BALANCE_METHODS)}"
        ) from exc
    return fn(image)


def white_balance_batch(images: np.ndarray, method: str = "gray_world") -> np.ndarray:
    """White-balance an ``(N, H, W, C)`` batch with the named method."""
    try:
        fn = WHITE_BALANCE_BATCH_METHODS[method]
    except KeyError as exc:
        raise ValueError(
            f"unknown white balance method '{method}'; options: {sorted(WHITE_BALANCE_BATCH_METHODS)}"
        ) from exc
    return fn(images)
