"""Colour transformation stage 1: white balance (Table 3, "Color transformation").

The paper's Section 3.4 finds white balance to be one of the two most
influential ISP stages (56.0% accuracy degradation when omitted).  Baseline is
the gray-world assumption, Option 1 omits the stage, Option 2 is white-patch
(a.k.a. max-RGB) balancing.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "white_balance",
    "WHITE_BALANCE_METHODS",
    "gray_world",
    "white_patch",
    "white_balance_none",
    "apply_gains",
]


def apply_gains(image: np.ndarray, gains: np.ndarray | tuple[float, float, float]) -> np.ndarray:
    """Apply per-channel multiplicative gains (the diagonal model of Eq. 2)."""
    image = np.asarray(image, dtype=np.float64)
    gains_arr = np.asarray(gains, dtype=np.float64).reshape(1, 1, 3)
    return np.clip(image * gains_arr, 0.0, 1.0)


def gray_world(image: np.ndarray) -> np.ndarray:
    """Gray-world white balance: scale channels so their means are equal."""
    image = np.asarray(image, dtype=np.float64)
    means = image.reshape(-1, 3).mean(axis=0)
    target = means.mean()
    gains = target / np.maximum(means, 1e-6)
    return apply_gains(image, gains)


def white_patch(image: np.ndarray, percentile: float = 99.0) -> np.ndarray:
    """White-patch (max-RGB) balance: map the brightest response of each channel to white."""
    image = np.asarray(image, dtype=np.float64)
    maxima = np.percentile(image.reshape(-1, 3), percentile, axis=0)
    gains = 1.0 / np.maximum(maxima, 1e-6)
    return apply_gains(image, gains)


def white_balance_none(image: np.ndarray) -> np.ndarray:
    """Pass-through used when the white-balance stage is omitted."""
    return np.asarray(image, dtype=np.float64)


WHITE_BALANCE_METHODS = {
    "gray_world": gray_world,
    "none": white_balance_none,
    "white_patch": white_patch,
}


def white_balance(image: np.ndarray, method: str = "gray_world") -> np.ndarray:
    """White-balance with the named method (see :data:`WHITE_BALANCE_METHODS`)."""
    try:
        fn = WHITE_BALANCE_METHODS[method]
    except KeyError as exc:
        raise ValueError(
            f"unknown white balance method '{method}'; options: {sorted(WHITE_BALANCE_METHODS)}"
        ) from exc
    return fn(image)
