#!/usr/bin/env python3
"""Quickstart: declare a federated experiment as a RunSpec and execute it.

This example walks through the library's declarative API in a few dozen lines:

1. describe an experiment — strategy, dataset, scale, seeds — as a
   :class:`repro.runtime.RunSpec` (pure data; it round-trips through JSON),
2. extend a component registry with a custom callback and attach it by name,
3. execute the spec with the :class:`repro.runtime.Runner`, which assembles
   the model, client population and FL loop from the registries,
4. compare FedAvg and HeteroSwitch on the Table 4 fairness / DG metrics,
5. make a run durable with a :class:`repro.runtime.RunStore` and show that a
   "crashed" run resumes to the bit-identical result.

Run it with:  python examples/quickstart.py
It finishes in well under a minute on a laptop CPU.
"""

from __future__ import annotations

import tempfile

from repro.eval import format_table
from repro.fl import Callback
from repro.runtime import CALLBACK_REGISTRY, Runner, RunSpec, RunStore, STRATEGY_REGISTRY


class RoundWatcher(Callback):
    """A custom observer: records per-round training losses into the history."""

    def __init__(self) -> None:
        self.losses = []

    def on_round_end(self, sim, record, results) -> None:
        self.losses.append(record.mean_train_loss)

    def on_run_end(self, sim, history) -> None:
        history.metadata["loss_trajectory"] = list(self.losses)


def main() -> None:
    # ------------------------------------------------------------------ #
    # 1. The experiment as data: everything is a registry key or a plain
    #    value, so the same dict could live in a JSON file
    #    (see `python -m repro bench --spec spec.json`).
    # ------------------------------------------------------------------ #
    CALLBACK_REGISTRY.replace("round_watcher", RoundWatcher)
    spec = RunSpec(
        strategy="fedavg",
        dataset="device_capture",
        dataset_kwargs={"devices": ["Pixel5", "Pixel2", "S22", "S9", "S6", "G7"]},
        scale="smoke",
        config_overrides={"num_rounds": 12, "learning_rate": 0.02},
        callbacks={"round_watcher": {}},
        seeds=[0],
    )
    print("RunSpec JSON round-trip intact:",
          RunSpec.from_json(spec.to_json()) == spec)
    print(f"Available strategies: {', '.join(STRATEGY_REGISTRY.available())}")

    # Parallel execution is one more spec field: fan client training out over
    # a process pool (or "thread", or the CLI's --executor/--workers flags).
    # Every backend produces bit-identical metrics and weights — the executor
    # only changes wall clock — so it is safe to flip on for any experiment.
    parallel = spec.with_overrides(executor="process", max_workers=4)
    print(f"Parallel variant: executor={parallel.executor!r}, "
          f"max_workers={parallel.max_workers} (same numbers, faster rounds)")

    # Device captures can also be persisted: `--capture-cache DIR` on the CLI
    # (or dataset_kwargs={"capture_cache": "DIR"}) stores every per-device
    # capture on first build and reloads it bitwise-identically afterwards,
    # so repeated sweeps over one device fleet re-run no ISP work.
    cached = spec.with_overrides(
        dataset_kwargs={**spec.dataset_kwargs, "capture_cache": "capture-cache"})
    print(f"Cached-capture variant: {cached.dataset_kwargs['capture_cache']!r} "
          f"(same data, near-instant rebuilds)")

    # Training itself runs on the flat-parameter engine by default: fused
    # whole-vector optimizer steps, single-node autograd kernels and flat
    # aggregation, bitwise-identical to the seed per-parameter path.  The
    # reference path stays one override away for A/B timing or debugging:
    reference = spec.with_overrides(
        config_overrides={**spec.config_overrides, "train_engine": "reference"})
    print(f"Reference-engine variant: "
          f"{reference.config_overrides['train_engine']!r} "
          f"(same numbers, ~1.5x slower rounds)")

    # Compute precision is one more engine axis: float64 is the bitwise
    # golden path; dtype="float32" (or --dtype float32 on the CLI) trades
    # bit-identity to float64 for ~1.2x faster rounds, validated by
    # tolerance — aggregation still accumulates in float64, and runs stay
    # bit-identical across executors within a dtype.
    fast = spec.with_overrides(
        config_overrides={**spec.config_overrides, "dtype": "float32"})
    print(f"Float32 variant: dtype={fast.config_overrides['dtype']!r} "
          f"(tolerance-equivalent numbers, ~1.2x faster rounds)")

    # Fault tolerance rides on the same two knobs: "faults" is a seeded
    # chaos schedule (which (round, client, attempt) jobs crash / hang /
    # return poisoned updates / kill their worker is a pure function of its
    # seed), "fault_policy" is the server's response — retries, per-client
    # timeouts, update sanitization, quorum-based graceful degradation.
    # With first-attempt-only faults and one retry, the chaos run below
    # recovers every failure and matches the fault-free run bit-for-bit.
    chaos = spec.with_overrides(
        config_overrides={**spec.config_overrides,
                          "faults": {"seed": 7, "crash_rate": 0.2,
                                     "first_attempt_only": True},
                          "fault_policy": {"max_retries": 1, "min_clients": 2}})
    print(f"Chaos variant: faults={chaos.config_overrides['faults']!r} "
          f"(every failure retried once; degraded rounds aggregate survivors)")

    # ------------------------------------------------------------------ #
    # 2-4. Run FedAvg (baseline) and HeteroSwitch (the paper's method) on
    #      the same population; the Runner memoises the dataset build.
    # ------------------------------------------------------------------ #
    runner = Runner()
    rows = []
    fedavg_metrics = None
    for method in ("fedavg", "heteroswitch"):
        variant = spec.with_overrides(strategy=method, name=method)
        print(f"Running {method} for 12 rounds ...")
        result = runner.run(variant)
        history = result.history
        if method == "fedavg":
            fedavg_metrics = history.per_device_metric
        summary = history.summary
        rows.append([method, summary["worst_case"], summary["variance"],
                     summary["average"]])
        losses = history.metadata["loss_trajectory"]
        print(f"  train loss {losses[0]:.3f} -> {losses[-1]:.3f} "
              f"over {len(history.rounds)} rounds")
        if method == "heteroswitch":
            print(f"  HeteroSwitch applied its ISP transformation to "
                  f"{history.metadata['total_switch1']} client updates.")

    print()
    print(format_table(
        ["method", "worst-case accuracy (DG)", "variance (fairness)", "average accuracy"],
        rows,
    ))

    # The chaos variant actually recovers: every injected crash is retried
    # (a retried client is bit-identical to a first-try client), so the run
    # lands on exactly the fault-free numbers.
    print("\nRunning fedavg under injected chaos (20% first-attempt crashes) ...")
    chaos_history = runner.run(chaos.with_overrides(name="fedavg-chaos")).history
    faults = chaos_history.metadata.get("faults", {})
    print(f"  {faults.get('total_failures', 0)} failures, "
          f"{faults.get('total_retries', 0)} retries, "
          f"{faults.get('total_dropped', 0)} dropped clients")
    print("  metrics identical to the fault-free run:",
          chaos_history.per_device_metric == fedavg_metrics)

    # ------------------------------------------------------------------ #
    # 5. Durable runs: attach a RunStore and the runner checkpoints every
    #    run into it (crash-safe, atomic).  Kill the process at any round;
    #    `resume=True` (or the CLI's --resume) picks the run back up from
    #    its newest checkpoint and finishes with BIT-IDENTICAL final
    #    weights and metrics — sampling and client RNG streams are pure
    #    functions of (seed, round), so nothing is lost in the crash.
    # ------------------------------------------------------------------ #
    with tempfile.TemporaryDirectory() as root:
        store = RunStore(root)
        durable = Runner(store=store, checkpoint_every=5)
        variant = spec.with_overrides(strategy="fedavg", name=None)
        durable.run(variant)                      # pretend this got SIGTERMed...
        resumed = durable.run(variant, resume=True)   # ...and resumed: no re-run
        [entry] = store.list_runs()
        print(f"\nRun store: {entry.run_id} is {entry.status()} after "
              f"{len(entry.checkpoints())} checkpoint(s); "
              f"fingerprint {entry.load_result()['fingerprint'][:16]}…")
        print("Resume returned the stored result:",
              resumed.history.per_device_metric == entry.load_result()["metrics"])

    # ------------------------------------------------------------------ #
    # Bonus: observability.  config_overrides={"trace": True} records a
    # run-level trace (capture, every client update, aggregation, eval);
    # "profile": True adds per-kernel engine timings inside each client
    # update (disabled, the hook costs <5% — one attribute read per kernel
    # call).  A stored traced run exports trace.json (open it in Perfetto /
    # chrome://tracing), events.jsonl and obs_summary.json into its store
    # entry, and the CLI has the same as `bench --trace/--profile` plus
    # `python -m repro trace RUN_ID`.  Tracing is result-neutral: the
    # fingerprint above would come out identical with it on.
    traced = spec.with_overrides(
        config_overrides={**spec.config_overrides, "trace": True, "profile": True})
    print(f"\nTraced variant: config_overrides[trace/profile]="
          f"{traced.config_overrides['trace']}/{traced.config_overrides['profile']}"
          f" (same numbers, plus trace artifacts in the run store)")


if __name__ == "__main__":
    main()
