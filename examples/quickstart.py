#!/usr/bin/env python3
"""Quickstart: train a federated model over heterogeneous devices with HeteroSwitch.

This example walks through the library's core loop in a few dozen lines:

1. capture a synthetic per-device dataset (the same scenes photographed by
   different simulated smartphones, Table 1 of the paper),
2. build an FL client population following the devices' market shares,
3. run FedAvg and HeteroSwitch on the same population,
4. compare the fairness / domain-generalization metrics of Table 4.

Run it with:  python examples/quickstart.py
It finishes in well under a minute on a laptop CPU.
"""

from __future__ import annotations

from repro.data import build_client_specs, build_device_datasets
from repro.devices import market_shares
from repro.eval import format_table
from repro.fl import FLConfig, FederatedSimulation, create_strategy
from repro.nn.models import SimpleMLP


def main() -> None:
    # ------------------------------------------------------------------ #
    # 1. Per-device datasets: the same scene pool captured by each device.
    # ------------------------------------------------------------------ #
    devices = ["Pixel5", "Pixel2", "S22", "S9", "S6", "G7"]
    print(f"Capturing synthetic scenes with {len(devices)} device profiles ...")
    bundle = build_device_datasets(
        samples_per_class_train=6,
        samples_per_class_test=4,
        num_classes=6,
        image_size=16,
        scene_size=32,
        devices=devices,
        seed=0,
    )

    # ------------------------------------------------------------------ #
    # 2. FL client population weighted by market share (Table 1).
    # ------------------------------------------------------------------ #
    shares = {name: share for name, share in market_shares().items() if name in devices}
    clients = build_client_specs(bundle.train, num_clients=24, shares=shares, seed=0)
    print(f"Built {len(clients)} clients "
          f"({sum(1 for c in clients if c.device in ('S9', 'S6'))} on dominant devices).")

    config = FLConfig(
        num_clients=24,
        clients_per_round=8,
        num_rounds=12,
        local_epochs=1,
        batch_size=6,
        learning_rate=0.02,
        seed=0,
    )

    def model_fn() -> SimpleMLP:
        return SimpleMLP(3 * bundle.image_size * bundle.image_size, bundle.num_classes,
                         hidden=32, seed=0)

    # ------------------------------------------------------------------ #
    # 3. Run FedAvg (baseline) and HeteroSwitch (the paper's method).
    # ------------------------------------------------------------------ #
    rows = []
    for method in ("fedavg", "heteroswitch"):
        print(f"Running {method} for {config.num_rounds} rounds ...")
        simulation = FederatedSimulation(model_fn, clients, bundle.test,
                                         create_strategy(method), config)
        history = simulation.run()
        summary = history.summary
        rows.append([method, summary["worst_case"], summary["variance"], summary["average"]])
        switched = sum(record.num_switch1 for record in history.rounds)
        if method == "heteroswitch":
            print(f"  HeteroSwitch applied its ISP transformation to {switched} client updates.")

    # ------------------------------------------------------------------ #
    # 4. Report the Table 4 style metrics.
    # ------------------------------------------------------------------ #
    print()
    print(format_table(
        ["method", "worst-case accuracy (DG)", "variance (fairness)", "average accuracy"],
        rows,
    ))


if __name__ == "__main__":
    main()
