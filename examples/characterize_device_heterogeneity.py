#!/usr/bin/env python3
"""Characterization scenario: measure system-induced data heterogeneity.

Reproduces the Section 3 workflow of the paper end-to-end at example scale:

* Table 2 — train a model on each device type's images and test it on every
  other device type; print the model-quality degradation matrix.
* Fig. 3  — train on baseline-ISP images and test against single-stage ISP
  substitutions (Table 3's Option 1/Option 2 columns) to find which ISP stages
  contribute most to the heterogeneity.

Run it with:  python examples/characterize_device_heterogeneity.py
"""

from __future__ import annotations

from repro.eval import fig3_isp_stage_ablation, table2_cross_device
from repro.eval.scale import get_scale


def main() -> None:
    scale = get_scale("smoke").with_overrides(
        samples_per_class_train=6,
        samples_per_class_test=4,
        num_classes=5,
        central_epochs=8,
    )
    devices = ["Pixel5", "Pixel2", "S22", "S6"]

    print("== Table 2: cross-device model quality degradation ==")
    print("(rows: device the model was trained on; columns: device it is tested on)")
    table2 = table2_cross_device(scale=scale, devices=devices, seed=0)
    print(table2.to_markdown())
    print()
    print(f"Mean cross-device degradation: {table2.scalar('mean_degradation'):.1%} "
          f"(paper: 19.4% on average, up to 50.7%)")
    print()

    print("== Fig. 3: which ISP stages cause the heterogeneity? ==")
    fig3 = fig3_isp_stage_ablation(scale=scale, devices=devices[:3], seed=0)
    print(fig3.to_markdown())
    print()
    print("The paper finds the colour (white balance) and tone transformation stages the"
          " most damaging (56.0% and 49.2% degradation when omitted); HeteroSwitch's"
          " client transform targets exactly those two stages (Eq. 2 and Eq. 3).")


if __name__ == "__main__":
    main()
