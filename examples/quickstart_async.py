#!/usr/bin/env python3
"""Quickstart: event-driven asynchronous FL on a simulated device clock.

The synchronous simulator advances round by round; the asynchronous one
advances a *virtual clock* through a deterministic event queue.  Every client
gets a latency/availability model derived from its Table 1 device profile
(compute rate, network class, duty cycle), the server keeps a bounded number
of updates in flight, and staleness-aware strategies fold late arrivals into
the global model:

* ``fedasync`` — every arriving update commits immediately, mixed in with a
  staleness-discounted factor ``alpha * (1 + staleness)^-a``;
* ``fedbuff``  — updates accumulate in a size-K buffer; each flush commits a
  staleness-weighted average.

Everything stays deterministic: the clock is simulated (no wall time), ties
are broken by seeded draws, and serial/thread/process executors produce
bit-identical histories — as do checkpoint/resume mid-queue.

Run it with:  python examples/quickstart_async.py
It finishes in well under a minute on a laptop CPU.
"""

from __future__ import annotations

import tempfile

from repro.devices.latency import LATENCY_REGIMES
from repro.eval import format_table
from repro.runtime import Runner, RunSpec, RunStore


def main() -> None:
    # ------------------------------------------------------------------ #
    # 1. An asynchronous experiment is the same declarative RunSpec with
    #    kind="federated_async": the latency regime and the in-flight cap
    #    replace the per-round sampler.
    # ------------------------------------------------------------------ #
    print(f"Latency regimes: {', '.join(sorted(LATENCY_REGIMES))}")
    spec = RunSpec(
        kind="federated_async",
        strategy="fedbuff",
        strategy_kwargs={"buffer_size": 3},
        dataset="device_capture",
        dataset_kwargs={"devices": ["Pixel5", "Pixel2", "S22", "S9", "S6", "G7"]},
        scale="smoke",
        config_overrides={"num_rounds": 8, "learning_rate": 0.02},
        latency_kwargs={"regime": "extreme"},
        concurrency=4,
        callbacks={"async_telemetry": {}},
        seeds=[0],
    )
    print("RunSpec JSON round-trip intact:",
          RunSpec.from_json(spec.to_json()) == spec)

    # ------------------------------------------------------------------ #
    # 2. Run FedBuff and FedAsync on the same population under the same
    #    regime; the Runner memoises the dataset build across specs.
    # ------------------------------------------------------------------ #
    runner = Runner()
    rows = []
    for method in ("fedbuff", "fedasync"):
        variant = spec if method == "fedbuff" else spec.with_overrides(
            strategy="fedasync", strategy_kwargs={})
        print(f"Running {method} to {variant.config_overrides['num_rounds']} "
              f"commits ...")
        history = runner.run(variant).history
        meta = history.metadata
        rows.append([method, meta["virtual_hours"], meta["num_commits"],
                     meta["num_updates"], meta["mean_staleness"],
                     history.summary["average"]])
        telemetry = meta["telemetry"]
        print(f"  virtual clock {meta['virtual_seconds']:.0f}s, "
              f"{telemetry['dropouts']} dropout(s), "
              f"{telemetry['updates_lost']} update(s) lost to churn, "
              f"utilisation {telemetry['utilisation']:.2f}")

    print()
    print(format_table(
        ["method", "virtual hours", "commits", "updates", "mean staleness",
         "average accuracy"],
        rows,
    ))

    # ------------------------------------------------------------------ #
    # 3. Durability works mid-event-queue: checkpoints snapshot the clock,
    #    the queue (with its RNG counters) and every in-flight update, so a
    #    resumed run replays to the bit-identical final history.
    # ------------------------------------------------------------------ #
    with tempfile.TemporaryDirectory() as root:
        store = RunStore(root)
        durable = Runner(store=store, checkpoint_every=3)
        durable.run(spec)                            # pretend this crashed...
        resumed = durable.run(spec, resume=True)     # ...no re-run needed
        [entry] = store.list_runs()
        print(f"\nRun store: {entry.run_id} is {entry.status()} after "
              f"{len(entry.checkpoints())} checkpoint(s); "
              f"fingerprint {entry.load_result()['fingerprint'][:16]}…")
        print("Resume returned the stored result:",
              resumed.history.per_device_metric == entry.load_result()["metrics"])


if __name__ == "__main__":
    main()
