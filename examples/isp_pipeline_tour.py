#!/usr/bin/env python3
"""ISP pipeline tour: from a scene, through a simulated sensor, to a training tensor.

This example exposes the data-generation machinery behind every experiment
(Fig. 1 of the paper): a procedural scene is "displayed on the monitor", each
simulated smartphone captures RAW data with its own sensor, its ISP processes
the RAW into the final image, and the differences between devices are measured.

It also demonstrates the per-stage ISP configuration of Table 3 by processing
the same RAW capture with the Baseline / Option 1 / Option 2 pipelines.

Run it with:  python examples/isp_pipeline_tour.py
"""

from __future__ import annotations

import numpy as np

from repro.data.scenes import SceneGenerator
from repro.devices import DEVICE_PROFILES
from repro.isp import BASELINE_CONFIG, OPTION1_CONFIG, OPTION2_CONFIG, ISPPipeline
from repro.isp.raw import raw_to_training_array


def describe(name: str, image: np.ndarray) -> str:
    means = image.reshape(-1, 3).mean(axis=0)
    return (f"{name:<22s} mean RGB = ({means[0]:.3f}, {means[1]:.3f}, {means[2]:.3f}), "
            f"std = {image.std():.3f}")


def main() -> None:
    scene = SceneGenerator(image_size=64, num_classes=12, seed=0).generate(4)  # "ambulance"
    print("Scene statistics (ideal monitor image):")
    print("  " + describe("scene", scene))
    print()

    # ------------------------------------------------------------------ #
    # 1. The same scene captured by every device (hardware + software).
    # ------------------------------------------------------------------ #
    print("Captured by each device profile (sensor + its own ISP):")
    rng = np.random.default_rng(0)
    captures = {}
    for name, profile in DEVICE_PROFILES.items():
        raw = profile.sensor.capture_raw(scene, rng)
        processed = ISPPipeline(profile.isp).process(raw)
        captures[name] = processed
        print("  " + describe(f"{name} ({profile.tier})", processed))
    print()

    # Pairwise distance between device captures = system-induced heterogeneity.
    names = list(captures)
    print("Largest pairwise differences (mean absolute pixel gap):")
    gaps = []
    for i, a in enumerate(names):
        for b in names[i + 1:]:
            size = min(captures[a].shape[0], captures[b].shape[0])
            gap = float(np.abs(captures[a][:size, :size] - captures[b][:size, :size]).mean())
            gaps.append((gap, a, b))
    for gap, a, b in sorted(gaps, reverse=True)[:5]:
        print(f"  {a:>8s} vs {b:<8s}: {gap:.4f}")
    print()

    # ------------------------------------------------------------------ #
    # 2. One device's RAW capture processed by the three Table 3 pipelines.
    # ------------------------------------------------------------------ #
    pixel5 = DEVICE_PROFILES["Pixel5"]
    raw = pixel5.sensor.capture_raw(scene, np.random.default_rng(1))
    print("The same Pixel5 RAW capture under the three Table 3 ISP configurations:")
    print("  " + describe("raw (no ISP)", raw_to_training_array(raw)))
    for config in (BASELINE_CONFIG, OPTION1_CONFIG, OPTION2_CONFIG):
        processed = ISPPipeline(config).process(raw)
        print("  " + describe(config.name, processed))
    print()
    print("Different ISP configurations render the identical sensor data into visibly"
          " different images — the software half of system-induced data heterogeneity.")


if __name__ == "__main__":
    main()
