#!/usr/bin/env python3
"""Non-vision scenario: heart-rate estimation across heterogeneous ECG sensors.

Section 6.6 of the paper shows that system-induced data heterogeneity is not a
vision-only problem: the same person's ECG recorded by different sensor types
(clinical monitor, chest strap, wrist wearable, handheld device) yields
divergent heart-rate predictions under FedAvg, and HeteroSwitch — with a random
Gaussian filter as its generalization transform — reduces the divergence.

Run it with:  python examples/ecg_sensor_heterogeneity.py
"""

from __future__ import annotations

from repro.eval import ecg_heart_rate, format_table
from repro.eval.scale import get_scale


def main() -> None:
    scale = get_scale("smoke").with_overrides(
        num_clients=16,
        clients_per_round=8,
        num_rounds=10,
        samples_per_class_train=6,
        samples_per_class_test=4,
        learning_rate=0.02,
    )

    print("Training heart-rate regressors federatedly across 4 ECG sensor types ...")
    result = ecg_heart_rate(scale=scale, methods=("fedavg", "heteroswitch"),
                            window_size=64, seed=0)

    print()
    print(format_table(result.headers, result.rows))
    print()
    fedavg = result.scalar("fedavg_mean_deviation")
    hetero = result.scalar("heteroswitch_mean_deviation")
    print(f"Mean heart-rate deviation — FedAvg: {fedavg:.1%}, HeteroSwitch: {hetero:.1%}")
    print("(Paper: 31.8% for FedAvg vs 18.3% for HeteroSwitch with its random Gaussian filter.)")


if __name__ == "__main__":
    main()
