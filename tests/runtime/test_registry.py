"""Tests for the generic component registry."""

import pytest

from repro.registry import Registry
from repro.runtime import (
    CALLBACK_REGISTRY,
    DATASET_REGISTRY,
    MODEL_REGISTRY,
    SAMPLER_REGISTRY,
    STRATEGY_REGISTRY,
)


class TestRegistryBasics:
    def test_mapping_protocol(self):
        registry = Registry("widget", {"a": int, "b": float})
        assert len(registry) == 2
        assert set(registry) == {"a", "b"}
        assert "a" in registry
        assert registry["a"] is int
        assert sorted(registry) == ["a", "b"]

    def test_create_passes_kwargs(self):
        registry = Registry("widget", {"value": dict})
        assert registry.create("value", x=1) == {"x": 1}

    def test_register_decorator(self):
        registry = Registry("widget")

        @registry.register("thing")
        def make_thing():
            return "thing"

        assert registry.create("thing") == "thing"

    def test_register_direct(self):
        registry = Registry("widget")
        registry.register("x", int)
        assert registry["x"] is int

    def test_register_duplicate_raises(self):
        registry = Registry("widget", {"x": int})
        with pytest.raises(ValueError, match="already registered"):
            registry.register("x", float)

    def test_replace_overrides(self):
        registry = Registry("widget", {"x": int})
        registry.replace("x", float)
        assert registry["x"] is float


class TestErrorMessages:
    def test_unknown_key_lists_available(self):
        registry = Registry("widget", {"alpha": int, "beta": float})
        with pytest.raises(KeyError, match=r"unknown widget 'gamma'.*alpha.*beta"):
            registry["gamma"]

    @pytest.mark.parametrize("registry, kind", [
        (STRATEGY_REGISTRY, "strategy"),
        (MODEL_REGISTRY, "model"),
        (DATASET_REGISTRY, "dataset"),
        (SAMPLER_REGISTRY, "sampler"),
        (CALLBACK_REGISTRY, "callback"),
    ])
    def test_component_registries_list_keys_on_miss(self, registry, kind):
        with pytest.raises(KeyError) as excinfo:
            registry["definitely_not_registered"]
        message = str(excinfo.value)
        assert f"unknown {kind}" in message
        for key in registry.available():
            assert key in message


class TestComponentRegistryContents:
    def test_all_table4_strategies_registered(self):
        for name in ("fedavg", "fedprox", "scaffold", "qfedavg",
                     "heteroswitch", "isp_transform", "isp_swad"):
            assert name in STRATEGY_REGISTRY

    def test_dataset_builders_registered(self):
        for name in ("device_capture", "synthetic_cifar", "flair", "ecg", "scenes"):
            assert name in DATASET_REGISTRY

    def test_samplers_registered(self):
        assert {"uniform", "round_robin"} <= set(SAMPLER_REGISTRY)

    def test_callbacks_registered(self):
        assert {"eval_every", "early_stopping", "switch_telemetry",
                "round_logger"} <= set(CALLBACK_REGISTRY)
