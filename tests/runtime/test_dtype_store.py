"""Precision axis through the durable-run layer.

* the npz checkpoint codec is dtype-exact: float32 snapshots round-trip as
  float32, never silently widened;
* a float32 run crash-resumes bitwise-identically, like the float64 path;
* resuming from a checkpoint written under a *different* dtype is refused
  with :class:`CheckpointError` (defense in depth for tampered or legacy
  stores — normally the dtype is part of the spec hash, so mismatched
  checkpoints cannot collide with a run id);
* ``--dtype`` reaches ``config_overrides`` and ``runs show`` surfaces it.
"""

import numpy as np
import pytest

from repro.cli import _apply_spec_overrides, build_parser, main
from repro.fl.callbacks import CALLBACK_REGISTRY, Callback
from repro.nn.serialization import states_equal
from repro.runtime import Runner, RunSpec, RunStore
from repro.store import CheckpointError
from repro.store.checkpoint import read_checkpoint, write_checkpoint

DEVICES = ["Pixel5", "S6", "G7"]


def make_spec(dtype="float32", **overrides):
    base = dict(strategy="fedavg", dataset="device_capture",
                dataset_kwargs={"devices": DEVICES}, scale="smoke",
                config_overrides={"num_rounds": 3, "dtype": dtype}, seeds=[0])
    base.update(overrides)
    return RunSpec(**base)


class _Boom(Exception):
    pass


class _CrashAfterRound(Callback):
    armed = True

    def __init__(self, after_round: int) -> None:
        self.after_round = after_round

    def on_round_start(self, sim, round_index) -> None:
        if _CrashAfterRound.armed and round_index > self.after_round:
            _CrashAfterRound.armed = False
            raise _Boom(f"simulated crash before round {round_index}")


@pytest.fixture(autouse=True)
def crash_callback_registered():
    CALLBACK_REGISTRY.replace("dtype_crash_after_round", _CrashAfterRound)
    _CrashAfterRound.armed = True
    yield
    CALLBACK_REGISTRY.unregister("dtype_crash_after_round")


class TestCheckpointCodecDtype:
    def test_float32_snapshot_round_trips_dtype_exact(self, tmp_path):
        rng = np.random.default_rng(0)
        snapshot = {
            "round": 2,
            "global_state": {
                "w": rng.normal(size=(4, 3)).astype(np.float32),
                "b": rng.normal(size=3).astype(np.float32),
            },
        }
        path = tmp_path / "ckpt.npz"
        write_checkpoint(path, snapshot)
        restored, _meta = read_checkpoint(path)
        for key, value in snapshot["global_state"].items():
            stored = restored["global_state"][key]
            assert stored.dtype == np.float32
            np.testing.assert_array_equal(stored, value)

    def test_mixed_dtypes_preserved(self, tmp_path):
        snapshot = {
            "round": 1,
            "global_state": {"w": np.ones(4, dtype=np.float32)},
            "counters": {"steps": np.arange(3, dtype=np.int64)},
        }
        path = tmp_path / "ckpt.npz"
        write_checkpoint(path, snapshot)
        restored, _meta = read_checkpoint(path)
        assert restored["global_state"]["w"].dtype == np.float32
        assert restored["counters"]["steps"].dtype == np.int64


class TestFloat32DurableRuns:
    def test_float32_run_checkpoints_in_float32(self, tmp_path):
        store = RunStore(tmp_path / "store")
        Runner(store=store, checkpoint_every=1).run(make_spec())
        [entry] = store.list_runs()
        assert entry.status() == "completed"
        final = entry.load_checkpoint(entry.checkpoint_dir / "final.npz")
        assert all(value.dtype == np.float32
                   for value in final["global_state"].values())

    def test_float32_crash_resume_is_bitwise_identical(self, tmp_path):
        spec = make_spec(
            callbacks={"dtype_crash_after_round": {"after_round": 0}})
        reference = Runner(store=tmp_path / "ref", checkpoint_every=1)
        _CrashAfterRound.armed = False  # reference run must not crash
        reference.run(make_spec())
        [ref_entry] = RunStore(tmp_path / "ref").list_runs()

        _CrashAfterRound.armed = True
        crashing = Runner(store=tmp_path / "crash", checkpoint_every=1)
        with pytest.raises(_Boom):
            crashing.run(spec)
        [crash_entry] = RunStore(tmp_path / "crash").list_runs()
        assert crash_entry.status() == "running"

        Runner(store=tmp_path / "crash", checkpoint_every=1).run(
            spec, resume=True)
        [done_entry] = RunStore(tmp_path / "crash").list_runs()
        assert done_entry.status() == "completed"
        assert done_entry.load_result()["fingerprint"] == \
            ref_entry.load_result()["fingerprint"]
        ref_state = ref_entry.load_checkpoint(
            ref_entry.checkpoint_dir / "final.npz")["global_state"]
        done_state = done_entry.load_checkpoint(
            done_entry.checkpoint_dir / "final.npz")["global_state"]
        assert states_equal(ref_state, done_state)
        assert all(value.dtype == np.float32 for value in ref_state.values())


class TestCrossDtypeResumeRefusal:
    def _tampered_store(self, tmp_path, spec, checkpoint_dtype):
        """A store entry for ``spec`` whose newest checkpoint holds weights
        in ``checkpoint_dtype`` — the legacy/tampered scenario the runner
        must refuse instead of silently casting mid-run."""
        store = RunStore(tmp_path / "store")
        entry = store.open_run(spec, 0, extra={"num_rounds": 3})
        rng = np.random.default_rng(0)
        snapshot = {"round": 1, "global_state": {
            "w": rng.normal(size=(4, 3)).astype(checkpoint_dtype)}}
        write_checkpoint(entry.checkpoint_dir / "round_00001.npz", snapshot)
        return store

    def test_float32_checkpoint_refused_under_float64_config(self, tmp_path):
        spec = make_spec(dtype="float64")
        store = self._tampered_store(tmp_path, spec, np.float32)
        with pytest.raises(CheckpointError, match="cross-dtype resume"):
            Runner(store=store, checkpoint_every=1).run(spec, resume=True)

    def test_float64_checkpoint_refused_under_float32_config(self, tmp_path):
        spec = make_spec(dtype="float32")
        store = self._tampered_store(tmp_path, spec, np.float64)
        with pytest.raises(CheckpointError, match="cross-dtype resume"):
            Runner(store=store, checkpoint_every=1).run(spec, resume=True)


class TestCLIDtype:
    def test_bench_parses_dtype(self):
        args = build_parser().parse_args(["bench", "--dtype", "float32"])
        assert args.dtype == "float32"

    def test_bench_rejects_unknown_dtype(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bench", "--dtype", "float16"])

    def test_dtype_reaches_config_overrides(self):
        args = build_parser().parse_args(["bench", "--dtype", "float32"])
        spec = _apply_spec_overrides(RunSpec(), args)
        assert spec.config_overrides["dtype"] == "float32"
        # Without the flag the spec's own overrides are left untouched.
        args = build_parser().parse_args(["bench"])
        assert "dtype" not in _apply_spec_overrides(RunSpec(), args).config_overrides

    def test_runs_show_surfaces_dtype(self, tmp_path, capsys):
        store = RunStore(tmp_path / "store")
        Runner(store=store, checkpoint_every=1).run(make_spec())
        [entry] = store.list_runs()
        assert main(["runs", "show", entry.run_id,
                     "--store", str(tmp_path / "store")]) == 0
        assert "dtype: float32" in capsys.readouterr().out

    def test_runs_show_defaults_to_float64(self, tmp_path, capsys):
        store = RunStore(tmp_path / "store")
        spec = make_spec()
        overrides = dict(spec.config_overrides)
        del overrides["dtype"]
        Runner(store=store, checkpoint_every=1).run(
            spec.with_overrides(config_overrides=overrides))
        [entry] = store.list_runs()
        assert main(["runs", "show", entry.run_id,
                     "--store", str(tmp_path / "store")]) == 0
        assert "dtype: float64" in capsys.readouterr().out
