"""Tests for the Runner: spec execution, legacy equivalence, callbacks, seeds."""

import pytest

from repro.data.capture import build_device_datasets
from repro.devices.profiles import market_shares
from repro.eval.evaluation import run_fl_method
from repro.eval.factories import make_model_factory
from repro.eval.scale import get_scale
from repro.runtime import Runner, RunSpec

DEVICES = ["Pixel5", "S6", "G7"]


@pytest.fixture(scope="module")
def runner():
    """One shared runner so the module's specs reuse the memoised datasets."""
    return Runner()


def _legacy_table4_metrics(method: str, seed: int):
    """The legacy Table-4 engine: hand-assembled factory/partition/strategy."""
    scale = get_scale("smoke")
    bundle = build_device_datasets(
        samples_per_class_train=scale.samples_per_class_train,
        samples_per_class_test=scale.samples_per_class_test,
        num_classes=scale.num_classes,
        image_size=scale.image_size,
        scene_size=scale.scene_size,
        devices=DEVICES,
        seed=seed,
    )
    factory = make_model_factory(scale, bundle.num_classes, bundle.image_size, seed=seed)
    shares = {name: share for name, share in market_shares().items() if name in DEVICES}
    history = run_fl_method(method, factory, bundle.train, bundle.test, scale,
                            shares=shares, seed=seed)
    return history.per_device_metric


class TestLegacyEquivalence:
    @pytest.mark.parametrize("method", ["fedavg", "heteroswitch"])
    def test_json_spec_matches_legacy_table4_path(self, runner, method):
        """Acceptance: a Table-4 run expressed as a JSON RunSpec reproduces the
        legacy ``table4_main_evaluation`` engine's metrics exactly."""
        spec = RunSpec.from_json(RunSpec(
            strategy=method,
            dataset="device_capture",
            dataset_kwargs={"devices": DEVICES},
            scale="smoke",
            seeds=[0],
        ).to_json())
        result = runner.run(spec)
        assert result.history.per_device_metric == _legacy_table4_metrics(method, seed=0)

    def test_summary_matches_history_summary(self, runner):
        spec = RunSpec(dataset_kwargs={"devices": DEVICES}, seeds=[0])
        result = runner.run(spec)
        expected = result.history.summary
        for key in ("worst_case", "variance", "average"):
            assert result.summary[key] == pytest.approx(expected[key])


class TestMultiSeed:
    def test_replicates_over_seeds(self, runner):
        spec = RunSpec(dataset_kwargs={"devices": DEVICES}, seeds=[0, 1])
        result = runner.run(spec)
        assert result.seeds == [0, 1]
        assert len(result.histories) == 2
        assert len(result.metrics) == 2
        assert result.summary["num_seeds"] == 2
        assert "average_std" in result.summary

    def test_single_seed_history_accessor_guards(self, runner):
        spec = RunSpec(dataset_kwargs={"devices": DEVICES}, seeds=[0, 1])
        result = runner.run(spec)
        with pytest.raises(ValueError, match="exactly one history"):
            result.history

    def test_seeds_change_the_run(self, runner):
        spec = RunSpec(dataset_kwargs={"devices": DEVICES}, seeds=[0, 1])
        result = runner.run(spec)
        selected = [[r.selected_clients for r in h.rounds] for h in result.histories]
        assert selected[0] != selected[1]

    def test_deterministic_across_runners(self):
        spec = RunSpec(dataset_kwargs={"devices": DEVICES}, seeds=[3])
        first = Runner().run(spec).history.per_device_metric
        second = Runner().run(spec).history.per_device_metric
        assert first == second


class TestSpecComponents:
    def test_callbacks_attach_via_spec(self, runner):
        spec = RunSpec(
            dataset_kwargs={"devices": DEVICES},
            config_overrides={"num_rounds": 4},
            callbacks={"early_stopping": {"monitor": "mean_train_loss",
                                          "patience": 1, "min_delta": 10.0}},
            seeds=[0],
        )
        history = runner.run(spec).history
        # An impossible min_delta means round 2 never improves: stop after patience.
        assert len(history.rounds) < 4
        assert "early_stopped_at" in history.metadata

    def test_switch_telemetry_always_present(self, runner):
        spec = RunSpec(strategy="isp_swad", dataset_kwargs={"devices": DEVICES}, seeds=[0])
        history = runner.run(spec).history
        assert history.metadata["total_switch1"] == sum(
            len(r.selected_clients) for r in history.rounds)

    def test_sampler_choice_changes_selection(self, runner):
        base = RunSpec(dataset_kwargs={"devices": DEVICES}, seeds=[0])
        uniform = runner.run(base).history
        robin = runner.run(base.with_overrides(sampler="round_robin")).history
        assert [r.selected_clients for r in uniform.rounds] != \
               [r.selected_clients for r in robin.rounds]

    def test_config_overrides_apply(self, runner):
        spec = RunSpec(dataset_kwargs={"devices": DEVICES},
                       config_overrides={"num_rounds": 1}, seeds=[0])
        assert len(runner.run(spec).history.rounds) == 1

    def test_eval_every_override_records_evaluations(self, runner):
        spec = RunSpec(dataset_kwargs={"devices": DEVICES},
                       config_overrides={"num_rounds": 2, "eval_every": 1}, seeds=[0])
        history = runner.run(spec).history
        assert len(history.evaluations) == 2


class TestDatasetCache:
    def test_bundle_memoised_across_specs(self):
        runner = Runner()
        spec = RunSpec(dataset_kwargs={"devices": DEVICES}, seeds=[0])
        first = runner.build_bundle(spec, seed=0)
        second = runner.build_bundle(spec.with_overrides(strategy="heteroswitch"), seed=0)
        assert first is second

    def test_cache_keyed_by_seed_and_kwargs(self):
        runner = Runner()
        spec = RunSpec(dataset_kwargs={"devices": DEVICES}, seeds=[0])
        assert runner.build_bundle(spec, seed=0) is not runner.build_bundle(spec, seed=1)
        other = spec.with_overrides(dataset_kwargs={"devices": DEVICES[:2]})
        assert runner.build_bundle(spec, seed=0) is not runner.build_bundle(other, seed=0)

    def test_cache_can_be_disabled(self):
        runner = Runner(cache_datasets=False)
        spec = RunSpec(dataset_kwargs={"devices": DEVICES}, seeds=[0])
        assert runner.build_bundle(spec, seed=0) is not runner.build_bundle(spec, seed=0)


class TestCentralizedKind:
    def test_centralized_run(self, runner):
        spec = RunSpec(kind="centralized", dataset="scenes",
                       trainer_kwargs={"averager": "swad", "transform_degree": 0.3},
                       seeds=[0])
        result = runner.run(spec)
        assert len(result.models) == 1
        assert "scenes" in result.metrics[0]
        assert 0.0 <= result.metrics[0]["scenes"] <= 1.0

    def test_unknown_averager(self, runner):
        spec = RunSpec(kind="centralized", dataset="scenes",
                       trainer_kwargs={"averager": "ema"}, seeds=[0])
        with pytest.raises(ValueError, match="averager"):
            runner.run(spec)

    def test_unknown_trainer_kwarg(self, runner):
        spec = RunSpec(kind="centralized", dataset="scenes",
                       trainer_kwargs={"optimizer": "adam"}, seeds=[0])
        with pytest.raises(ValueError, match="unknown trainer_kwargs"):
            runner.run(spec)

    def test_run_seed_rejects_centralized(self, runner):
        spec = RunSpec(kind="centralized", dataset="scenes", seeds=[0])
        with pytest.raises(ValueError, match="federated"):
            runner.run_seed(spec, seed=0)


class TestReporting:
    def test_to_experiment_result(self, runner):
        spec = RunSpec(dataset_kwargs={"devices": DEVICES}, seeds=[0, 1])
        result = runner.run(spec).to_experiment_result("bench")
        assert result.experiment_id == "bench"
        assert len(result.rows) == 2
        assert result.metadata["spec"]["dataset"] == "device_capture"
        assert "worst_case" in result.scalars
