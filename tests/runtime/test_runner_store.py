"""Runner + RunStore integration: durable runs, resume, executor lifecycle."""

import numpy as np
import pytest

from repro.fl.callbacks import CALLBACK_REGISTRY, Callback
from repro.fl.execution import EXECUTOR_REGISTRY, SerialExecutor
from repro.nn.serialization import states_equal
from repro.runtime import Runner, RunSpec, RunStore
from repro.store import RunStoreError, run_fingerprint

DEVICES = ["Pixel5", "S6", "G7"]


def make_spec(**overrides):
    base = dict(strategy="fedavg", dataset="device_capture",
                dataset_kwargs={"devices": DEVICES}, scale="smoke",
                config_overrides={"num_rounds": 3}, seeds=[0])
    base.update(overrides)
    return RunSpec(**base)


class _Boom(Exception):
    pass


class _CrashAfterRound(Callback):
    """Simulates a crash: raises once the given round has completed (and been
    checkpointed).  One-shot via the class-level ``armed`` flag so the same
    spec — callbacks are part of the run key — can be resumed afterwards."""

    armed = True

    def __init__(self, after_round: int) -> None:
        self.after_round = after_round

    def on_round_start(self, sim, round_index) -> None:
        if _CrashAfterRound.armed and round_index > self.after_round:
            _CrashAfterRound.armed = False
            raise _Boom(f"simulated crash before round {round_index}")


class TestStoredRuns:
    def test_store_records_result_and_checkpoints(self, tmp_path):
        store = RunStore(tmp_path / "store")
        runner = Runner(store=store, checkpoint_every=1)
        result = runner.run(make_spec())
        [entry] = store.list_runs()
        assert entry.status() == "completed"
        assert [p.name for p in entry.checkpoints()] == \
            ["round_00001.npz", "round_00002.npz", "round_00003.npz"]
        assert (entry.checkpoint_dir / "final.npz").exists()
        stored = entry.load_result()
        assert stored["metrics"] == result.history.per_device_metric
        final_state = entry.load_checkpoint(entry.checkpoint_dir / "final.npz")
        assert stored["fingerprint"] == run_fingerprint(
            final_state["global_state"], stored["metrics"])

    def test_store_accepts_plain_path(self, tmp_path):
        runner = Runner(store=tmp_path / "store", checkpoint_every=2)
        runner.run(make_spec())
        [entry] = RunStore(tmp_path / "store").list_runs()
        assert [p.name for p in entry.checkpoints()] == ["round_00002.npz"]

    def test_stored_run_matches_storeless_run(self, tmp_path):
        plain = Runner().run(make_spec())
        stored = Runner(store=tmp_path / "store", checkpoint_every=1).run(make_spec())
        assert stored.history.per_device_metric == plain.history.per_device_metric

    def test_centralized_spec_with_store_rejected(self, tmp_path):
        runner = Runner(store=tmp_path / "store")
        spec = RunSpec(kind="centralized", dataset="scenes", scale="smoke")
        with pytest.raises(ValueError, match="federated"):
            runner.run(spec)

    def test_resume_without_store_rejected(self):
        with pytest.raises(ValueError, match="requires a Runner constructed with a store"):
            Runner().run(make_spec(), resume=True)

    def test_invalid_checkpoint_every_rejected(self, tmp_path):
        for bad in (-1, 1.5, True, "two"):
            with pytest.raises(ValueError, match="checkpoint_every"):
                Runner(store=tmp_path / "store", checkpoint_every=bad)


class TestCrashResume:
    def test_crash_then_resume_is_bitwise_identical(self, tmp_path):
        """The end-to-end headline: a run killed mid-flight resumes to the
        exact same fingerprint (weights + metrics) as an uninterrupted run."""
        reference = Runner(store=tmp_path / "ref", checkpoint_every=1)
        reference.run(make_spec())
        [ref_entry] = RunStore(tmp_path / "ref").list_runs()

        crashing = Runner(store=tmp_path / "crash", checkpoint_every=1)
        crash_spec = make_spec(callbacks={"crash_after_round": {"after_round": 0}})
        with pytest.raises(_Boom):
            crashing.run(crash_spec)
        [crash_entry] = RunStore(tmp_path / "crash").list_runs()
        assert crash_entry.status() == "running"
        assert not crash_entry.has_result()
        assert [p.name for p in crash_entry.checkpoints()] == ["round_00001.npz"]

        resumed = Runner(store=tmp_path / "crash", checkpoint_every=1)
        resumed.run(crash_spec, resume=True)
        [done_entry] = RunStore(tmp_path / "crash").list_runs()
        assert done_entry.status() == "completed"
        assert done_entry.load_result()["fingerprint"] == \
            ref_entry.load_result()["fingerprint"]
        ref_state = ref_entry.load_checkpoint(ref_entry.checkpoint_dir / "final.npz")
        done_state = done_entry.load_checkpoint(done_entry.checkpoint_dir / "final.npz")
        assert states_equal(ref_state["global_state"], done_state["global_state"])

    def test_resume_skips_completed_seeds_and_continues_partial(self, tmp_path):
        """A killed multi-seed run keeps its finished seeds: resume loads seed
        0 from the store (no re-execution) and only runs the missing seed."""
        spec = make_spec(seeds=[0, 1])
        reference = Runner().run(spec)

        store = RunStore(tmp_path / "store")
        runner = Runner(store=store, checkpoint_every=1)
        runner.run(make_spec(seeds=[0]))  # seed 0 completes, then the "crash"
        [entry0] = store.list_runs()
        result_mtime = entry0.result_path.stat().st_mtime_ns

        resumed = runner.run(spec, resume=True)
        assert entry0.result_path.stat().st_mtime_ns == result_mtime  # untouched
        assert len(store.list_runs()) == 2
        assert [h.per_device_metric for h in resumed.histories] == \
            [h.per_device_metric for h in reference.histories]
        assert resumed.summary == reference.summary

    def test_resume_of_completed_seed_skips_dataset_construction(self, tmp_path,
                                                                 monkeypatch):
        """Loading a stored result must not pay for building the dataset."""
        store = RunStore(tmp_path / "store")
        Runner(store=store, checkpoint_every=1).run(make_spec())

        fresh = Runner(store=store, checkpoint_every=1)

        def forbidden(spec, seed):
            raise AssertionError("resume of a completed seed built a dataset bundle")

        monkeypatch.setattr(fresh, "build_bundle", forbidden)
        result = fresh.run(make_spec(), resume=True)
        [entry] = store.list_runs()
        assert result.history.per_device_metric == entry.load_result()["metrics"]

    def test_resume_on_fresh_store_runs_normally(self, tmp_path):
        runner = Runner(store=tmp_path / "store", checkpoint_every=1)
        result = runner.run(make_spec(), resume=True)
        assert Runner().run(make_spec()).history.per_device_metric == \
            result.history.per_device_metric


@pytest.fixture(autouse=True)
def crash_callback_registered():
    CALLBACK_REGISTRY.replace("crash_after_round", _CrashAfterRound)
    _CrashAfterRound.armed = True
    yield
    CALLBACK_REGISTRY.unregister("crash_after_round")


class _TrackingExecutor(SerialExecutor):
    """Serial executor that records whether close() was called."""

    instances = []

    def __init__(self, max_workers=None):
        super().__init__(max_workers)
        self.closed = False
        _TrackingExecutor.instances.append(self)

    def close(self):
        self.closed = True
        super().close()


@pytest.fixture
def tracking_executor_registered():
    _TrackingExecutor.instances = []
    EXECUTOR_REGISTRY.replace("tracking", _TrackingExecutor)
    yield _TrackingExecutor
    EXECUTOR_REGISTRY.unregister("tracking")


class TestExecutorLifecycle:
    """Audit: the runner closes its executor even when the run blows up."""

    def test_executor_closed_on_clean_run(self, tracking_executor_registered):
        Runner().run(make_spec(executor="tracking"))
        [executor] = tracking_executor_registered.instances
        assert executor.closed

    def test_executor_closed_when_callback_raises_mid_run(
            self, tracking_executor_registered):
        spec = make_spec(executor="tracking",
                         callbacks={"crash_after_round": {"after_round": 0}})
        with pytest.raises(_Boom):
            Runner().run(spec)
        [executor] = tracking_executor_registered.instances
        assert executor.closed

    def test_executor_closed_when_simulation_construction_fails(
            self, tracking_executor_registered, monkeypatch):
        import repro.runtime.runner as runner_module

        def explode(*args, **kwargs):
            raise RuntimeError("constructor failure")

        monkeypatch.setattr(runner_module, "FederatedSimulation", explode)
        with pytest.raises(RuntimeError, match="constructor failure"):
            Runner().run(make_spec(executor="tracking"))
        [executor] = tracking_executor_registered.instances
        assert executor.closed

    def test_each_seed_gets_its_executor_closed(self, tracking_executor_registered):
        Runner().run(make_spec(executor="tracking", seeds=[0, 1]))
        assert len(tracking_executor_registered.instances) == 2
        assert all(executor.closed for executor in
                   tracking_executor_registered.instances)
