"""Tests for the declarative RunSpec: validation and JSON round-trip."""

import dataclasses

import pytest

from repro.eval.scale import SCALES
from repro.runtime import RunSpec, spec_scale


class TestValidation:
    def test_defaults_valid(self):
        spec = RunSpec()
        assert spec.kind == "federated"
        assert spec.strategy == "fedavg"
        assert spec.seeds == [0]

    def test_unknown_strategy_lists_available(self):
        with pytest.raises(KeyError, match="unknown strategy 'sgd'.*fedavg"):
            RunSpec(strategy="sgd")

    def test_unknown_model_lists_available(self):
        with pytest.raises(KeyError, match="unknown model.*simple_mlp"):
            RunSpec(model="resnet50")

    def test_unknown_dataset(self):
        with pytest.raises(KeyError, match="unknown dataset.*device_capture"):
            RunSpec(dataset="imagenet")

    def test_unknown_sampler(self):
        with pytest.raises(KeyError, match="unknown sampler.*uniform"):
            RunSpec(sampler="importance")

    def test_unknown_callback(self):
        with pytest.raises(KeyError, match="unknown callback.*eval_every"):
            RunSpec(callbacks={"telemetry2": {}})

    def test_unknown_kind(self):
        with pytest.raises(ValueError, match="kind must be one of"):
            RunSpec(kind="quantum")

    def test_unknown_scale_preset(self):
        with pytest.raises(KeyError, match="unknown scale"):
            RunSpec(scale="huge")

    def test_unknown_config_override(self):
        with pytest.raises(ValueError, match="unknown FLConfig override.*lr"):
            RunSpec(config_overrides={"lr": 0.1})

    def test_empty_seeds(self):
        with pytest.raises(ValueError, match="seeds"):
            RunSpec(seeds=[])

    def test_non_integer_seeds(self):
        with pytest.raises(ValueError, match="seeds must be integers"):
            RunSpec(seeds=["zero"])

    def test_custom_scale_dict_must_be_complete(self):
        with pytest.raises(ValueError, match="ExperimentScale fields"):
            RunSpec(scale={"num_clients": 4})

    def test_custom_scale_dict_round_trips(self):
        scale_dict = dataclasses.asdict(SCALES["smoke"])
        spec = RunSpec(scale=scale_dict)
        assert spec.resolve_scale() == SCALES["smoke"]

    def test_spec_scale_helper(self):
        assert spec_scale("smoke") == "smoke"
        as_dict = spec_scale(SCALES["smoke"])
        assert as_dict == dataclasses.asdict(SCALES["smoke"])
        assert RunSpec(scale=as_dict).resolve_scale() == SCALES["smoke"]

    def test_federated_rejects_trainer_kwargs(self):
        with pytest.raises(ValueError, match="trainer_kwargs only applies"):
            RunSpec(trainer_kwargs={"averager": "swad"})

    def test_unknown_executor_lists_available(self):
        with pytest.raises(KeyError, match="unknown executor 'gpu'.*process"):
            RunSpec(executor="gpu")

    @pytest.mark.parametrize("bad", [0, -3, 2.5, True, "four"])
    def test_invalid_max_workers_rejected(self, bad):
        with pytest.raises(ValueError, match="max_workers"):
            RunSpec(max_workers=bad)

    def test_executor_defaults_serial(self):
        spec = RunSpec()
        assert spec.executor == "serial"
        assert spec.max_workers is None

    def test_parallel_executor_valid(self):
        spec = RunSpec(executor="process", max_workers=4)
        assert spec.executor == "process"
        assert spec.max_workers == 4

    def test_centralized_rejects_executor_fields(self):
        with pytest.raises(ValueError, match="centralized specs do not use.*executor"):
            RunSpec(kind="centralized", dataset="scenes", executor="process")
        with pytest.raises(ValueError, match="centralized specs do not use.*max_workers"):
            RunSpec(kind="centralized", dataset="scenes", max_workers=2)

    def test_centralized_rejects_silently_ignored_fields(self):
        with pytest.raises(ValueError, match="centralized specs do not use.*config_overrides"):
            RunSpec(kind="centralized", dataset="scenes",
                    config_overrides={"learning_rate": 0.5})
        with pytest.raises(ValueError, match="centralized specs do not use.*callbacks"):
            RunSpec(kind="centralized", dataset="scenes",
                    callbacks={"round_logger": {}})
        with pytest.raises(ValueError, match="centralized specs do not use.*strategy"):
            RunSpec(kind="centralized", dataset="scenes", strategy="heteroswitch")
        with pytest.raises(ValueError, match="centralized specs do not use.*sampler"):
            RunSpec(kind="centralized", dataset="scenes", sampler="round_robin")


class TestSerialization:
    def _rich_spec(self) -> RunSpec:
        return RunSpec(
            name="test",
            strategy="heteroswitch",
            strategy_kwargs={},
            model="simple_mlp",
            dataset="device_capture",
            dataset_kwargs={"devices": ["Pixel5", "S6"]},
            sampler="round_robin",
            executor="process",
            max_workers=4,
            scale="smoke",
            config_overrides={"num_rounds": 2, "learning_rate": 0.05},
            callbacks={"early_stopping": {"patience": 2}},
            seeds=[0, 1, 2],
        )

    def test_dict_round_trip(self):
        spec = self._rich_spec()
        assert RunSpec.from_dict(spec.to_dict()) == spec

    def test_json_round_trip(self):
        spec = self._rich_spec()
        assert RunSpec.from_json(spec.to_json()) == spec

    def test_file_round_trip(self, tmp_path):
        spec = self._rich_spec()
        path = tmp_path / "spec.json"
        spec.save(path)
        assert RunSpec.load(path) == spec

    def test_to_dict_is_deep_copy(self):
        spec = self._rich_spec()
        data = spec.to_dict()
        data["dataset_kwargs"]["devices"].append("G7")
        assert spec.dataset_kwargs["devices"] == ["Pixel5", "S6"]

    def test_legacy_spec_without_executor_defaults_serial(self):
        """Spec files written before the execution engine still load."""
        spec = RunSpec.from_dict({"strategy": "fedavg", "dataset": "device_capture"})
        assert spec.executor == "serial"
        assert spec.max_workers is None

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown RunSpec field.*optimizer"):
            RunSpec.from_dict({"optimizer": "adam"})

    def test_from_dict_validates_contents(self):
        with pytest.raises(KeyError, match="unknown strategy"):
            RunSpec.from_dict({"strategy": "sgd"})


class TestDerivation:
    def test_with_overrides_returns_independent_copy(self):
        spec = RunSpec(dataset_kwargs={"devices": ["Pixel5", "S6"]})
        variant = spec.with_overrides(strategy="heteroswitch")
        assert variant.strategy == "heteroswitch"
        assert spec.strategy == "fedavg"
        variant.dataset_kwargs["devices"].append("G7")
        assert spec.dataset_kwargs["devices"] == ["Pixel5", "S6"]

    def test_with_overrides_validates(self):
        with pytest.raises(KeyError, match="unknown strategy"):
            RunSpec().with_overrides(strategy="sgd")

    def test_label(self):
        assert RunSpec().label == "fedavg/device_capture"
        assert RunSpec(name="custom").label == "custom"
        assert RunSpec(kind="centralized", dataset="scenes").label == "centralized/scenes"


class TestAsyncSpec:
    """kind='federated_async': field acceptance/rejection and round-trip."""

    def _async_spec(self, **overrides) -> RunSpec:
        fields = dict(kind="federated_async", strategy="fedasync",
                      latency_kwargs={"regime": "extreme"}, concurrency=3,
                      config_overrides={"num_rounds": 3}, seeds=[0, 1])
        fields.update(overrides)
        return RunSpec(**fields)

    def test_valid_async_spec(self):
        spec = self._async_spec()
        assert spec.label == "fedasync/device_capture"
        assert spec.latency_kwargs == {"regime": "extreme"}

    def test_json_round_trip(self):
        spec = self._async_spec(strategy="fedbuff",
                                strategy_kwargs={"buffer_size": 2})
        assert RunSpec.from_json(spec.to_json()) == spec

    def test_async_strategy_requires_async_kind(self):
        with pytest.raises(ValueError, match="asynchronous-only"):
            RunSpec(strategy="fedasync")
        with pytest.raises(ValueError, match="asynchronous-only"):
            RunSpec(strategy="fedbuff")

    def test_async_kind_requires_async_strategy(self):
        with pytest.raises(ValueError, match="requires an asynchronous strategy"):
            RunSpec(kind="federated_async", strategy="fedavg")
        with pytest.raises(ValueError, match="requires an asynchronous strategy"):
            RunSpec(kind="federated_async", strategy="heteroswitch")

    def test_async_rejects_sampler_fields(self):
        with pytest.raises(ValueError, match="do not use sampler"):
            self._async_spec(sampler="round_robin")
        with pytest.raises(ValueError, match="do not use sampler"):
            self._async_spec(sampler_kwargs={"weight_by": "availability"})

    def test_async_rejects_trainer_kwargs(self):
        with pytest.raises(ValueError, match="trainer_kwargs only applies"):
            self._async_spec(trainer_kwargs={"epochs": 2})

    def test_unknown_latency_kwargs_rejected(self):
        with pytest.raises(ValueError, match="unknown latency_kwargs.*jitter"):
            self._async_spec(latency_kwargs={"jitter": 0.5})

    def test_unknown_regime_rejected(self):
        with pytest.raises(KeyError, match="unknown latency regime"):
            self._async_spec(latency_kwargs={"regime": "chaotic"})

    @pytest.mark.parametrize("bad", [0, -1, 1.5, True, "two"])
    def test_invalid_concurrency_rejected(self, bad):
        with pytest.raises(ValueError, match="concurrency"):
            self._async_spec(concurrency=bad)

    def test_sync_federated_rejects_async_fields(self):
        with pytest.raises(ValueError, match="latency_kwargs"):
            RunSpec(latency_kwargs={"regime": "mild"})
        with pytest.raises(ValueError, match="concurrency"):
            RunSpec(concurrency=2)

    def test_centralized_rejects_async_fields(self):
        with pytest.raises(ValueError, match="centralized specs do not use"):
            RunSpec(kind="centralized", dataset="scenes",
                    latency_kwargs={"regime": "mild"})
        with pytest.raises(ValueError, match="centralized specs do not use"):
            RunSpec(kind="centralized", dataset="scenes", concurrency=2)

    def test_async_accepts_executor_and_callbacks(self):
        spec = self._async_spec(executor="thread", max_workers=2,
                                callbacks={"async_telemetry": {}})
        assert spec.executor == "thread"
        assert "async_telemetry" in spec.callbacks
