"""Tests for the Table 1 device profiles and market shares."""

import numpy as np
import pytest

from repro.devices.profiles import (
    DEVICE_NAMES,
    DEVICE_PROFILES,
    DOMINANT_DEVICES,
    DeviceProfile,
    devices_by_tier,
    devices_by_vendor,
    get_device,
    market_shares,
)
from repro.devices.sensor import SensorModel
from repro.isp.pipeline import ISPConfig


class TestTable1Composition:
    def test_nine_devices(self):
        assert len(DEVICE_PROFILES) == 9

    def test_expected_device_names(self):
        expected = {"Pixel5", "Pixel2", "Nexus5X", "VELVET", "G7", "G4", "S22", "S9", "S6"}
        assert set(DEVICE_NAMES) == expected

    def test_three_vendors_three_tiers(self):
        vendors = {p.vendor for p in DEVICE_PROFILES.values()}
        tiers = {p.tier for p in DEVICE_PROFILES.values()}
        assert vendors == {"samsung", "lg", "google"}
        assert tiers == {"high", "mid", "low"}

    def test_each_vendor_has_one_device_per_tier(self):
        for vendor in ("samsung", "lg", "google"):
            tiers = [p.tier for p in devices_by_vendor(vendor)]
            assert sorted(tiers) == ["high", "low", "mid"]

    def test_market_shares_match_table1(self):
        shares = {name: p.market_share for name, p in DEVICE_PROFILES.items()}
        assert shares["S6"] == pytest.approx(0.38)
        assert shares["S9"] == pytest.approx(0.27)
        assert shares["S22"] == pytest.approx(0.12)
        assert shares["Pixel5"] == pytest.approx(0.01)

    def test_dominant_devices_are_s9_s6(self):
        assert set(DOMINANT_DEVICES) == {"S9", "S6"}

    def test_dominant_devices_have_highest_shares(self):
        shares = {name: p.market_share for name, p in DEVICE_PROFILES.items()}
        top_two = sorted(shares, key=shares.get, reverse=True)[:2]
        assert set(top_two) == set(DOMINANT_DEVICES)


class TestProfiles:
    def test_each_profile_has_sensor_and_isp(self):
        for profile in DEVICE_PROFILES.values():
            assert isinstance(profile.sensor, SensorModel)
            assert isinstance(profile.isp, ISPConfig)

    def test_lower_tiers_lower_resolution(self):
        high = devices_by_tier("high")
        low = devices_by_tier("low")
        assert min(p.sensor.resolution[0] for p in high) > max(p.sensor.resolution[0] for p in low)

    def test_lower_tiers_noisier(self):
        high = devices_by_tier("high")
        low = devices_by_tier("low")
        assert max(p.sensor.read_noise for p in high) < min(p.sensor.read_noise for p in low)

    def test_same_vendor_more_similar_color_response(self):
        """Pixel5/Pixel2 colour matrices are closer than Pixel5/S22 (Table 2 structure)."""
        pixel5 = get_device("Pixel5").sensor.color_response
        pixel2 = get_device("Pixel2").sensor.color_response
        s22 = get_device("S22").sensor.color_response
        same_vendor = np.abs(pixel5 - pixel2).sum()
        cross_vendor = np.abs(pixel5 - s22).sum()
        assert same_vendor < cross_vendor

    def test_isp_configs_differ_across_devices(self):
        configs = {name: p.isp.as_dict() for name, p in DEVICE_PROFILES.items()}
        distinct = {tuple(sorted(c.items())) for c in configs.values()}
        assert len(distinct) >= 5  # many distinct ISP configurations

    def test_get_device_unknown_raises(self):
        with pytest.raises(KeyError):
            get_device("iPhone15")

    def test_devices_by_vendor_unknown_lists_available(self):
        with pytest.raises(KeyError, match="google.*lg.*samsung"):
            devices_by_vendor("nokia")

    def test_devices_by_tier_unknown_lists_available(self):
        with pytest.raises(KeyError, match="high.*low.*mid"):
            devices_by_tier("ultra")

    def test_get_device_unknown_lists_available(self):
        with pytest.raises(KeyError, match="Pixel5"):
            get_device("iPhone15")

    def test_profile_validation(self):
        with pytest.raises(ValueError):
            DeviceProfile(name="x", vendor="v", tier="extreme", market_share=0.1,
                          sensor=SensorModel(), isp=ISPConfig())
        with pytest.raises(ValueError):
            DeviceProfile(name="x", vendor="v", tier="high", market_share=0.0,
                          sensor=SensorModel(), isp=ISPConfig())


class TestMarketShares:
    def test_normalized_sums_to_one(self):
        assert sum(market_shares().values()) == pytest.approx(1.0)

    def test_unnormalized_matches_profiles(self):
        raw = market_shares(normalize=False)
        for name, share in raw.items():
            assert share == DEVICE_PROFILES[name].market_share

    def test_all_devices_present(self):
        assert set(market_shares()) == set(DEVICE_NAMES)

    def test_zero_total_share_raises_instead_of_dividing(self, monkeypatch):
        import repro.devices.profiles as profiles_module

        monkeypatch.setattr(profiles_module, "DEVICE_PROFILES", {})
        with pytest.raises(ValueError, match="cannot normalize"):
            market_shares(normalize=True)
        assert market_shares(normalize=False) == {}
