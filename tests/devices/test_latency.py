"""Tests for the profile-derived device latency/availability models."""

import numpy as np
import pytest

from repro.devices.latency import (
    LATENCY_REGIMES,
    DeviceLatencyModel,
    LatencyRegime,
    build_latency_model,
    build_latency_models,
    describe_models,
    get_regime,
    mean_round_trip,
)
from repro.devices.profiles import get_device


class TestDerivation:
    def test_tier_orders_compute_rate(self):
        high = build_latency_model("S22", "mild")
        mid = build_latency_model("S9", "mild")
        low = build_latency_model("S6", "mild")
        assert high.compute_rate > mid.compute_rate > low.compute_rate

    def test_market_share_orders_network(self):
        # S6 owns 38% of the fleet (congested class); Pixel5 1% (fast class).
        mass = build_latency_model("S6", "mild")
        rare = build_latency_model("Pixel5", "mild")
        assert mass.network_seconds > rare.network_seconds

    def test_vendor_multiplier_applies(self):
        # VELVET (lg, 2%) and Pixel5 (google, 1%) share the fast network
        # class; the vendor multiplier separates them.
        lg = build_latency_model("VELVET", "mild")
        google = build_latency_model("Pixel5", "mild")
        assert lg.network_seconds > google.network_seconds

    def test_tier_orders_availability(self):
        high = build_latency_model("Pixel5", "mild")
        low = build_latency_model("Nexus5X", "mild")
        assert high.on_fraction > low.on_fraction
        assert high.mean_session_seconds > low.mean_session_seconds

    def test_profile_instance_accepted(self):
        by_name = build_latency_model("G7", "mild")
        by_profile = build_latency_model(get_device("G7"), "mild")
        assert by_name == by_profile

    def test_fallback_for_unknown_devices(self):
        a = build_latency_model("synthetic-device-a", "mild")
        b = build_latency_model("synthetic-device-b", "mild")
        assert a.device == "synthetic-device-a"
        assert a.compute_rate > 0 and a.network_seconds > 0
        # Name-hashed perturbation keeps distinct devices distinct.
        assert (a.compute_rate, a.network_seconds) != (b.compute_rate, b.network_seconds)
        # And the derivation is deterministic.
        assert build_latency_model("synthetic-device-a", "mild") == a


class TestRegimes:
    def test_presets_available(self):
        assert set(LATENCY_REGIMES) == {"uniform", "mild", "extreme"}

    def test_get_regime_passthrough_and_lookup(self):
        custom = LatencyRegime("c", 1.0, 1.0, 0.1, 1.0)
        assert get_regime(custom) is custom
        assert get_regime("mild") is LATENCY_REGIMES["mild"]

    def test_get_regime_unknown_lists_available(self):
        with pytest.raises(KeyError, match="extreme.*mild.*uniform"):
            get_regime("bogus")

    def test_uniform_collapses_heterogeneity(self):
        models = build_latency_models(["S22", "S6", "Pixel5", "G4"], "uniform")
        assert len({m.compute_rate for m in models.values()}) == 1
        assert len({m.network_seconds for m in models.values()}) == 1
        assert all(m.always_online for m in models.values())

    def test_extreme_widens_spread(self):
        def spread(regime):
            models = build_latency_models(["S22", "S6"], regime)
            rates = [m.compute_rate for m in models.values()]
            return max(rates) / min(rates)

        assert spread("extreme") > spread("mild") > 1.0

    def test_churn_scales_session_length(self):
        mild = build_latency_model("S6", "mild")
        extreme = build_latency_model("S6", "extreme")
        assert extreme.mean_session_seconds < mild.mean_session_seconds
        assert not mild.always_online

    def test_regime_validation(self):
        with pytest.raises(ValueError):
            LatencyRegime("x", compute_skew=-1.0, network_skew=0.0,
                          jitter_sigma=0.1, churn=0.0)
        with pytest.raises(ValueError):
            LatencyRegime("x", compute_skew=0.0, network_skew=0.0,
                          jitter_sigma=0.1, churn=-0.5)


class TestSampling:
    def test_round_trip_deterministic_per_rng(self):
        model = build_latency_model("S9", "mild")
        a = model.sample_round_trip(100, np.random.default_rng(7))
        b = model.sample_round_trip(100, np.random.default_rng(7))
        assert a == b

    def test_round_trip_without_jitter_is_exact(self):
        model = DeviceLatencyModel("d", compute_rate=50.0, network_seconds=10.0,
                                   jitter_sigma=0.0, on_fraction=1.0,
                                   mean_session_seconds=float("inf"))
        assert model.sample_round_trip(100, np.random.default_rng(0)) == \
            pytest.approx(100 / 50.0 + 10.0)
        assert mean_round_trip(model, 100) == pytest.approx(12.0)

    def test_session_sampling(self):
        model = build_latency_model("S6", "mild")
        rng = np.random.default_rng(0)
        online = [model.sample_session(True, np.random.default_rng(i))
                  for i in range(200)]
        offline = [model.sample_session(False, np.random.default_rng(i))
                   for i in range(200)]
        assert all(s > 0 for s in online + offline)
        # Offline gaps are scaled so the duty cycle matches on_fraction:
        # mean_off = mean_on * (1 - f) / f.
        ratio = np.mean(offline) / np.mean(online)
        expected = (1.0 - model.on_fraction) / model.on_fraction
        assert ratio == pytest.approx(expected, rel=0.35)
        assert isinstance(model.sample_initially_online(rng), bool)

    def test_always_online_has_no_sessions(self):
        model = build_latency_model("S6", "uniform")
        assert model.always_online
        assert model.sample_initially_online(np.random.default_rng(0)) is True
        with pytest.raises(RuntimeError):
            model.sample_session(True, np.random.default_rng(0))

    def test_model_validation(self):
        with pytest.raises(ValueError):
            DeviceLatencyModel("d", compute_rate=0.0, network_seconds=1.0,
                               jitter_sigma=0.1, on_fraction=0.5,
                               mean_session_seconds=10.0)
        with pytest.raises(ValueError):
            DeviceLatencyModel("d", compute_rate=1.0, network_seconds=1.0,
                               jitter_sigma=0.1, on_fraction=1.5,
                               mean_session_seconds=10.0)


class TestPopulation:
    def test_build_models_dedupes_devices(self):
        models = build_latency_models(["S6", "S6", "S9"], "mild")
        assert set(models) == {"S6", "S9"}

    def test_describe_models_is_json_safe(self):
        import json

        models = build_latency_models(["S6", "Pixel5"], "extreme")
        described = describe_models(models)
        assert set(described) == {"S6", "Pixel5"}
        assert set(described["S6"]) == {"compute_rate", "network_seconds",
                                        "on_fraction"}
        json.dumps(described)
