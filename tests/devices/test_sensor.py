"""Tests for the parametric sensor model."""

import numpy as np
import pytest

from repro.devices.sensor import SensorModel
from repro.isp.raw import RawImage


def make_scene(size=32, seed=0):
    return np.random.default_rng(seed).random((size, size, 3))


class TestSensorValidation:
    def test_default_construction(self):
        sensor = SensorModel()
        assert sensor.resolution == (64, 64)

    def test_rejects_bad_color_matrix(self):
        with pytest.raises(ValueError):
            SensorModel(color_response=np.eye(4))

    def test_rejects_odd_resolution(self):
        with pytest.raises(ValueError):
            SensorModel(resolution=(33, 32))

    def test_rejects_nonpositive_exposure(self):
        with pytest.raises(ValueError):
            SensorModel(exposure=0.0)

    def test_rejects_negative_noise(self):
        with pytest.raises(ValueError):
            SensorModel(read_noise=-0.1)

    def test_rejects_bad_vignetting(self):
        with pytest.raises(ValueError):
            SensorModel(vignetting=1.0)


class TestExpose:
    def test_output_shape_matches_resolution(self):
        sensor = SensorModel(resolution=(48, 48))
        out = sensor.expose(make_scene(32))
        assert out.shape == (48, 48, 3)

    def test_range(self):
        out = SensorModel().expose(make_scene())
        assert out.min() >= 0.0 and out.max() <= 1.0

    def test_exposure_scales_brightness(self):
        scene = make_scene() * 0.5
        bright = SensorModel(exposure=1.0).expose(scene)
        dim = SensorModel(exposure=0.5).expose(scene)
        assert bright.mean() > dim.mean()

    def test_vignetting_darkens_corners(self):
        scene = np.full((32, 32, 3), 0.8)
        out = SensorModel(resolution=(32, 32), vignetting=0.5).expose(scene)
        center = out[16, 16].mean()
        corner = out[0, 0].mean()
        assert corner < center

    def test_color_response_mixes_channels(self):
        scene = np.zeros((16, 16, 3))
        scene[..., 0] = 1.0  # pure red scene
        mix = np.array([[0.8, 0.2, 0.0], [0.3, 0.7, 0.0], [0.0, 0.0, 1.0]])
        out = SensorModel(resolution=(16, 16), color_response=mix).expose(scene)
        assert out[..., 1].mean() > 0.1  # red leaks into green

    def test_deterministic(self):
        sensor = SensorModel()
        scene = make_scene()
        np.testing.assert_allclose(sensor.expose(scene), sensor.expose(scene))


class TestCaptureRaw:
    def test_returns_raw_image(self):
        raw = SensorModel(resolution=(32, 32)).capture_raw(make_scene(), np.random.default_rng(0))
        assert isinstance(raw, RawImage)
        assert raw.shape == (32, 32)

    def test_range(self):
        raw = SensorModel().capture_raw(make_scene(), np.random.default_rng(0))
        assert raw.mosaic.min() >= 0.0 and raw.mosaic.max() <= 1.0

    def test_noise_makes_captures_differ(self):
        sensor = SensorModel(read_noise=0.05)
        scene = make_scene()
        a = sensor.capture_raw(scene, np.random.default_rng(0)).mosaic
        b = sensor.capture_raw(scene, np.random.default_rng(1)).mosaic
        assert not np.allclose(a, b)

    def test_seeded_captures_reproducible(self):
        sensor = SensorModel(read_noise=0.05)
        scene = make_scene()
        a = sensor.capture_raw(scene, np.random.default_rng(7)).mosaic
        b = sensor.capture_raw(scene, np.random.default_rng(7)).mosaic
        np.testing.assert_allclose(a, b)

    def test_noisier_sensor_deviates_more_from_clean(self):
        scene = make_scene()
        clean_sensor = SensorModel(read_noise=0.0, shot_noise_scale=0.0)
        noisy_sensor = SensorModel(read_noise=0.08, shot_noise_scale=0.08)
        reference = clean_sensor.capture_raw(scene, np.random.default_rng(0)).mosaic
        clean = clean_sensor.capture_raw(scene, np.random.default_rng(1)).mosaic
        noisy = noisy_sensor.capture_raw(scene, np.random.default_rng(1)).mosaic
        assert np.abs(noisy - reference).mean() > np.abs(clean - reference).mean()
