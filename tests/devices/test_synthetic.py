"""Tests for synthetic device-type generation (CIFAR / FLAIR experiments)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.devices.synthetic import (
    SyntheticDeviceType,
    generate_synthetic_devices,
    long_tailed_population,
)


def make_images(n=4, size=8, seed=0):
    return np.random.default_rng(seed).random((n, size, size, 3))


class TestSyntheticDeviceType:
    def test_identity_device_is_noop(self):
        device = SyntheticDeviceType(name="identity")
        images = make_images()
        np.testing.assert_allclose(device.apply(images), images)

    def test_brightness_shifts_mean(self):
        device = SyntheticDeviceType(name="bright", brightness=0.2)
        images = make_images() * 0.5
        assert device.apply(images).mean() > images.mean()

    def test_contrast_stretches_around_half(self):
        device = SyntheticDeviceType(name="contrast", contrast=2.0)
        images = np.full((1, 4, 4, 3), 0.75)
        np.testing.assert_allclose(device.apply(images), 1.0)

    def test_zero_saturation_produces_grayscale(self):
        device = SyntheticDeviceType(name="gray", saturation=0.0)
        out = device.apply(make_images())
        np.testing.assert_allclose(out[..., 0], out[..., 1])
        np.testing.assert_allclose(out[..., 1], out[..., 2])

    def test_hue_shift_changes_channel_balance(self):
        device = SyntheticDeviceType(name="hue", hue_shift=0.3)
        images = np.zeros((1, 4, 4, 3))
        images[..., 0] = 1.0
        out = device.apply(images)
        assert out[..., 1].mean() > 0.0 or out[..., 2].mean() > 0.0

    def test_noise_applied(self):
        device = SyntheticDeviceType(name="noisy", noise_sigma=0.1)
        images = np.full((2, 8, 8, 3), 0.5)
        out = device.apply(images, np.random.default_rng(0))
        assert not np.allclose(out, images)

    def test_output_range(self):
        device = SyntheticDeviceType(name="extreme", contrast=3.0, brightness=0.5,
                                     saturation=2.0, hue_shift=0.4, noise_sigma=0.2)
        out = device.apply(make_images(), np.random.default_rng(0))
        assert out.min() >= 0.0 and out.max() <= 1.0


class TestGenerators:
    def test_count(self):
        assert len(generate_synthetic_devices(10, seed=0)) == 10

    def test_deterministic(self):
        a = generate_synthetic_devices(5, seed=3)
        b = generate_synthetic_devices(5, seed=3)
        assert [d.contrast for d in a] == [d.contrast for d in b]

    def test_different_seeds_differ(self):
        a = generate_synthetic_devices(5, seed=0)
        b = generate_synthetic_devices(5, seed=1)
        assert [d.contrast for d in a] != [d.contrast for d in b]

    def test_devices_distinct(self):
        devices = generate_synthetic_devices(10, seed=0)
        params = {(d.contrast, d.brightness, d.saturation) for d in devices}
        assert len(params) == 10

    def test_parameters_within_ranges(self):
        devices = generate_synthetic_devices(20, seed=0, contrast_range=(0.8, 1.2))
        assert all(0.8 <= d.contrast <= 1.2 for d in devices)

    def test_invalid_count(self):
        with pytest.raises(ValueError):
            generate_synthetic_devices(0)

    @given(st.integers(1, 30))
    @settings(max_examples=15, deadline=None)
    def test_unique_names(self, count):
        devices = generate_synthetic_devices(count, seed=count)
        assert len({d.name for d in devices}) == count


class TestLongTailedPopulation:
    def test_probabilities_sum_to_one(self):
        _, probs = long_tailed_population(num_types=30, seed=0)
        assert probs.sum() == pytest.approx(1.0)

    def test_long_tail_shape(self):
        _, probs = long_tailed_population(num_types=50, seed=0)
        assert probs[0] > probs[-1] * 5  # head dominates the tail

    def test_device_count(self):
        devices, probs = long_tailed_population(num_types=12, seed=0)
        assert len(devices) == 12 and len(probs) == 12

    def test_invalid_count(self):
        with pytest.raises(ValueError):
            long_tailed_population(num_types=0)
