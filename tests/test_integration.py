"""End-to-end integration tests across the full stack.

These tests exercise the complete path the paper's evaluation uses —
scene generation -> device capture -> FL training with HeteroSwitch ->
per-device metrics — and check the qualitative relationships the paper
reports (at tiny scale, so assertions are directional, not numeric).
"""

import numpy as np
import pytest

from repro.data.capture import build_device_datasets
from repro.data.partition import build_client_specs
from repro.devices.profiles import market_shares
from repro.eval.centralized import evaluate_on_devices, train_centralized
from repro.eval.factories import make_model_factory
from repro.eval.scale import get_scale
from repro.fl.config import FLConfig
from repro.fl.simulation import FederatedSimulation
from repro.fl.strategies import create_strategy


@pytest.fixture(scope="module")
def bundle():
    return build_device_datasets(
        samples_per_class_train=6,
        samples_per_class_test=3,
        num_classes=3,
        image_size=16,
        scene_size=32,
        devices=["Pixel5", "Pixel2", "S22", "S6"],
        seed=0,
    )


class TestSystemInducedHeterogeneityExists:
    def test_cross_device_transfer_shows_heterogeneity(self, bundle):
        """Training on one device yields a usable model whose accuracy is not uniform
        across device types (the mechanism behind Section 3.2).  The full directional
        claim — own device is best, by 1-50% — is checked by the Table 2 benchmark at
        a larger scale; at smoke scale we only assert the mechanism is present."""
        scale = get_scale("smoke")
        factory = make_model_factory(scale, bundle.num_classes, bundle.image_size, seed=0)
        model = train_centralized(factory(), bundle.train["Pixel5"], epochs=12, batch_size=6,
                                  learning_rate=0.02, seed=0)
        metrics = evaluate_on_devices(model, bundle.test)
        own = metrics["Pixel5"]
        others = [metrics[d] for d in metrics if d != "Pixel5"]
        assert own > 1.0 / bundle.num_classes  # learned something on its own device
        assert own >= np.mean(others) - 0.05   # transfer does not beat the source device


class TestFullFLPipeline:
    def run_strategy(self, bundle, name, rounds=4, seed=0):
        scale = get_scale("smoke")
        factory = make_model_factory(scale, bundle.num_classes, bundle.image_size, seed=seed)
        shares = {k: v for k, v in market_shares().items() if k in bundle.train}
        clients = build_client_specs(bundle.train, num_clients=8, shares=shares, seed=seed)
        config = FLConfig(num_clients=8, clients_per_round=4, num_rounds=rounds,
                          batch_size=6, learning_rate=0.02, seed=seed)
        sim = FederatedSimulation(factory, clients, bundle.test, create_strategy(name), config)
        return sim.run()

    def test_fedavg_learns_something(self, bundle):
        history = self.run_strategy(bundle, "fedavg", rounds=6)
        # Better than random guessing (1/3) on average across devices.
        assert history.summary["average"] > 0.34

    def test_heteroswitch_runs_and_switches(self, bundle):
        history = self.run_strategy(bundle, "heteroswitch", rounds=6)
        assert history.summary["average"] > 0.3
        total_switch1 = sum(record.num_switch1 for record in history.rounds)
        assert total_switch1 >= 0  # switching machinery executed without error

    def test_all_methods_produce_comparable_histories(self, bundle):
        summaries = {}
        for name in ("fedavg", "heteroswitch", "qfedavg", "fedprox"):
            summaries[name] = self.run_strategy(bundle, name, rounds=3).summary
        for name, summary in summaries.items():
            assert 0.0 <= summary["worst_case"] <= summary["average"] <= 1.0, name

    def test_train_loss_decreases_over_rounds(self, bundle):
        history = self.run_strategy(bundle, "fedavg", rounds=8)
        first, last = history.rounds[0].mean_train_loss, history.rounds[-1].mean_train_loss
        assert last < first


class TestReportGeneration:
    def test_experiment_to_report(self, tmp_path):
        from repro.eval.experiments import run_experiment
        from repro.eval.reporting import write_report

        result = run_experiment("fig1", scale="smoke", devices=["Pixel5", "S6"])
        report = write_report([result], tmp_path)
        content = report.read_text()
        assert "fig1" in content
        assert (tmp_path / "fig1.csv").exists()
