"""Tests for the RunStore layout: manifests, hashing, results, versioning."""

import json

import numpy as np
import pytest

from repro.fl.simulation import FLHistory, RoundRecord
from repro.runtime import RunSpec
from repro.store import (
    STORE_FORMAT_VERSION,
    RunStore,
    RunStoreError,
    StoreVersionError,
    env_fingerprint,
    run_fingerprint,
    spec_hash,
)
from repro.store.checkpoint import write_checkpoint


def make_spec(**overrides):
    base = dict(strategy="fedavg", dataset="device_capture",
                dataset_kwargs={"devices": ["Pixel5", "S6", "G7"]},
                scale="smoke", seeds=[0])
    base.update(overrides)
    return RunSpec(**base)


def make_history(rounds=2):
    history = FLHistory(strategy="fedavg")
    for index in range(rounds):
        history.rounds.append(RoundRecord(
            round_index=index, selected_clients=[0, 1],
            mean_train_loss=1.0 / (index + 1), ema_loss=0.9 / (index + 1)))
    history.per_device_metric = {"Pixel5": 0.5, "S6": 0.25}
    return history


class TestSpecHash:
    def test_stable_across_result_neutral_fields(self):
        base = make_spec()
        assert spec_hash(base) == spec_hash(make_spec(name="renamed"))
        assert spec_hash(base) == spec_hash(make_spec(seeds=[3, 4]))
        assert spec_hash(base) == spec_hash(make_spec(executor="thread", max_workers=2))

    def test_sensitive_to_result_affecting_fields(self):
        base = make_spec()
        assert spec_hash(base) != spec_hash(make_spec(strategy="scaffold"))
        assert spec_hash(base) != spec_hash(make_spec(config_overrides={"num_rounds": 3}))
        assert spec_hash(base) != spec_hash(make_spec(sampler="round_robin"))


class TestFingerprints:
    def test_env_fingerprint_fields(self):
        env = env_fingerprint()
        assert {"python", "numpy", "platform", "machine"} <= set(env)

    def test_run_fingerprint_tracks_weights_and_metrics(self):
        state = {"w": np.arange(4.0)}
        metrics = {"Pixel5": 0.5}
        base = run_fingerprint(state, metrics)
        assert base == run_fingerprint({"w": np.arange(4.0)}, {"Pixel5": 0.5})
        assert base != run_fingerprint({"w": np.arange(4.0) + 1e-16}, metrics)
        assert base != run_fingerprint(state, {"Pixel5": 0.25})


class TestRunStore:
    def test_open_run_writes_manifest(self, tmp_path):
        store = RunStore(tmp_path / "store")
        spec = make_spec()
        entry = store.open_run(spec, seed=3, extra={"num_rounds": 2})
        manifest = entry.manifest()
        assert manifest["format_version"] == STORE_FORMAT_VERSION
        assert manifest["seed"] == 3
        assert manifest["status"] == "running"
        assert manifest["spec"] == spec.to_dict()
        assert manifest["spec_hash"] == spec_hash(spec)
        assert manifest["num_rounds"] == 2
        assert {"python", "numpy"} <= set(manifest["env"])

    def test_run_id_distinguishes_seeds_and_strategies(self):
        spec = make_spec()
        assert RunStore.run_id(spec, 0) != RunStore.run_id(spec, 1)
        assert RunStore.run_id(spec, 0) != RunStore.run_id(make_spec(strategy="scaffold"), 0)

    def test_reopen_same_spec_is_idempotent(self, tmp_path):
        store = RunStore(tmp_path / "store")
        spec = make_spec()
        first = store.open_run(spec, seed=0)
        second = store.open_run(spec, seed=0)
        assert first.run_id == second.run_id

    def test_reopen_with_conflicting_spec_raises(self, tmp_path):
        store = RunStore(tmp_path / "store")
        spec = make_spec()
        entry = store.open_run(spec, seed=0)
        manifest = json.loads(entry.manifest_path.read_text())
        manifest["spec_hash"] = "0" * 64
        entry.manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(RunStoreError, match="belongs to a different"):
            store.open_run(spec, seed=0)

    def test_get_unknown_run_lists_available(self, tmp_path):
        store = RunStore(tmp_path / "store")
        store.open_run(make_spec(), seed=0)
        with pytest.raises(RunStoreError, match="available"):
            store.get("nope")

    def test_list_runs_sorted_and_filtered(self, tmp_path):
        store = RunStore(tmp_path / "store")
        store.open_run(make_spec(), seed=1)
        store.open_run(make_spec(), seed=0)
        (tmp_path / "store" / "not-a-run").mkdir()
        ids = [entry.run_id for entry in store.list_runs()]
        assert len(ids) == 2 and ids == sorted(ids)

    def test_empty_store_lists_nothing(self, tmp_path):
        assert RunStore(tmp_path / "missing").list_runs() == []


class TestResults:
    def test_save_result_flips_status_and_fingerprints(self, tmp_path):
        store = RunStore(tmp_path / "store")
        entry = store.open_run(make_spec(), seed=0)
        history = make_history()
        state = {"w": np.arange(3.0)}
        payload = entry.save_result(history, final_state=state)
        assert entry.has_result()
        assert entry.status() == "completed"
        assert payload["fingerprint"] == run_fingerprint(state, history.per_device_metric)
        loaded = entry.load_result()
        assert loaded["metrics"] == history.per_device_metric
        assert FLHistory.from_dict(loaded["history"]).to_dict() == history.to_dict()
        assert entry.manifest()["rounds_completed"] == 2

    def test_save_result_defaults_to_final_checkpoint_state(self, tmp_path):
        store = RunStore(tmp_path / "store")
        entry = store.open_run(make_spec(), seed=0)
        state = {"w": np.arange(3.0)}
        write_checkpoint(entry.checkpoint_dir / "final.npz", {"global_state": state})
        payload = entry.save_result(make_history())
        assert payload["fingerprint"] == run_fingerprint(
            state, make_history().per_device_metric)

    def test_save_result_without_checkpoint_or_state_raises(self, tmp_path):
        store = RunStore(tmp_path / "store")
        entry = store.open_run(make_spec(), seed=0)
        with pytest.raises(RunStoreError, match="final checkpoint"):
            entry.save_result(make_history())

    def test_load_result_missing_raises(self, tmp_path):
        store = RunStore(tmp_path / "store")
        entry = store.open_run(make_spec(), seed=0)
        with pytest.raises(RunStoreError, match="no result"):
            entry.load_result()


class TestCheckpointListing:
    def test_latest_prefers_final_then_highest_round(self, tmp_path):
        store = RunStore(tmp_path / "store")
        entry = store.open_run(make_spec(), seed=0)
        assert entry.latest_checkpoint() is None
        write_checkpoint(entry.checkpoint_dir / "round_00002.npz", {"next_round": 2})
        write_checkpoint(entry.checkpoint_dir / "round_00010.npz", {"next_round": 10})
        assert entry.latest_checkpoint().name == "round_00010.npz"
        write_checkpoint(entry.checkpoint_dir / "final.npz", {"next_round": 12})
        assert entry.latest_checkpoint().name == "final.npz"
        assert [p.name for p in entry.checkpoints()] == \
            ["round_00002.npz", "round_00010.npz"]
        assert [p.name for p in entry.checkpoint_files()] == \
            ["round_00002.npz", "round_00010.npz", "final.npz"]

    def test_load_checkpoint_none_when_empty(self, tmp_path):
        store = RunStore(tmp_path / "store")
        entry = store.open_run(make_spec(), seed=0)
        assert entry.load_checkpoint() is None


class TestVersioning:
    def test_stale_manifest_version_refused_with_clear_error(self, tmp_path):
        store = RunStore(tmp_path / "store")
        spec = make_spec()
        entry = store.open_run(spec, seed=0)
        manifest = json.loads(entry.manifest_path.read_text())
        manifest["format_version"] = 0
        manifest["repro_version"] = "0.1.0"
        entry.manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(StoreVersionError) as excinfo:
            store.open_run(spec, seed=0)
        message = str(excinfo.value)
        assert "format version 0" in message
        assert "0.1.0" in message
        assert "Refusing to resume" in message

    def test_stale_result_version_refused(self, tmp_path):
        store = RunStore(tmp_path / "store")
        entry = store.open_run(make_spec(), seed=0)
        entry.save_result(make_history(), final_state={"w": np.zeros(1)})
        result = json.loads(entry.result_path.read_text())
        result["format_version"] = 99
        entry.result_path.write_text(json.dumps(result))
        with pytest.raises(StoreVersionError, match="format version"):
            entry.load_result()
