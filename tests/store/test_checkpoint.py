"""Tests for the npz checkpoint codec: exact round trips, atomicity, versioning."""

import json
import os

import numpy as np
import pytest

from repro.store.checkpoint import (
    CHECKPOINT_FORMAT_VERSION,
    CheckpointError,
    CheckpointVersionError,
    read_checkpoint,
    write_checkpoint,
)


def roundtrip(tmp_path, tree, extra_meta=None):
    path = tmp_path / "ckpt.npz"
    write_checkpoint(path, tree, extra_meta=extra_meta)
    return read_checkpoint(path)


class TestRoundTrip:
    def test_scalars_and_containers(self, tmp_path):
        tree = {
            "int": 3,
            "float": 0.1 + 0.2,
            "bool": True,
            "none": None,
            "string": "hello",
            "list": [1, 2.5, "x", None],
            "nested": {"a": {"b": [{"c": 1}]}},
        }
        loaded, _ = roundtrip(tmp_path, tree)
        assert loaded == tree

    def test_floats_round_trip_bit_exactly(self, tmp_path):
        values = [0.1, 1e-300, 1.7976931348623157e308, -0.0, 3.141592653589793]
        loaded, _ = roundtrip(tmp_path, {"values": values})
        assert [v.hex() if isinstance(v, float) else v for v in loaded["values"]] == \
            [v.hex() for v in values]

    def test_arrays_preserve_dtype_shape_and_bytes(self, tmp_path):
        tree = {
            "f64": np.random.default_rng(0).normal(size=(3, 4)),
            "f32": np.arange(6, dtype=np.float32).reshape(2, 3),
            "i64": np.array([[1, -2], [3, 4]], dtype=np.int64),
            "u8": np.arange(10, dtype=np.uint8),
            "empty": np.zeros((0, 5)),
            "noncontig": np.arange(16.0).reshape(4, 4)[:, ::2],
        }
        loaded, _ = roundtrip(tmp_path, tree)
        assert loaded.keys() == tree.keys()
        for key, value in tree.items():
            assert loaded[key].dtype == value.dtype
            assert loaded[key].shape == value.shape
            assert loaded[key].tobytes() == np.ascontiguousarray(value).tobytes()

    def test_nan_and_inf_arrays_survive(self, tmp_path):
        tree = {"w": np.array([np.nan, np.inf, -np.inf, -0.0])}
        loaded, _ = roundtrip(tmp_path, tree)
        assert loaded["w"].tobytes() == tree["w"].tobytes()

    def test_integer_dict_keys_survive(self, tmp_path):
        tree = {"client_storage": {0: {"c_i": np.ones(2)}, 7: {"c_i": np.zeros(2)}}}
        loaded, _ = roundtrip(tmp_path, tree)
        assert set(loaded["client_storage"]) == {0, 7}
        assert all(isinstance(key, int) for key in loaded["client_storage"])

    def test_numpy_scalars_round_trip_with_dtype(self, tmp_path):
        loaded, _ = roundtrip(tmp_path, {"x": np.float32(1.5), "n": np.int64(-3)})
        assert loaded["x"].dtype == np.float32 and float(loaded["x"]) == 1.5
        assert loaded["n"].dtype == np.int64 and int(loaded["n"]) == -3

    def test_extra_meta_round_trips(self, tmp_path):
        _, meta = roundtrip(tmp_path, {"x": 1}, extra_meta={"round": 5})
        assert meta["round"] == 5
        assert meta["format_version"] == CHECKPOINT_FORMAT_VERSION
        assert meta["repro_version"]


class TestRejections:
    def test_unsupported_leaf_type_raises(self, tmp_path):
        with pytest.raises(CheckpointError, match="cannot checkpoint"):
            write_checkpoint(tmp_path / "x.npz", {"bad": object()})

    def test_non_scalar_dict_key_raises(self, tmp_path):
        with pytest.raises(CheckpointError, match="keys must be str or int"):
            write_checkpoint(tmp_path / "x.npz", {("a", 1): 2})

    def test_not_a_checkpoint_raises(self, tmp_path):
        path = tmp_path / "plain.npz"
        np.savez(path, w=np.zeros(3))
        with pytest.raises(CheckpointError, match="not a repro checkpoint"):
            read_checkpoint(path)


class TestVersioning:
    def test_incompatible_format_version_refused(self, tmp_path):
        path = tmp_path / "old.npz"
        meta = {"format_version": CHECKPOINT_FORMAT_VERSION + 1,
                "repro_version": "9.9.9", "meta": {}, "state": {"__dict__": []}}
        blob = np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8)
        np.savez(path, **{"__checkpoint_meta__": blob})
        with pytest.raises(CheckpointVersionError) as excinfo:
            read_checkpoint(path)
        message = str(excinfo.value)
        assert "format version" in message and "9.9.9" in message


class TestAtomicity:
    def test_failed_write_leaves_no_temp_file(self, tmp_path):
        path = tmp_path / "ckpt.npz"
        with pytest.raises(CheckpointError):
            write_checkpoint(path, {"bad": object()})
        assert list(tmp_path.iterdir()) == []

    def test_overwrite_is_replace_not_truncate(self, tmp_path):
        path = tmp_path / "ckpt.npz"
        write_checkpoint(path, {"round": 1})
        write_checkpoint(path, {"round": 2})
        loaded, _ = read_checkpoint(path)
        assert loaded == {"round": 2}
        assert not [p for p in os.listdir(tmp_path) if ".tmp." in p]
