"""Resume-equivalence acceptance tests.

The headline guarantee of :mod:`repro.store`: kill a run at any checkpoint
boundary, resume it, and the final weights are **bitwise identical**
(:func:`states_equal`) and the metrics equal to the uninterrupted run — for
every strategy, under serial and thread executors, and even when the
checkpoint was written under a different executor than the resume.

Checkpoints are written at the end of each round, so the snapshot at round
``r`` is exactly the state of a run killed anywhere between rounds ``r`` and
``r + 1`` — restoring from it and continuing replays the remaining rounds.
"""

import dataclasses

import numpy as np
import pytest

from repro.core.ema import EMALossTracker
from repro.fl.callbacks import CheckpointCallback
from repro.fl.config import FLConfig
from repro.fl.execution import create_executor
from repro.fl.simulation import FederatedSimulation
from repro.fl.strategies import create_strategy
from repro.nn.serialization import states_equal
from repro.store.checkpoint import read_checkpoint

ALL_STRATEGIES = ["fedavg", "fedprox", "qfedavg", "scaffold", "heteroswitch"]
EXECUTORS = ["serial", "thread"]

NUM_ROUNDS = 3


@pytest.fixture
def resume_config(tiny_fl_config) -> FLConfig:
    return dataclasses.replace(tiny_fl_config, num_rounds=NUM_ROUNDS)


def build_sim(strategy_name, bundle, clients, config, model_fn,
              executor, callbacks=()):
    return FederatedSimulation(
        model_fn, clients, bundle.test, create_strategy(strategy_name), config,
        callbacks=list(callbacks), executor=executor,
    )


def reference_run(strategy_name, bundle, clients, config, model_fn,
                  executor_name, checkpoint_dir):
    """Uninterrupted run that also drops a checkpoint after every round."""
    with create_executor(executor_name) as executor:
        sim = build_sim(strategy_name, bundle, clients, config, model_fn, executor,
                        callbacks=[CheckpointCallback(checkpoint_dir, every=1)])
        history = sim.run()
    return history, sim.global_state


def resumed_run(strategy_name, bundle, clients, config, model_fn,
                executor_name, checkpoint_path):
    """Fresh simulation restored from ``checkpoint_path``, run to completion."""
    snapshot, _ = read_checkpoint(checkpoint_path)
    with create_executor(executor_name) as executor:
        sim = build_sim(strategy_name, bundle, clients, config, model_fn, executor)
        sim.restore(snapshot)
        history = sim.run()
    return history, sim.global_state


def assert_resume_equivalent(reference, candidate):
    ref_history, ref_state = reference
    cand_history, cand_state = candidate
    assert states_equal(ref_state, cand_state)
    assert cand_history.per_device_metric == ref_history.per_device_metric
    assert [r.to_dict() for r in cand_history.rounds] == \
        [r.to_dict() for r in ref_history.rounds]
    assert cand_history.metadata == ref_history.metadata


class TestResumeEquivalence:
    """Acceptance: interrupt at every boundary x 5 strategies x 2 executors."""

    @pytest.mark.parametrize("executor_name", EXECUTORS)
    @pytest.mark.parametrize("strategy_name", ALL_STRATEGIES)
    def test_every_boundary_bitwise_identical(self, strategy_name, executor_name,
                                              tiny_bundle, tiny_clients,
                                              resume_config, tiny_model_fn,
                                              tmp_path):
        reference = reference_run(strategy_name, tiny_bundle, tiny_clients,
                                  resume_config, tiny_model_fn, executor_name,
                                  tmp_path)
        for boundary in range(1, NUM_ROUNDS + 1):
            candidate = resumed_run(
                strategy_name, tiny_bundle, tiny_clients, resume_config,
                tiny_model_fn, executor_name,
                tmp_path / f"round_{boundary:05d}.npz",
            )
            assert_resume_equivalent(reference, candidate)

    @pytest.mark.parametrize("strategy_name", ALL_STRATEGIES)
    def test_cross_executor_resume(self, strategy_name, tiny_bundle, tiny_clients,
                                   resume_config, tiny_model_fn, tmp_path):
        """A checkpoint written under the serial executor resumes under the
        thread executor (and vice versa) with identical results: the run key
        deliberately excludes the execution backend."""
        reference = reference_run(strategy_name, tiny_bundle, tiny_clients,
                                  resume_config, tiny_model_fn, "serial", tmp_path)
        candidate = resumed_run(strategy_name, tiny_bundle, tiny_clients,
                                resume_config, tiny_model_fn, "thread",
                                tmp_path / "round_00001.npz")
        assert_resume_equivalent(reference, candidate)

    def test_final_checkpoint_resume_is_evaluation_only(self, tiny_bundle,
                                                        tiny_clients, resume_config,
                                                        tiny_model_fn, tmp_path):
        """Resuming from final.npz (crash after the last checkpoint but before
        the result was recorded) re-evaluates without training any round."""
        reference = reference_run("fedavg", tiny_bundle, tiny_clients,
                                  resume_config, tiny_model_fn, "serial", tmp_path)
        candidate = resumed_run("fedavg", tiny_bundle, tiny_clients, resume_config,
                                tiny_model_fn, "serial", tmp_path / "final.npz")
        assert_resume_equivalent(reference, candidate)


class TestEarlyStoppingResume:
    """Resume must reproduce early-stopped runs too: the restored history
    re-warms the patience counters, including the already-exhausted case."""

    def _callbacks(self):
        from repro.fl.callbacks import EarlyStopping

        # patience=1 with a huge min_delta: round 0 sets the best, round 1 is
        # "no improvement" and stops the run — deterministically, whatever the
        # actual losses are.
        return [EarlyStopping(monitor="mean_train_loss", patience=1, min_delta=10.0)]

    def _run(self, bundle, clients, config, model_fn, checkpoint_dir=None,
             checkpoint_path=None):
        callbacks = list(self._callbacks())
        if checkpoint_dir is not None:
            callbacks.append(CheckpointCallback(checkpoint_dir, every=1))
        with create_executor("serial") as executor:
            sim = build_sim("fedavg", bundle, clients, config, model_fn, executor,
                            callbacks=callbacks)
            if checkpoint_path is not None:
                snapshot, _ = read_checkpoint(checkpoint_path)
                sim.restore(snapshot)
            history = sim.run()
        return history, sim.global_state

    def test_resume_before_stop_round_reproduces_the_stop(self, tiny_bundle,
                                                          tiny_clients, resume_config,
                                                          tiny_model_fn, tmp_path):
        reference = self._run(tiny_bundle, tiny_clients, resume_config,
                              tiny_model_fn, checkpoint_dir=tmp_path)
        ref_history = reference[0]
        assert ref_history.metadata["early_stopped_at"] == 1
        assert len(ref_history.rounds) == 2  # stopped before round 2
        candidate = self._run(tiny_bundle, tiny_clients, resume_config, tiny_model_fn,
                              checkpoint_path=tmp_path / "round_00001.npz")
        assert_resume_equivalent(reference, candidate)

    def test_resume_after_stop_round_trains_no_further(self, tiny_bundle,
                                                       tiny_clients, resume_config,
                                                       tiny_model_fn, tmp_path):
        """Killed after the stopping round checkpointed but before the result
        landed: the replayed history has already exhausted the patience, so
        the resumed run must evaluate and finish without another round."""
        reference = self._run(tiny_bundle, tiny_clients, resume_config,
                              tiny_model_fn, checkpoint_dir=tmp_path)
        candidate = self._run(tiny_bundle, tiny_clients, resume_config, tiny_model_fn,
                              checkpoint_path=tmp_path / "round_00002.npz")
        assert len(candidate[0].rounds) == 2  # no extra round trained
        assert_resume_equivalent(reference, candidate)


class TestSnapshotRestoreGuards:
    def test_snapshot_requires_active_run(self, tiny_bundle, tiny_clients,
                                          resume_config, tiny_model_fn):
        sim = build_sim("fedavg", tiny_bundle, tiny_clients, resume_config,
                        tiny_model_fn, "serial")
        with pytest.raises(RuntimeError, match="active or completed run"):
            sim.snapshot()

    def test_restore_rejects_strategy_mismatch(self, tiny_bundle, tiny_clients,
                                               resume_config, tiny_model_fn,
                                               tmp_path):
        reference_run("fedavg", tiny_bundle, tiny_clients, resume_config,
                      tiny_model_fn, "serial", tmp_path)
        snapshot, _ = read_checkpoint(tmp_path / "round_00001.npz")
        sim = build_sim("scaffold", tiny_bundle, tiny_clients, resume_config,
                        tiny_model_fn, "serial")
        with pytest.raises(ValueError, match="strategy 'fedavg'"):
            sim.restore(snapshot)

    def test_restore_rejects_seed_mismatch(self, tiny_bundle, tiny_clients,
                                           resume_config, tiny_model_fn, tmp_path):
        reference_run("fedavg", tiny_bundle, tiny_clients, resume_config,
                      tiny_model_fn, "serial", tmp_path)
        snapshot, _ = read_checkpoint(tmp_path / "round_00001.npz")
        other = dataclasses.replace(resume_config, seed=9)
        sim = build_sim("fedavg", tiny_bundle, tiny_clients, other,
                        tiny_model_fn, "serial")
        with pytest.raises(ValueError, match="seed"):
            sim.restore(snapshot)

    def test_run_rejects_checkpoint_beyond_round_budget(self, tiny_bundle,
                                                        tiny_clients, resume_config,
                                                        tiny_model_fn, tmp_path):
        reference_run("fedavg", tiny_bundle, tiny_clients, resume_config,
                      tiny_model_fn, "serial", tmp_path)
        snapshot, _ = read_checkpoint(tmp_path / f"round_{NUM_ROUNDS:05d}.npz")
        sim = build_sim("fedavg", tiny_bundle, tiny_clients, resume_config,
                        tiny_model_fn, "serial")
        sim.restore(snapshot)
        with pytest.raises(ValueError, match="only 1 round"):
            sim.run(num_rounds=1)
        # The failed attempt must not discard the restore: retrying with a
        # sufficient budget still resumes instead of restarting from round 0.
        history = sim.run(num_rounds=NUM_ROUNDS)
        assert len(history.rounds) == NUM_ROUNDS


class TestStrategyStateContract:
    def test_scaffold_state_round_trips_control_variates(self, tiny_bundle,
                                                         tiny_clients, resume_config,
                                                         tiny_model_fn):
        with create_executor("serial") as executor:
            sim = build_sim("scaffold", tiny_bundle, tiny_clients, resume_config,
                            tiny_model_fn, executor)
            sim.run()
        state = sim.strategy.state_dict(sim.context)
        assert "scaffold_c" in state["server_storage"]
        assert state["client_storage"]

        fresh = build_sim("scaffold", tiny_bundle, tiny_clients, resume_config,
                          tiny_model_fn, "serial")
        fresh.strategy.load_state_dict(fresh.context, state)
        assert states_equal(fresh.context.server_storage["scaffold_c"],
                            sim.context.server_storage["scaffold_c"])
        assert set(fresh.context.client_storage) == set(sim.context.client_storage)
        for client_id, storage in sim.context.client_storage.items():
            assert states_equal(fresh.context.client_storage[client_id]["c_i"],
                                storage["c_i"])

    def test_load_state_dict_coerces_string_client_ids(self, tiny_bundle,
                                                       tiny_clients, resume_config,
                                                       tiny_model_fn):
        sim = build_sim("fedavg", tiny_bundle, tiny_clients, resume_config,
                        tiny_model_fn, "serial")
        sim.strategy.load_state_dict(
            sim.context, {"server_storage": {}, "client_storage": {"3": {"k": 1}}})
        assert sim.context.client_storage == {3: {"k": 1}}

    def test_default_state_dict_copies_do_not_alias(self, tiny_bundle, tiny_clients,
                                                    resume_config, tiny_model_fn):
        sim = build_sim("fedavg", tiny_bundle, tiny_clients, resume_config,
                        tiny_model_fn, "serial")
        sim.context.server_storage["w"] = np.zeros(2)
        state = sim.strategy.state_dict(sim.context)
        state["server_storage"]["w"][...] = 7.0
        assert np.all(sim.context.server_storage["w"] == 0.0)


class TestEMAStateDict:
    def test_round_trip_exact(self):
        tracker = EMALossTracker(alpha=0.7)
        for value in (1.0, 0.5, 0.30000000000000004):
            tracker.update(value)
        clone = EMALossTracker(alpha=0.7)
        clone.load_state_dict(tracker.state_dict())
        assert clone.value == tracker.value
        assert clone.history == tracker.history

    def test_fresh_tracker_state(self):
        tracker = EMALossTracker()
        clone = EMALossTracker()
        clone.update(1.0)
        clone.load_state_dict(tracker.state_dict())
        assert clone.value is None and clone.history == []
