"""Tests for state-dict arithmetic and flattening (the FL weight-exchange layer)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn.engine import engine_mode
from repro.nn.layers import Linear, Sequential, ReLU
from repro.nn.models import MODEL_REGISTRY, create_model
from repro.nn.serialization import (
    StateLayout,
    StreamingAverager,
    add_states,
    average_states,
    clone_state,
    get_weights,
    load_state,
    save_state,
    scale_state,
    set_weights,
    state_dict_to_vector,
    state_fingerprint,
    state_norm,
    states_equal,
    subtract_states,
    vector_to_state_dict,
    zeros_like_state,
)

# Constructor kwargs producing the smallest sensible instance of each
# registered model (mirrors make_model_factory's dispatch).
_MODEL_KWARGS = {
    "simple_mlp": dict(input_dim=3 * 8 * 8, num_classes=3, seed=0),
    "linear": dict(input_dim=3 * 8 * 8, num_classes=3, seed=0),
    "simple_cnn": dict(num_classes=3, in_channels=3, image_size=8, seed=0),
    "multilabel_cnn": dict(num_labels=3, in_channels=3, image_size=8, seed=0),
    "ecg_regressor": dict(window_size=16, seed=0),
    "mobilenetv3_small": dict(num_classes=3, in_channels=3, width_mult=0.5, seed=0),
    "shufflenet_v2_x0_5": dict(num_classes=3, in_channels=3, width_mult=0.5, seed=0),
    "squeezenet1_1": dict(num_classes=3, in_channels=3, width_mult=0.5, seed=0),
}


@pytest.fixture
def model():
    return Sequential(Linear(4, 8, rng=np.random.default_rng(0)), ReLU(),
                      Linear(8, 2, rng=np.random.default_rng(1)))


class TestGetSetWeights:
    def test_round_trip(self, model):
        state = get_weights(model)
        other = Sequential(Linear(4, 8, rng=np.random.default_rng(7)), ReLU(),
                           Linear(8, 2, rng=np.random.default_rng(8)))
        set_weights(other, state)
        for key, value in get_weights(other).items():
            np.testing.assert_allclose(value, state[key])

    def test_get_weights_returns_copies(self, model):
        state = get_weights(model)
        state["layer0.weight"][...] = 42.0
        assert not np.allclose(get_weights(model)["layer0.weight"], 42.0)


class TestVectorConversion:
    def test_round_trip(self, model):
        state = get_weights(model)
        vector = state_dict_to_vector(state)
        rebuilt = vector_to_state_dict(vector, state)
        for key in state:
            np.testing.assert_allclose(rebuilt[key], state[key])

    def test_vector_length(self, model):
        state = get_weights(model)
        assert state_dict_to_vector(state).size == sum(v.size for v in state.values())

    def test_length_mismatch_raises(self, model):
        state = get_weights(model)
        with pytest.raises(ValueError):
            vector_to_state_dict(np.zeros(3), state)

    def test_empty_state(self):
        assert state_dict_to_vector({}).size == 0


class TestStateArithmetic:
    def test_add_subtract_inverse(self, model):
        a = get_weights(model)
        b = scale_state(a, 0.5)
        np.testing.assert_allclose(
            state_dict_to_vector(subtract_states(add_states(a, b), b)),
            state_dict_to_vector(a),
        )

    def test_zeros_like(self, model):
        zeros = zeros_like_state(get_weights(model))
        assert all(np.all(value == 0) for value in zeros.values())

    def test_scale(self):
        state = {"w": np.array([2.0, 4.0])}
        np.testing.assert_allclose(scale_state(state, 0.5)["w"], [1.0, 2.0])

    def test_mismatched_keys_raise(self):
        with pytest.raises(KeyError):
            add_states({"a": np.zeros(2)}, {"b": np.zeros(2)})

    def test_state_norm(self):
        state = {"a": np.array([3.0]), "b": np.array([4.0])}
        assert state_norm(state) == pytest.approx(5.0)


class TestAverageStates:
    def test_uniform_average(self):
        states = [{"w": np.array([0.0])}, {"w": np.array([2.0])}]
        np.testing.assert_allclose(average_states(states)["w"], [1.0])

    def test_weighted_average(self):
        states = [{"w": np.array([0.0])}, {"w": np.array([10.0])}]
        np.testing.assert_allclose(average_states(states, [3, 1])["w"], [2.5])

    def test_weights_normalized(self):
        states = [{"w": np.array([1.0])}, {"w": np.array([3.0])}]
        np.testing.assert_allclose(
            average_states(states, [10, 10])["w"], average_states(states, [1, 1])["w"]
        )

    def test_single_state_identity(self):
        state = {"w": np.array([1.5, 2.5])}
        np.testing.assert_allclose(average_states([state])["w"], state["w"])

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            average_states([])

    def test_bad_weights_length(self):
        with pytest.raises(ValueError):
            average_states([{"w": np.zeros(1)}], [1, 2])

    def test_zero_weights_rejected(self):
        with pytest.raises(ValueError):
            average_states([{"w": np.zeros(1)}, {"w": np.ones(1)}], [0, 0])

    def test_nan_weight_rejected(self):
        """Regression: NaN weights used to sail past the ``total <= 0`` check
        (``nan <= 0`` is False) and silently poison every averaged weight."""
        states = [{"w": np.zeros(1)}, {"w": np.ones(1)}]
        with pytest.raises(ValueError, match="finite"):
            average_states(states, [np.nan, 1.0])

    def test_infinite_weight_rejected(self):
        states = [{"w": np.zeros(1)}, {"w": np.ones(1)}]
        with pytest.raises(ValueError, match="finite"):
            average_states(states, [np.inf, 1.0])

    def test_negative_weight_rejected(self):
        """Regression: weights like [-1, 3] summed positive and passed the old
        guard, producing an 'average' outside the convex hull of the states."""
        states = [{"w": np.zeros(1)}, {"w": np.ones(1)}]
        with pytest.raises(ValueError, match="non-negative"):
            average_states(states, [-1.0, 3.0])

    @pytest.mark.parametrize("engine", ["flat", "reference"])
    def test_weight_validation_parity_across_engines(self, engine):
        """Both engines refuse the same bad weights with the same error type."""
        states = [{"w": np.zeros(1)}, {"w": np.ones(1)}]
        with engine_mode(engine):
            for bad in ([np.nan, 1.0], [-1.0, 3.0], [0.0, 0.0], [1.0]):
                with pytest.raises(ValueError):
                    average_states(states, bad)

    @given(st.lists(st.floats(-100, 100), min_size=2, max_size=6))
    @settings(max_examples=30, deadline=None)
    def test_average_between_min_and_max(self, values):
        states = [{"w": np.array([v])} for v in values]
        avg = average_states(states)["w"][0]
        assert min(values) - 1e-9 <= avg <= max(values) + 1e-9

    @given(st.lists(st.floats(-10, 10), min_size=1, max_size=5),
           st.floats(0.1, 5.0))
    @settings(max_examples=30, deadline=None)
    def test_average_of_identical_states_is_identity(self, values, weight):
        state = {"w": np.asarray(values)}
        avg = average_states([state, state, state], [weight, weight, weight])
        np.testing.assert_allclose(avg["w"], state["w"], atol=1e-9)


class TestStateLayoutValidation:
    def test_pack_rejects_same_size_wrong_shape(self):
        """Regression: pack() used to reshape(-1) blindly, so a transposed
        (same-size) array flattened in the wrong element order and silently
        corrupted the flat reduction."""
        layout = StateLayout({"w": np.zeros((2, 3))})
        with pytest.raises(ValueError, match="shape mismatch"):
            layout.pack({"w": np.zeros((3, 2))})

    def test_pack_accepts_recorded_shape(self):
        layout = StateLayout({"w": np.arange(6.0).reshape(2, 3)})
        vector = layout.pack({"w": np.arange(6.0).reshape(2, 3)})
        np.testing.assert_array_equal(vector, np.arange(6.0))

    @pytest.mark.parametrize("engine", ["flat", "reference"])
    def test_refusal_parity_with_reference(self, engine):
        """Flat (layout-packed) and reference (dict-op) averaging refuse the
        same shape-mismatched input — neither silently mis-reduces."""
        good = {"w": np.zeros((2, 3))}
        bad = {"w": np.ones((3, 2))}
        with engine_mode(engine):
            with pytest.raises(ValueError):
                average_states([good, bad])


class TestStreamingAverager:
    def _states(self, count, size=5):
        rng = np.random.default_rng(42)
        return [{"w": rng.normal(size=size), "b": rng.normal(size=(2, 2))}
                for _ in range(count)]

    @pytest.mark.parametrize("engine", ["flat", "reference"])
    @pytest.mark.parametrize("weights", [None, [1, 2, 3, 4]])
    def test_bitwise_matches_average_states(self, engine, weights):
        states = self._states(4)
        with engine_mode(engine):
            expected = average_states(states, weights)
            averager = StreamingAverager(len(states), weights)
            for state in states:
                averager.add(state)
            assert states_equal(averager.finalize(), expected)

    def test_too_many_states_rejected(self):
        averager = StreamingAverager(1)
        averager.add({"w": np.zeros(2)})
        with pytest.raises(ValueError):
            averager.add({"w": np.zeros(2)})

    def test_finalize_before_complete_rejected(self):
        averager = StreamingAverager(2)
        averager.add({"w": np.zeros(2)})
        with pytest.raises(ValueError, match="expected 2"):
            averager.finalize()

    def test_weight_validation_up_front(self):
        with pytest.raises(ValueError, match="finite"):
            StreamingAverager(2, [np.nan, 1.0])
        with pytest.raises(ValueError, match="non-negative"):
            StreamingAverager(2, [-1.0, 2.0])


class TestCloneState:
    def test_copies_are_independent_and_contiguous(self):
        state = {"w": np.arange(8.0).reshape(2, 4)[:, ::2]}  # non-contiguous view
        cloned = clone_state(state)
        assert cloned["w"].flags["C_CONTIGUOUS"]
        assert not np.shares_memory(cloned["w"], state["w"])
        cloned["w"][0, 0] = 99.0
        assert state["w"][0, 0] == 0.0


class TestSaveLoadState:
    def test_every_registered_model_round_trips(self, tmp_path):
        """Acceptance: npz round trip preserves dtype, shape and bytes for the
        full state (parameters + buffers) of every model in the registry."""
        assert set(_MODEL_KWARGS) == set(MODEL_REGISTRY), \
            "update _MODEL_KWARGS when registering a new model"
        for name, kwargs in _MODEL_KWARGS.items():
            state = get_weights(create_model(name, **kwargs))
            path = tmp_path / f"{name}.npz"
            save_state(path, state)
            loaded = load_state(path)
            assert list(loaded) == list(state), name
            for key in state:
                assert loaded[key].dtype == state[key].dtype, (name, key)
                assert loaded[key].shape == state[key].shape, (name, key)
            assert states_equal(state, loaded), name

    def test_loaded_state_drives_a_model(self, model, tmp_path):
        path = tmp_path / "model.npz"
        save_state(path, get_weights(model))
        other = Sequential(Linear(4, 8, rng=np.random.default_rng(9)), ReLU(),
                           Linear(8, 2, rng=np.random.default_rng(10)))
        set_weights(other, load_state(path))
        assert states_equal(get_weights(other), get_weights(model))

    def test_atomic_write_leaves_no_temp_files(self, model, tmp_path):
        path = tmp_path / "model.npz"
        save_state(path, get_weights(model))
        save_state(path, get_weights(model))  # overwrite goes through replace
        assert [p.name for p in tmp_path.iterdir()] == ["model.npz"]

    def test_non_string_keys_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="non-empty strings"):
            save_state(tmp_path / "bad.npz", {3: np.zeros(1)})

    def test_nan_and_negative_zero_survive(self, tmp_path):
        state = {"w": np.array([np.nan, -0.0, np.inf])}
        save_state(tmp_path / "s.npz", state)
        assert states_equal(state, load_state(tmp_path / "s.npz"))


class TestStateFingerprint:
    def test_equal_iff_states_equal(self, model):
        state = get_weights(model)
        assert state_fingerprint(state) == state_fingerprint(clone_state(state))
        nudged = clone_state(state)
        key = next(iter(nudged))
        nudged[key].flat[0] = np.nextafter(nudged[key].flat[0], np.inf)
        assert state_fingerprint(state) != state_fingerprint(nudged)

    def test_sensitive_to_shape_dtype_and_keys(self):
        base = {"w": np.zeros(4)}
        assert state_fingerprint(base) != state_fingerprint({"w": np.zeros((2, 2))})
        assert state_fingerprint(base) != state_fingerprint(
            {"w": np.zeros(4, dtype=np.float32)})
        assert state_fingerprint(base) != state_fingerprint({"v": np.zeros(4)})

    def test_key_order_irrelevant(self):
        a = {"a": np.ones(2), "b": np.zeros(2)}
        b = {"b": np.zeros(2), "a": np.ones(2)}
        assert state_fingerprint(a) == state_fingerprint(b)


class TestStatesEqual:
    def test_equal_states(self):
        a = {"w": np.array([1.0, 2.0]), "b": np.zeros(3)}
        assert states_equal(a, clone_state(a))

    def test_value_difference_detected(self):
        a = {"w": np.array([1.0])}
        assert not states_equal(a, {"w": np.array([np.nextafter(1.0, 2.0)])})
        assert not states_equal(a, {"w": np.array([1.0, 1.0])})
        assert not states_equal(a, {"v": np.array([1.0])})

    def test_bitwise_semantics(self):
        # Equal NaN payloads are bit-identical; +0.0 and -0.0 are not.
        assert states_equal({"w": np.array([np.nan])}, {"w": np.array([np.nan])})
        assert not states_equal({"w": np.array([0.0])}, {"w": np.array([-0.0])})

    def test_dtype_mismatch_detected(self):
        assert not states_equal({"w": np.zeros(2, dtype=np.float64)},
                                {"w": np.zeros(2, dtype=np.float32)})
