"""Tests for the model zoo: shapes, trainability, registry, determinism."""

import numpy as np
import pytest

from repro.nn import functional as F
from repro.nn.models import (
    MODEL_REGISTRY,
    ECGRegressor,
    LinearClassifier,
    MobileNetV3Small,
    MultiLabelCNN,
    ShuffleNetV2,
    SimpleCNN,
    SimpleMLP,
    SqueezeNet,
    create_model,
)
from repro.nn.optim import SGD
from repro.nn.tensor import Tensor


IMAGE_MODELS = [MobileNetV3Small, ShuffleNetV2, SqueezeNet]


class TestImageModels:
    @pytest.mark.parametrize("model_cls", IMAGE_MODELS)
    def test_output_shape(self, model_cls):
        model = model_cls(num_classes=7)
        out = model(Tensor(np.random.default_rng(0).normal(size=(2, 3, 32, 32))))
        assert out.shape == (2, 7)

    @pytest.mark.parametrize("model_cls", IMAGE_MODELS)
    def test_works_on_16px_input(self, model_cls):
        model = model_cls(num_classes=4)
        out = model(Tensor(np.random.default_rng(0).normal(size=(1, 3, 16, 16))))
        assert out.shape == (1, 4)

    @pytest.mark.parametrize("model_cls", IMAGE_MODELS)
    def test_deterministic_initialization(self, model_cls):
        a = model_cls(num_classes=5, seed=3)
        b = model_cls(num_classes=5, seed=3)
        for (name_a, pa), (name_b, pb) in zip(a.named_parameters(), b.named_parameters()):
            assert name_a == name_b
            np.testing.assert_allclose(pa.data, pb.data)

    @pytest.mark.parametrize("model_cls", IMAGE_MODELS)
    def test_different_seeds_differ(self, model_cls):
        a = model_cls(num_classes=5, seed=0)
        b = model_cls(num_classes=5, seed=1)
        diffs = [np.abs(pa.data - pb.data).max()
                 for pa, pb in zip(a.parameters(), b.parameters()) if pa.size > 1]
        assert max(diffs) > 0

    @pytest.mark.parametrize("model_cls", IMAGE_MODELS)
    def test_single_training_step_changes_weights(self, model_cls):
        model = model_cls(num_classes=3)
        before = {name: p.data.copy() for name, p in model.named_parameters()}
        x = Tensor(np.random.default_rng(0).normal(size=(4, 3, 16, 16)))
        loss = F.cross_entropy(model(x), np.array([0, 1, 2, 0]))
        loss.backward()
        SGD(model.parameters(), lr=0.1).step()
        changed = any(not np.allclose(before[name], p.data)
                      for name, p in model.named_parameters())
        assert changed

    @pytest.mark.parametrize("model_cls", IMAGE_MODELS)
    def test_state_dict_round_trip(self, model_cls):
        src = model_cls(num_classes=4, seed=0)
        dst = model_cls(num_classes=4, seed=9)
        dst.load_state_dict(src.state_dict())
        x = Tensor(np.random.default_rng(1).normal(size=(1, 3, 16, 16)))
        src.eval(), dst.eval()
        np.testing.assert_allclose(src(x).data, dst(x).data, atol=1e-10)

    def test_mobilenet_width_mult(self):
        small = MobileNetV3Small(num_classes=4, width_mult=0.5)
        large = MobileNetV3Small(num_classes=4, width_mult=1.0)
        assert small.num_parameters() < large.num_parameters()

    def test_mobilenet_rejects_tiny_width(self):
        with pytest.raises(ValueError):
            MobileNetV3Small(width_mult=0.1)

    def test_squeezenet_has_no_batchnorm(self):
        from repro.nn.layers import BatchNorm2d

        model = SqueezeNet(num_classes=4)
        assert not any(isinstance(m, BatchNorm2d) for m in model.modules())

    def test_mobilenet_smaller_than_naive_cnn_param_budget(self):
        # Mobile-friendly models should stay small (well under 100k params here).
        assert MobileNetV3Small(num_classes=12).num_parameters() < 100_000


class TestAuxModels:
    def test_simple_cnn_shapes(self):
        model = SimpleCNN(num_classes=10, image_size=16)
        out = model(Tensor(np.zeros((3, 3, 16, 16))))
        assert out.shape == (3, 10)

    def test_simple_mlp_flattens_images(self):
        model = SimpleMLP(3 * 8 * 8, 5)
        out = model(Tensor(np.zeros((2, 3, 8, 8))))
        assert out.shape == (2, 5)

    def test_linear_classifier(self):
        model = LinearClassifier(12, 3)
        assert model(Tensor(np.zeros((4, 12)))).shape == (4, 3)

    def test_ecg_regressor_output(self):
        model = ECGRegressor(window_size=64)
        out = model(Tensor(np.zeros((5, 64))))
        assert out.shape == (5, 1)

    def test_multilabel_cnn_output(self):
        model = MultiLabelCNN(num_labels=6, image_size=16)
        out = model(Tensor(np.zeros((2, 3, 16, 16))))
        assert out.shape == (2, 6)

    def test_mlp_learns_separable_problem(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(64, 6))
        y = (x[:, 0] + x[:, 1] > 0).astype(int)
        model = SimpleMLP(6, 2, hidden=16, seed=0)
        opt = SGD(model.parameters(), lr=0.5)
        for _ in range(60):
            loss = F.cross_entropy(model(Tensor(x)), y)
            opt.zero_grad()
            loss.backward()
            opt.step()
        preds = model(Tensor(x)).data.argmax(axis=1)
        assert (preds == y).mean() > 0.85


class TestRegistry:
    def test_all_registered_names_construct(self):
        for name in MODEL_REGISTRY:
            kwargs = {}
            if name in ("simple_mlp", "linear"):
                kwargs = {"input_dim": 12, "num_classes": 3}
            elif name == "ecg_regressor":
                kwargs = {"window_size": 32}
            elif name == "multilabel_cnn":
                kwargs = {"num_labels": 4, "image_size": 16}
            elif name == "simple_cnn":
                kwargs = {"num_classes": 4, "image_size": 16}
            else:
                kwargs = {"num_classes": 4}
            model = create_model(name, **kwargs)
            assert model.num_parameters() > 0

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError, match="unknown model"):
            create_model("resnet152")
